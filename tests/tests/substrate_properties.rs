//! Property tests of the substrates: interconnect delivery guarantees,
//! address-hash structure, memory-module ordering, DRAM accounting,
//! and ISA interpreter/simulator agreement on random straight-line
//! programs.

use proptest::prelude::*;
use xmt_mem::{AddressHash, CacheConfig, DramChannel, DramConfig, DramReq, MemReq, MemoryModule};
use xmt_noc::{
    build_network, measure_saturation, ButterflyNetwork, Flit, MotNetwork, Network, Pattern,
    Topology,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn mot_delivers_every_flit_exactly_once(
        seed in 0u64..10_000,
        log_ports in 2u32..6,
        rounds in 1usize..30,
    ) {
        let ports = 1usize << log_ports;
        let mut net = MotNetwork::new(Topology::pure_mot(ports, ports));
        let mut injected = Vec::new();
        for round in 0..rounds {
            for s in 0..ports {
                let mut z = seed
                    .wrapping_add((round * ports + s) as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15);
                z ^= z >> 31;
                let f = Flit { src: s, dst: (z as usize) % ports, tag: (round * ports + s) as u64 };
                if net.try_inject(f) {
                    injected.push(f.tag);
                }
            }
            for d in net.step() {
                let pos = injected.iter().position(|&t| t == d.flit.tag);
                prop_assert!(pos.is_some(), "delivered unknown or duplicate tag");
                injected.swap_remove(pos.unwrap());
            }
        }
        let mut guard = 0;
        while net.in_flight() > 0 && guard < 10_000 {
            for d in net.step() {
                let pos = injected.iter().position(|&t| t == d.flit.tag);
                prop_assert!(pos.is_some());
                injected.swap_remove(pos.unwrap());
            }
            guard += 1;
        }
        prop_assert!(injected.is_empty(), "{} flits lost", injected.len());
    }

    #[test]
    fn butterfly_delivers_every_flit_exactly_once(
        seed in 0u64..10_000,
        stages in 1u32..4,
        rounds in 1usize..20,
    ) {
        let ports = 16usize;
        let topo = Topology::hybrid(ports, ports, 8 - stages, stages);
        let mut net = ButterflyNetwork::new(topo);
        let mut outstanding = 0u64;
        let mut delivered = 0u64;
        for round in 0..rounds {
            for s in 0..ports {
                let mut z = seed.wrapping_add((round * 31 + s) as u64)
                    .wrapping_mul(0x2545_F491_4F6C_DD1D);
                z ^= z >> 29;
                let f = Flit { src: s, dst: (z as usize) % ports, tag: z };
                if net.try_inject(f) {
                    outstanding += 1;
                }
            }
            delivered += net.step().len() as u64;
        }
        let mut guard = 0;
        while net.in_flight() > 0 && guard < 20_000 {
            delivered += net.step().len() as u64;
            guard += 1;
        }
        prop_assert_eq!(delivered, outstanding);
    }

    #[test]
    fn address_hash_line_atomicity_and_balance(
        log_modules in 1u32..8,
        lines in 64usize..512,
    ) {
        let modules = 1usize << log_modules;
        let h = AddressHash::new(modules, 8);
        let mut counts = vec![0usize; modules];
        for line in 0..lines {
            let base = (line * 8) as u32;
            let m = h.module_of(base);
            // Whole line maps to one module.
            for off in 1..8u32 {
                prop_assert_eq!(h.module_of(base + off), m);
            }
            counts[m] += 1;
        }
        // No module gets everything (unless there is only one).
        if modules > 1 && lines >= 4 * modules {
            let max = counts.iter().max().unwrap();
            prop_assert!(*max < lines, "all lines on one module");
        }
    }

    #[test]
    fn memory_module_conserves_requests(n_reqs in 1usize..60, seed in 0u64..1000) {
        let mut module = MemoryModule::new(
            0,
            CacheConfig { lines: 16, ways: 4, line_words: 8, hit_latency: 2 },
        );
        let mut chan = DramChannel::new(DramConfig {
            bytes_per_cycle: 8.0,
            access_latency: 5,
            line_bytes: 32,
        });
        for i in 0..n_reqs {
            let mut z = seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z ^= z >> 33;
            module.enqueue(MemReq {
                addr: (z % 4096) as u32,
                is_write: z & 1 == 1,
                tag: i as u64,
            });
        }
        let mut responses = Vec::new();
        for _ in 0..20_000 {
            let mut creqs = Vec::new();
            let mut resps = Vec::new();
            module.step(&mut creqs, &mut resps);
            responses.extend(resps.into_iter().map(|r| r.req.tag));
            for cr in creqs {
                chan.enqueue(DramReq { tag: cr.module as u64, ..cr.req });
            }
            if let Some(done) = chan.step() {
                module.on_fill(done);
            }
            if module.outstanding() == 0 && chan.pending() == 0 {
                break;
            }
        }
        responses.sort_unstable();
        let expect: Vec<u64> = (0..n_reqs as u64).collect();
        prop_assert_eq!(responses, expect, "every request answered exactly once");
    }

    #[test]
    fn dram_byte_accounting(xfers in 1usize..40) {
        let cfg = DramConfig { bytes_per_cycle: 8.0, access_latency: 3, line_bytes: 32 };
        let mut chan = DramChannel::new(cfg);
        for i in 0..xfers {
            chan.enqueue(DramReq { line: i as u32, is_write: i % 3 == 0, tag: i as u64 });
        }
        let mut done = 0;
        let mut guard = 0;
        while done < xfers && guard < 100_000 {
            if chan.step().is_some() {
                done += 1;
            }
            guard += 1;
        }
        prop_assert_eq!(done, xfers);
        prop_assert_eq!(chan.stats.bytes, 32 * xfers as u64);
        prop_assert_eq!((chan.stats.reads + chan.stats.writes) as usize, xfers);
    }
}

#[test]
fn hotspot_vs_spread_traffic_on_mot() {
    // The same-address serialization the paper works around with
    // twiddle replication: hotspot throughput is 1/ports of spread.
    let ports = 16;
    let mut hot = MotNetwork::new(Topology::pure_mot(ports, ports));
    let s_hot = measure_saturation(&mut hot, Pattern::Hotspot(0), 50, 300);
    let mut spread = MotNetwork::new(Topology::pure_mot(ports, ports));
    let s_spread = measure_saturation(&mut spread, Pattern::Uniform, 50, 300);
    assert!(s_spread.throughput > s_hot.throughput * 8.0);
}

#[test]
fn build_network_polymorphism() {
    for topo in [Topology::pure_mot(8, 8), Topology::hybrid(8, 8, 2, 3)] {
        let mut n = build_network(topo);
        assert!(n.try_inject(Flit {
            src: 1,
            dst: 5,
            tag: 0
        }));
        let mut delivered = 0;
        for _ in 0..50 {
            delivered += n.step().len();
        }
        assert_eq!(delivered, 1);
    }
}
