//! Cross-crate experiment-shape tests: the end-to-end claims of the
//! paper's evaluation, checked against this workspace's models — the
//! assertions EXPERIMENTS.md reports.

use hpc_cluster::{model, paper_pinned, speedups, Cluster, Fft3dJob};
use roofline::Platform;
use xmt_fft::{project, table4_projection};
use xmt_sim::{summarize, XmtConfig};

#[test]
fn table4_series_monotone_with_diminishing_x4_return() {
    let g: Vec<f64> = table4_projection()
        .iter()
        .map(|p| p.gflops_convention)
        .collect();
    assert_eq!(g.len(), 5);
    for w in g.windows(2) {
        assert!(w[1] > w[0]);
    }
    // Headline observation (c): x4 gains much less than its 4× DRAM.
    let x4_gain = g[4] / g[3];
    assert!(x4_gain < 1.7, "x4/x2 = {x4_gain}");
}

#[test]
fn table5_speedup_bands() {
    let base = paper_pinned();
    let g = table4_projection();
    let s4k = speedups(g[0].gflops_convention, &base);
    // Same regime as the paper's 31X / 2.8X.
    assert!((20.0..45.0).contains(&s4k.vs_serial), "{}", s4k.vs_serial);
    assert!((1.8..4.0).contains(&s4k.vs_parallel), "{}", s4k.vs_parallel);
    let sx4 = speedups(g[4].gflops_convention, &base);
    assert!(
        sx4.vs_serial > 1000.0,
        "largest config beats serial by 3 orders"
    );
}

#[test]
fn table6_single_chip_vs_cluster() {
    // The paper's headline: one chip in the regime of a big cluster on
    // FFT, at orders of magnitude less silicon and power.
    let edison = Cluster::edison();
    let efft = model(&edison, &Fft3dJob::edison_reference());
    let xmt = XmtConfig::xmt_128k_x4();
    let xfft = project(&xmt, &[512, 512, 512]);
    let factor = xfft.gflops_convention / efft.gflops;
    assert!(
        (0.7..=2.5).contains(&factor),
        "XMT/Edison FFT factor {factor:.2} out of the paper's regime"
    );

    let phys = summarize(&xmt);
    let si_ratio = edison.silicon_cm2_at_22nm() / (phys.area_22nm_mm2 / 100.0);
    assert!(
        (600.0..1200.0).contains(&si_ratio),
        "silicon ratio {si_ratio:.0} (paper: 870)"
    );
    let pw_ratio = edison.peak_power_kw / (phys.peak_power_w / 1000.0);
    assert!(
        (250.0..500.0).contains(&pw_ratio),
        "power ratio {pw_ratio:.0} (paper: 375)"
    );

    // Utilization asymmetry: XMT uses tens of percent of its peak,
    // Edison a fraction of one percent.
    let xmt_pct = xfft.gflops_convention / xmt.peak_gflops() * 100.0;
    assert!(xmt_pct > 15.0, "XMT at {xmt_pct:.0}% of peak (paper: 35%)");
    assert!(
        efft.pct_of_machine_peak < 1.0,
        "Edison at {:.2}%",
        efft.pct_of_machine_peak
    );
}

#[test]
fn roofline_consistency_between_crates() {
    // The Fig. 3 points must lie under each configuration's roofline.
    for cfg in XmtConfig::paper_configs() {
        let p = project(&cfg, &[512, 512, 512]);
        let plat = Platform::new(cfg.name, cfg.peak_gflops(), cfg.peak_dram_gbs());
        for pt in [
            p.rotation_point(),
            p.non_rotation_point(),
            p.overall_point(),
        ] {
            let roof = plat.attainable(pt.intensity);
            assert!(
                pt.gflops <= roof * 1.001,
                "{}: point {:.0} above roof {:.0}",
                cfg.name,
                pt.gflops,
                roof
            );
        }
    }
}

#[test]
fn fft_intensity_respects_hong_kung_bound() {
    // Section VI-B: operational intensity of FFT ≤ 0.25·log2(S)
    // FLOPs/byte for cache size S words. Our measured stage intensity
    // (~0.5 FLOPs/byte) is far under the bound for any realistic S.
    for cfg in XmtConfig::paper_configs() {
        let p = project(&cfg, &[512, 512, 512]);
        let s_words = (cfg.memory_modules * cfg.cache.lines * cfg.cache.line_words) as f64;
        let bound = roofline::RooflineSeries::fft_intensity_bound(s_words);
        let oi = p.overall_point().intensity;
        assert!(
            oi < bound,
            "{}: {oi} exceeds Hong-Kung bound {bound}",
            cfg.name
        );
    }
}

#[test]
fn edison_model_is_communication_bound() {
    let t = model(&Cluster::edison(), &Fft3dJob::edison_reference());
    assert!(t.comm_fraction > 0.5, "cluster FFT must be network-bound");
    assert!(t.total_s > 0.0 && t.gflops > 0.0);
}
