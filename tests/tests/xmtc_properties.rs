//! Property tests of the XMTC toolchain: (1) printing a random
//! expression AST and re-parsing it yields the same AST (parser
//! correctness incl. precedence); (2) compiling and executing a random
//! expression matches an independent Rust-side evaluator (codegen +
//! ISA semantics); (3) random flat programs with counted loops agree
//! between the two execution engines.

use proptest::prelude::*;
use xmtc::{BinOp, Expr};

// ---------- random integer expressions ----------

fn arb_expr(depth: u32) -> BoxedStrategy<Expr> {
    if depth == 0 {
        prop_oneof![
            (0u32..1000).prop_map(Expr::Int),
            Just(Expr::Var("a".into())),
            Just(Expr::Var("b".into())),
        ]
        .boxed()
    } else {
        let sub = arb_expr(depth - 1);
        prop_oneof![
            (0u32..1000).prop_map(Expr::Int),
            Just(Expr::Var("a".into())),
            Just(Expr::Var("b".into())),
            (
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div),
                    Just(BinOp::Rem),
                    Just(BinOp::And),
                    Just(BinOp::Or),
                    Just(BinOp::Xor),
                    Just(BinOp::Shl),
                    Just(BinOp::Shr),
                ],
                sub.clone(),
                sub
            )
                .prop_map(|(op, l, r)| Expr::Bin(op, Box::new(l), Box::new(r))),
        ]
        .boxed()
    }
}

/// Print an expression with full parenthesization (so precedence can't
/// hide printer bugs; the parser must still produce the same tree).
fn print_expr(e: &Expr) -> String {
    match e {
        Expr::Int(v) => v.to_string(),
        Expr::Var(n) => n.clone(),
        Expr::Bin(op, l, r) => {
            let o = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Rem => "%",
                BinOp::And => "&",
                BinOp::Or => "|",
                BinOp::Xor => "^",
                BinOp::Shl => "<<",
                BinOp::Shr => ">>",
            };
            format!("({} {} {})", print_expr(l), o, print_expr(r))
        }
        _ => unreachable!("generator emits only literals/vars/binops"),
    }
}

/// Independent evaluator with the ISA's wrapping/unsigned semantics.
fn eval(e: &Expr, a: u32, b: u32) -> u32 {
    match e {
        Expr::Int(v) => *v,
        Expr::Var(n) => {
            if n == "a" {
                a
            } else {
                b
            }
        }
        Expr::Bin(op, l, r) => {
            let (x, y) = (eval(l, a, b), eval(r, a, b));
            match op {
                BinOp::Add => x.wrapping_add(y),
                BinOp::Sub => x.wrapping_sub(y),
                BinOp::Mul => x.wrapping_mul(y),
                BinOp::Div => x.checked_div(y).unwrap_or(u32::MAX),
                BinOp::Rem => x.checked_rem(y).unwrap_or(x),
                BinOp::And => x & y,
                BinOp::Or => x | y,
                BinOp::Xor => x ^ y,
                BinOp::Shl => x.wrapping_shl(y & 31),
                BinOp::Shr => x.wrapping_shr(y & 31),
            }
        }
        _ => unreachable!(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn print_parse_roundtrip(e in arb_expr(3)) {
        let src = format!("int a = 1; int b = 2; int z = {};", print_expr(&e));
        let ast = xmtc::parse(&src).unwrap();
        match &ast.body[2] {
            xmtc::Stmt::Decl { init, .. } => prop_assert_eq!(init, &e),
            other => prop_assert!(false, "unexpected stmt {:?}", other),
        }
    }

    #[test]
    fn compiled_expression_matches_evaluator(
        e in arb_expr(3),
        a in any::<u32>(),
        b in any::<u32>(),
    ) {
        let src = format!(
            "int a = {a}; int b = {b}; mem[0] = {};",
            print_expr(&e)
        );
        let prog = xmtc::compile(&src).unwrap();
        let mut m = xmt_isa::Interp::new(8);
        m.run(&prog).unwrap();
        prop_assert_eq!(m.mem[0], eval(&e, a, b));
    }

    #[test]
    fn counted_loops_terminate_and_agree(
        iters in 0u32..20,
        stride in 1u32..5,
        e in arb_expr(2),
    ) {
        // A counted while loop accumulating a random expression of the
        // loop counter; both engines must agree with each other.
        let src = format!(
            "int a = 0; int b = {stride}; int acc = 0; int i = 0;
             while (i < {iters}) {{
                 a = i;
                 acc = acc + {};
                 i = i + b;
             }}
             mem[0] = acc; mem[1] = i;",
            print_expr(&e)
        );
        let prog = xmtc::compile(&src).unwrap();
        let mut interp = xmt_isa::Interp::new(8);
        interp.run(&prog).unwrap();

        let cfg = xmt_sim::XmtConfig::xmt_4k().scaled_to(2);
        let mut mach = xmt_sim::MachineBuilder::new(&cfg, prog).mem_words(8).build();
        mach.run().unwrap();
        prop_assert_eq!(interp.mem[0], mach.mem[0]);
        prop_assert_eq!(interp.mem[1], mach.mem[1]);

        // Cross-check against direct evaluation.
        let mut acc = 0u32;
        let mut i = 0u32;
        while i < iters {
            acc = acc.wrapping_add(eval(&e, i, stride));
            i += stride;
        }
        prop_assert_eq!(interp.mem[0], acc);
    }

    #[test]
    fn random_spawn_bodies_execute_identically(
        threads in 1u32..32,
        e in arb_expr(2),
    ) {
        // Each thread stores f($, K) into its own slot.
        let src = format!(
            "g0 = 7;
             spawn ({threads}) {{
                 int a = $;
                 int b = g0;
                 mem[$] = {};
             }}",
            print_expr(&e)
        );
        let prog = xmtc::compile(&src).unwrap();
        let mut interp = xmt_isa::Interp::new(64);
        interp.run(&prog).unwrap();
        let cfg = xmt_sim::XmtConfig::xmt_4k().scaled_to(2);
        let mut mach = xmt_sim::MachineBuilder::new(&cfg, prog).mem_words(64).build();
        mach.run().unwrap();
        for t in 0..threads {
            prop_assert_eq!(interp.mem[t as usize], eval(&e, t, 7));
            prop_assert_eq!(mach.mem[t as usize], interp.mem[t as usize]);
        }
    }
}
