//! Golden regression tests for the paper-scale configurations.
//!
//! `golden::scaling_cases()` runs the FFT on the full 4096-, 8192- and
//! 65536-TCU machines from `crates/sim/src/config.rs` — the configs the
//! paper's scaling argument is actually about. The constants below were
//! captured with `golden_capture --scaling` under the Reference engine;
//! every engine must reproduce them bit-for-bit.
//!
//! Debug builds simulate these machines slowly, so the default (tier-1)
//! suite checks only the Threaded engine — the one whose sharded
//! stepping is most at risk of drifting — on the three cheaper cases.
//! The dense 8k case and the Reference/FastForward engines run in
//! release via `ci.sh` (`cargo test --release ... -- --ignored`), and
//! `bench_sim --scaling` independently asserts three-engine identity on
//! every case.

use xmt_fft::golden::{scaling_cases, spawn_digest};

/// Captured 2026-08-08 via `golden_capture --scaling` (Reference
/// engine) after the sharded-Threaded/NoC-occupancy rework; identical
/// to the pre-rework counts for these plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Golden {
    cycles: u64,
    instructions: u64,
    threads: u64,
    spawns: u64,
    spawn_digest: u64,
}

const GOLDEN: &[(&str, Golden)] = &[
    (
        "fft_xmt4k_n32768",
        Golden {
            cycles: 29074,
            instructions: 3751947,
            threads: 20480,
            spawns: 5,
            spawn_digest: 0x9795eb3c0559c08a,
        },
    ),
    (
        "fft_xmt8k_n8192",
        Golden {
            cycles: 21885,
            instructions: 950283,
            threads: 8192,
            spawns: 5,
            spawn_digest: 0xb708530ec88ad011,
        },
    ),
    (
        "fft_xmt8k_n65536",
        Golden {
            cycles: 89081,
            instructions: 9248781,
            threads: 73728,
            spawns: 6,
            spawn_digest: 0x3fac44bcd9e1057a,
        },
    ),
    (
        "fft_xmt64k_n8192",
        Golden {
            cycles: 23903,
            instructions: 950283,
            threads: 8192,
            spawns: 5,
            spawn_digest: 0xd067d8c495d7c367,
        },
    ),
];

/// The dense 8k run simulates ~9M instructions; keep it out of the
/// debug-profile default suite (it runs in release via ci.sh).
const EXPENSIVE: &[&str] = &["fft_xmt8k_n65536"];

fn check(engine: xmt_sim::Engine, include_expensive: bool) {
    for case in scaling_cases() {
        if !include_expensive && EXPENSIVE.contains(&case.name) {
            continue;
        }
        let want = GOLDEN
            .iter()
            .find(|(n, _)| *n == case.name)
            .unwrap_or_else(|| panic!("no golden entry for case {}", case.name))
            .1;
        let mut m = case.machine();
        m.engine = engine;
        let s = m.run().expect("scaling case must complete");
        let got = Golden {
            cycles: s.stats.cycles,
            instructions: s.stats.instructions,
            threads: s.stats.threads,
            spawns: s.stats.spawns,
            spawn_digest: spawn_digest(&s),
        };
        assert_eq!(
            got, want,
            "case {} diverged from captured scaling golden under {:?}",
            case.name, engine
        );
    }
}

#[test]
fn threaded_engine_matches_scaling_golden() {
    check(xmt_sim::Engine::Threaded { threads: 0 }, false);
}

#[test]
#[ignore = "release-profile gate: run via ci.sh (cargo test --release -- --ignored)"]
fn reference_engine_matches_scaling_golden() {
    check(xmt_sim::Engine::Reference, true);
}

#[test]
#[ignore = "release-profile gate: run via ci.sh (cargo test --release -- --ignored)"]
fn fast_forward_engine_matches_scaling_golden() {
    check(xmt_sim::Engine::FastForward, true);
}

#[test]
#[ignore = "release-profile gate: run via ci.sh (cargo test --release -- --ignored)"]
fn threaded_engine_matches_scaling_golden_dense() {
    check(xmt_sim::Engine::Threaded { threads: 0 }, true);
}
