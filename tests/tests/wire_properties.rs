//! Adversarial-input properties of the job service's wire codecs.
//!
//! The journal replays whatever a crash left on disk and the TCP
//! front end parses whatever a socket delivers, so every decoder in
//! `xmt_server::wire` and `xmt_server::net` is a trust boundary. The
//! properties pin the contract: on *arbitrary* bytes, on *truncated*
//! valid encodings, and on *bit-flipped* valid encodings, every
//! decoder returns a typed error or a (harmless) decoded value — it
//! never panics and never reads past the buffer. Round-trips of valid
//! values stay exact under the same generators.

use proptest::prelude::*;
use xmt_server::net::{self, Request};
use xmt_server::{decode_report, decode_request, decode_row, encode_request, SimRequest};

/// All the golden names the request codec can carry.
const NAMES: [&str; 3] = ["ps_tickets", "fft_radix8_n512", "spawn_storm"];

/// Every decoder at the trust boundary, behind one callable so each
/// property covers them all.
fn decode_all(bytes: &[u8]) {
    let _ = decode_request(bytes);
    let _ = decode_report(bytes);
    let _ = decode_row(bytes);
    let _ = net::split_frame(bytes);
    let _ = net::decode_stats(bytes);
    let _ = net::decode_status(bytes);
    // A frame body under every request tag, known and unknown.
    for tag in 0..=u8::MAX {
        let _ = net::decode_request_frame(tag, bytes);
    }
}

/// A valid encoded submit-request frame to mutate, plus its tag.
fn valid_frame(name: &str, lane_high: bool, token: u64) -> (u8, Vec<u8>) {
    let mut sub = xmt_server::Submission::new(SimRequest::golden(name).unwrap())
        .tenant("prop")
        .token(token);
    if lane_high {
        sub = sub.lane(xmt_server::Lane::High);
    }
    net::encode_request_frame(&Request::Submit(Box::new(sub)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes: every decoder returns, with no panic and no
    /// over-read (the slice bound is the proof — Reader can't index
    /// outside it without panicking, which this property forbids).
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        decode_all(&bytes);
    }

    /// Truncating a valid request encoding at any point yields a typed
    /// error, never a panic and never a bogus success.
    #[test]
    fn truncated_requests_are_typed_errors(
        pick in 0usize..3,
        cut in 0.0f64..1.0,
    ) {
        let full = encode_request(&SimRequest::golden(NAMES[pick]).unwrap());
        let cut = ((full.len() as f64 * cut) as usize).min(full.len() - 1);
        prop_assert!(decode_request(&full[..cut]).is_err());
        decode_all(&full[..cut]);
    }

    /// Bit-flipping any single bit of a valid request either fails
    /// typed or decodes to a *different* value than the original —
    /// silent corruption may pass the codec (the digest downstream
    /// catches payload flips), but it must never panic the decoder.
    #[test]
    fn bit_flipped_requests_never_panic(
        pick in 0usize..3,
        bit_frac in 0.0f64..1.0,
    ) {
        let mut bytes = encode_request(&SimRequest::golden(NAMES[pick]).unwrap());
        let bit = (bytes.len() * 8 - 1).min((bytes.len() as f64 * 8.0 * bit_frac) as usize);
        bytes[bit / 8] ^= 1 << (bit % 8);
        let _ = decode_request(&bytes);
        decode_all(&bytes);
    }

    /// The same three adversarial shapes against the framed submit
    /// request: truncation and bit flips must never panic the frame
    /// decoder, and honest frames round-trip exactly.
    #[test]
    fn request_frames_survive_mutation(
        pick in 0usize..3,
        lane_high in any::<bool>(),
        token in any::<u64>(),
        cut in 0.0f64..1.0,
        bit_frac in 0.0f64..1.0,
        wrong_tag in any::<u8>(),
    ) {
        let (tag, body) = valid_frame(NAMES[pick], lane_high, token);
        // Round-trip.
        let decoded = net::decode_request_frame(tag, &body).unwrap();
        prop_assert_eq!(net::encode_request_frame(&decoded), (tag, body.clone()));
        // Truncation: typed error (a shorter submit body can never be
        // a valid submit — every field is length-checked).
        let cut = (body.len() as f64 * cut) as usize;
        if cut < body.len() {
            prop_assert!(net::decode_request_frame(tag, &body[..cut]).is_err());
        }
        // Bit flip anywhere: no panic.
        let mut flipped = body.clone();
        let bit = (flipped.len() * 8 - 1).min((flipped.len() as f64 * 8.0 * bit_frac) as usize);
        flipped[bit / 8] ^= 1 << (bit % 8);
        let _ = net::decode_request_frame(tag, &flipped);
        // The body under every other tag: no panic (wrong-tag bodies
        // are exactly what a desynchronized peer would send).
        let _ = net::decode_request_frame(wrong_tag, &body);
    }
}
