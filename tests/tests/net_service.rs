//! Loopback soak of the networked job service: the TCP front end, the
//! blocking client, tenant quotas, load shedding, client deadlines,
//! connection drops, a worker kill and an in-process crash-restart on
//! the same journal — all against real sockets.
//!
//! The contract under test is the ISSUE's service-level one: every
//! in-quota submission completes **exactly once** with byte-identical
//! results, every rejection is a *typed* error ([`JobError`] over the
//! wire), and no adversarial client behaviour (torn frames, dropped
//! connections, expired deadlines) can wedge the server or leak its
//! threads — [`NetServer::stop`] must always join promptly.

use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

use xmt_server::net::NetServer;
use xmt_server::{
    encode_report, encode_row, Client, ClientConfig, ClientError, JobError, Lane, QuotaPolicy,
    Server, ServerConfig, SimRequest, Submission,
};

/// A generous bound for any single wait in this suite.
const SOAK_WAIT: Duration = Duration::from_secs(300);

fn serve(cfg: ServerConfig) -> (Arc<Server>, NetServer) {
    let srv = Arc::new(Server::start(cfg).unwrap());
    let net = NetServer::bind(Arc::clone(&srv), "127.0.0.1:0").unwrap();
    (srv, net)
}

fn client(net: &NetServer) -> Client {
    Client::connect(&net.local_addr().to_string(), ClientConfig::default()).unwrap()
}

/// The canonical bytes for a golden case, computed with no server.
fn direct_bytes(name: &str) -> Vec<u8> {
    let case = xmt_fft::golden::cases()
        .into_iter()
        .chain(xmt_fft::golden::scaling_cases())
        .find(|c| c.name == name)
        .unwrap();
    encode_report(&case.run())
}

/// Multi-tenant soak: three tenants race the golden sweep through the
/// socket from their own connections while a worker is killed
/// mid-flight. Every job completes exactly once, byte-identical to the
/// direct run; nothing is lost, nothing runs twice.
#[test]
fn concurrent_tenants_survive_worker_kill_exactly_once() {
    let (srv, net) = serve(ServerConfig {
        workers: 3,
        quantum: 1_500,
        ..ServerConfig::default()
    });
    let names = ["ps_tickets", "fft_radix8_n512", "spawn_storm"];
    let expected: Vec<Vec<u8>> = names.iter().map(|n| direct_bytes(n)).collect();
    std::thread::scope(|s| {
        for tenant in ["alpha", "beta", "gamma"] {
            let net = &net;
            let expected = &expected;
            s.spawn(move || {
                let mut c = client(net);
                let ids: Vec<u64> = names
                    .iter()
                    .map(|n| {
                        c.submit(
                            Submission::new(SimRequest::golden(n).unwrap())
                                .tenant(tenant)
                                .lane(if tenant == "alpha" {
                                    Lane::High
                                } else {
                                    Lane::Normal
                                }),
                        )
                        .unwrap()
                    })
                    .collect();
                for (id, want) in ids.iter().zip(expected) {
                    let r = c.wait(*id, SOAK_WAIT).unwrap();
                    assert!(r.completed);
                    assert_eq!(&r.bytes, want, "tenant {tenant} diverged");
                }
            });
        }
        // Kill a worker while the sweep is in flight: jobs must resume
        // from their checkpoints on the survivors.
        std::thread::sleep(Duration::from_millis(30));
        srv.kill_worker();
    });
    let stats = srv.stats();
    assert_eq!(stats.submitted, 9);
    // Exactly once: every submission is accounted a single terminal
    // state, none lost, none double-counted.
    assert_eq!(
        stats.completed + stats.deduped,
        9,
        "every job exactly once: {stats:?}"
    );
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.queued, 0);
}

/// Quota fairness over the wire: an over-quota tenant is refused with
/// a typed [`JobError::QuotaExceeded`] while an in-quota tenant's jobs
/// complete undisturbed — and cache hits charge nothing, so a tenant
/// who only re-reads cached results never exhausts its bucket.
#[test]
fn over_quota_tenant_is_typed_rejected_in_quota_completes() {
    let (srv, net) = serve(ServerConfig {
        workers: 2,
        quantum: 2_000,
        quota: Some(QuotaPolicy {
            burst_cycles: 1,
            refill_cycles_per_sec: 0,
        }),
        ..ServerConfig::default()
    });
    let mut c = client(&net);
    // Greedy burns its whole bucket (and then some — debt is allowed
    // on an admitted job) on one long FFT.
    let sub = |tenant: &str| {
        Submission::new(SimRequest::golden("fft_radix8_n512").unwrap()).tenant(tenant)
    };
    let id = c.submit(sub("greedy")).unwrap();
    assert!(c.wait(id, SOAK_WAIT).unwrap().completed);
    // Deep in debt now: the next submission is refused, typed.
    match c.submit(sub("greedy")) {
        Err(ClientError::Server(JobError::QuotaExceeded)) => {}
        other => panic!("expected QuotaExceeded, got {other:?}"),
    }
    // A frugal tenant re-reading the cached result is admitted (its
    // bucket is intact) and charged nothing: its balance stays full,
    // so repeated hits never exhaust it.
    for _ in 0..3 {
        let id = c.submit(sub("frugal")).unwrap();
        let r = c.wait(id, SOAK_WAIT).unwrap();
        assert!(r.from_cache, "identical bytes must hit the cache");
    }
    assert_eq!(
        srv.quota_level("frugal"),
        Some(1.0),
        "cache hits are free of quota charge"
    );
    let stats = c.stats().unwrap();
    assert_eq!(stats.server.rejected_quota, 1);
}

/// Load shedding over the wire: a full submission queue answers
/// [`JobError::Overloaded`] as a typed error, and the client does NOT
/// retry it (rejections are answers, not transport failures).
#[test]
fn overload_is_shed_with_typed_error() {
    let (_srv, net) = serve(ServerConfig {
        workers: 1,
        max_queued: 0,
        ..ServerConfig::default()
    });
    let mut c = client(&net);
    match c.submit(Submission::new(SimRequest::golden("ps_tickets").unwrap())) {
        Err(ClientError::Server(JobError::Overloaded)) => {}
        other => panic!("expected Overloaded, got {other:?}"),
    }
    let stats = c.stats().unwrap();
    assert_eq!(
        stats.server.rejected_overload, 1,
        "shed exactly once — the client must not auto-retry a rejection"
    );
}

/// Client-side deadlines and server-side wait bounds: an expired wait
/// surfaces [`JobError::Timeout`] but the job keeps running and a
/// later wait delivers it; torn frames and dropped connections leave
/// the server fully functional; stop() joins every thread promptly.
#[test]
fn deadlines_drops_and_torn_frames_dont_wedge_the_server() {
    let (srv, mut net) = serve(ServerConfig {
        workers: 1,
        quantum: 1_000,
        ..ServerConfig::default()
    });
    let mut c = client(&net);
    let id = c
        .submit(Submission::new(
            SimRequest::golden("fft_radix8_n512").unwrap(),
        ))
        .unwrap();
    match c.wait(id, Duration::ZERO) {
        Err(ClientError::Server(JobError::Timeout)) => {}
        Ok(r) => assert!(r.completed), // legitimately raced to done
        other => panic!("expected Timeout, got {other:?}"),
    }
    // Torn frame: promise 64 bytes, send 3, hang up. The server drops
    // the connection and carries on.
    for _ in 0..4 {
        let mut sock = std::net::TcpStream::connect(net.local_addr()).unwrap();
        sock.write_all(&[64, 0, 0, 0, 1, 2, 3]).unwrap();
        drop(sock);
    }
    // Mid-wait connection drop: start a wait, vanish. The connection
    // thread must notice and exit rather than wait forever.
    {
        let mut c2 = client(&net);
        let _ = c2.submit(Submission::new(
            SimRequest::golden("fft_radix8_n512").unwrap(),
        ));
        // (dropping c2 closes the socket mid-service)
    }
    // The original job still completes with the right bytes.
    let r = c.wait(id, SOAK_WAIT).unwrap();
    assert!(r.completed);
    assert_eq!(r.bytes, direct_bytes("fft_radix8_n512"));
    // stop() must join the accept thread and every connection thread
    // promptly despite the abuse above.
    let t0 = std::time::Instant::now();
    net.stop();
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "stop() wedged for {:?}",
        t0.elapsed()
    );
    drop(srv);
}

/// Crash-restart from a journal snapshot: submit a mixed batch, take
/// a byte-level snapshot of the journal the moment the last submission
/// is acknowledged (every ack implies a durable, fsynced Submit
/// record — that is the admission contract), then start a second
/// server on the snapshot as if the first had crashed at that instant.
/// The jobs finish under their *original ids* with byte-identical
/// reports and byte-identical streamed probe rows, and idempotency
/// tokens survive the restart.
///
/// A blocker job pins the single worker under an unbounded quantum so
/// none of the interesting jobs can reach a terminal record before the
/// snapshot: the crash point is deterministic. The mid-execution crash
/// points (checkpointed slices, SIGKILL) are covered by the library's
/// journal test and the process-level crash test in
/// `crates/server/tests/`.
#[test]
fn restart_on_same_journal_finishes_exactly_once_byte_identical() {
    let dir = std::env::temp_dir().join(format!("xmt-net-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // Reference rows for the probed job, computed on a journal-less
    // server (probe streams are deterministic).
    let reference_rows: Vec<Vec<u8>> = {
        let srv = Server::start(ServerConfig::default()).unwrap();
        let mut h = srv
            .submit(
                SimRequest::golden("fft_radix8_n512")
                    .unwrap()
                    .with_sim(|s| s.probed(64)),
            )
            .unwrap();
        let rx = h.take_stream().unwrap();
        let rows: Vec<_> = rx.iter().map(|r| encode_row(&r)).collect();
        h.wait_deadline(SOAK_WAIT).unwrap();
        rows
    };

    // Phase 1: one worker, unbounded quantum. The first submission
    // occupies the worker for its entire (uninterruptible) run, so the
    // four that follow are still queued — Submit records only — when
    // the journal is snapshotted.
    let (ids, probed_id) = {
        let (srv, net) = serve(ServerConfig {
            workers: 1,
            quantum: u64::MAX,
            journal: Some(dir.join("live.journal")),
            ..ServerConfig::default()
        });
        let mut c = client(&net);
        c.submit(Submission::new(SimRequest::golden("fft_radix8_n512").unwrap()).tenant("blocker"))
            .unwrap();
        let ids: Vec<u64> = ["fft_radix8_n512", "spawn_storm", "ps_tickets"]
            .iter()
            .map(|n| {
                c.submit(
                    Submission::new(SimRequest::golden(n).unwrap())
                        .tenant("t1")
                        .token(1_000 + n.len() as u64),
                )
                .unwrap()
            })
            .collect();
        let probed_id = c
            .submit(Submission::new(
                SimRequest::golden("fft_radix8_n512")
                    .unwrap()
                    .with_sim(|s| s.probed(64)),
            ))
            .unwrap();
        // The crash image: journal bytes exactly as a power cut at
        // this instant would leave them.
        std::fs::copy(dir.join("live.journal"), dir.join("crash.journal")).unwrap();
        drop(net);
        drop(srv);
        (ids, probed_id)
    };

    // Phase 2: restart on the crash image. Jobs resume under their
    // original ids and finish byte-identically.
    let (srv2, net2) = serve(ServerConfig {
        workers: 2,
        quantum: 900,
        journal: Some(dir.join("crash.journal")),
        ..ServerConfig::default()
    });
    let mut c = client(&net2);
    for (id, name) in ids
        .iter()
        .zip(["fft_radix8_n512", "spawn_storm", "ps_tickets"])
    {
        let r = c.wait(*id, SOAK_WAIT).unwrap();
        assert!(r.completed, "{name} lost across restart");
        assert_eq!(
            r.bytes,
            direct_bytes(name),
            "{name} diverged across restart"
        );
    }
    // The probed job restarted from scratch (probe rings aren't
    // journaled) and its re-generated stream is byte-identical.
    let rows: Vec<Vec<u8>> = c
        .stream(probed_id, SOAK_WAIT)
        .unwrap()
        .iter()
        .map(encode_row)
        .collect();
    assert!(c.wait(probed_id, SOAK_WAIT).unwrap().completed);
    assert_eq!(
        rows, reference_rows,
        "streamed rows diverged across restart"
    );
    // Exactly once: resubmitting a pre-crash token maps to the old
    // job, not a new execution.
    let again = c
        .submit(
            Submission::new(SimRequest::golden("spawn_storm").unwrap())
                .tenant("t1")
                .token(1_000 + "spawn_storm".len() as u64),
        )
        .unwrap();
    assert_eq!(again, ids[1], "token lost across restart");
    assert_eq!(srv2.stats().tokens_reused, 1);
    let _ = std::fs::remove_dir_all(&dir);
}
