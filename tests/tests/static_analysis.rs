//! The static-analysis pipeline against live machines: the trace
//! cache a run actually replayed must validate, and the traffic
//! analyzer's per-phase bounds must contain what an `IntervalProbe`
//! measures — the same gates `xmt_lint` enforces, pinned as tests.

use xmt_fft::golden::{cases, scaling_cases};
use xmt_fft::traffic::traffic_params;
use xmt_sim::IntervalProbe;
use xmt_verify::traffic::{analyze, Verdict};
use xmt_verify::transval::validate_cache;

/// After a run under the block-compiled tier, every superblock the
/// machine actually lowered must prove equivalent to the reference
/// semantics; unexecuted blocks stay cold and are skipped, never
/// wrongly warmed.
#[test]
fn replayed_trace_caches_validate_against_reference_semantics() {
    for case in cases() {
        let prog = case.program();
        let mut m = case.builder().build();
        let outcome = m.run();
        assert!(outcome.is_completed(), "{} did not complete", case.name);
        let tc = m
            .trace_cache()
            .expect("block tier is the default; trace cache must exist");
        let stats = validate_cache(prog.instrs(), tc.map(), tc.uops(), tc.unit_lat())
            .unwrap_or_else(|e| panic!("{}: replayed cache failed validation: {e}", case.name));
        assert!(stats.blocks > 0, "{}: nothing was audited", case.name);
    }
}

/// Every per-phase measurement (threads, instructions, flops, reads,
/// writes, NoC flits, DRAM bytes) falls inside the statically
/// predicted interval on every golden workload.
#[test]
fn measured_traffic_falls_inside_static_bounds() {
    for case in cases() {
        let params = traffic_params(&case.sim_config().arch);
        let prog = case.program();
        let report =
            analyze(prog.instrs(), &params).unwrap_or_else(|e| panic!("{}: {e}", case.name));
        assert!(report.phase_order_exact, "{}", case.name);

        let mut m = case.builder().build_probed(IntervalProbe::new(1, 400_000));
        let outcome = m.run();
        assert!(outcome.is_completed(), "{} did not complete", case.name);
        let rep = &outcome.report;
        assert_eq!(report.phases.len(), rep.spawns.len(), "{}", case.name);
        let rows = m.probe().rows();

        let within = |what: &str, got: u64, (lo, hi): (u64, u64), idx: usize| {
            assert!(
                lo <= got && got <= hi,
                "{} phase {idx}: measured {what} {got} outside [{lo}, {hi}]",
                case.name
            );
        };
        for (p, s) in report.phases.iter().zip(&rep.spawns) {
            if let Some(t) = p.threads {
                assert_eq!(t, s.threads, "{} phase {}", case.name, p.index);
            }
            within("instructions", s.instructions, p.instructions, p.index);
            within("flops", s.flops, p.flops, p.index);
            within("reads", s.mem_reads, p.reads, p.index);
            within("writes", s.mem_writes, p.writes, p.index);
            let noc: u64 = rows
                .iter()
                .filter(|r| r.spawn == Some(s.index as u64))
                .map(|r| r.noc_injected)
                .sum();
            within("noc flits", noc, p.noc_flits, p.index);
            let dram: u64 = rows
                .iter()
                .filter(|r| r.spawn == Some(s.index as u64))
                .map(|r| r.dram_bytes)
                .sum();
            within("dram bytes", dram, p.dram_bytes, p.index);
        }
    }
}

/// The paper's headline claim, derived without running anything: at
/// paper scale every FFT golden classifies bandwidth-bound, while the
/// synthetic compute kernel stays compute-bound — the analyzer can
/// tell the regimes apart from the program text alone.
#[test]
fn paper_scale_fft_is_statically_bandwidth_bound() {
    for case in scaling_cases() {
        let params = traffic_params(&case.sim_config().arch);
        let prog = case.program();
        let report =
            analyze(prog.instrs(), &params).unwrap_or_else(|e| panic!("{}: {e}", case.name));
        assert_eq!(
            report.verdict,
            Verdict::BandwidthBound,
            "{}: got {}",
            case.name,
            report.verdict
        );
    }
    let contrast = cases()
        .into_iter()
        .find(|c| c.name == "fpu_chain")
        .expect("fpu_chain golden");
    let params = traffic_params(&contrast.sim_config().arch);
    let report = analyze(contrast.program().instrs(), &params).unwrap();
    assert_eq!(report.verdict, Verdict::ComputeBound);
}
