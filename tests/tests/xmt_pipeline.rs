//! End-to-end pipeline tests: the generated XMT kernels, executed on
//! the untimed interpreter and the cycle simulator, must match the
//! host FFT library for every shape, configuration and replication
//! factor — and the two engines must agree bit-for-bit.

use proptest::prelude::*;
use xmt_fft::plan::XmtFftPlan;
use xmt_fft::run::{host_reference, rel_error, run_on_interp, run_on_machine};
use xmt_integration::sample32;
use xmt_sim::XmtConfig;

#[test]
fn one_d_sizes_match_host_on_interp() {
    for n in [8usize, 16, 32, 64, 128, 256, 512, 1024, 2048] {
        let plan = XmtFftPlan::new_1d(n, 2);
        let x = sample32(n, n as u64);
        let got = run_on_interp(&plan, &x).unwrap();
        let want = host_reference(&plan, &x);
        let e = rel_error(&want, &got.output);
        assert!(e < 1e-3, "n={n}: err {e}");
    }
}

#[test]
fn two_d_shapes_match_host_on_interp() {
    for (r, c) in [(8usize, 8usize), (8, 64), (64, 8), (32, 32), (16, 128)] {
        let plan = XmtFftPlan::new_2d(r, c, 4);
        let x = sample32(r * c, (r * 1000 + c) as u64);
        let got = run_on_interp(&plan, &x).unwrap();
        let want = host_reference(&plan, &x);
        let e = rel_error(&want, &got.output);
        assert!(e < 1e-3, "{r}x{c}: err {e}");
    }
}

#[test]
fn three_d_shapes_match_host_on_interp() {
    for shape in [
        (8usize, 8usize, 8usize),
        (8, 16, 8),
        (16, 8, 32),
        (16, 16, 16),
    ] {
        let plan = XmtFftPlan::new_3d(shape, 2);
        let x = sample32(shape.0 * shape.1 * shape.2, 99);
        let got = run_on_interp(&plan, &x).unwrap();
        let want = host_reference(&plan, &x);
        let e = rel_error(&want, &got.output);
        assert!(e < 1e-3, "{shape:?}: err {e}");
    }
}

#[test]
fn machine_agrees_with_interpreter_bitwise_across_configs() {
    let n = 256;
    let plan = XmtFftPlan::new_1d(n, 4);
    let x = sample32(n, 5);
    let interp = run_on_interp(&plan, &x).unwrap();
    for base in [
        XmtConfig::xmt_4k(),
        XmtConfig::xmt_64k(),
        XmtConfig::xmt_128k_x4(),
    ] {
        for clusters in [2usize, 8] {
            let cfg = base.scaled_to(clusters);
            let mach = run_on_machine(&plan, &cfg, &x).unwrap();
            for (i, (a, b)) in interp.output.iter().zip(&mach.output).enumerate() {
                assert_eq!(
                    a.re.to_bits(),
                    b.re.to_bits(),
                    "{} @{clusters}: re mismatch at {i}",
                    base.name
                );
                assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
        }
    }
}

#[test]
fn machine_3d_with_rotation_matches_host() {
    let shape = (8usize, 16usize, 8usize);
    let plan = XmtFftPlan::new_3d(shape, 2);
    let x = sample32(shape.0 * shape.1 * shape.2, 17);
    let cfg = XmtConfig::xmt_8k().scaled_to(4);
    let got = run_on_machine(&plan, &cfg, &x).unwrap();
    let want = host_reference(&plan, &x);
    let e = rel_error(&want, &got.output);
    assert!(e < 1e-3, "err {e}");
    // Every stage produced a spawn record with the planned thread count.
    assert_eq!(got.report.spawns.len(), plan.num_stages());
    for (meta, s) in plan.stages.iter().zip(&got.report.spawns) {
        assert_eq!(s.threads, meta.kernel.threads() as u64);
    }
}

#[test]
fn rotation_stage_has_lower_flops_than_twiddled_stage() {
    // The rotation (last) stage multiplies no twiddles: fewer FLOPs per
    // element than the twiddled stages — the intensity gap of Fig. 3.
    let plan = XmtFftPlan::new_2d(16, 64, 2);
    let x = sample32(16 * 64, 23);
    let cfg = XmtConfig::xmt_4k().scaled_to(4);
    let run = run_on_machine(&plan, &cfg, &x).unwrap();
    let first = &run.report.spawns[0]; // twiddled
    let meta_last = plan.stages.iter().position(|m| m.is_rotation).unwrap();
    let rot = &run.report.spawns[meta_last];
    assert!(
        rot.flops < first.flops,
        "rotation {} vs twiddled {}",
        rot.flops,
        first.flops
    );
}

#[test]
fn engines_agree_bitwise_on_spawn_heavy_programs() {
    // The fast-forwarding and two-phase threaded engines must be
    // indistinguishable from per-cycle reference stepping: identical
    // statistics, per-spawn records, memory image and global registers
    // on every golden program, for any worker count.
    use xmt_fft::golden;
    use xmt_sim::Engine;
    let engines = [
        Engine::Reference,
        Engine::FastForward,
        Engine::Threaded { threads: 1 },
        Engine::Threaded { threads: 3 },
        Engine::Threaded { threads: 0 }, // auto worker count
    ];
    for case in golden::cases() {
        let mut runs = Vec::new();
        for engine in engines {
            let mut m = case.machine();
            m.engine = engine;
            let summary = m.run().unwrap();
            let mem: Vec<u32> = m.read_f32s(0, 256).iter().map(|v| v.to_bits()).collect();
            runs.push((engine, summary, mem, m.gregs_snapshot()));
        }
        let (_, ref_summary, ref_mem, ref_gregs) = &runs[0];
        for (engine, summary, mem, gregs) in &runs[1..] {
            assert_eq!(
                summary.stats, ref_summary.stats,
                "{}: stats diverge under {engine:?}",
                case.name
            );
            assert_eq!(
                summary.spawns, ref_summary.spawns,
                "{}: spawn log diverges under {engine:?}",
                case.name
            );
            assert_eq!(
                mem, ref_mem,
                "{}: memory diverges under {engine:?}",
                case.name
            );
            assert_eq!(
                gregs, ref_gregs,
                "{}: gregs diverge under {engine:?}",
                case.name
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_inputs_random_shapes_interp(
        seed in 0u64..1000,
        logn in 3u32..9,
        copies_log in 0u32..4,
    ) {
        let n = 1usize << logn;
        let plan = XmtFftPlan::new_1d(n, 1 << copies_log);
        let x = sample32(n, seed);
        let got = run_on_interp(&plan, &x).unwrap();
        let want = host_reference(&plan, &x);
        prop_assert!(rel_error(&want, &got.output) < 1e-3);
    }

    #[test]
    fn random_2d_on_machine(seed in 0u64..100, logr in 3u32..6, logc in 3u32..6) {
        let (r, c) = (1usize << logr, 1usize << logc);
        let plan = XmtFftPlan::new_2d(r, c, 2);
        let x = sample32(r * c, seed);
        let cfg = XmtConfig::xmt_4k().scaled_to(2);
        let got = run_on_machine(&plan, &cfg, &x).unwrap();
        let want = host_reference(&plan, &x);
        prop_assert!(rel_error(&want, &got.output) < 1e-3);
    }
}
