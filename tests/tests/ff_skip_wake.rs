//! Regression test: a TCU whose `busy_until` equals the first cycle of
//! a fast-forward skip window must keep accruing scoreboard stalls
//! after the jump.
//!
//! The fast-forward engine's quiet-cycle skip jumps the clock without
//! stepping clusters, so the per-cycle wheel wakes that clear expired
//! `busy` bits from the cluster masks do not run. Before
//! `ClusterMasks::wake_through`, a TCU with `busy_until == next` (legal
//! at a skip boundary: the scan treats it as ready, so `min_busy` does
//! not cap the horizon) kept a stale busy bit and became invisible to
//! the mask-driven issue loops until its wheel slot happened to come
//! around again — silently dropping its scoreboard-stall accrual while
//! every other statistic stayed identical.
//!
//! The program below (found by the `engine_agreement` property test and
//! frozen here) arranges exactly that: per-thread FPU and MDU latency
//! issues interleave with a load feeding a write-after-write block, so
//! several threads' latencies expire precisely on skip-window
//! boundaries. The buggy engine under-counted `stall_scoreboard` by 30
//! with all other fields bit-identical.

use xmt_isa::reg::{fr, ir};
use xmt_isa::{AluOp, FpuOp, Instr, MduOp, Program, ProgramBuilder};
use xmt_sim::{Engine, MachineBuilder, XmtConfig};

fn program() -> Program {
    let mut b = ProgramBuilder::new();
    let par = b.label();
    let after = b.label();
    b.li(ir(20), 64);
    b.push(Instr::Alu {
        op: AluOp::Sll,
        rd: ir(1),
        rs1: ir(3),
        rs2: ir(9),
    });
    b.push(Instr::Alu {
        op: AluOp::Sll,
        rd: ir(10),
        rs1: ir(2),
        rs2: ir(3),
    });
    b.push(Instr::Fpu {
        op: FpuOp::Add,
        fd: fr(2),
        fs1: fr(2),
        fs2: fr(8),
    });
    b.lw(ir(13), ir(0), 58);
    b.push(Instr::Fpu {
        op: FpuOp::Sub,
        fd: fr(9),
        fs1: fr(11),
        fs2: fr(9),
    });
    b.lw(ir(1), ir(0), 13);
    b.push(Instr::Alu {
        op: AluOp::Add,
        rd: ir(8),
        rs1: ir(12),
        rs2: ir(12),
    });
    b.push(Instr::Alu {
        op: AluOp::Sub,
        rd: ir(6),
        rs1: ir(11),
        rs2: ir(10),
    });
    b.li(ir(22), 12);
    b.spawn(ir(22), par);
    b.jump(after);
    b.bind(par);
    b.tid(ir(19));
    b.slli(ir(20), ir(19), 3);
    b.addi(ir(20), ir(20), 128);
    b.push(Instr::Fpu {
        op: FpuOp::Mul,
        fd: fr(8),
        fs1: fr(4),
        fs2: fr(7),
    });
    b.lw(ir(8), ir(0), 39);
    b.push(Instr::Mdu {
        op: MduOp::Divu,
        rd: ir(13),
        rs1: ir(4),
        rs2: ir(13),
    });
    // WAW on the in-flight load: scoreboard-blocked until the reply.
    b.li(ir(8), 3879331511);
    b.join();
    b.bind(after);
    b.li(ir(20), 64);
    b.halt();
    b.build().unwrap()
}

#[test]
fn skip_boundary_wake_preserves_scoreboard_stalls() {
    let prog = program();
    let mem_words = 128 + 24 * 8 + 16;
    let ro: Vec<u32> = (0..64u64)
        .map(|i| {
            let mut z = 3709237838518513374u64
                .wrapping_add(i)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z ^= z >> 31;
            z as u32
        })
        .collect();
    let cfg = XmtConfig::xmt_4k().scaled_to(4);
    let run = |engine: Engine| {
        let mut m = MachineBuilder::new(&cfg, prog.clone())
            .mem_words(mem_words)
            .engine(engine)
            .write_u32s(0, &ro)
            .build();
        m.run().expect("must complete")
    };
    let s_ref = run(Engine::Reference);
    let s_ff = run(Engine::FastForward);
    assert_eq!(s_ref.stats, s_ff.stats, "fast-forward stats diverge");
    assert_eq!(s_ref.spawns, s_ff.spawns, "fast-forward spawn log diverges");
}
