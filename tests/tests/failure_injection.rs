//! Failure injection: starve each resource of the simulated machine in
//! turn — one DRAM channel for everything, a single tiny cache, minimal
//! interconnect, one cluster — and check that *functional* results are
//! bit-identical to the untimed interpreter while timing degrades in
//! the expected direction. Timing models must never change semantics.

use parafft::Complex32;
use xmt_fft::plan::XmtFftPlan;
use xmt_fft::run::{host_reference, rel_error, run_on_machine};
use xmt_integration::sample32;
use xmt_mem::{CacheConfig, DramConfig};
use xmt_sim::XmtConfig;

/// A deliberately starved machine: 2 clusters, minimal cache, one slow
/// DRAM channel shared by every module.
fn starved() -> XmtConfig {
    let mut cfg = XmtConfig::xmt_4k().scaled_to(2);
    cfg.cache = CacheConfig {
        lines: 32,
        ways: 2,
        line_words: 8,
        hit_latency: 2,
    };
    cfg.mm_per_dram_ctrl = cfg.memory_modules;
    cfg.dram = DramConfig {
        bytes_per_cycle: 2.0,
        access_latency: 150,
        line_bytes: 32,
    };
    cfg
}

#[test]
fn fft_correct_under_memory_starvation() {
    let n = 256usize;
    let plan = XmtFftPlan::new_1d(n, 2);
    let x: Vec<Complex32> = sample32(n, 42);
    let healthy = run_on_machine(&plan, &XmtConfig::xmt_4k().scaled_to(2), &x).unwrap();
    let starvedr = run_on_machine(&plan, &starved(), &x).unwrap();

    // Bit-identical numerics regardless of the memory system.
    for (a, b) in healthy.output.iter().zip(&starvedr.output) {
        assert_eq!(a.re.to_bits(), b.re.to_bits());
        assert_eq!(a.im.to_bits(), b.im.to_bits());
    }
    assert!(rel_error(&host_reference(&plan, &x), &starvedr.output) < 1e-3);

    // And measurably slower: capacity misses + one slow channel.
    assert!(
        starvedr.report.stats.cycles as f64 > 1.3 * healthy.report.stats.cycles as f64,
        "starved {} vs healthy {}",
        starvedr.report.stats.cycles,
        healthy.report.stats.cycles
    );
    // The tiny cache forces real DRAM traffic.
    let starved_dram: u64 = starvedr.report.spawns.iter().map(|s| s.dram_bytes).sum();
    let healthy_dram: u64 = healthy.report.spawns.iter().map(|s| s.dram_bytes).sum();
    assert!(starved_dram > healthy_dram);
}

#[test]
fn single_cluster_machine_still_correct() {
    let cfg = XmtConfig::xmt_4k().scaled_to(1);
    let plan = XmtFftPlan::new_2d(16, 16, 1);
    let x = sample32(256, 7);
    let run = run_on_machine(&plan, &cfg, &x).unwrap();
    assert!(rel_error(&host_reference(&plan, &x), &run.output) < 1e-3);
    // All 32 TCUs of the single cluster were exercised by >32 threads.
    assert_eq!(run.report.stats.threads, plan.total_threads());
}

#[test]
fn dram_latency_spike_only_slows() {
    let n = 512usize;
    let plan = XmtFftPlan::new_1d(n, 2);
    let x = sample32(n, 3);
    let mut slow = XmtConfig::xmt_4k().scaled_to(4);
    slow.dram = DramConfig {
        access_latency: 1000,
        ..slow.dram
    };
    // Make data not fit in cache so latency actually matters.
    slow.cache = CacheConfig {
        lines: 16,
        ways: 2,
        line_words: 8,
        hit_latency: 2,
    };
    let mut fast = XmtConfig::xmt_4k().scaled_to(4);
    fast.cache = slow.cache;
    let r_slow = run_on_machine(&plan, &slow, &x).unwrap();
    let r_fast = run_on_machine(&plan, &fast, &x).unwrap();
    for (a, b) in r_slow.output.iter().zip(&r_fast.output) {
        assert_eq!(a.re.to_bits(), b.re.to_bits());
    }
    assert!(r_slow.report.stats.cycles > r_fast.report.stats.cycles);
}

#[test]
fn deep_blocking_network_only_slows() {
    // Maximum butterfly depth on a scaled hybrid vs pure MoT: same
    // results, more cycles per delivered word under contention.
    let n = 1024usize;
    let plan = XmtFftPlan::new_1d(n, 4);
    let x = sample32(n, 11);
    let moty = XmtConfig::xmt_8k().scaled_to(8); // pure MoT
    let hybrid = XmtConfig::xmt_128k_x4().scaled_to(8); // blocking levels
    assert!(hybrid.butterfly_levels > 0);
    let a = run_on_machine(&plan, &moty, &x).unwrap();
    let b = run_on_machine(&plan, &hybrid, &x).unwrap();
    for (p, q) in a.output.iter().zip(&b.output) {
        assert_eq!(p.re.to_bits(), q.re.to_bits());
        assert_eq!(p.im.to_bits(), q.im.to_bits());
    }
}

#[test]
fn zero_thread_spawn_is_a_clean_noop() {
    use xmt_isa::reg::ir;
    let mut b = xmt_isa::ProgramBuilder::new();
    let par = b.label();
    let after = b.label();
    b.li(ir(1), 0);
    b.spawn(ir(1), par);
    b.jump(after);
    b.bind(par);
    b.tid(ir(2));
    b.sw(ir(2), ir(2), 0);
    b.join();
    b.bind(after);
    b.li(ir(3), 1).sw(ir(3), ir(0), 8);
    b.halt();
    let prog = b.build().unwrap();
    let mut m = xmt_sim::MachineBuilder::new(&XmtConfig::xmt_4k().scaled_to(2), prog)
        .mem_words(16)
        .build();
    let s = m.run().unwrap();
    assert_eq!(s.stats.threads, 0);
    assert_eq!(m.mem[8], 1, "serial code after the empty spawn still runs");
    assert_eq!(m.mem[0], 0, "no thread ran");
}
