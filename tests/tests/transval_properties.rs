//! Translation-validation properties: soundness on the generator's
//! whole program space, and completeness under single-field mutation.
//!
//! The first half says the validator never cries wolf — every program
//! `genprog` can emit (straight-line and branchy alike) has its
//! canonical lowering proven equivalent. The second half says it never
//! sleeps — flip *any single field* of *any one* lowered [`MicroOp`]
//! and validation must fail with a counterexample anchored at exactly
//! that uop. Together they pin the validator as an exact decision
//! procedure over the perturbation space the mutation strategy covers.

use proptest::prelude::*;
use xmt_integration::genprog::{branchy_op_strategy, build, op_strategy};
use xmt_isa::{MicroOp, StepClass, UopKind};
use xmt_sim::UNIT_LAT;
use xmt_verify::transval::{lower, validate_lowering, validate_program};

/// Deterministically perturb one field of one micro-op, returning a
/// record that differs from `u` in exactly that field. Register
/// indices move within `% 16` so the mutant stays in range for every
/// register file (16 gregs, 32 iregs/fregs): the validator must reject
/// it as *wrong*, not crash on it as *malformed*.
fn mutate(u: &MicroOp, field: usize) -> MicroOp {
    let mut m = *u;
    match field {
        0 => {
            m.kind = if m.kind == UopKind::Nop {
                UopKind::Li
            } else {
                UopKind::Nop
            }
        }
        1 => m.a = (m.a + 1) % 16,
        2 => m.b = (m.b + 1) % 16,
        3 => m.c = (m.c + 1) % 16,
        4 => {
            m.cls = if m.cls == StepClass::Alu {
                StepClass::Lsu
            } else {
                StepClass::Alu
            }
        }
        5 => m.lat = m.lat.wrapping_add(1),
        6 => m.flags ^= 1, // UOP_ENDS_BLOCK
        _ => m.imm ^= 1,
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Soundness: the canonical lowering of every generated program
    /// validates, and the stats cover every pc.
    #[test]
    fn canonical_lowerings_always_validate(
        serial in proptest::collection::vec(op_strategy(), 0..10),
        par_ops in proptest::collection::vec(op_strategy(), 0..12),
        epilogue in proptest::collection::vec(op_strategy(), 0..6),
        threads in 1u8..24,
    ) {
        let prog = build(&serial, &par_ops, threads, &epilogue);
        let stats = validate_program(prog.instrs(), UNIT_LAT)
            .unwrap_or_else(|e| panic!("false alarm: {e}\n{}", prog.disassemble()));
        prop_assert_eq!(stats.uops, prog.len());
        prop_assert_eq!(stats.cold_blocks, 0);
    }

    /// Soundness holds on branchy bodies too — loops and forward
    /// branches exercise the superblock seams.
    #[test]
    fn branchy_lowerings_always_validate(
        serial in proptest::collection::vec(branchy_op_strategy(), 0..8),
        par_ops in proptest::collection::vec(branchy_op_strategy(), 0..10),
        threads in 1u8..24,
    ) {
        let prog = build(&serial, &par_ops, threads, &[]);
        let stats = validate_program(prog.instrs(), UNIT_LAT)
            .unwrap_or_else(|e| panic!("false alarm: {e}\n{}", prog.disassemble()));
        prop_assert_eq!(stats.uops, prog.len());
    }

    /// Completeness: flipping one random field of one random lowered
    /// micro-op is always rejected, and the counterexample names that
    /// exact uop.
    #[test]
    fn any_single_field_mutation_is_rejected_at_that_uop(
        serial in proptest::collection::vec(op_strategy(), 0..8),
        par_ops in proptest::collection::vec(branchy_op_strategy(), 0..10),
        threads in 1u8..24,
        which in 0usize..1 << 16,
        field in 0usize..8,
    ) {
        let prog = build(&serial, &par_ops, threads, &[]);
        let (map, mut uops) = lower(prog.instrs(), UNIT_LAT);
        let pc = which % uops.len();
        let mutant = mutate(&uops[pc], field);
        prop_assert_ne!(mutant, uops[pc]);
        uops[pc] = mutant;
        match validate_lowering(prog.instrs(), &map, &uops, UNIT_LAT) {
            Ok(_) => prop_assert!(
                false,
                "mutation of field {} at pc {} survived validation\n{}",
                field, pc, prog.disassemble()
            ),
            Err(e) => prop_assert_eq!(
                e.pc, pc,
                "counterexample anchored at pc {} instead of the mutated pc {}: {}",
                e.pc, pc, e
            ),
        }
    }
}
