//! Property-based tests of the host FFT library's mathematical
//! invariants: inversion, Parseval, linearity, shift theorem, and
//! cross-algorithm agreement (Stockham ≡ DIT ≡ DIF ≡ recursive ≡
//! Bluestein ≡ naive DFT).

use parafft::dft::{dft, idft_normalized, max_error};
use parafft::{fft, ifft, Complex64, Fft, FftDirection, Normalization, TwiddleTable};
use proptest::prelude::*;
use xmt_integration::sample64;

fn arb_complex() -> impl Strategy<Value = Complex64> {
    (-100.0f64..100.0, -100.0f64..100.0).prop_map(|(re, im)| Complex64::new(re, im))
}

fn arb_signal(max_log2: u32) -> impl Strategy<Value = Vec<Complex64>> {
    (1..=max_log2).prop_flat_map(move |k| proptest::collection::vec(arb_complex(), 1 << k as usize))
}

/// Arbitrary (possibly non-power-of-two) length signal, 1..=96.
fn arb_signal_any_len() -> impl Strategy<Value = Vec<Complex64>> {
    (1usize..=96).prop_flat_map(|n| proptest::collection::vec(arb_complex(), n))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fft_ifft_is_identity(x in arb_signal(10)) {
        let mut v = x.clone();
        fft(&mut v);
        ifft(&mut v);
        prop_assert!(max_error(&x, &v) < 1e-7 * x.len() as f64);
    }

    #[test]
    fn fft_ifft_identity_any_length(x in arb_signal_any_len()) {
        let mut v = x.clone();
        fft(&mut v);
        ifft(&mut v);
        prop_assert!(max_error(&x, &v) < 1e-6 * x.len() as f64);
    }

    #[test]
    fn parseval_energy_conserved(x in arb_signal(9)) {
        let n = x.len();
        let mut v = x.clone();
        fft(&mut v);
        let e_time: f64 = x.iter().map(|c| c.norm_sqr()).sum();
        let e_freq: f64 = v.iter().map(|c| c.norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!((e_time - e_freq).abs() <= 1e-8 * e_time.max(1.0));
    }

    #[test]
    fn fft_is_linear(x in arb_signal(7), alpha in -10.0f64..10.0) {
        let n = x.len();
        let y = sample64(n, 7);
        let combo: Vec<Complex64> =
            x.iter().zip(&y).map(|(a, b)| a.scale(alpha) + *b).collect();
        let mut f_combo = combo;
        fft(&mut f_combo);
        let mut fx = x.clone();
        fft(&mut fx);
        let mut fy = y;
        fft(&mut fy);
        let want: Vec<Complex64> =
            fx.iter().zip(&fy).map(|(a, b)| a.scale(alpha) + *b).collect();
        prop_assert!(max_error(&f_combo, &want) < 1e-6 * n as f64);
    }

    #[test]
    fn matches_naive_dft(x in arb_signal(7)) {
        let mut got = x.clone();
        fft(&mut got);
        let want = dft(&x, FftDirection::Forward);
        prop_assert!(max_error(&got, &want) < 1e-7 * x.len() as f64);
    }

    #[test]
    fn bluestein_matches_naive(x in arb_signal_any_len()) {
        let mut got = x.clone();
        Fft::new(x.len(), FftDirection::Forward).process(&mut got);
        let want = dft(&x, FftDirection::Forward);
        prop_assert!(max_error(&got, &want) < 1e-6 * x.len() as f64);
    }

    #[test]
    fn all_power_of_two_drivers_agree(x in arb_signal(9)) {
        let n = x.len();
        let twf = TwiddleTable::new(n, FftDirection::Forward);
        let mut stockham = x.clone();
        Fft::new(n, FftDirection::Forward).process(&mut stockham);
        let mut dit = x.clone();
        parafft::radix2::fft_dit2(&mut dit, FftDirection::Forward, &twf);
        let mut dif = x.clone();
        parafft::radix2::fft_dif2(&mut dif, FftDirection::Forward, &twf);
        let mut rec = vec![Complex64::zero(); n];
        parafft::recursive::fft_recursive(&x, &mut rec, FftDirection::Forward, &twf);
        prop_assert!(max_error(&stockham, &dit) < 1e-7 * n as f64);
        prop_assert!(max_error(&stockham, &dif) < 1e-7 * n as f64);
        prop_assert!(max_error(&stockham, &rec) < 1e-7 * n as f64);
    }

    #[test]
    fn naive_roundtrip(x in arb_signal(6)) {
        let back = idft_normalized(&dft(&x, FftDirection::Forward));
        prop_assert!(max_error(&x, &back) < 1e-8 * x.len() as f64);
    }

    #[test]
    fn unitary_norm_is_isometry(x in arb_signal(8)) {
        let n = x.len();
        let mut v = x.clone();
        Fft::with_normalization(n, FftDirection::Forward, Normalization::Unitary)
            .process(&mut v);
        let a: f64 = x.iter().map(|c| c.norm_sqr()).sum();
        let b: f64 = v.iter().map(|c| c.norm_sqr()).sum();
        prop_assert!((a - b).abs() <= 1e-8 * a.max(1.0));
    }

    #[test]
    fn circular_shift_multiplies_phase(shift in 1usize..16, k in 0usize..16) {
        // FFT(x shifted by s)[k] = FFT(x)[k] · ω^{-ks}… for forward
        // convention: X'[j] = X[j]·e^{-i2πjs/N}.
        let n = 64;
        let x = sample64(n, 3);
        let shifted: Vec<Complex64> = (0..n).map(|i| x[(i + n - shift) % n]).collect();
        let mut fx = x.clone();
        fft(&mut fx);
        let mut fs = shifted;
        fft(&mut fs);
        let w = Complex64::cis(-std::f64::consts::TAU * (k * shift) as f64 / n as f64);
        prop_assert!(fs[k].dist(fx[k] * w) < 1e-7);
    }
}

#[test]
fn impulse_response_is_flat_spectrum() {
    let n = 256;
    let mut x = vec![Complex64::zero(); n];
    x[0] = Complex64::one();
    fft(&mut x);
    for v in &x {
        assert!(v.dist(Complex64::one()) < 1e-10);
    }
}

#[test]
fn real_even_signal_has_real_spectrum() {
    let n = 128;
    // x[i] = x[n-i] (even), real -> spectrum is real.
    let x: Vec<Complex64> = (0..n)
        .map(|i| {
            let d = i.min(n - i) as f64;
            Complex64::new((-d * d / 100.0).exp(), 0.0)
        })
        .collect();
    let mut f = x;
    fft(&mut f);
    for v in &f {
        assert!(
            v.im.abs() < 1e-9,
            "even real signal must have real spectrum"
        );
    }
}
