//! Golden cycle-count regression tests.
//!
//! The constants below were captured from the simulator *before* the
//! fast-forward / parallel-stepping engine rework (see
//! `crates/bench/src/bin/golden_capture.rs` to regenerate). Every
//! engine must reproduce them bit-for-bit: the optimized engines are
//! only allowed to change how fast wall-clock time passes, never a
//! single simulated statistic.

use xmt_fft::golden::{cases, spawn_digest};

/// Frozen pre-refactor statistics for one golden case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Golden {
    cycles: u64,
    instructions: u64,
    flops: u64,
    mem_reads: u64,
    mem_writes: u64,
    threads: u64,
    spawns: u64,
    stall_scoreboard: u64,
    stall_fpu: u64,
    stall_mdu: u64,
    stall_lsu: u64,
    spawn_digest: u64,
}

/// Captured 2026-08-06 from the pre-refactor one-cycle-at-a-time
/// simulator (seed commit lineage), via `golden_capture`.
const GOLDEN: &[(&str, Golden)] = &[
    (
        "fft_radix8_n512",
        Golden {
            cycles: 10512,
            instructions: 32903,
            flops: 16896,
            mem_reads: 4864,
            mem_writes: 3072,
            threads: 192,
            spawns: 3,
            stall_scoreboard: 25710,
            stall_fpu: 403012,
            stall_mdu: 0,
            stall_lsu: 125609,
            spawn_digest: 0xbbf7096bac06b31b,
        },
    ),
    (
        "spawn_storm",
        Golden {
            cycles: 408,
            instructions: 1807,
            flops: 0,
            mem_reads: 200,
            mem_writes: 400,
            threads: 400,
            spawns: 2,
            stall_scoreboard: 2963,
            stall_fpu: 0,
            stall_mdu: 0,
            stall_lsu: 6388,
            spawn_digest: 0xfc8bbdaaf9bafc41,
        },
    ),
    (
        "ps_tickets",
        Golden {
            cycles: 135,
            instructions: 484,
            flops: 0,
            mem_reads: 0,
            mem_writes: 96,
            threads: 96,
            spawns: 1,
            stall_scoreboard: 0,
            stall_fpu: 0,
            stall_mdu: 0,
            stall_lsu: 1488,
            spawn_digest: 0x52b6c192e189101e,
        },
    ),
    (
        "fpu_chain",
        Golden {
            cycles: 1691,
            instructions: 6660,
            flops: 6144,
            mem_reads: 128,
            mem_writes: 128,
            threads: 128,
            spawns: 1,
            stall_scoreboard: 11616,
            stall_fpu: 160654,
            stall_mdu: 0,
            stall_lsu: 1984,
            spawn_digest: 0x1d9ad2d065b7c4aa,
        },
    ),
    (
        "mem_chase",
        Golden {
            cycles: 4691,
            instructions: 72,
            flops: 0,
            mem_reads: 64,
            mem_writes: 1,
            threads: 1,
            spawns: 1,
            stall_scoreboard: 4608,
            stall_fpu: 0,
            stall_mdu: 0,
            stall_lsu: 0,
            spawn_digest: 0x6acae01d62c8fbd8,
        },
    ),
];

fn check_all(engine: xmt_sim::Engine) {
    for case in cases() {
        let want = GOLDEN
            .iter()
            .find(|(n, _)| *n == case.name)
            .unwrap_or_else(|| panic!("no golden entry for case {}", case.name))
            .1;
        let mut m = case.machine();
        m.engine = engine;
        let s = m.run().expect("golden case must complete");
        let got = Golden {
            cycles: s.stats.cycles,
            instructions: s.stats.instructions,
            flops: s.stats.flops,
            mem_reads: s.stats.mem_reads,
            mem_writes: s.stats.mem_writes,
            threads: s.stats.threads,
            spawns: s.stats.spawns,
            stall_scoreboard: s.stats.stall_scoreboard,
            stall_fpu: s.stats.stall_fpu,
            stall_mdu: s.stats.stall_mdu,
            stall_lsu: s.stats.stall_lsu,
            spawn_digest: spawn_digest(&s),
        };
        assert_eq!(
            got, want,
            "case {} diverged from pre-refactor golden stats under {:?}",
            case.name, engine
        );
        assert_eq!(
            s.spawns.len() as u64,
            s.stats.spawns,
            "case {}: one SpawnStats record per spawn",
            case.name
        );
    }
}

#[test]
fn reference_engine_matches_pre_refactor_golden() {
    check_all(xmt_sim::Engine::Reference);
}

#[test]
fn fast_forward_engine_matches_pre_refactor_golden() {
    check_all(xmt_sim::Engine::FastForward);
}

#[test]
fn threaded_engine_matches_pre_refactor_golden() {
    check_all(xmt_sim::Engine::Threaded { threads: 0 });
}
