//! No-false-positives property tests for `xmt-verify`.
//!
//! The `genprog` generator emits programs that are race-free and
//! structurally sound **by construction** (private-slot stores,
//! read-only shared loads, well-formed spawn/join skeleton). The
//! verifier must therefore never report a structure or race error on
//! them — across thousands of shapes, not just the hand-picked unit
//! cases. Raw generated bodies *do* legitimately read registers
//! nothing wrote (random operands), so the def-before-use property
//! uses the `init_regs` variant that writes every generator-visible
//! register at each region entry, after which the whole report must be
//! clean.

use proptest::prelude::*;
use xmt_integration::genprog::{build, build_with_init, op_strategy};
use xmt_verify::{verify, Kind};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Structure and race passes report nothing on race-free-by-
    /// construction programs, even when registers are uninitialized.
    #[test]
    fn generated_programs_have_no_structure_or_race_findings(
        serial in proptest::collection::vec(op_strategy(), 0..10),
        par_ops in proptest::collection::vec(op_strategy(), 0..12),
        epilogue in proptest::collection::vec(op_strategy(), 0..6),
        threads in 1u8..24,
    ) {
        let prog = build(&serial, &par_ops, threads, &epilogue);
        let report = verify(&prog);
        for d in report.errors() {
            prop_assert_eq!(
                d.kind,
                Kind::UninitRead,
                "false positive on a generated program: {}\n{}",
                d,
                prog.disassemble()
            );
        }
    }

    /// With every generator-visible register initialized at each region
    /// entry, the full report (def-use included) is clean.
    #[test]
    fn initialized_generated_programs_verify_fully_clean(
        serial in proptest::collection::vec(op_strategy(), 0..10),
        par_ops in proptest::collection::vec(op_strategy(), 0..12),
        epilogue in proptest::collection::vec(op_strategy(), 0..6),
        threads in 1u8..24,
    ) {
        let prog = build_with_init(&serial, &par_ops, threads, &epilogue, true);
        let report = verify(&prog);
        prop_assert!(
            report.is_clean(),
            "false positive on an initialized generated program:\n{}\n{}",
            report,
            prog.disassemble()
        );
    }
}
