//! The paper's ease-of-programming claim, demonstrated end to end
//! (Section IV-B: the tuned FFT "required only a modest effort beyond
//! that required for a serial implementation"): a complete radix-2
//! decimation-in-frequency Stockham FFT written in ~40 lines of XMTC,
//! compiled with the miniature XMTC compiler, executed on the XMT
//! engines, and validated against the host FFT library.
//!
//! Layout (word addresses): A = 0, B = 2n, twiddle table (re,im pairs,
//! ω_n^{-k}) at 4n. Globals: g0 = n, g1 = n/2, g2 = s (stride),
//! g3 = A base, g4 = B base, g5 = twiddle base, g6 = n−1.

use parafft::{Complex32, FftDirection, TwiddleTable};
use xmt_isa::Interp;
use xmt_sim::{MachineBuilder, XmtConfig};

use xmtc::samples::FFT_RADIX2 as FFT_XMTC;

fn setup(n: usize) -> (xmt_isa::Program, Vec<f32>, Vec<Complex32>) {
    let prog = xmtc::compile(FFT_XMTC).expect("XMTC FFT compiles");
    let input: Vec<Complex32> = (0..n)
        .map(|i| Complex32::new((i as f32 * 0.23).sin(), (i as f32 * 0.71).cos() * 0.5))
        .collect();
    let tw = TwiddleTable::<f32>::new(n, FftDirection::Forward);
    let mut tw_flat = Vec::with_capacity(2 * n);
    for k in 0..n {
        let w = tw.get(k);
        tw_flat.push(w.re);
        tw_flat.push(w.im);
    }
    (prog, tw_flat, input)
}

fn set_globals(gregs: &mut [u32], n: usize) {
    gregs[0] = n as u32;
    gregs[1] = (n / 2) as u32;
    gregs[3] = 0; // A
    gregs[4] = (2 * n) as u32; // B
    gregs[5] = (4 * n) as u32; // twiddles
    gregs[6] = (n - 1) as u32;
}

fn check(output: &[Complex32], input: &[Complex32]) {
    let mut want = input.to_vec();
    parafft::Fft::<f32>::new(input.len(), FftDirection::Forward).process(&mut want);
    let rms = (want.iter().map(|c| c.norm_sqr() as f64).sum::<f64>() / want.len() as f64).sqrt();
    for (k, (g, w)) in output.iter().zip(&want).enumerate() {
        let err = (*g - *w).abs() as f64 / rms;
        assert!(err < 1e-4, "bin {k}: {g:?} vs {w:?}");
    }
}

#[test]
fn xmtc_fft_matches_host_library_on_interpreter() {
    for n in [8usize, 64, 256, 1024] {
        let (prog, tw_flat, input) = setup(n);
        let mut m = Interp::new(4 * n + 2 * n + 16);
        set_globals(&mut m.gregs, n);
        let flat: Vec<f32> = input.iter().flat_map(|c| [c.re, c.im]).collect();
        m.write_f32s(0, &flat);
        m.write_f32s(4 * n, &tw_flat);
        m.run(&prog).unwrap();
        let base = m.gregs[7] as usize;
        let out: Vec<Complex32> = m
            .read_f32s(base, 2 * n)
            .chunks(2)
            .map(|p| Complex32::new(p[0], p[1]))
            .collect();
        check(&out, &input);
    }
}

#[test]
fn xmtc_fft_runs_on_the_cycle_simulator() {
    let n = 256usize;
    let (prog, tw_flat, input) = setup(n);
    let cfg = XmtConfig::xmt_4k().scaled_to(4);
    let m = MachineBuilder::new(&cfg, prog)
        .mem_words(4 * n + 2 * n + 16)
        .build();
    {
        let g = m.gregs_snapshot();
        let _ = g; // globals are set through serial code normally; the
                   // test uses the direct API below.
    }
    // The Machine has no public greg setter; drive the same values via
    // a prologue program instead: simplest is memory-mapped setup, so
    // here we reuse the interpreter-validated program but set globals
    // through a tiny XMTC prologue.
    let prologue = format!(
        "g0 = {n}; g1 = {h}; g3 = 0; g4 = {b}; g5 = {t}; g6 = {m};",
        h = n / 2,
        b = 2 * n,
        t = 4 * n,
        m = n - 1
    );
    let full_src = format!("{prologue}\n{FFT_XMTC}");
    let prog = xmtc::compile(&full_src).unwrap();
    let flat: Vec<f32> = input.iter().flat_map(|c| [c.re, c.im]).collect();
    let mut m = MachineBuilder::new(&cfg, prog)
        .mem_words(4 * n + 2 * n + 16)
        .write_f32s(0, &flat)
        .write_f32s(4 * n, &tw_flat)
        .build();
    let summary = m.run().unwrap();
    let base = m.gregs_snapshot()[7] as usize;
    let out: Vec<Complex32> = m
        .read_f32s(base, 2 * n)
        .chunks(2)
        .map(|p| Complex32::new(p[0], p[1]))
        .collect();
    check(&out, &input);
    // log2(256) = 8 stages, each one spawn of n/2 threads.
    assert_eq!(summary.spawns.len(), 8);
    assert!(summary.spawns.iter().all(|s| s.threads == (n / 2) as u64));
}
