//! Resilience properties of the deterministic fault-injection layer:
//! seeded soft faults replay bit-identically across all three advance
//! engines on randomly generated programs, SECDED ECC and bounded NoC
//! retry hide every injected soft fault from the FFT's numerics,
//! degraded topologies (dead clusters / dead DRAM channels) stay
//! bit-correct at reduced throughput, and a checkpointed run resumed
//! from its serialized image finishes with exactly the statistics,
//! spawn log and memory of an uninterrupted run.

use proptest::prelude::*;
use xmt_fft::golden;
use xmt_fft::plan::XmtFftPlan;
use xmt_fft::run::{host_reference, plan_builder, read_result, rel_error};
use xmt_integration::genprog::{build, op_strategy};
use xmt_integration::sample32;
use xmt_isa::Program;
use xmt_sim::{
    Checkpoint, Engine, FaultPlan, MachineBuilder, RunReport, RunStatus, TranslationTier, XmtConfig,
};

/// Soft-fault plan exercised by most tests: DRAM single/double bit
/// flips plus NoC flit corruption, all recoverable.
fn soft_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .dram_flips(0.02, 0.002)
        .noc_corrupt(0.01)
}

/// Run `prog` under `engine` with `plan` applied; errors are collapsed
/// to their debug string so engine outcomes stay comparable even when
/// a run fails.
fn run_faulted(
    prog: &Program,
    cfg: &XmtConfig,
    ro: &[u32],
    mem_words: usize,
    engine: Engine,
    plan: FaultPlan,
) -> Result<(RunReport, Vec<u32>, [u32; 16]), String> {
    let mut m = MachineBuilder::new(cfg, prog.clone())
        .mem_words(mem_words)
        .engine(engine)
        .faults(plan)
        .write_u32s(0, ro)
        .build();
    let outcome = m.run();
    match outcome.error() {
        None => Ok((outcome.report, m.mem.clone(), m.gregs_snapshot())),
        Some(e) => Err(format!("{e:?}")),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// On generated programs, a fixed-seed fault plan is replayed
    /// bit-identically by every engine: same statistics, spawn log,
    /// memory image and global registers — or the same typed error.
    #[test]
    fn faulted_genprog_replays_bitwise_across_engines(
        serial in proptest::collection::vec(op_strategy(), 0..10),
        par_ops in proptest::collection::vec(op_strategy(), 0..12),
        epilogue in proptest::collection::vec(op_strategy(), 0..6),
        threads in 1u8..24,
        clusters_log in 1u32..3,
        fault_seed in any::<u64>(),
    ) {
        let prog = build(&serial, &par_ops, threads, &epilogue);
        let mem_words = 128 + 24 * 8 + 16;
        let ro: Vec<u32> = (0..64u64)
            .map(|i| {
                let mut z = fault_seed.wrapping_add(i).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                z ^= z >> 31;
                z as u32
            })
            .collect();
        let cfg = XmtConfig::xmt_4k().scaled_to(1 << clusters_log);
        let engines = [
            Engine::Reference,
            Engine::FastForward,
            Engine::Threaded { threads: 2 },
        ];
        let runs: Vec<_> = engines
            .iter()
            .map(|&e| run_faulted(&prog, &cfg, &ro, mem_words, e, soft_plan(fault_seed)))
            .collect();
        match &runs[0] {
            Ok((rep, mem, gregs)) => {
                for r in &runs[1..] {
                    let (rep2, mem2, gregs2) = r.as_ref().expect("engines disagree on outcome");
                    prop_assert_eq!(&rep.stats, &rep2.stats, "faulted stats diverge");
                    prop_assert_eq!(&rep.spawns, &rep2.spawns, "faulted spawn log diverges");
                    prop_assert_eq!(mem, mem2, "faulted memory diverges");
                    prop_assert_eq!(gregs, gregs2, "faulted gregs diverge");
                }
            }
            Err(e) => {
                for r in &runs[1..] {
                    let e2 = r.as_ref().expect_err("engines disagree on outcome");
                    prop_assert_eq!(e, e2, "faulted error diverges");
                }
            }
        }
    }
}

/// Soft faults never reach the FFT's numerics: SECDED correction and
/// bounded retry hide every injected DRAM flip and corrupted flit, so
/// the faulted transform validates against the host reference and is
/// bit-identical to the healthy run's output.
#[test]
fn soft_faulted_fft_validates_against_host() {
    let n = 512usize;
    let plan = XmtFftPlan::new_1d(n, 4);
    let x = sample32(n, 9);
    let cfg = golden::golden_config();
    let mut healthy = plan_builder(&plan, &cfg, &x).build();
    healthy.run().unwrap();
    let want = read_result(&plan, &healthy);
    for seed in [1u64, 0xDEAD, 0x0FA5_7FF7] {
        let mut m = plan_builder(&plan, &cfg, &x)
            .faults(soft_plan(seed))
            .build();
        m.run().expect(&format!("seed {seed:#x}"));
        let got = read_result(&plan, &m);
        assert!(rel_error(&host_reference(&plan, &x), &got) < 1e-3);
        for (a, b) in want.iter().zip(&got) {
            assert_eq!(a.re.to_bits(), b.re.to_bits(), "seed {seed:#x}");
            assert_eq!(a.im.to_bits(), b.im.to_bits(), "seed {seed:#x}");
        }
    }
}

/// Degraded topologies — dead clusters, a dead DRAM channel, both —
/// still compute a bit-correct transform on every engine; the builder
/// remaps threads and hashed memory around the offline components.
#[test]
fn degraded_fft_validates_on_every_engine() {
    let n = 512usize;
    let plan = XmtFftPlan::new_1d(n, 4);
    let x = sample32(n, 5);
    let cfg = XmtConfig::xmt_4k().scaled_to(16);
    assert!(cfg.dram_channels() >= 2);
    let want = host_reference(&plan, &x);
    let shapes: &[(&[usize], &[usize])] =
        &[(&[3], &[]), (&[3, 7, 11], &[]), (&[], &[1]), (&[3], &[1])];
    for &(clusters, channels) in shapes {
        let mut outs = Vec::new();
        for engine in [
            Engine::Reference,
            Engine::FastForward,
            Engine::Threaded { threads: 0 },
        ] {
            let mut m = plan_builder(&plan, &cfg, &x)
                .engine(engine)
                .degraded(clusters, channels)
                .build();
            m.run().expect(&format!("{clusters:?}/{channels:?}"));
            outs.push(read_result(&plan, &m));
        }
        assert!(
            rel_error(&want, &outs[0]) < 1e-3,
            "{clusters:?}/{channels:?}"
        );
        for o in &outs[1..] {
            for (a, b) in outs[0].iter().zip(o) {
                assert_eq!(a.re.to_bits(), b.re.to_bits());
                assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
        }
    }
}

/// Pause a golden workload, checkpoint, serialize the checkpoint to
/// bytes and back, resume in a fresh machine, and finish: the final
/// statistics, spawn digest and memory image must equal an
/// uninterrupted run's. Exercised on every golden case at its halfway
/// point, and on the FFT at several pause depths.
#[test]
fn checkpoint_restore_matches_uninterrupted_golden_runs() {
    for case in golden::cases() {
        let uninterrupted = case.run();
        let mut full = case.machine();
        full.run().unwrap();
        let mem_full = full.mem.clone();

        let mut pauses = vec![uninterrupted.stats.cycles / 2];
        if case.name == "fft_radix8_n512" {
            pauses.extend([64, 1000, 9000]);
        }
        for pause in pauses {
            let mut m = case.machine();
            let outcome = m.run_until(pause);
            let cp = match outcome.status {
                RunStatus::Completed => {
                    assert_eq!(outcome.report.stats, uninterrupted.stats, "{}", case.name);
                    continue;
                }
                RunStatus::Paused { at_cycle } => {
                    assert!(at_cycle >= pause, "{}", case.name);
                    m.checkpoint().unwrap()
                }
                RunStatus::Failed(e) => panic!("{} pause@{pause}: {e:?}", case.name),
            };
            let bytes = cp.to_bytes();
            let restored = Checkpoint::from_bytes(&bytes).unwrap();
            assert_eq!(restored.cycle(), cp.cycle());
            let mut resumed = case.builder().resume(&restored).unwrap();
            let rep = resumed
                .run()
                .expect(&format!("{} resume@{pause}", case.name));
            assert_eq!(
                rep.stats, uninterrupted.stats,
                "{} pause@{pause}",
                case.name
            );
            assert_eq!(
                golden::spawn_digest(&rep),
                golden::spawn_digest(&uninterrupted),
                "{} pause@{pause}",
                case.name
            );
            assert_eq!(resumed.mem, mem_full, "{} pause@{pause}", case.name);
        }
    }
}

/// Checkpoint/restore composes with the block-compiled tier: pausing a
/// tier-on run mid-program — after the trace cache has warmed and with
/// parallel sections still ahead — must yield the same checkpoint
/// bytes as a tier-off run paused at the same cycle (the cache is
/// derived state, never serialized), and resuming that checkpoint with
/// either tier must finish bit-identically to an uninterrupted run.
/// The resumed tier-on machine starts from a cold cache and re-lowers
/// on first entry, which is exactly the mid-trace seam being pinned.
#[test]
fn checkpoint_mid_trace_resumes_bit_identically_across_tiers() {
    let case = golden::cases()
        .into_iter()
        .find(|c| c.name == "fft_radix8_n512")
        .unwrap();
    let uninterrupted = case.run();
    let mut full = case.machine();
    full.run().unwrap();
    let mem_full = full.mem.clone();

    // Pause depths chosen to land between FFT stages: the cache is
    // warm (blocks already lowered by earlier stages) and later spawns
    // will re-enter those same traces after resume.
    for pause in [500u64, 3000, 7000] {
        let mut snaps = Vec::new();
        for tier in [TranslationTier::Block, TranslationTier::Interpreter] {
            let mut m = case.builder().tier(tier).build();
            match m.run_until(pause).status {
                RunStatus::Paused { at_cycle } => assert!(at_cycle >= pause),
                other => panic!("expected pause at {pause}, got {other:?}"),
            }
            snaps.push(m.checkpoint().unwrap().to_bytes());
        }
        assert_eq!(
            snaps[0], snaps[1],
            "checkpoint bytes differ by tier at pause {pause}"
        );

        let restored = Checkpoint::from_bytes(&snaps[0]).unwrap();
        for tier in [TranslationTier::Block, TranslationTier::Interpreter] {
            let mut resumed = case.builder().tier(tier).resume(&restored).unwrap();
            let rep = resumed.run().expect(&format!("resume@{pause}/{tier:?}"));
            assert_eq!(rep.stats, uninterrupted.stats, "pause {pause} {tier:?}");
            assert_eq!(
                golden::spawn_digest(&rep),
                golden::spawn_digest(&uninterrupted),
                "pause {pause} {tier:?}"
            );
            assert_eq!(resumed.mem, mem_full, "pause {pause} {tier:?}");
        }
    }
}

/// Checkpoint/restore composes with fault injection: a faulted run
/// paused, serialized and resumed finishes bit-identically to the same
/// faulted run left uninterrupted (the fault streams are positional,
/// so replay does not depend on host state).
#[test]
fn faulted_checkpoint_resume_is_bit_identical() {
    let case = golden::cases()
        .into_iter()
        .find(|c| c.name == "fft_radix8_n512")
        .unwrap();
    let plan = || soft_plan(0xC0FFEE);
    let mut full = case.builder().faults(plan()).build();
    let uninterrupted = full.run().unwrap();

    let mut m = case.builder().faults(plan()).build();
    let cp = match m.run_until(uninterrupted.stats.cycles / 3).status {
        RunStatus::Paused { .. } => m.checkpoint().unwrap(),
        other => panic!("expected pause, got {other:?}"),
    };
    let restored = Checkpoint::from_bytes(&cp.to_bytes()).unwrap();
    let mut resumed = case.builder().faults(plan()).resume(&restored).unwrap();
    let rep = resumed.run().unwrap();
    assert_eq!(rep.stats, uninterrupted.stats);
    assert_eq!(
        golden::spawn_digest(&rep),
        golden::spawn_digest(&uninterrupted)
    );
    assert_eq!(resumed.mem, full.mem);
}
