//! Differential testing: randomly generated programs must produce
//! bit-identical memory and global-register state on the untimed
//! interpreter and the cycle simulator, across machine configurations.
//! The generator constrains parallel stores to thread-private regions
//! so results are schedule-independent (as real XMT kernels are
//! between barriers).

use proptest::prelude::*;
use xmt_isa::reg::{fr, gr, ir};
use xmt_isa::{Interp, Program, ProgramBuilder};
use xmt_sim::{MachineBuilder, XmtConfig};

/// One generated instruction in a restricted, always-terminating form.
#[derive(Debug, Clone)]
enum GenOp {
    Li {
        rd: u8,
        imm: u32,
    },
    Alu {
        which: u8,
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    AluI {
        which: u8,
        rd: u8,
        rs1: u8,
        imm: u16,
    },
    Mdu {
        which: u8,
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Fli {
        fd: u8,
        v: i16,
    },
    Fpu {
        which: u8,
        fd: u8,
        fs1: u8,
        fs2: u8,
    },
    /// Load from the shared read-only region [0, 64).
    LoadRo {
        rd: u8,
        addr: u8,
    },
    /// Store to this context's private region (serial: [64,128);
    /// thread t: [128 + t*8, 128 + t*8 + 8)).
    StorePriv {
        rs: u8,
        slot: u8,
    },
    /// Float store to the private region.
    FStorePriv {
        fs: u8,
        slot: u8,
    },
    /// Prefix-sum on g7 (commutative: final greg value is
    /// schedule-independent; the returned ticket is stored privately).
    Ps {
        slot: u8,
    },
}

fn reg_strategy() -> impl Strategy<Value = u8> {
    1u8..16
}

fn op_strategy() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        (reg_strategy(), any::<u32>()).prop_map(|(rd, imm)| GenOp::Li { rd, imm }),
        (0u8..8, reg_strategy(), reg_strategy(), reg_strategy()).prop_map(
            |(which, rd, rs1, rs2)| GenOp::Alu {
                which,
                rd,
                rs1,
                rs2
            }
        ),
        (0u8..8, reg_strategy(), reg_strategy(), any::<u16>()).prop_map(|(which, rd, rs1, imm)| {
            GenOp::AluI {
                which,
                rd,
                rs1,
                imm,
            }
        }),
        (0u8..3, reg_strategy(), reg_strategy(), reg_strategy()).prop_map(
            |(which, rd, rs1, rs2)| GenOp::Mdu {
                which,
                rd,
                rs1,
                rs2
            }
        ),
        (reg_strategy(), any::<i16>()).prop_map(|(fd, v)| GenOp::Fli { fd, v }),
        (0u8..4, reg_strategy(), reg_strategy(), reg_strategy()).prop_map(
            |(which, fd, fs1, fs2)| GenOp::Fpu {
                which,
                fd,
                fs1,
                fs2
            }
        ),
        (reg_strategy(), 0u8..64).prop_map(|(rd, addr)| GenOp::LoadRo { rd, addr }),
        (reg_strategy(), 0u8..8).prop_map(|(rs, slot)| GenOp::StorePriv { rs, slot }),
        (reg_strategy(), 0u8..8).prop_map(|(fs, slot)| GenOp::FStorePriv { fs, slot }),
        (0u8..8).prop_map(|slot| GenOp::Ps { slot }),
    ]
}

/// Emit one generated op. In parallel context, private stores go to
/// the thread's own block derived from `tid_reg`.
fn emit(b: &mut ProgramBuilder, op: &GenOp, tid_reg: Option<xmt_isa::IReg>) {
    use xmt_isa::{AluOp, FpuOp, Instr, MduOp};
    let alu = |w: u8| {
        [
            AluOp::Add,
            AluOp::Sub,
            AluOp::And,
            AluOp::Or,
            AluOp::Xor,
            AluOp::Sll,
            AluOp::Srl,
            AluOp::Sltu,
        ][w as usize]
    };
    // r20 is reserved as the private-base pointer, r21 as scratch.
    let base = ir(20);
    match *op {
        GenOp::Li { rd, imm } => {
            b.li(ir(rd as usize), imm);
        }
        GenOp::Alu {
            which,
            rd,
            rs1,
            rs2,
        } => {
            b.push(Instr::Alu {
                op: alu(which),
                rd: ir(rd as usize),
                rs1: ir(rs1 as usize),
                rs2: ir(rs2 as usize),
            });
        }
        GenOp::AluI {
            which,
            rd,
            rs1,
            imm,
        } => {
            b.push(Instr::AluI {
                op: alu(which),
                rd: ir(rd as usize),
                rs1: ir(rs1 as usize),
                imm: imm as u32,
            });
        }
        GenOp::Mdu {
            which,
            rd,
            rs1,
            rs2,
        } => {
            let mop = [MduOp::Mul, MduOp::Divu, MduOp::Remu][which as usize];
            b.push(Instr::Mdu {
                op: mop,
                rd: ir(rd as usize),
                rs1: ir(rs1 as usize),
                rs2: ir(rs2 as usize),
            });
        }
        GenOp::Fli { fd, v } => {
            b.fli(fr(fd as usize), v as f32 * 0.125);
        }
        GenOp::Fpu {
            which,
            fd,
            fs1,
            fs2,
        } => {
            let fop = [FpuOp::Add, FpuOp::Sub, FpuOp::Mul, FpuOp::Div][which as usize];
            b.push(Instr::Fpu {
                op: fop,
                fd: fr(fd as usize),
                fs1: fr(fs1 as usize),
                fs2: fr(fs2 as usize),
            });
        }
        GenOp::LoadRo { rd, addr } => {
            b.lw(ir(rd as usize), ir(0), addr as u32);
        }
        GenOp::StorePriv { rs, slot } => {
            b.sw(ir(rs as usize), base, slot as u32);
        }
        GenOp::FStorePriv { fs, slot } => {
            b.fsw(fr(fs as usize), base, slot as u32);
        }
        GenOp::Ps { slot } => {
            b.li(ir(21), 1);
            b.ps(ir(21), ir(21), gr(7));
            b.sw(ir(21), base, slot as u32);
            let _ = tid_reg;
        }
    }
}

/// Build a complete program: serial prologue ops, a spawn of `threads`
/// running `par_ops`, serial epilogue ops.
fn build(serial: &[GenOp], par_ops: &[GenOp], threads: u8, epilogue: &[GenOp]) -> Program {
    let mut b = ProgramBuilder::new();
    let par = b.label();
    let after = b.label();
    // Serial private base: word 64.
    b.li(ir(20), 64);
    for op in serial {
        emit(&mut b, op, None);
    }
    b.li(ir(22), threads as u32);
    b.spawn(ir(22), par);
    b.jump(after);
    b.bind(par);
    // Thread-private base: 128 + tid*8.
    b.tid(ir(19));
    b.slli(ir(20), ir(19), 3);
    b.addi(ir(20), ir(20), 128);
    for op in par_ops {
        emit(&mut b, op, Some(ir(19)));
    }
    b.join();
    b.bind(after);
    b.li(ir(20), 64);
    for op in epilogue {
        emit(&mut b, op, None);
    }
    b.halt();
    b.build().unwrap()
}

/// Sorted multiset view of the PS tickets each thread stored — tickets
/// are schedule-dependent individually but form the same set.
fn canonicalize_ps_regions(mem: &mut [u32], threads: u8, ps_slots: &[u8]) {
    for &slot in ps_slots {
        let mut vals: Vec<u32> = (0..threads as usize)
            .map(|t| mem[128 + t * 8 + slot as usize])
            .collect();
        vals.sort_unstable();
        for (t, v) in vals.into_iter().enumerate() {
            mem[128 + t * 8 + slot as usize] = v;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn interpreter_and_simulator_agree(
        serial in proptest::collection::vec(op_strategy(), 0..12),
        par_ops in proptest::collection::vec(op_strategy(), 0..12),
        epilogue in proptest::collection::vec(op_strategy(), 0..8),
        threads in 1u8..24,
        clusters_log in 1u32..3,
        ro_seed in any::<u64>(),
    ) {
        // At most one PS op per parallel body: with one, each thread's
        // ticket set is a permutation of 0..threads and the per-slot
        // multiset is schedule-independent; with several, interleaving
        // legitimately changes which ticket lands in which slot.
        let mut seen_ps = false;
        let par_ops: Vec<GenOp> = par_ops
            .into_iter()
            .map(|op| {
                if matches!(op, GenOp::Ps { .. }) {
                    if seen_ps {
                        return GenOp::Li { rd: 1, imm: 0 };
                    }
                    seen_ps = true;
                }
                op
            })
            .collect();
        let prog = build(&serial, &par_ops, threads, &epilogue);
        let mem_words = 128 + 24 * 8 + 16;

        // Shared read-only region contents.
        let ro: Vec<u32> = (0..64u64)
            .map(|i| {
                let mut z = ro_seed.wrapping_add(i).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                z ^= z >> 31;
                z as u32
            })
            .collect();

        let mut interp = Interp::new(mem_words);
        interp.write_u32s(0, &ro);
        interp.run(&prog).unwrap();

        let cfg = XmtConfig::xmt_4k().scaled_to(1 << clusters_log);
        let mut mach = MachineBuilder::new(&cfg, prog)
            .mem_words(mem_words)
            .write_u32s(0, &ro)
            .build();
        mach.run().unwrap();

        // PS tickets may be assigned in different orders; compare them
        // as sets per slot, everything else bit-exactly.
        let ps_slots: Vec<u8> = par_ops
            .iter()
            .filter_map(|o| if let GenOp::Ps { slot } = o { Some(*slot) } else { None })
            .collect();
        let mut mi = interp.mem.clone();
        let mut mm = mach.mem.clone();
        canonicalize_ps_regions(&mut mi, threads, &ps_slots);
        canonicalize_ps_regions(&mut mm, threads, &ps_slots);
        prop_assert_eq!(&mi, &mm, "memory images diverge");
        prop_assert_eq!(interp.gregs, mach.gregs_snapshot(), "global registers diverge");
    }
}
