//! End-to-end contracts of the batch job server (`xmt-server`):
//!
//! - **Preemption equivalence** — a job sliced into checkpoint quanta
//!   and resumed round-robin finishes with *byte-identical* report
//!   bytes to an uninterrupted run, on every golden case.
//! - **Stream continuity** — a probed job's streamed interval rows are
//!   identical across preemption (the probe resyncs at each resume,
//!   so slicing is invisible in the stream).
//! - **Cache identity** — resubmitting a bit-identical request is
//!   served from the content-addressed cache with byte-equal report
//!   bytes, and changing only the advance engine still hits (engines
//!   are bit-identical by contract). Persisted cache entries survive a
//!   server restart.
//! - **Worker-kill survival** — killing a worker mid-job discards only
//!   the in-flight slice; the job resumes from its last checkpoint and
//!   still produces byte-identical results (the CI smoke test).
//! - **Queue determinism** — concurrent submitters racing the same
//!   requests through any pool shape all observe the same bytes
//!   (property-based).

use proptest::prelude::*;
use std::time::Duration;
use xmt_fft::golden;
use xmt_server::{
    encode_report, JobError, JobHandle, JobResult, JobState, Server, ServerConfig, SimRequest,
};

fn server(workers: usize, quantum: u64) -> Server {
    Server::start(ServerConfig {
        workers,
        quantum,
        cache_entries: 32,
        cache_dir: None,
        ..ServerConfig::default()
    })
    .unwrap()
}

/// Every wait in this suite is deadline-bounded: a hung scheduler must
/// fail the test with [`JobError::Timeout`], not wedge the harness.
fn finish(h: &JobHandle) -> Result<JobResult, JobError> {
    h.wait_deadline(Duration::from_secs(300))
}

/// The expected canonical report bytes for a golden case, computed by
/// running the machine directly (no server involved).
fn direct_bytes(name: &str) -> Vec<u8> {
    let case = golden::cases()
        .into_iter()
        .find(|c| c.name == name)
        .unwrap_or_else(|| panic!("unknown case {name}"));
    encode_report(&case.run())
}

/// Preempting at checkpoints and resuming round-robin must be
/// invisible in the result: byte-identical to an uninterrupted run,
/// for every golden case.
#[test]
fn preempt_resume_bit_identical_on_every_golden_case() {
    let sliced_srv = server(2, 700);
    for case in golden::cases() {
        let want = direct_bytes(case.name);
        let got = finish(
            &sliced_srv
                .submit(SimRequest::golden(case.name).unwrap())
                .unwrap(),
        )
        .unwrap();
        assert!(got.outcome.is_completed(), "{} must complete", case.name);
        assert_eq!(got.bytes, want, "{}: sliced != uninterrupted", case.name);
    }
}

/// The long FFT case actually exercises multiple slices (short cases
/// may fit one quantum; this one cannot).
#[test]
fn long_job_takes_multiple_slices() {
    let srv = server(1, 700);
    let r = finish(
        &srv.submit(SimRequest::golden("fft_radix8_n512").unwrap())
            .unwrap(),
    )
    .unwrap();
    assert!(
        r.slices > 1,
        "10k cycles over quantum 700: got {}",
        r.slices
    );
    assert_eq!(r.bytes, direct_bytes("fft_radix8_n512"));
}

/// Streamed interval rows are identical whether the job runs in one
/// slice or many: preemption resyncs the probe instead of perturbing
/// or duplicating samples.
#[test]
fn probe_stream_is_identical_across_preemption() {
    let probed = |quantum: u64| {
        let srv = server(1, quantum);
        let mut h = srv
            .submit(
                SimRequest::golden("fft_radix8_n512")
                    .unwrap()
                    .with_sim(|s| s.probed(64)),
            )
            .unwrap();
        let rx = h.take_stream().expect("probed request streams");
        let rows: Vec<_> = rx.iter().collect();
        let r = finish(&h).unwrap();
        assert!(r.outcome.is_completed());
        (rows, r.bytes)
    };
    let (whole_rows, whole_bytes) = probed(u64::MAX);
    let (sliced_rows, sliced_bytes) = probed(900);
    assert!(!whole_rows.is_empty());
    assert_eq!(
        sliced_rows, whole_rows,
        "the sliced stream must be indistinguishable from the uninterrupted one"
    );
    assert_eq!(sliced_bytes, whole_bytes);
}

/// The content cache returns byte-identical results, ignores the
/// advance engine (bit-identity contract), and distinguishes fault
/// seeds.
#[test]
fn cache_hits_are_byte_equal_and_engine_blind() {
    let srv = server(2, u64::MAX);
    let first = finish(
        &srv.submit(SimRequest::golden("spawn_storm").unwrap())
            .unwrap(),
    )
    .unwrap();
    assert!(!first.from_cache);
    // Same request again: served from cache, byte-equal.
    let again = finish(
        &srv.submit(SimRequest::golden("spawn_storm").unwrap())
            .unwrap(),
    )
    .unwrap();
    assert!(again.from_cache);
    assert_eq!(again.bytes, first.bytes);
    // Engine change: still a hit (engines are bit-identical).
    let ref_engine = finish(
        &srv.submit(
            SimRequest::golden("spawn_storm")
                .unwrap()
                .with_sim(|s| s.engine(xmt_sim::Engine::Reference)),
        )
        .unwrap(),
    )
    .unwrap();
    assert!(ref_engine.from_cache, "engine is not in the cache key");
    assert_eq!(ref_engine.bytes, first.bytes);
    // Fault-seed change: a different result, not a false hit.
    let seeded = finish(
        &srv.submit(
            SimRequest::golden("spawn_storm")
                .unwrap()
                .with_sim(|s| s.faults(xmt_sim::FaultPlan::new(42).dram_flips(0.01, 0.001))),
        )
        .unwrap(),
    )
    .unwrap();
    assert!(!seeded.from_cache, "fault seed is in the cache key");
}

/// A persisted cache directory serves byte-identical results across a
/// full server restart.
#[test]
fn persisted_cache_survives_server_restart() {
    let dir = std::env::temp_dir().join(format!("xmt-server-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = || ServerConfig {
        workers: 1,
        quantum: u64::MAX,
        cache_entries: 8,
        cache_dir: Some(dir.clone()),
        ..ServerConfig::default()
    };
    let first = {
        let srv = Server::start(cfg()).unwrap();
        finish(
            &srv.submit(SimRequest::golden("ps_tickets").unwrap())
                .unwrap(),
        )
        .unwrap()
    };
    assert!(!first.from_cache);
    let revived = {
        let srv = Server::start(cfg()).unwrap();
        finish(
            &srv.submit(SimRequest::golden("ps_tickets").unwrap())
                .unwrap(),
        )
        .unwrap()
    };
    assert!(revived.from_cache, "restart must hit the persisted entry");
    assert_eq!(revived.bytes, first.bytes);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The CI smoke test: submit a sweep, kill a worker mid-job, and
/// verify the preempted/resumed results are bit-identical to direct
/// runs and that resubmitting the sweep is served from cache with the
/// same bytes.
#[test]
fn killed_worker_job_resumes_bit_identically() {
    let srv = server(1, 800);
    let handles: Vec<_> = srv
        .submit_batch(SimRequest::paper_batch())
        .into_iter()
        .map(|h| h.unwrap())
        .collect();
    // Kill the (only) worker while the batch is in flight; the
    // replacement picks the rolled-back jobs up from their last
    // checkpoints.
    srv.kill_worker();
    for (h, case) in handles.iter().zip(golden::cases()) {
        let r = finish(h).unwrap();
        assert!(
            r.outcome.is_completed(),
            "{} must survive the kill",
            case.name
        );
        assert_eq!(
            r.bytes,
            direct_bytes(case.name),
            "{}: post-kill resume diverged",
            case.name
        );
        assert_eq!(h.poll().state, JobState::Done);
    }
    // The whole sweep again: every row served from cache, byte-equal.
    for (h, case) in srv
        .submit_batch(SimRequest::paper_batch())
        .into_iter()
        .map(|h| h.unwrap())
        .zip(golden::cases())
    {
        let r = finish(&h).unwrap();
        assert!(r.from_cache, "{}: expected a cache hit", case.name);
        assert_eq!(r.bytes, direct_bytes(case.name));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Queue determinism: any mix of concurrent submitters, pool sizes
    /// and quanta yields the same canonical bytes for every request —
    /// scheduling interleave and cache warm-up order are invisible.
    #[test]
    fn concurrent_submitters_observe_identical_bytes(
        picks in proptest::collection::vec(0usize..3, 1..5),
        submitters in 1usize..4,
        workers in 1usize..4,
        sliced in any::<bool>(),
    ) {
        // The three cheap golden cases keep the property fast.
        let names = ["ps_tickets", "spawn_storm", "fpu_chain"];
        let expected: Vec<Vec<u8>> = names.iter().map(|n| direct_bytes(n)).collect();
        let quantum = if sliced { 300 } else { u64::MAX };
        let srv = server(workers, quantum);
        std::thread::scope(|scope| {
            for _ in 0..submitters {
                let picks = &picks;
                let expected = &expected;
                let srv = &srv;
                scope.spawn(move || {
                    for &p in picks {
                        let r = finish(
                            &srv.submit(SimRequest::golden(names[p]).unwrap()).unwrap(),
                        )
                        .unwrap();
                        assert_eq!(r.bytes, expected[p], "{} diverged", names[p]);
                    }
                });
            }
        });
    }
}
