//! Cross-engine agreement: on randomly generated programs, the
//! reference, fast-forward and threaded advance loops must produce
//! bitwise-identical run statistics, spawn logs, memory images and
//! global registers. The generator avoids `ps`/`sspawn` so the
//! threaded engine genuinely partitions clusters across workers
//! instead of falling back to fast-forward, and uses ≥ 2 clusters for
//! the same reason.
//!
//! This is the property the optimized engines are *defined* by (see
//! `Engine`): fast-forward's bulk skips and mask-driven issue, and the
//! threaded engine's two-phase replay, are pure wall-clock
//! optimizations with no observable effect.

use proptest::prelude::*;
use xmt_isa::reg::{fr, ir};
use xmt_isa::{AluOp, FpuOp, Instr, MduOp, Program, ProgramBuilder};
use xmt_sim::{Engine, IntervalProbe, IntervalRow, MachineBuilder, RunReport, XmtConfig};

/// One generated instruction in a restricted, always-terminating form.
/// Deliberately no `ps`/`sspawn`: see module docs.
#[derive(Debug, Clone)]
enum GenOp {
    Li {
        rd: u8,
        imm: u32,
    },
    Alu {
        which: u8,
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Mdu {
        which: u8,
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Fli {
        fd: u8,
        v: i16,
    },
    Fpu {
        which: u8,
        fd: u8,
        fs1: u8,
        fs2: u8,
    },
    /// Load from the shared read-only region [0, 64).
    LoadRo {
        rd: u8,
        addr: u8,
    },
    /// Store to this context's private region (serial: [64,128);
    /// thread t: [128 + t*8, 128 + t*8 + 8)).
    StorePriv {
        rs: u8,
        slot: u8,
    },
    /// Float store to the private region.
    FStorePriv {
        fs: u8,
        slot: u8,
    },
    /// A load immediately consumed: exercises scoreboard stalls.
    LoadUse {
        rd: u8,
        addr: u8,
    },
}

fn reg_strategy() -> impl Strategy<Value = u8> {
    1u8..16
}

fn op_strategy() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        (reg_strategy(), any::<u32>()).prop_map(|(rd, imm)| GenOp::Li { rd, imm }),
        (0u8..8, reg_strategy(), reg_strategy(), reg_strategy()).prop_map(
            |(which, rd, rs1, rs2)| GenOp::Alu {
                which,
                rd,
                rs1,
                rs2
            }
        ),
        (0u8..3, reg_strategy(), reg_strategy(), reg_strategy()).prop_map(
            |(which, rd, rs1, rs2)| GenOp::Mdu {
                which,
                rd,
                rs1,
                rs2
            }
        ),
        (reg_strategy(), any::<i16>()).prop_map(|(fd, v)| GenOp::Fli { fd, v }),
        (0u8..4, reg_strategy(), reg_strategy(), reg_strategy()).prop_map(
            |(which, fd, fs1, fs2)| GenOp::Fpu {
                which,
                fd,
                fs1,
                fs2
            }
        ),
        (reg_strategy(), 0u8..64).prop_map(|(rd, addr)| GenOp::LoadRo { rd, addr }),
        (reg_strategy(), 0u8..8).prop_map(|(rs, slot)| GenOp::StorePriv { rs, slot }),
        (reg_strategy(), 0u8..8).prop_map(|(fs, slot)| GenOp::FStorePriv { fs, slot }),
        (reg_strategy(), 0u8..64).prop_map(|(rd, addr)| GenOp::LoadUse { rd, addr }),
    ]
}

/// Emit one generated op; r20 is reserved as the private-base pointer.
fn emit(b: &mut ProgramBuilder, op: &GenOp) {
    let alu = |w: u8| {
        [
            AluOp::Add,
            AluOp::Sub,
            AluOp::And,
            AluOp::Or,
            AluOp::Xor,
            AluOp::Sll,
            AluOp::Srl,
            AluOp::Sltu,
        ][w as usize]
    };
    let base = ir(20);
    match *op {
        GenOp::Li { rd, imm } => {
            b.li(ir(rd as usize), imm);
        }
        GenOp::Alu {
            which,
            rd,
            rs1,
            rs2,
        } => {
            b.push(Instr::Alu {
                op: alu(which),
                rd: ir(rd as usize),
                rs1: ir(rs1 as usize),
                rs2: ir(rs2 as usize),
            });
        }
        GenOp::Mdu {
            which,
            rd,
            rs1,
            rs2,
        } => {
            let mop = [MduOp::Mul, MduOp::Divu, MduOp::Remu][which as usize];
            b.push(Instr::Mdu {
                op: mop,
                rd: ir(rd as usize),
                rs1: ir(rs1 as usize),
                rs2: ir(rs2 as usize),
            });
        }
        GenOp::Fli { fd, v } => {
            b.fli(fr(fd as usize), v as f32 * 0.125);
        }
        GenOp::Fpu {
            which,
            fd,
            fs1,
            fs2,
        } => {
            let fop = [FpuOp::Add, FpuOp::Sub, FpuOp::Mul, FpuOp::Div][which as usize];
            b.push(Instr::Fpu {
                op: fop,
                fd: fr(fd as usize),
                fs1: fr(fs1 as usize),
                fs2: fr(fs2 as usize),
            });
        }
        GenOp::LoadRo { rd, addr } => {
            b.lw(ir(rd as usize), ir(0), addr as u32);
        }
        GenOp::StorePriv { rs, slot } => {
            b.sw(ir(rs as usize), base, slot as u32);
        }
        GenOp::FStorePriv { fs, slot } => {
            b.fsw(fr(fs as usize), base, slot as u32);
        }
        GenOp::LoadUse { rd, addr } => {
            let rd = ir(rd as usize);
            b.lw(rd, ir(0), addr as u32);
            b.push(Instr::Alu {
                op: AluOp::Add,
                rd,
                rs1: rd,
                rs2: rd,
            });
        }
    }
}

/// Serial prologue ops, a spawn of `threads` running `par_ops`, serial
/// epilogue ops.
fn build(serial: &[GenOp], par_ops: &[GenOp], threads: u8, epilogue: &[GenOp]) -> Program {
    let mut b = ProgramBuilder::new();
    let par = b.label();
    let after = b.label();
    b.li(ir(20), 64);
    for op in serial {
        emit(&mut b, op);
    }
    b.li(ir(22), threads as u32);
    b.spawn(ir(22), par);
    b.jump(after);
    b.bind(par);
    // Thread-private base: 128 + tid*8.
    b.tid(ir(19));
    b.slli(ir(20), ir(19), 3);
    b.addi(ir(20), ir(20), 128);
    for op in par_ops {
        emit(&mut b, op);
    }
    b.join();
    b.bind(after);
    b.li(ir(20), 64);
    for op in epilogue {
        emit(&mut b, op);
    }
    b.halt();
    b.build().unwrap()
}

/// Run `prog` under `engine` with an [`IntervalProbe`] attached,
/// returning the report, probe sample stream and final state. The
/// probe stream is part of the cross-engine contract: every engine
/// must emit bit-identical interval rows, not just matching totals.
fn run_engine(
    prog: &Program,
    cfg: &XmtConfig,
    ro: &[u32],
    mem_words: usize,
    engine: Engine,
) -> (RunReport, Vec<IntervalRow>, Vec<u32>, [u32; 16]) {
    let mut m = MachineBuilder::new(cfg, prog.clone())
        .mem_words(mem_words)
        .engine(engine)
        .write_u32s(0, ro)
        .build_probed(IntervalProbe::new(32, 1 << 12));
    let report = m.run().expect("generated program must complete");
    let rows = m.probe().rows();
    let mem = m.mem.clone();
    let gregs = m.gregs_snapshot();
    (report, rows, mem, gregs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_engines_agree_bitwise(
        serial in proptest::collection::vec(op_strategy(), 0..10),
        par_ops in proptest::collection::vec(op_strategy(), 0..12),
        epilogue in proptest::collection::vec(op_strategy(), 0..6),
        threads in 1u8..24,
        clusters_log in 1u32..3,
        ro_seed in any::<u64>(),
    ) {
        let prog = build(&serial, &par_ops, threads, &epilogue);
        let mem_words = 128 + 24 * 8 + 16;
        let ro: Vec<u32> = (0..64u64)
            .map(|i| {
                let mut z = ro_seed.wrapping_add(i).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                z ^= z >> 31;
                z as u32
            })
            .collect();

        // clusters ≥ 2 so the threaded engine actually partitions.
        let cfg = XmtConfig::xmt_4k().scaled_to(1 << clusters_log);
        let (s_ref, rows_ref, mem_ref, gr_ref) =
            run_engine(&prog, &cfg, &ro, mem_words, Engine::Reference);
        let (s_ff, rows_ff, mem_ff, gr_ff) =
            run_engine(&prog, &cfg, &ro, mem_words, Engine::FastForward);
        let (s_thr, rows_thr, mem_thr, gr_thr) =
            run_engine(&prog, &cfg, &ro, mem_words, Engine::Threaded { threads: 2 });

        prop_assert_eq!(s_ref.stats, s_ff.stats, "fast-forward stats diverge");
        prop_assert_eq!(s_ref.stats, s_thr.stats, "threaded stats diverge");
        prop_assert_eq!(&s_ref.spawns, &s_ff.spawns, "fast-forward spawn log diverges");
        prop_assert_eq!(&s_ref.spawns, &s_thr.spawns, "threaded spawn log diverges");
        prop_assert_eq!(&mem_ref, &mem_ff, "fast-forward memory diverges");
        prop_assert_eq!(&mem_ref, &mem_thr, "threaded memory diverges");
        prop_assert_eq!(gr_ref, gr_ff, "fast-forward gregs diverge");
        prop_assert_eq!(gr_ref, gr_thr, "threaded gregs diverge");
        prop_assert_eq!(&rows_ref, &rows_ff, "fast-forward probe stream diverges");
        prop_assert_eq!(&rows_ref, &rows_thr, "threaded probe stream diverges");
    }
}
