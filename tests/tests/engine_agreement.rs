//! Cross-engine agreement: on randomly generated programs, the
//! reference, fast-forward and threaded advance loops must produce
//! bitwise-identical run statistics, spawn logs, memory images and
//! global registers. The generator (`xmt_integration::genprog`) avoids
//! `ps`/`sspawn` so the threaded engine genuinely partitions clusters
//! across workers instead of falling back to fast-forward, and uses
//! ≥ 2 clusters for the same reason.
//!
//! This is the property the optimized engines are *defined* by (see
//! `Engine`): fast-forward's bulk skips and mask-driven issue, and the
//! threaded engine's two-phase replay, are pure wall-clock
//! optimizations with no observable effect.

use proptest::prelude::*;
use xmt_integration::genprog::{branchy_op_strategy, build, build_multi_spawn, op_strategy};
use xmt_isa::Program;
use xmt_sim::{
    Engine, IntervalProbe, IntervalRow, MachineBuilder, RunReport, TranslationTier, XmtConfig,
};

/// Run `prog` under `engine` with an [`IntervalProbe`] attached,
/// returning the report, probe sample stream and final state. The
/// probe stream is part of the cross-engine contract: every engine
/// must emit bit-identical interval rows, not just matching totals.
fn run_engine(
    prog: &Program,
    cfg: &XmtConfig,
    ro: &[u32],
    mem_words: usize,
    engine: Engine,
) -> (RunReport, Vec<IntervalRow>, Vec<u32>, [u32; 16]) {
    let mut m = MachineBuilder::new(cfg, prog.clone())
        .mem_words(mem_words)
        .engine(engine)
        .write_u32s(0, ro)
        .build_probed(IntervalProbe::new(32, 1 << 12));
    let report = m.run().expect("generated program must complete");
    let rows = m.probe().rows();
    let mem = m.mem.clone();
    let gregs = m.gregs_snapshot();
    (report, rows, mem, gregs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_engines_agree_bitwise(
        serial in proptest::collection::vec(op_strategy(), 0..10),
        par_ops in proptest::collection::vec(op_strategy(), 0..12),
        epilogue in proptest::collection::vec(op_strategy(), 0..6),
        threads in 1u8..24,
        clusters_log in 1u32..3,
        ro_seed in any::<u64>(),
    ) {
        let prog = build(&serial, &par_ops, threads, &epilogue);
        let mem_words = 128 + 24 * 8 + 16;
        let ro: Vec<u32> = (0..64u64)
            .map(|i| {
                let mut z = ro_seed.wrapping_add(i).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                z ^= z >> 31;
                z as u32
            })
            .collect();

        // clusters ≥ 2 so the threaded engine actually partitions.
        let cfg = XmtConfig::xmt_4k().scaled_to(1 << clusters_log);
        let (s_ref, rows_ref, mem_ref, gr_ref) =
            run_engine(&prog, &cfg, &ro, mem_words, Engine::Reference);
        let (s_ff, rows_ff, mem_ff, gr_ff) =
            run_engine(&prog, &cfg, &ro, mem_words, Engine::FastForward);
        let (s_thr, rows_thr, mem_thr, gr_thr) =
            run_engine(&prog, &cfg, &ro, mem_words, Engine::Threaded { threads: 2 });

        prop_assert_eq!(s_ref.stats, s_ff.stats, "fast-forward stats diverge");
        prop_assert_eq!(s_ref.stats, s_thr.stats, "threaded stats diverge");
        prop_assert_eq!(&s_ref.spawns, &s_ff.spawns, "fast-forward spawn log diverges");
        prop_assert_eq!(&s_ref.spawns, &s_thr.spawns, "threaded spawn log diverges");
        prop_assert_eq!(&mem_ref, &mem_ff, "fast-forward memory diverges");
        prop_assert_eq!(&mem_ref, &mem_thr, "threaded memory diverges");
        prop_assert_eq!(gr_ref, gr_ff, "fast-forward gregs diverge");
        prop_assert_eq!(gr_ref, gr_thr, "threaded gregs diverge");
        prop_assert_eq!(&rows_ref, &rows_ff, "fast-forward probe stream diverges");
        prop_assert_eq!(&rows_ref, &rows_thr, "threaded probe stream diverges");
    }
}

/// Unprobed variant of [`run_engine`]: a probed machine never reaches
/// the threaded engine's sharded path (it falls back to fast-forward —
/// see `Machine::run_inner`), so the tests below that exist to exercise
/// sharding must run without a probe. The probe stream's cross-engine
/// identity is already pinned by `all_engines_agree_bitwise` and the
/// ci.sh probe gate.
fn run_engine_unprobed(
    prog: &Program,
    cfg: &XmtConfig,
    ro: &[u32],
    mem_words: usize,
    engine: Engine,
) -> (RunReport, Vec<u32>, [u32; 16]) {
    let mut m = MachineBuilder::new(cfg, prog.clone())
        .mem_words(mem_words)
        .engine(engine)
        .write_u32s(0, ro)
        .build();
    let report = m.run().expect("generated program must complete");
    let mem = m.mem.clone();
    let gregs = m.gregs_snapshot();
    (report, mem, gregs)
}

proptest! {
    // The full 4096-TCU config simulates 128 clusters per cycle, so
    // keep the sample count and program sizes small: the point is to
    // exercise the threaded engine's sharding (128 clusters across
    // workers, wide spawns spanning shard boundaries) on the same
    // machine the scaling benchmarks use, not to redo the small-config
    // sweep above.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn all_engines_agree_on_full_4k_config(
        serial in proptest::collection::vec(op_strategy(), 0..4),
        par_ops in proptest::collection::vec(op_strategy(), 0..8),
        epilogue in proptest::collection::vec(op_strategy(), 0..4),
        threads in 1u8..=200,
        ro_seed in any::<u64>(),
    ) {
        let prog = build(&serial, &par_ops, threads, &epilogue);
        let mem_words = 128 + 256 * 8 + 16;
        let ro: Vec<u32> = (0..64u64)
            .map(|i| {
                let mut z = ro_seed.wrapping_add(i).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                z ^= z >> 31;
                z as u32
            })
            .collect();

        let cfg = XmtConfig::xmt_4k();
        let (s_ref, mem_ref, gr_ref) =
            run_engine_unprobed(&prog, &cfg, &ro, mem_words, Engine::Reference);
        let (s_thr, mem_thr, gr_thr) =
            run_engine_unprobed(&prog, &cfg, &ro, mem_words, Engine::Threaded { threads: 2 });

        prop_assert_eq!(s_ref.stats, s_thr.stats, "threaded stats diverge on xmt_4k");
        prop_assert_eq!(&s_ref.spawns, &s_thr.spawns, "threaded spawn log diverges on xmt_4k");
        prop_assert_eq!(&mem_ref, &mem_thr, "threaded memory diverges on xmt_4k");
        prop_assert_eq!(gr_ref, gr_thr, "threaded gregs diverge on xmt_4k");
    }
}

/// Variant of [`run_engine_unprobed`] that also pins the translation
/// tier.
fn run_engine_tiered(
    prog: &Program,
    cfg: &XmtConfig,
    ro: &[u32],
    mem_words: usize,
    engine: Engine,
    tier: TranslationTier,
) -> (RunReport, Vec<u32>, [u32; 16]) {
    let mut m = MachineBuilder::new(cfg, prog.clone())
        .mem_words(mem_words)
        .engine(engine)
        .tier(tier)
        .write_u32s(0, ro)
        .build();
    let report = m.run().expect("generated program must complete");
    let mem = m.mem.clone();
    let gregs = m.gregs_snapshot();
    (report, mem, gregs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Branch-dense and short-block programs — forward skips over a
    /// single instruction and 1–4-iteration countdown loops — are the
    /// worst case for the block-compiled tier: superblocks degenerate
    /// to one or two micro-ops and every branch resolution crosses a
    /// fallback seam. Tier-on and tier-off runs must be bitwise
    /// identical (stats, spawn log, memory image, global registers)
    /// under all three engines.
    #[test]
    fn tier_agrees_on_branch_dense_programs(
        serial in proptest::collection::vec(branchy_op_strategy(), 0..8),
        par_ops in proptest::collection::vec(branchy_op_strategy(), 0..10),
        epilogue in proptest::collection::vec(branchy_op_strategy(), 0..5),
        threads in 1u8..24,
        clusters_log in 1u32..3,
        ro_seed in any::<u64>(),
    ) {
        let prog = build(&serial, &par_ops, threads, &epilogue);
        let mem_words = 128 + 24 * 8 + 16;
        let ro: Vec<u32> = (0..64u64)
            .map(|i| {
                let mut z = ro_seed.wrapping_add(i).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                z ^= z >> 31;
                z as u32
            })
            .collect();
        let cfg = XmtConfig::xmt_4k().scaled_to(1 << clusters_log);

        let (s_base, mem_base, gr_base) = run_engine_tiered(
            &prog, &cfg, &ro, mem_words, Engine::Reference, TranslationTier::Interpreter,
        );
        for engine in [
            Engine::Reference,
            Engine::FastForward,
            Engine::Threaded { threads: 2 },
        ] {
            for tier in [TranslationTier::Interpreter, TranslationTier::Block] {
                let (s, mem, gr) = run_engine_tiered(&prog, &cfg, &ro, mem_words, engine, tier);
                prop_assert_eq!(
                    &s_base.stats, &s.stats,
                    "stats diverge under {:?}/{:?}", engine, tier
                );
                prop_assert_eq!(
                    &s_base.spawns, &s.spawns,
                    "spawn log diverges under {:?}/{:?}", engine, tier
                );
                prop_assert_eq!(
                    &mem_base, &mem,
                    "memory diverges under {:?}/{:?}", engine, tier
                );
                prop_assert_eq!(
                    gr_base, gr,
                    "gregs diverge under {:?}/{:?}", engine, tier
                );
            }
        }
    }
}

/// Shard-churn regression: successive spawns of wildly different widths
/// on the full 4096-TCU machine, so clusters enter and leave the
/// threaded engine's active work list — and migrate across shard
/// boundaries as the partition is rebuilt — mid-run. A stale shard mask
/// (e.g. a cluster whose busy/ready bits survived from a previous
/// spawn's tenancy) shows up here as a stats or memory divergence.
#[test]
fn shard_churn_across_spawn_widths() {
    use xmt_integration::genprog::GenOp;
    let par_ops = [
        GenOp::LoadRo { rd: 3, addr: 17 },
        GenOp::Alu {
            which: 0,
            rd: 4,
            rs1: 3,
            rs2: 3,
        },
        GenOp::StorePriv { rs: 4, slot: 2 },
        GenOp::Fli { fd: 2, v: 24 },
        GenOp::Fpu {
            which: 2,
            fd: 3,
            fs1: 2,
            fs2: 2,
        },
        GenOp::FStorePriv { fs: 3, slot: 5 },
    ];
    // 3000 threads floods nearly every cluster; 40 leaves most shards
    // idle; 500/96 land in between. Each transition rebuilds the
    // active-cluster partition.
    let widths = [500u32, 96, 3000, 40, 1024];
    let prog = build_multi_spawn(&[], &par_ops, &widths, &[]);
    let mem_words = 128 + 3000 * 8 + 16;
    let ro: Vec<u32> = (0..64u32).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
    let cfg = XmtConfig::xmt_4k();

    let (s_ref, mem_ref, gr_ref) =
        run_engine_unprobed(&prog, &cfg, &ro, mem_words, Engine::Reference);
    for threads in [0usize, 2, 3] {
        let (s_thr, mem_thr, gr_thr) =
            run_engine_unprobed(&prog, &cfg, &ro, mem_words, Engine::Threaded { threads });
        assert_eq!(
            s_ref.stats, s_thr.stats,
            "threaded({threads}) stats diverge under shard churn"
        );
        assert_eq!(
            s_ref.spawns, s_thr.spawns,
            "threaded({threads}) spawn log diverges under shard churn"
        );
        assert_eq!(
            mem_ref, mem_thr,
            "threaded({threads}) memory diverges under shard churn"
        );
        assert_eq!(
            gr_ref, gr_thr,
            "threaded({threads}) gregs diverge under shard churn"
        );
    }
    let (s_ff, mem_ff, gr_ff) =
        run_engine_unprobed(&prog, &cfg, &ro, mem_words, Engine::FastForward);
    assert_eq!(s_ref.stats, s_ff.stats);
    assert_eq!(mem_ref, mem_ff);
    assert_eq!(gr_ref, gr_ff);
}
