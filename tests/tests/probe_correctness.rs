//! Correctness of the observability layer (probes): interval sampling
//! must be an *accounting identity*, not an approximation.
//!
//! * The probe's cumulative totals after the end-of-run flush equal the
//!   run's final statistics, on every golden workload under every
//!   engine.
//! * Summing the retained interval rows reconstructs the same totals
//!   when the ring did not overwrite (capacity ≥ samples).
//! * The sample stream is bit-identical across engines — the same
//!   contract the engines already honour for stats/spawns/memory.
//! * Attaching a probe never changes the simulated cycle count.

use xmt_fft::golden;
use xmt_sim::{Engine, IntervalProbe, IntervalRow, MachineStats, RunReport};

const ENGINES: [Engine; 3] = [
    Engine::Reference,
    Engine::FastForward,
    Engine::Threaded { threads: 2 },
];

/// Run one golden case probed, returning the report, the probe's
/// cumulative totals and the retained sample rows.
fn run_probed(
    case: &golden::GoldenCase,
    engine: Engine,
    interval: u64,
) -> (RunReport, MachineStats, Vec<IntervalRow>) {
    let mut m = case
        .builder()
        .engine(engine)
        .build_probed(IntervalProbe::new(interval, 1 << 14));
    let report = m.run().expect("golden case must complete");
    let totals = m.probe().totals();
    let rows = m.probe().rows();
    (report, totals, rows)
}

#[test]
fn probe_totals_equal_run_aggregates_on_all_engines() {
    for case in golden::cases() {
        for engine in ENGINES {
            let (report, totals, rows) = run_probed(&case, engine, 64);
            assert_eq!(
                totals, report.stats,
                "{} under {engine:?}: probe totals diverge from run stats",
                case.name
            );
            assert!(
                !rows.is_empty(),
                "{} under {engine:?}: no samples recorded",
                case.name
            );
            // The final flush lands exactly on the end-of-run cycle.
            let last = rows.last().unwrap();
            assert_eq!(
                last.cycle, report.stats.cycles,
                "{} under {engine:?}: last sample not at end of run",
                case.name
            );
        }
    }
}

#[test]
fn interval_rows_sum_to_totals_without_overwrite() {
    for case in golden::cases() {
        let (report, _, rows) = run_probed(&case, Engine::FastForward, 32);
        let sum = |f: fn(&IntervalRow) -> u64| rows.iter().map(f).sum::<u64>();
        assert_eq!(
            sum(|r| r.instructions),
            report.stats.instructions,
            "{}",
            case.name
        );
        assert_eq!(sum(|r| r.flops), report.stats.flops, "{}", case.name);
        assert_eq!(
            sum(|r| r.mem_reads),
            report.stats.mem_reads,
            "{}",
            case.name
        );
        assert_eq!(
            sum(|r| r.mem_writes),
            report.stats.mem_writes,
            "{}",
            case.name
        );
        assert_eq!(sum(|r| r.threads), report.stats.threads, "{}", case.name);
        assert_eq!(
            sum(|r| r.stall_scoreboard),
            report.stats.stall_scoreboard,
            "{}",
            case.name
        );
        assert_eq!(
            sum(|r| r.stall_fpu),
            report.stats.stall_fpu,
            "{}",
            case.name
        );
        assert_eq!(
            sum(|r| r.stall_mdu),
            report.stats.stall_mdu,
            "{}",
            case.name
        );
        assert_eq!(
            sum(|r| r.stall_lsu),
            report.stats.stall_lsu,
            "{}",
            case.name
        );
        // DRAM bytes: rows carry per-interval deltas of the same
        // cumulative counter the spawn log reports.
        let spawn_bytes: u64 = report.spawns.iter().map(|s| s.dram_bytes).sum();
        assert!(
            sum(|r| r.dram_bytes) >= spawn_bytes,
            "{}: interval DRAM bytes {} < spawn-attributed {}",
            case.name,
            rows.iter().map(|r| r.dram_bytes).sum::<u64>(),
            spawn_bytes
        );
    }
}

#[test]
fn sample_stream_bit_identical_across_engines() {
    for case in golden::cases() {
        let (_, _, rows_ref) = run_probed(&case, ENGINES[0], 64);
        for engine in &ENGINES[1..] {
            let (_, _, rows) = run_probed(&case, *engine, 64);
            assert_eq!(
                rows, rows_ref,
                "{}: probe stream diverges under {engine:?}",
                case.name
            );
        }
    }
}

#[test]
fn probing_does_not_change_cycle_counts() {
    for case in golden::cases() {
        let unprobed = case.builder().build().run().unwrap();
        for interval in [1, 7, 64, 1 << 20] {
            let (report, _, _) = run_probed(&case, Engine::FastForward, interval);
            assert_eq!(
                report.stats, unprobed.stats,
                "{} @interval {interval}: probed stats diverge from unprobed",
                case.name
            );
        }
    }
}

#[test]
fn ring_overwrite_keeps_totals_and_reports_drops() {
    // A tiny ring on a long workload: rows are dropped, totals are not.
    let cases = golden::cases();
    let case = &cases[0];
    let mut m = case.builder().build_probed(IntervalProbe::new(16, 8));
    let report = m.run().unwrap();
    let probe = m.probe();
    assert!(probe.dropped() > 0, "expected ring overwrite");
    assert_eq!(probe.rows().len(), 8);
    assert_eq!(probe.totals(), report.stats);
}
