//! Correctness of the observability layer (probes): interval sampling
//! must be an *accounting identity*, not an approximation.
//!
//! * The probe's cumulative totals after the end-of-run flush equal the
//!   run's final statistics, on every golden workload under every
//!   engine.
//! * Summing the retained interval rows reconstructs the same totals
//!   when the ring did not overwrite (capacity ≥ samples).
//! * The sample stream is bit-identical across engines — the same
//!   contract the engines already honour for stats/spawns/memory.
//! * Attaching a probe never changes the simulated cycle count.
//! * The [`RaceCheck`] oracle agrees with the static verdict of
//!   `xmt-verify`: zero observed conflicts on every (statically
//!   race-free) golden workload, and at least one on a seeded racy
//!   program that the static analysis also rejects.

use xmt_fft::golden;
use xmt_isa::{ir, ProgramBuilder};
use xmt_sim::{
    Engine, IntervalProbe, IntervalRow, MachineBuilder, MachineStats, RaceCheck, RunReport,
};

const ENGINES: [Engine; 3] = [
    Engine::Reference,
    Engine::FastForward,
    Engine::Threaded { threads: 2 },
];

/// Run one golden case probed, returning the report, the probe's
/// cumulative totals and the retained sample rows.
fn run_probed(
    case: &golden::GoldenCase,
    engine: Engine,
    interval: u64,
) -> (RunReport, MachineStats, Vec<IntervalRow>) {
    let mut m = case
        .builder()
        .engine(engine)
        .build_probed(IntervalProbe::new(interval, 1 << 14));
    let report = m.run().expect("golden case must complete");
    let totals = m.probe().totals();
    let rows = m.probe().rows();
    (report, totals, rows)
}

#[test]
fn probe_totals_equal_run_aggregates_on_all_engines() {
    for case in golden::cases() {
        for engine in ENGINES {
            let (report, totals, rows) = run_probed(&case, engine, 64);
            assert_eq!(
                totals, report.stats,
                "{} under {engine:?}: probe totals diverge from run stats",
                case.name
            );
            assert!(
                !rows.is_empty(),
                "{} under {engine:?}: no samples recorded",
                case.name
            );
            // The final flush lands exactly on the end-of-run cycle.
            let last = rows.last().unwrap();
            assert_eq!(
                last.cycle, report.stats.cycles,
                "{} under {engine:?}: last sample not at end of run",
                case.name
            );
        }
    }
}

#[test]
fn interval_rows_sum_to_totals_without_overwrite() {
    for case in golden::cases() {
        let (report, _, rows) = run_probed(&case, Engine::FastForward, 32);
        let sum = |f: fn(&IntervalRow) -> u64| rows.iter().map(f).sum::<u64>();
        assert_eq!(
            sum(|r| r.instructions),
            report.stats.instructions,
            "{}",
            case.name
        );
        assert_eq!(sum(|r| r.flops), report.stats.flops, "{}", case.name);
        assert_eq!(
            sum(|r| r.mem_reads),
            report.stats.mem_reads,
            "{}",
            case.name
        );
        assert_eq!(
            sum(|r| r.mem_writes),
            report.stats.mem_writes,
            "{}",
            case.name
        );
        assert_eq!(sum(|r| r.threads), report.stats.threads, "{}", case.name);
        assert_eq!(
            sum(|r| r.stall_scoreboard),
            report.stats.stall_scoreboard,
            "{}",
            case.name
        );
        assert_eq!(
            sum(|r| r.stall_fpu),
            report.stats.stall_fpu,
            "{}",
            case.name
        );
        assert_eq!(
            sum(|r| r.stall_mdu),
            report.stats.stall_mdu,
            "{}",
            case.name
        );
        assert_eq!(
            sum(|r| r.stall_lsu),
            report.stats.stall_lsu,
            "{}",
            case.name
        );
        // DRAM bytes: rows carry per-interval deltas of the same
        // cumulative counter the spawn log reports.
        let spawn_bytes: u64 = report.spawns.iter().map(|s| s.dram_bytes).sum();
        assert!(
            sum(|r| r.dram_bytes) >= spawn_bytes,
            "{}: interval DRAM bytes {} < spawn-attributed {}",
            case.name,
            rows.iter().map(|r| r.dram_bytes).sum::<u64>(),
            spawn_bytes
        );
    }
}

#[test]
fn sample_stream_bit_identical_across_engines() {
    for case in golden::cases() {
        let (_, _, rows_ref) = run_probed(&case, ENGINES[0], 64);
        for engine in &ENGINES[1..] {
            let (_, _, rows) = run_probed(&case, *engine, 64);
            assert_eq!(
                rows, rows_ref,
                "{}: probe stream diverges under {engine:?}",
                case.name
            );
        }
    }
}

#[test]
fn probing_does_not_change_cycle_counts() {
    for case in golden::cases() {
        let unprobed = case.builder().build().run().unwrap();
        for interval in [1, 7, 64, 1 << 20] {
            let (report, _, _) = run_probed(&case, Engine::FastForward, interval);
            assert_eq!(
                report.stats, unprobed.stats,
                "{} @interval {interval}: probed stats diverge from unprobed",
                case.name
            );
        }
    }
}

#[test]
fn race_oracle_is_silent_on_all_golden_cases() {
    // The static verifier proves every golden program race-free
    // (`crates/core/tests/verify_kernels.rs`); the dynamic oracle must
    // agree on the executions themselves, under every engine.
    for case in golden::cases() {
        for engine in ENGINES {
            let mut m = case.builder().engine(engine).build_probed(RaceCheck::new());
            m.run().expect("golden case must complete");
            assert_eq!(
                m.probe().conflicts(),
                &[],
                "{} under {engine:?}: oracle observed a conflict on a statically race-free program",
                case.name
            );
        }
    }
}

#[test]
fn race_oracle_and_static_verdict_agree_on_a_seeded_race() {
    // The same shared-accumulator kernel the static tests seed: every
    // thread read-modify-writes word 512 without `ps`.
    let mut b = ProgramBuilder::new();
    let par = b.label();
    let done = b.label();
    b.li(ir(1), 64);
    b.spawn(ir(1), par);
    b.jump(done);
    b.bind(par);
    b.tid(ir(2));
    b.li(ir(3), 512);
    b.lw(ir(4), ir(3), 0);
    b.add(ir(4), ir(4), ir(2));
    b.sw(ir(4), ir(3), 0);
    b.join();
    b.bind(done);
    b.halt();
    let prog = b.build().unwrap();

    // Static: rejected.
    let report = xmt_verify::verify(&prog);
    assert!(
        report.errors().any(|d| d.kind == xmt_verify::Kind::Race),
        "static analysis missed the seeded race:\n{report}"
    );

    // Dynamic: the oracle witnesses it on the actual execution, under
    // every engine, on the contested word.
    let cfg = golden::golden_config();
    for engine in ENGINES {
        let mut m = MachineBuilder::new(&cfg, prog.clone())
            .mem_words(1024)
            .engine(engine)
            .build_probed(RaceCheck::new());
        m.run().expect("racy program still completes");
        let conflicts = m.probe().conflicts();
        assert!(
            !conflicts.is_empty(),
            "{engine:?}: oracle observed no conflict on a racy program"
        );
        assert!(
            conflicts.iter().all(|c| c.addr == 512),
            "{engine:?}: conflict on an unexpected word: {conflicts:?}"
        );
        let c = conflicts[0];
        assert_ne!(c.first_tid, c.second_tid);
    }
}

#[test]
fn ring_overwrite_keeps_totals_and_reports_drops() {
    // A tiny ring on a long workload: rows are dropped, totals are not.
    let cases = golden::cases();
    let case = &cases[0];
    let mut m = case.builder().build_probed(IntervalProbe::new(16, 8));
    let report = m.run().unwrap();
    let probe = m.probe();
    assert!(probe.dropped() > 0, "expected ring overwrite");
    assert_eq!(probe.rows().len(), 8);
    assert_eq!(probe.totals(), report.stats);
}
