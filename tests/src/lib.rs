//! Integration-test crate: shared helpers for the cross-crate tests in
//! `tests/`.

pub mod genprog;

use parafft::{Complex32, Complex64};

/// Deterministic pseudo-random complex sample (f64).
pub fn sample64(n: usize, seed: u64) -> Vec<Complex64> {
    (0..n)
        .map(|i| {
            let mut z = (i as u64 + seed).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            let re = ((z >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0;
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            let im = ((z >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0;
            Complex64::new(re, im)
        })
        .collect()
}

/// Deterministic pseudo-random complex sample (f32).
pub fn sample32(n: usize, seed: u64) -> Vec<Complex32> {
    sample64(n, seed)
        .into_iter()
        .map(|c| Complex32::new(c.re as f32, c.im as f32))
        .collect()
}
