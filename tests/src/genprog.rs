//! Random-program generator shared by the cross-engine agreement test
//! and the static-verifier property tests.
//!
//! Programs have a fixed skeleton — serial prologue, one `spawn` of
//! 1–24 threads, serial epilogue — with bodies drawn from a restricted
//! op set that is always-terminating and **race-free by construction**:
//! loads hit the shared read-only region `[0, 64)`, stores hit the
//! executing context's private region (serial: `[64, 128)`; thread
//! `t`: `[128 + 8t, 128 + 8t + 8)` through the reserved base register
//! r20). That construction is exactly what `xmt-verify` must be able
//! to *prove*, which is what makes the generator double as a
//! no-false-positives oracle for the race detector.
//!
//! Deliberately no `ps`/`sspawn`: the agreement test needs the
//! threaded engine to genuinely partition clusters across workers
//! rather than falling back to fast-forward.

use proptest::prelude::*;
use xmt_isa::reg::{fr, ir};
use xmt_isa::{AluOp, FpuOp, Instr, MduOp, Program, ProgramBuilder};

/// One generated instruction in a restricted, always-terminating form.
#[derive(Debug, Clone)]
pub enum GenOp {
    /// `li rd, imm`.
    Li {
        /// Destination register index (1..16).
        rd: u8,
        /// Immediate.
        imm: u32,
    },
    /// Register-form ALU op (`which` selects among all eight).
    Alu {
        /// Operation selector (0..8).
        which: u8,
        /// Destination register index.
        rd: u8,
        /// First source register index.
        rs1: u8,
        /// Second source register index.
        rs2: u8,
    },
    /// MDU op (`which` selects mul/divu/remu).
    Mdu {
        /// Operation selector (0..3).
        which: u8,
        /// Destination register index.
        rd: u8,
        /// First source register index.
        rs1: u8,
        /// Second source register index.
        rs2: u8,
    },
    /// `fli fd, v·0.125`.
    Fli {
        /// Destination FP register index.
        fd: u8,
        /// Scaled immediate.
        v: i16,
    },
    /// FPU op (`which` selects add/sub/mul/div).
    Fpu {
        /// Operation selector (0..4).
        which: u8,
        /// Destination FP register index.
        fd: u8,
        /// First source FP register index.
        fs1: u8,
        /// Second source FP register index.
        fs2: u8,
    },
    /// Load from the shared read-only region `[0, 64)`.
    LoadRo {
        /// Destination register index.
        rd: u8,
        /// Word address in the read-only region.
        addr: u8,
    },
    /// Store to this context's private region (serial: `[64, 128)`;
    /// thread `t`: `[128 + 8t, 128 + 8t + 8)`).
    StorePriv {
        /// Source register index.
        rs: u8,
        /// Private-slot index (0..8).
        slot: u8,
    },
    /// Float store to the private region.
    FStorePriv {
        /// Source FP register index.
        fs: u8,
        /// Private-slot index (0..8).
        slot: u8,
    },
    /// A load immediately consumed: exercises scoreboard stalls.
    LoadUse {
        /// Destination register index.
        rd: u8,
        /// Word address in the read-only region.
        addr: u8,
    },
    /// A conditional forward branch over a single `li`. Both outcomes
    /// are race-free; the skip splits the body into back-to-back
    /// one-instruction superblocks, the worst case for the trace cache.
    BrSkip {
        /// Condition selector (0..4: eq/ne/ltu/geu).
        cond: u8,
        /// First compared register index.
        rs1: u8,
        /// Second compared register index.
        rs2: u8,
        /// Destination of the skipped `li`.
        rd: u8,
        /// Immediate of the skipped `li`.
        imm: u32,
    },
    /// A bounded countdown loop on reserved r21: 1–4 iterations of an
    /// ALU op plus the backward branch. Short blocks re-entered many
    /// times — the trace cache must replay them without drift.
    Loop {
        /// Iteration count selector (mapped to 1..=4).
        n: u8,
        /// Accumulator register index.
        rd: u8,
        /// Addend register index.
        rs: u8,
    },
}

/// Strategy over the register indices the generator may touch (r1–r15;
/// r19/r20/r22 are reserved for the skeleton, r21 for [`GenOp::Loop`]'s
/// countdown).
pub fn reg_strategy() -> impl Strategy<Value = u8> {
    1u8..16
}

/// Strategy over single generated ops.
pub fn op_strategy() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        (reg_strategy(), any::<u32>()).prop_map(|(rd, imm)| GenOp::Li { rd, imm }),
        (0u8..8, reg_strategy(), reg_strategy(), reg_strategy()).prop_map(
            |(which, rd, rs1, rs2)| GenOp::Alu {
                which,
                rd,
                rs1,
                rs2
            }
        ),
        (0u8..3, reg_strategy(), reg_strategy(), reg_strategy()).prop_map(
            |(which, rd, rs1, rs2)| GenOp::Mdu {
                which,
                rd,
                rs1,
                rs2
            }
        ),
        (reg_strategy(), any::<i16>()).prop_map(|(fd, v)| GenOp::Fli { fd, v }),
        (0u8..4, reg_strategy(), reg_strategy(), reg_strategy()).prop_map(
            |(which, fd, fs1, fs2)| GenOp::Fpu {
                which,
                fd,
                fs1,
                fs2
            }
        ),
        (reg_strategy(), 0u8..64).prop_map(|(rd, addr)| GenOp::LoadRo { rd, addr }),
        (reg_strategy(), 0u8..8).prop_map(|(rs, slot)| GenOp::StorePriv { rs, slot }),
        (reg_strategy(), 0u8..8).prop_map(|(fs, slot)| GenOp::FStorePriv { fs, slot }),
        (reg_strategy(), 0u8..64).prop_map(|(rd, addr)| GenOp::LoadUse { rd, addr }),
    ]
}

/// Strategy biased toward control flow: two thirds of the draws are
/// forward skips or bounded loops, so generated bodies are
/// branch-dense with very short straight-line runs — the adversarial
/// shape for the block-compiled tier, whose superblocks degenerate to
/// one or two micro-ops and whose fallback seams fire constantly.
pub fn branchy_op_strategy() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        op_strategy(),
        (
            0u8..4,
            reg_strategy(),
            reg_strategy(),
            reg_strategy(),
            any::<u32>()
        )
            .prop_map(|(cond, rs1, rs2, rd, imm)| GenOp::BrSkip {
                cond,
                rs1,
                rs2,
                rd,
                imm
            }),
        (any::<u8>(), reg_strategy(), reg_strategy()).prop_map(|(n, rd, rs)| GenOp::Loop {
            n,
            rd,
            rs
        }),
    ]
}

/// Emit one generated op; r20 is reserved as the private-base pointer.
pub fn emit(b: &mut ProgramBuilder, op: &GenOp) {
    let alu = |w: u8| {
        [
            AluOp::Add,
            AluOp::Sub,
            AluOp::And,
            AluOp::Or,
            AluOp::Xor,
            AluOp::Sll,
            AluOp::Srl,
            AluOp::Sltu,
        ][w as usize]
    };
    let base = ir(20);
    match *op {
        GenOp::Li { rd, imm } => {
            b.li(ir(rd as usize), imm);
        }
        GenOp::Alu {
            which,
            rd,
            rs1,
            rs2,
        } => {
            b.push(Instr::Alu {
                op: alu(which),
                rd: ir(rd as usize),
                rs1: ir(rs1 as usize),
                rs2: ir(rs2 as usize),
            });
        }
        GenOp::Mdu {
            which,
            rd,
            rs1,
            rs2,
        } => {
            let mop = [MduOp::Mul, MduOp::Divu, MduOp::Remu][which as usize];
            b.push(Instr::Mdu {
                op: mop,
                rd: ir(rd as usize),
                rs1: ir(rs1 as usize),
                rs2: ir(rs2 as usize),
            });
        }
        GenOp::Fli { fd, v } => {
            b.fli(fr(fd as usize), v as f32 * 0.125);
        }
        GenOp::Fpu {
            which,
            fd,
            fs1,
            fs2,
        } => {
            let fop = [FpuOp::Add, FpuOp::Sub, FpuOp::Mul, FpuOp::Div][which as usize];
            b.push(Instr::Fpu {
                op: fop,
                fd: fr(fd as usize),
                fs1: fr(fs1 as usize),
                fs2: fr(fs2 as usize),
            });
        }
        GenOp::LoadRo { rd, addr } => {
            b.lw(ir(rd as usize), ir(0), addr as u32);
        }
        GenOp::StorePriv { rs, slot } => {
            b.sw(ir(rs as usize), base, slot as u32);
        }
        GenOp::FStorePriv { fs, slot } => {
            b.fsw(fr(fs as usize), base, slot as u32);
        }
        GenOp::LoadUse { rd, addr } => {
            let rd = ir(rd as usize);
            b.lw(rd, ir(0), addr as u32);
            b.push(Instr::Alu {
                op: AluOp::Add,
                rd,
                rs1: rd,
                rs2: rd,
            });
        }
        GenOp::BrSkip {
            cond,
            rs1,
            rs2,
            rd,
            imm,
        } => {
            let skip = b.label();
            let (rs1, rs2) = (ir(rs1 as usize), ir(rs2 as usize));
            match cond % 4 {
                0 => b.beq(rs1, rs2, skip),
                1 => b.bne(rs1, rs2, skip),
                2 => b.bltu(rs1, rs2, skip),
                _ => b.bgeu(rs1, rs2, skip),
            };
            b.li(ir(rd as usize), imm);
            b.bind(skip);
        }
        GenOp::Loop { n, rd, rs } => {
            b.li(ir(21), 1 + (n % 4) as u32);
            let top = b.label();
            b.bind(top);
            b.push(Instr::Alu {
                op: AluOp::Add,
                rd: ir(rd as usize),
                rs1: ir(rd as usize),
                rs2: ir(rs as usize),
            });
            b.addi(ir(21), ir(21), u32::MAX); // r21 -= 1 (wrapping)
            b.bne(ir(21), ir(0), top);
        }
    }
}

/// Serial prologue ops, a spawn of `threads` running `par_ops`, serial
/// epilogue ops.
pub fn build(serial: &[GenOp], par_ops: &[GenOp], threads: u8, epilogue: &[GenOp]) -> Program {
    build_with_init(serial, par_ops, threads, epilogue, false)
}

/// Serial prologue, then one spawn/join block per entry in
/// `thread_counts` (each running `par_ops` over its own thread-private
/// region), then a serial epilogue. Successive spawns of very different
/// widths make the set of active clusters — and therefore the threaded
/// engine's shard work lists — churn mid-run, which is exactly the
/// regression surface the shard-churn agreement test pins.
pub fn build_multi_spawn(
    serial: &[GenOp],
    par_ops: &[GenOp],
    thread_counts: &[u32],
    epilogue: &[GenOp],
) -> Program {
    let mut b = ProgramBuilder::new();
    b.li(ir(20), 64);
    for op in serial {
        emit(&mut b, op);
    }
    for &n in thread_counts {
        let par = b.label();
        let after = b.label();
        b.li(ir(22), n);
        b.spawn(ir(22), par);
        b.jump(after);
        b.bind(par);
        // Thread-private base: 128 + tid*8. Spawns are serialized by
        // join, so reuse of the regions across blocks is race-free.
        b.tid(ir(19));
        b.slli(ir(20), ir(19), 3);
        b.addi(ir(20), ir(20), 128);
        for op in par_ops {
            emit(&mut b, op);
        }
        b.join();
        b.bind(after);
        b.li(ir(20), 64);
    }
    for op in epilogue {
        emit(&mut b, op);
    }
    b.halt();
    b.build().unwrap()
}

/// Like [`build`], but `init_regs` first writes every register the
/// generator can read (r1–r15, f1–f15) at each region entry — the
/// variant the def-before-use property test uses, since raw generated
/// ops legitimately read registers nothing wrote.
pub fn build_with_init(
    serial: &[GenOp],
    par_ops: &[GenOp],
    threads: u8,
    epilogue: &[GenOp],
    init_regs: bool,
) -> Program {
    let emit_init = |b: &mut ProgramBuilder| {
        for r in 1..16 {
            b.li(ir(r), r as u32);
            b.fli(fr(r), r as f32);
        }
    };
    let mut b = ProgramBuilder::new();
    let par = b.label();
    let after = b.label();
    if init_regs {
        emit_init(&mut b);
    }
    b.li(ir(20), 64);
    for op in serial {
        emit(&mut b, op);
    }
    b.li(ir(22), threads as u32);
    b.spawn(ir(22), par);
    b.jump(after);
    b.bind(par);
    // Thread-private base: 128 + tid*8.
    b.tid(ir(19));
    b.slli(ir(20), ir(19), 3);
    b.addi(ir(20), ir(20), 128);
    if init_regs {
        emit_init(&mut b);
    }
    for op in par_ops {
        emit(&mut b, op);
    }
    b.join();
    b.bind(after);
    b.li(ir(20), 64);
    for op in epilogue {
        emit(&mut b, op);
    }
    b.halt();
    b.build().unwrap()
}
