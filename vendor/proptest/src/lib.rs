//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so the workspace
//! vendors the subset of proptest its test suites use: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map` / `boxed`,
//! range and tuple strategies, [`Just`], `any::<T>()`,
//! `collection::vec`, and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` / `prop_oneof!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//! - **No shrinking.** A failing case reports its case number and the
//!   deterministic per-test seed instead of a minimized input.
//! - **Deterministic generation.** Each test function derives its RNG
//!   seed from its own name, so runs are reproducible without a
//!   persistence file; `*.proptest-regressions` files are ignored.
//! - `prop_oneof!` picks arms uniformly (weighted arms unsupported).

/// Deterministic split-mix style RNG used for input generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Create an RNG from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)` with 53 random bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

pub mod test_runner {
    //! Run configuration and failure type for generated tests.

    /// Subset of proptest's run configuration: just the case count.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases each test executes.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random inputs per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Failure raised by `prop_assert!`-style macros inside a case.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Build a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

pub use test_runner::Config as ProptestConfig;

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::TestRng;
    use std::rc::Rc;

    /// A recipe for generating random values of `Self::Value`.
    ///
    /// Unlike real proptest there is no intermediate `ValueTree` and
    /// no shrinking: a strategy simply produces a value from an RNG.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from the strategy `f`
        /// builds out of it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erase this strategy behind a cheaply-clonable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Object-safe generation, used behind [`BoxedStrategy`].
    trait DynStrategy {
        type Value;
        fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A clonable, type-erased strategy.
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.dyn_generate(rng)
        }
    }

    /// Strategy yielding a fixed value (cloned per case).
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from a non-empty arm list.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u64;
                    (lo + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
        )*};
    }
    float_range_strategies!(f32, f64);

    macro_rules! tuple_strategies {
        ($(($($s:ident $i:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }
}

pub mod arbitrary {
    //! `any::<T>()` for primitive types.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Bounded rather than bit-pattern random: avoids NaN/inf,
            // which is what the numeric property tests want.
            (rng.unit_f64() - 0.5) * 2e6
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use super::strategy::Strategy;
    use super::TestRng;

    /// Inclusive length bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with random length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector whose length is drawn from `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub use arbitrary::any;
pub use strategy::{BoxedStrategy, Just, Strategy};

/// Derive a stable 64-bit seed from a test's module path and name.
pub fn seed_from_name(name: &str) -> u64 {
    // FNV-1a; stability across runs is all that matters here.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Everything a proptest-based test file conventionally imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fail the current case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Define random-input test functions.
///
/// Supports the standard form: an optional
/// `#![proptest_config(expr)]` header followed by `#[test] fn
/// name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg = $cfg;
            let seed = $crate::seed_from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases {
                let mut rng = $crate::TestRng::new(
                    seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} failed (seed {:#x}): {}",
                        case + 1,
                        cfg.cases,
                        seed,
                        e
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 1usize..=9, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=9).contains(&y));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn combinators_compose(
            v in crate::collection::vec(0u8..10, 0..6),
            pair in (1u32..5).prop_flat_map(|n| (Just(n), 0u32..n)),
        ) {
            prop_assert!(v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 10));
            prop_assert!(pair.1 < pair.0);
        }

        #[test]
        fn oneof_picks_every_arm(x in prop_oneof![Just(1u8), Just(2u8), 5u8..7]) {
            prop_assert!(x == 1 || x == 2 || x == 5 || x == 6);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = (0u64..1000, crate::collection::vec(0u32..50, 2..8));
        let a = Strategy::generate(&strat, &mut crate::TestRng::new(42));
        let b = Strategy::generate(&strat, &mut crate::TestRng::new(42));
        assert_eq!(a, b);
    }
}
