//! Offline stand-in for the `criterion` crate.
//!
//! Covers the API surface the workspace benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros — with a simple measurement loop: warm up,
//! pick an iteration count targeting a fixed measurement window, take
//! `sample_size` samples, report min/median and derived throughput.
//! There is no statistical regression analysis, HTML report, or
//! baseline comparison.

use std::time::{Duration, Instant};

const WARM_UP: Duration = Duration::from_millis(300);
const MEASUREMENT: Duration = Duration::from_millis(1500);

/// Label for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Work-per-iteration declaration, used to derive rate numbers.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// Passed to benchmark closures; `iter` runs the measured routine.
pub struct Bencher<'a> {
    iters: u64,
    elapsed: Duration,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl Bencher<'_> {
    /// Time `iters` calls of `routine` back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level driver handed to `criterion_group!` functions.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // First free (non-flag) CLI argument is a name filter, like
        // `cargo bench -- <substring>`.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            throughput: None,
            criterion: self,
        }
    }

    /// Group-less single benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut g = self.benchmark_group("");
        g.run(id.id.clone(), f);
        self
    }

    fn matches(&self, full_name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| full_name.contains(f))
    }
}

/// A set of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    criterion: &'c Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declare per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(id.id.clone(), f);
        self
    }

    /// Benchmark a closure with an input reference.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.id.clone(), |b| f(b, input));
        self
    }

    /// Close the group (kept for API compatibility; reporting is
    /// incremental, so this is a no-op).
    pub fn finish(self) {}

    fn run<F>(&mut self, id: String, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let full_name = if self.name.is_empty() {
            id
        } else {
            format!("{}/{}", self.name, id)
        };
        if !self.criterion.matches(&full_name) {
            return;
        }

        // Warm up and estimate per-iteration cost.
        let mut iters = 1u64;
        let per_iter = loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
                _marker: Default::default(),
            };
            f(&mut b);
            if b.elapsed >= WARM_UP / 4 || iters >= 1 << 30 {
                break b.elapsed.as_secs_f64() / iters as f64;
            }
            iters *= 4;
        };

        // Choose a per-sample iteration count so all samples together
        // fit roughly in the measurement window.
        let per_sample = MEASUREMENT.as_secs_f64() / self.sample_size as f64;
        let iters = ((per_sample / per_iter.max(1e-12)) as u64).clamp(1, 1 << 32);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
                _marker: Default::default(),
            };
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        let min = samples[0];

        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>12}/s", format_si(n as f64 / median))
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>10}B/s", format_si(n as f64 / median))
            }
            None => String::new(),
        };
        println!(
            "bench: {:<48} median {:>12}  min {:>12}  ({} samples x {} iters){}",
            full_name,
            format_time(median),
            format_time(min),
            self.sample_size,
            iters,
            rate
        );
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn format_si(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2}k", v / 1e3)
    } else {
        format!("{v:.1}")
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion { filter: None };
        let mut g = c.benchmark_group("unit");
        g.sample_size(2);
        let mut ran = false;
        g.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        g.finish();
        assert!(ran);
    }
}
