//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of the rayon API it actually
//! uses: `par_chunks_mut` / `par_chunks_exact_mut` with
//! `for_each` / `for_each_init` / `enumerate().for_each`, plus
//! [`current_num_threads`]. Work is distributed over `std::thread`
//! scoped workers pulling batches from a shared queue, so callers get
//! genuine multi-core execution with the same ownership guarantees
//! (each chunk is a disjoint `&mut [T]`).
//!
//! This is not a general rayon replacement: no `join`, no splitting
//! adaptivity, no thread-pool reuse. Chunk-parallel FFT stages — the
//! only users in this workspace — do coarse enough work per chunk
//! that a shared-queue executor is within noise of real rayon.

use std::sync::Mutex;
use std::thread;

/// Number of worker threads a parallel iterator will use.
pub fn current_num_threads() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `f(index, item)` for every item, distributing batches of items
/// across up to [`current_num_threads`] scoped workers.
fn for_each_indexed<I, S, F, N>(items: Vec<I>, new_state: N, f: F)
where
    I: Send,
    S: Send,
    N: Fn() -> S + Sync,
    F: Fn(&mut S, usize, I) + Sync,
{
    let total = items.len();
    let workers = current_num_threads().min(total);
    if workers <= 1 {
        let mut state = new_state();
        for (i, item) in items.into_iter().enumerate() {
            f(&mut state, i, item);
        }
        return;
    }
    // Batched pull from a shared queue: bounds contention while still
    // load-balancing uneven chunk costs.
    let batch = (total / (4 * workers)).max(1);
    let queue = Mutex::new(items.into_iter().enumerate());
    thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                let mut state = new_state();
                let mut grabbed = Vec::with_capacity(batch);
                loop {
                    {
                        let mut q = queue.lock().unwrap();
                        for _ in 0..batch {
                            match q.next() {
                                Some(pair) => grabbed.push(pair),
                                None => break,
                            }
                        }
                    }
                    if grabbed.is_empty() {
                        return;
                    }
                    for (i, item) in grabbed.drain(..) {
                        f(&mut state, i, item);
                    }
                }
            });
        }
    });
}

/// Parallel iterator over disjoint mutable chunks of a slice.
pub struct ParChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

/// [`ParChunksMut`] with chunk indices attached (from `.enumerate()`).
pub struct ParChunksMutEnumerate<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Attach the chunk index, as in `std`'s `Iterator::enumerate`.
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate {
            chunks: self.chunks,
        }
    }

    /// Apply `f` to every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        for_each_indexed(self.chunks, || (), |(), _, chunk| f(chunk));
    }

    /// Apply `f` to every chunk in parallel with per-worker scratch
    /// state created by `init` (rayon creates one per split; one per
    /// worker thread is observably the same for scratch buffers).
    pub fn for_each_init<S, N, F>(self, init: N, f: F)
    where
        S: Send,
        N: Fn() -> S + Sync,
        F: Fn(&mut S, &mut [T]) + Sync,
    {
        for_each_indexed(self.chunks, init, |state, _, chunk| f(state, chunk));
    }
}

impl<T: Send> ParChunksMutEnumerate<'_, T> {
    /// Apply `f` to every `(index, chunk)` pair in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        for_each_indexed(self.chunks, || (), |(), i, chunk| f((i, chunk)));
    }
}

/// Slice extension trait providing the chunk-parallel entry points.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel version of `slice::chunks_mut`.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
    /// Parallel version of `slice::chunks_exact_mut` (the remainder,
    /// if any, is not visited).
    fn par_chunks_exact_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        ParChunksMut {
            chunks: self.chunks_mut(chunk_size).collect(),
        }
    }

    fn par_chunks_exact_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        ParChunksMut {
            chunks: self.chunks_exact_mut(chunk_size).collect(),
        }
    }
}

/// Rayon-style prelude; `use rayon::prelude::*` pulls in the traits.
pub mod prelude {
    pub use crate::ParallelSliceMut;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn chunks_visit_everything_once() {
        let mut v = vec![0u32; 1024];
        v.par_chunks_mut(7).enumerate().for_each(|(i, c)| {
            for x in c.iter_mut() {
                *x += 1 + i as u32;
            }
        });
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, 1 + (i / 7) as u32);
        }
    }

    #[test]
    fn exact_chunks_skip_remainder() {
        let mut v = [0u32; 10];
        v.par_chunks_exact_mut(4)
            .for_each(|c| c.iter_mut().for_each(|x| *x = 1));
        assert_eq!(v[..8], [1; 8]);
        assert_eq!(v[8..], [0; 2]);
    }

    #[test]
    fn for_each_init_gets_scratch() {
        let mut v = vec![1u64; 64];
        v.par_chunks_mut(3).for_each_init(
            || vec![0u64; 4],
            |scratch, c| {
                scratch[0] = c.iter().sum();
                c.iter_mut().for_each(|x| *x = scratch[0]);
            },
        );
        assert_eq!(v[0], 3);
        assert_eq!(v[63], 1);
    }
}
