//! Physical (silicon area, power, I/O) model — Table III of the paper
//! and the power column of Table VI.
//!
//! Component areas are calibrated at 22 nm so the five paper
//! configurations land within ~2.5 % of Table III's totals; the
//! 22 nm → 14 nm transition applies Intel's published 0.54 logic
//! scaling \[30\] to logic area *and* power. Off-chip I/O energy follows
//! Section V: copper/serial transceivers for the small configurations
//! (~15 pJ/bit), 600 fJ/bit WDM photonics for "128k x2" \[31\], and
//! ~3 pJ/bit fast MFC-cooled photonics for "128k x4" \[32\].

use crate::config::XmtConfig;
use xmt_noc::NocAreaModel;

/// Calibrated component areas at 22 nm (mm²).
const CLUSTER_MM2: f64 = 0.90; // 32 TCUs + shared units + 1 FPU
const EXTRA_FPU_MM2: f64 = 0.058; // each FPU beyond the first
const MODULE_MM2: f64 = 0.45; // cache slice + module logic
const FIXED_MM2: f64 = 8.0; // MTCU, global registers, PS unit, misc

/// Calibrated component powers at 22 nm (W).
const CLUSTER_W: f64 = 1.0;
const EXTRA_FPU_W: f64 = 0.25;
const MODULE_W: f64 = 0.25;
const NOC_W_PER_MM2: f64 = 0.5;

/// Physical summary of one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhysicalSummary {
    /// Human-readable name.
    pub name: &'static str,
    /// The `tech_nm` value.
    pub tech_nm: u32,
    /// The `si_layers` value.
    pub si_layers: u32,
    /// Total silicon area in mm².
    pub total_area_mm2: f64,
    /// Area per 3D layer in mm².
    pub area_per_layer_mm2: f64,
    /// Total area normalized to 22 nm (for Table VI comparisons).
    pub area_22nm_mm2: f64,
    /// Peak power in W.
    pub peak_power_w: f64,
    /// Off-chip bandwidth in Tb/s.
    pub offchip_tbps: f64,
    /// Off-chip I/O power in W.
    pub io_power_w: f64,
    /// Package pins needed for DRAM with high-speed serial links
    /// (7 pins per channel, Section V-B).
    pub serial_pins: usize,
}

/// Logic scaling factor from 22 nm to the configuration's node.
fn tech_scale(tech_nm: u32) -> f64 {
    match tech_nm {
        22 => 1.0,
        14 => 0.54,
        other => panic!("no scaling data for {other} nm"),
    }
}

/// I/O energy per bit (pJ) by configuration (Section V narrative).
fn io_pj_per_bit(cfg: &XmtConfig) -> f64 {
    match cfg.name {
        // Copper / high-speed serial transceivers.
        "4k" | "8k" | "64k" => 15.0,
        // 600 fJ/bit WDM silicon photonics [31].
        "128k x2" => 0.6,
        // ~3 pJ/bit fast MFC-cooled photonic transceivers [32].
        "128k x4" => 3.0,
        _ => 15.0,
    }
}

/// Compute the physical summary for a configuration.
pub fn summarize(cfg: &XmtConfig) -> PhysicalSummary {
    let s = tech_scale(cfg.tech_nm);
    let noc_model = if cfg.tech_nm == 14 {
        NocAreaModel::nm14()
    } else {
        NocAreaModel::nm22()
    };
    let noc_area = noc_model.area_mm2(&cfg.topology());

    let logic_area = cfg.clusters as f64
        * (CLUSTER_MM2 + (cfg.fpus_per_cluster as f64 - 1.0) * EXTRA_FPU_MM2)
        + cfg.memory_modules as f64 * MODULE_MM2
        + FIXED_MM2;
    let total = logic_area * s + noc_area;

    // Off-chip bandwidth: channel count × 8 B/cycle × clock (×8 bits).
    let offchip_tbps = cfg.peak_dram_gbs() * 8.0 / 1000.0;
    let io_power_w = offchip_tbps * 1e12 * io_pj_per_bit(cfg) * 1e-12 / 1.0;

    let logic_power = cfg.clusters as f64
        * (CLUSTER_W + (cfg.fpus_per_cluster as f64 - 1.0) * EXTRA_FPU_W)
        + cfg.memory_modules as f64 * MODULE_W;
    let noc_power = noc_area * NOC_W_PER_MM2;
    let peak_power_w = logic_power * s + noc_power + io_power_w;

    PhysicalSummary {
        name: cfg.name,
        tech_nm: cfg.tech_nm,
        si_layers: cfg.si_layers,
        total_area_mm2: total,
        area_per_layer_mm2: total / cfg.si_layers as f64,
        area_22nm_mm2: logic_area + noc_area / noc_model.tech_scale * 1.0,
        peak_power_w,
        offchip_tbps,
        io_power_w,
        serial_pins: cfg.dram_channels() * 7,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::XmtConfig;

    /// Paper Table III totals (mm²).
    const PAPER_TOTALS: [(&str, f64); 5] = [
        ("4k", 227.0),
        ("8k", 551.0),
        ("64k", 3046.0),
        ("128k x2", 3284.0),
        ("128k x4", 3540.0),
    ];

    #[test]
    fn table3_totals_within_tolerance() {
        for (cfg, (name, paper)) in XmtConfig::paper_configs().iter().zip(PAPER_TOTALS) {
            let s = summarize(cfg);
            assert_eq!(s.name, name);
            let err = (s.total_area_mm2 - paper).abs() / paper;
            assert!(
                err < 0.035,
                "{name}: model {:.0} mm² vs paper {paper} mm² ({:.1} % off)",
                s.total_area_mm2,
                err * 100.0
            );
        }
    }

    #[test]
    fn layer_counts_match_table3() {
        let layers: Vec<u32> = XmtConfig::paper_configs()
            .iter()
            .map(|c| summarize(c).si_layers)
            .collect();
        assert_eq!(layers, vec![1, 2, 8, 9, 9]);
    }

    #[test]
    fn per_layer_area_fits_2cm_chip() {
        // Section V: a 2 cm × 2 cm = 400 mm² chip per layer.
        for cfg in XmtConfig::paper_configs() {
            let s = summarize(&cfg);
            assert!(
                s.area_per_layer_mm2 < 400.0,
                "{}: {:.0} mm²/layer exceeds the 4 cm² die",
                s.name,
                s.area_per_layer_mm2
            );
        }
    }

    #[test]
    fn xmt_128k_x4_power_matches_table6() {
        // Table VI: 7.0 kW peak.
        let s = summarize(&XmtConfig::xmt_128k_x4());
        let kw = s.peak_power_w / 1000.0;
        assert!((kw - 7.0).abs() < 0.5, "128k x4 power {kw:.2} kW");
    }

    #[test]
    fn photonic_bandwidth_statements() {
        // Section V-B: the 8k configuration's 32 channels need 6.76 Tb/s.
        let s8 = summarize(&XmtConfig::xmt_8k());
        assert!(
            (s8.offchip_tbps - 6.76).abs() < 0.05,
            "8k {}",
            s8.offchip_tbps
        );
        // 224 serial pins for 32 channels at 7 pins each.
        assert_eq!(s8.serial_pins, 224);
        // Section V-C: 256 channels → 1792 pins.
        assert_eq!(summarize(&XmtConfig::xmt_64k()).serial_pins, 1792);
        // 128k x2 photonic power stays within the 168 W envelope of the
        // 280 Tb/s WDM solution [31].
        let sx2 = summarize(&XmtConfig::xmt_128k_x2());
        assert!(sx2.io_power_w < 168.0, "x2 io {}", sx2.io_power_w);
        assert!(sx2.offchip_tbps < 280.0);
    }

    #[test]
    fn air_cooling_boundary() {
        // Section V-D: air cooling removes ≤ 600 W from a 4 cm² chip.
        // The small configurations fit; the MFC ones exceed it.
        let p4 = summarize(&XmtConfig::xmt_4k()).peak_power_w;
        assert!(p4 < 600.0, "4k draws {p4} W");
        let p64 = summarize(&XmtConfig::xmt_64k()).peak_power_w;
        assert!(p64 > 600.0, "64k should need MFC, draws {p64} W");
    }
}
