//! Exporters for probe data: Chrome `trace_event` JSON and a compact
//! per-phase roofline/stall summary.
//!
//! [`chrome_trace`] turns an [`IntervalProbe`](crate::IntervalProbe)
//! row stream plus the [`RunReport`] spawn log into a JSON document
//! loadable by `chrome://tracing` (or Perfetto): counter tracks for
//! issue rate, stall causes, NoC occupancy and per-DRAM-channel busy
//! cycles, plus one duration event per parallel section.
//!
//! [`phase_table`] renders the per-spawn statistics as a stall
//! attribution table against the configuration's roofline — the
//! Section VI-B analysis (bandwidth-bound phases sit left of the
//! ridge; their dominant stall should be the LSU/NoC/DRAM path).

use crate::config::XmtConfig;
use crate::machine::RunReport;
use crate::probe::IntervalRow;
use roofline::Platform;
use std::fmt::Write as _;

/// Microseconds per cycle at `clock_ghz` (trace_event timestamps are
/// in microseconds).
fn us_per_cycle(cfg: &XmtConfig) -> f64 {
    1.0 / (cfg.clock_ghz * 1000.0)
}

fn counter(out: &mut String, name: &str, ts: f64, args: &[(&str, u64)]) {
    let _ = write!(
        out,
        r#"{{"name":"{name}","ph":"C","pid":1,"tid":0,"ts":{ts:.4},"args":{{"#
    );
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, r#""{k}":{v}"#);
    }
    out.push_str("}},\n");
}

/// Render probe rows and the spawn log as Chrome `trace_event` JSON.
///
/// Counter tracks (one `ph:"C"` event per retained sample):
/// `issue` (instructions/flops per interval), `stalls` (per-cause
/// cycles per interval), `noc` (in-flight flits, injection
/// rejections), `dram busy` (per-channel busy cycles per interval),
/// `queues` (module queue depth, transactions in flight). Each spawn
/// becomes a `ph:"X"` duration event on its own track. Timestamps are
/// microseconds of simulated time at the configuration's clock.
pub fn chrome_trace(rows: &[IntervalRow], report: &RunReport, cfg: &XmtConfig) -> String {
    let upc = us_per_cycle(cfg);
    let mut out = String::with_capacity(rows.len() * 256 + 4096);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let _ = writeln!(
        out,
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{{\"name\":\"xmt-sim {}\"}}}},",
        cfg.name
    );
    for r in rows {
        let ts = r.boundary as f64 * upc;
        counter(
            &mut out,
            "issue",
            ts,
            &[("instructions", r.instructions), ("flops", r.flops)],
        );
        counter(
            &mut out,
            "stalls",
            ts,
            &[
                ("scoreboard", r.stall_scoreboard),
                ("fpu", r.stall_fpu),
                ("mdu", r.stall_mdu),
                ("lsu", r.stall_lsu),
            ],
        );
        counter(
            &mut out,
            "noc",
            ts,
            &[
                ("in_flight", r.noc_in_flight),
                ("rejections", r.noc_rejections),
            ],
        );
        let _ = write!(
            out,
            r#"{{"name":"dram busy","ph":"C","pid":1,"tid":0,"ts":{ts:.4},"args":{{"#
        );
        for (k, busy) in r.channel_busy.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            let _ = write!(out, r#""ch{k}":{busy}"#);
        }
        out.push_str("}},\n");
        counter(
            &mut out,
            "queues",
            ts,
            &[
                ("module_queue", r.module_queue),
                ("txns_in_flight", r.txns_in_flight),
            ],
        );
        // Fault events only appear when fault injection is active, so
        // healthy traces don't carry four all-zero counter tracks.
        if r.ecc_corrected | r.ecc_detected | r.noc_corrupted | r.noc_retried != 0 {
            counter(
                &mut out,
                "faults",
                ts,
                &[
                    ("ecc_corrected", r.ecc_corrected),
                    ("ecc_detected", r.ecc_detected),
                    ("noc_corrupted", r.noc_corrupted),
                    ("noc_retried", r.noc_retried),
                ],
            );
        }
    }
    for s in &report.spawns {
        let _ = writeln!(
            out,
            "{{\"name\":\"spawn {} ({} thr)\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\
             \"ts\":{:.4},\"dur\":{:.4},\"args\":{{\"threads\":{},\"cycles\":{},\
             \"flops\":{},\"dram_bytes\":{}}}}},",
            s.index,
            s.threads,
            s.start_cycle as f64 * upc,
            s.cycles as f64 * upc,
            s.threads,
            s.cycles,
            s.flops,
            s.dram_bytes
        );
    }
    // Closing metadata event avoids a trailing comma without
    // look-behind bookkeeping.
    let _ = write!(
        out,
        "{{\"name\":\"cycles\",\"ph\":\"M\",\"pid\":1,\"args\":{{\"total\":{}}}}}\n]}}\n",
        report.stats.cycles
    );
    out
}

/// Name of the largest stall bucket of a phase, with its share of all
/// stall cycles (`None` when the phase never stalled).
fn dominant_stall(sc: u64, fpu: u64, mdu: u64, lsu: u64) -> Option<(&'static str, f64)> {
    let total = sc + fpu + mdu + lsu;
    if total == 0 {
        return None;
    }
    let (name, max) = [
        ("scoreboard", sc),
        ("fpu", fpu),
        ("mdu", mdu),
        ("lsu/mem", lsu),
    ]
    .into_iter()
    .max_by_key(|&(_, v)| v)?;
    Some((name, max as f64 / total as f64))
}

/// Per-phase stall-attribution table against the configuration's
/// roofline.
///
/// One row per parallel section: thread count, wall cycles, achieved
/// GFLOPS, operational intensity, percent of the roofline-attainable
/// rate, whether the phase sits on the bandwidth slope or under the
/// compute ceiling, and the dominant stall cause with its share of
/// all stall cycles.
pub fn phase_table(report: &RunReport, cfg: &XmtConfig) -> String {
    let plat = Platform::new(cfg.name, cfg.peak_gflops(), cfg.peak_dram_gbs());
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: peak {:.1} GFLOPS, {:.1} GB/s, ridge {:.2} FLOP/B",
        plat.name,
        plat.peak_gflops,
        plat.peak_gbs,
        plat.ridge()
    );
    let _ = writeln!(
        out,
        "{:>5} {:>8} {:>10} {:>9} {:>8} {:>6} {:>9}  dominant stall",
        "spawn", "threads", "cycles", "GFLOPS", "FLOP/B", "%roof", "bound"
    );
    for s in &report.spawns {
        let gf = s.gflops(cfg.clock_ghz);
        let oi = s.intensity();
        let attain = plat.attainable(oi);
        let pct = if attain > 0.0 {
            100.0 * gf / attain
        } else {
            0.0
        };
        let bound = if plat.bandwidth_bound(oi) {
            "bw"
        } else {
            "compute"
        };
        let stall = match dominant_stall(s.stall_scoreboard, s.stall_fpu, s.stall_mdu, s.stall_lsu)
        {
            Some((name, share)) => format!("{name} ({:.0}%)", 100.0 * share),
            None => "-".to_string(),
        };
        let _ = writeln!(
            out,
            "{:>5} {:>8} {:>10} {:>9.2} {:>8.3} {:>6.1} {:>9}  {}",
            s.index, s.threads, s.cycles, gf, oi, pct, bound, stall
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{MachineStats, SpawnStats, UtilizationReport};
    use crate::probe::BlockedTcus;

    fn report() -> RunReport {
        RunReport {
            stats: MachineStats {
                cycles: 2000,
                ..Default::default()
            },
            spawns: vec![SpawnStats {
                index: 0,
                threads: 64,
                start_cycle: 100,
                cycles: 900,
                instructions: 5000,
                flops: 1200,
                mem_reads: 800,
                mem_writes: 400,
                dram_bytes: 4800,
                stall_scoreboard: 10,
                stall_fpu: 5,
                stall_mdu: 0,
                stall_lsu: 300,
            }],
            utilization: UtilizationReport::default(),
        }
    }

    fn row() -> IntervalRow {
        IntervalRow {
            boundary: 256,
            cycle: 256,
            spawn: Some(0),
            instructions: 100,
            flops: 40,
            mem_reads: 20,
            mem_writes: 10,
            threads: 8,
            stall_scoreboard: 3,
            stall_fpu: 1,
            stall_mdu: 0,
            stall_lsu: 12,
            dram_bytes: 512,
            noc_injected: 30,
            noc_delivered: 28,
            noc_rejections: 2,
            noc_in_flight: 4,
            txns_in_flight: 6,
            blocked: BlockedTcus::default(),
            module_queue: 3,
            ecc_corrected: 0,
            ecc_detected: 0,
            noc_corrupted: 0,
            noc_retried: 0,
            channel_busy: vec![17, 9],
            channel_queue: vec![1, 0],
        }
    }

    #[test]
    fn chrome_trace_is_structurally_sound() {
        let t = chrome_trace(&[row()], &report(), &XmtConfig::xmt_4k().scaled_to(8));
        assert!(t.starts_with('{') && t.trim_end().ends_with('}'));
        // Balanced braces and brackets (no strings in the output
        // contain either character).
        let depth = |open: char, close: char| {
            t.chars().filter(|&c| c == open).count() as i64
                - t.chars().filter(|&c| c == close).count() as i64
        };
        assert_eq!(depth('{', '}'), 0);
        assert_eq!(depth('[', ']'), 0);
        assert!(t.contains(r#""name":"dram busy""#));
        assert!(t.contains(r#""ch1":9"#));
        assert!(t.contains(r#""name":"spawn 0 (64 thr)""#));
        assert!(t.contains(r#""ph":"X""#));
        // No trailing comma before the closing bracket.
        assert!(!t.contains(",\n]"));
        // Healthy rows emit no fault track.
        assert!(!t.contains(r#""name":"faults""#));
    }

    #[test]
    fn fault_counters_get_their_own_track() {
        let mut r = row();
        r.ecc_corrected = 3;
        r.noc_retried = 2;
        let t = chrome_trace(&[r], &report(), &XmtConfig::xmt_4k().scaled_to(8));
        assert!(t.contains(r#""name":"faults""#));
        assert!(t.contains(r#""ecc_corrected":3"#));
        assert!(t.contains(r#""noc_retried":2"#));
    }

    #[test]
    fn phase_table_attributes_memory_stalls() {
        let table = phase_table(&report(), &XmtConfig::xmt_4k().scaled_to(8));
        assert!(table.contains("ridge"));
        assert!(table.contains("lsu/mem (95%)"));
        assert!(table.contains("bw") || table.contains("compute"));
    }

    #[test]
    fn dominant_stall_edge_cases() {
        assert_eq!(dominant_stall(0, 0, 0, 0), None);
        let (n, s) = dominant_stall(1, 1, 1, 1).unwrap();
        assert_eq!(s, 0.25);
        assert!(["scoreboard", "fpu", "mdu", "lsu/mem"].contains(&n));
    }
}
