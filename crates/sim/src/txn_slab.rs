//! Generational slab for in-flight memory transactions.
//!
//! The simulator threads a `u64` tag through the request NoC, the
//! memory modules and the reply NoC for every load/store in flight.
//! Storing the transaction record in a `HashMap<u64, Txn>` put a hash
//! probe on every hop of every memory access; this slab packs live
//! transactions into a dense `Vec` and encodes `(generation << 32) |
//! slot` in the tag, so each lookup is one bounds-checked index plus a
//! generation compare.
//!
//! Determinism: tags are allocated via [`TxnSlab::peek_tag`] /
//! [`TxnSlab::insert`] and released by [`TxnSlab::remove`]. Every
//! engine performs these calls in the same machine-defined order
//! (injection replay on the main thread, reply delivery in NoC order),
//! and the free list is LIFO, so the tag sequence — and therefore every
//! stat that could observe it — is identical across engines. No
//! component ever orders on the numeric tag value; it is opaque.

/// A generational slab keyed by dense `u64` tags.
#[derive(Debug)]
pub struct TxnSlab<T> {
    slots: Vec<Option<T>>,
    /// Generation per slot, bumped on free; stale tags never alias.
    gens: Vec<u32>,
    /// LIFO free list of slot indices.
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for TxnSlab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TxnSlab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    #[inline(always)]
    fn tag_of(slot: u32, generation: u32) -> u64 {
        (generation as u64) << 32 | slot as u64
    }

    /// The tag the next [`TxnSlab::insert`] will return. Callers that
    /// must publish the tag before committing the insert (the NoC
    /// injection protocol stamps the tag into the flit, and only a
    /// successful injection records the transaction) use this to keep
    /// allocation and commit separate.
    #[inline]
    pub fn peek_tag(&self) -> u64 {
        match self.free.last() {
            Some(&slot) => Self::tag_of(slot, self.gens[slot as usize]),
            None => Self::tag_of(self.slots.len() as u32, 0),
        }
    }

    /// Insert a value, returning its tag (== the preceding
    /// [`TxnSlab::peek_tag`]).
    #[inline]
    pub fn insert(&mut self, value: T) -> u64 {
        self.len += 1;
        match self.free.pop() {
            Some(slot) => {
                let s = slot as usize;
                debug_assert!(self.slots[s].is_none());
                self.slots[s] = Some(value);
                Self::tag_of(slot, self.gens[s])
            }
            None => {
                let slot = self.slots.len() as u32;
                self.slots.push(Some(value));
                self.gens.push(0);
                Self::tag_of(slot, 0)
            }
        }
    }

    /// Shared access by tag; `None` for stale or never-issued tags.
    #[inline(always)]
    pub fn get(&self, tag: u64) -> Option<&T> {
        let slot = tag as u32 as usize;
        if self.gens.get(slot) != Some(&((tag >> 32) as u32)) {
            return None;
        }
        self.slots[slot].as_ref()
    }

    /// Mutable access by tag.
    #[inline(always)]
    pub fn get_mut(&mut self, tag: u64) -> Option<&mut T> {
        let slot = tag as u32 as usize;
        if self.gens.get(slot) != Some(&((tag >> 32) as u32)) {
            return None;
        }
        self.slots[slot].as_mut()
    }

    /// Remove and return the value for `tag`, freeing its slot.
    #[inline]
    pub fn remove(&mut self, tag: u64) -> Option<T> {
        let slot = tag as u32 as usize;
        if self.gens.get(slot) != Some(&((tag >> 32) as u32)) {
            return None;
        }
        let v = self.slots[slot].take()?;
        self.gens[slot] = self.gens[slot].wrapping_add(1);
        self.free.push(slot as u32);
        self.len -= 1;
        Some(v)
    }

    /// Live transactions.
    #[inline(always)]
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no transactions are live.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s = TxnSlab::new();
        assert!(s.is_empty());
        let a = s.insert("a");
        let b = s.insert("b");
        assert_ne!(a, b);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(a), Some(&"a"));
        assert_eq!(s.get(b), Some(&"b"));
        *s.get_mut(a).unwrap() = "a2";
        assert_eq!(s.remove(a), Some("a2"));
        assert_eq!(s.get(a), None, "removed tag is dead");
        assert_eq!(s.remove(a), None, "double remove is None");
        assert_eq!(s.len(), 1);
        assert_eq!(s.remove(b), Some("b"));
        assert!(s.is_empty());
    }

    #[test]
    fn peek_tag_matches_insert() {
        let mut s = TxnSlab::new();
        for i in 0..10u32 {
            let peeked = s.peek_tag();
            assert_eq!(s.insert(i), peeked);
        }
        // Free a middle slot: the next allocation reuses it (LIFO) and
        // peek still predicts the tag exactly.
        let victim = 3u64; // slot 3, generation 0
        assert_eq!(s.remove(victim), Some(3));
        let peeked = s.peek_tag();
        let tag = s.insert(99);
        assert_eq!(tag, peeked);
        assert_eq!(tag as u32, 3, "LIFO free list reuses slot 3");
        assert_eq!((tag >> 32) as u32, 1, "generation bumped");
    }

    #[test]
    fn stale_tags_never_alias_reused_slots() {
        let mut s = TxnSlab::new();
        let old = s.insert(1);
        s.remove(old);
        let new = s.insert(2);
        assert_eq!(old as u32, new as u32, "same slot");
        assert_ne!(old, new, "different generation");
        assert_eq!(s.get(old), None);
        assert_eq!(s.get(new), Some(&2));
        assert_eq!(s.get_mut(old), None);
        assert_eq!(s.remove(old), None);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn lifo_reuse_keeps_slab_dense() {
        let mut s = TxnSlab::new();
        let tags: Vec<u64> = (0..8).map(|i| s.insert(i)).collect();
        for &t in tags.iter().rev() {
            s.remove(t);
        }
        // Re-inserting 8 values reuses the original 8 slots in FIFO
        // slot order (LIFO over the reversed frees).
        for i in 0..8u32 {
            let t = s.insert(i);
            assert_eq!(t as u32, i, "slot {i} reused, no growth");
        }
        assert_eq!(s.len(), 8);
    }
}
