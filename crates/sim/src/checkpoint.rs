//! Quiescent-state checkpointing.
//!
//! A [`Checkpoint`] captures everything a machine needs to resume a run
//! bit-identically: the architectural state (memory image, global and
//! MTCU registers, mode PC, PS-unit counters), the accumulated
//! statistics, and the replayable component state (cache tag stores,
//! DRAM-channel stats plus the ECC fault-stream cursor, NoC counters
//! plus the link-fault cursor). Checkpoints are only taken at
//! *quiescent* points — serial mode with the whole memory system
//! drained — so no in-flight transaction, NoC flit or DRAM transfer
//! ever needs to be serialized; [`crate::Machine::run_until`] finds
//! such a point on request.
//!
//! The byte format ([`Checkpoint::to_bytes`]) is versioned
//! little-endian with explicit geometry, so a stale or mismatched blob
//! is rejected with a typed [`SimError`] instead of resuming garbage.

use crate::machine::{MachineStats, SimError, SpawnStats};
use xmt_mem::{CacheStats, DramStats, ModuleStats};
use xmt_noc::NetStats;

/// Format magic: "XMTCKPT" plus a format version byte.
const MAGIC: u64 = 0x584D_5443_4B50_5401;

/// Per-module replayable state: the cache tag store and counters.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ModuleState {
    pub(crate) tags: Vec<u64>,
    pub(crate) cache: CacheStats,
    pub(crate) module: ModuleStats,
}

/// Per-channel replayable state: counters plus the ECC fault cursor.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ChannelState {
    pub(crate) stats: DramStats,
    pub(crate) transfers: u64,
}

/// A resumable snapshot of a quiescent [`crate::Machine`]. Produced by
/// [`crate::Machine::checkpoint`], consumed by
/// [`crate::MachineBuilder::resume`]; serializable via
/// [`Checkpoint::to_bytes`] / [`Checkpoint::from_bytes`].
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    // Geometry — validated against the resuming builder's config.
    pub(crate) clusters: u32,
    pub(crate) tcus_per_cluster: u32,
    pub(crate) memory_modules: u32,
    pub(crate) dram_channels: u32,
    pub(crate) prog_len: u32,
    // Architectural state.
    pub(crate) cycle: u64,
    pub(crate) pc: u32,
    pub(crate) next_tid: u32,
    pub(crate) spawn_count: u32,
    pub(crate) spawn_entry: u32,
    pub(crate) gregs: Vec<u32>,
    pub(crate) mtcu_iregs: Vec<u32>,
    pub(crate) mtcu_fregs: Vec<u32>,
    pub(crate) mem: Vec<u32>,
    // Accumulated observables.
    pub(crate) stats: MachineStats,
    pub(crate) spawn_log: Vec<SpawnStats>,
    pub(crate) cluster_rr: Vec<u32>,
    pub(crate) cluster_instr: Vec<u64>,
    pub(crate) modules: Vec<ModuleState>,
    pub(crate) channels: Vec<ChannelState>,
    pub(crate) req_stats: NetStats,
    pub(crate) reply_stats: NetStats,
}

impl Checkpoint {
    /// The machine cycle the checkpoint was taken at.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Serialize to the versioned little-endian byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(64 + self.mem.len() * 4);
        put_u64(&mut b, MAGIC);
        for v in [
            self.clusters,
            self.tcus_per_cluster,
            self.memory_modules,
            self.dram_channels,
            self.prog_len,
            self.pc,
            self.next_tid,
            self.spawn_count,
            self.spawn_entry,
        ] {
            put_u32(&mut b, v);
        }
        put_u64(&mut b, self.cycle);
        put_u32s(&mut b, &self.gregs);
        put_u32s(&mut b, &self.mtcu_iregs);
        put_u32s(&mut b, &self.mtcu_fregs);
        put_u32s(&mut b, &self.mem);
        put_machine_stats(&mut b, &self.stats);
        put_u32(&mut b, self.spawn_log.len() as u32);
        for s in &self.spawn_log {
            put_spawn_stats(&mut b, s);
        }
        put_u32s(&mut b, &self.cluster_rr);
        put_u64s(&mut b, &self.cluster_instr);
        put_u32(&mut b, self.modules.len() as u32);
        for m in &self.modules {
            put_u64s(&mut b, &m.tags);
            for v in [
                m.cache.accesses,
                m.cache.hits,
                m.cache.misses,
                m.cache.writebacks,
            ] {
                put_u64(&mut b, v);
            }
            put_u64(&mut b, m.cache.peak_queue as u64);
            put_u64(&mut b, m.module.merged_misses);
            put_u64(&mut b, m.module.responses);
        }
        put_u32(&mut b, self.channels.len() as u32);
        for c in &self.channels {
            put_dram_stats(&mut b, &c.stats);
            put_u64(&mut b, c.transfers);
        }
        put_net_stats(&mut b, &self.req_stats);
        put_net_stats(&mut b, &self.reply_stats);
        b
    }

    /// Parse the byte format; rejects truncated, corrupt or
    /// differently-versioned blobs with a typed error.
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint, SimError> {
        let mut r = Reader { b: bytes, pos: 0 };
        if r.u64()? != MAGIC {
            return Err(corrupt("checkpoint magic/version mismatch"));
        }
        let clusters = r.u32()?;
        let tcus_per_cluster = r.u32()?;
        let memory_modules = r.u32()?;
        let dram_channels = r.u32()?;
        let prog_len = r.u32()?;
        let pc = r.u32()?;
        let next_tid = r.u32()?;
        let spawn_count = r.u32()?;
        let spawn_entry = r.u32()?;
        let cycle = r.u64()?;
        let gregs = r.u32s()?;
        let mtcu_iregs = r.u32s()?;
        let mtcu_fregs = r.u32s()?;
        let mem = r.u32s()?;
        let stats = r.machine_stats()?;
        let n_spawns = r.len()?;
        let mut spawn_log = Vec::with_capacity(n_spawns.min(1 << 16));
        for _ in 0..n_spawns {
            spawn_log.push(r.spawn_stats()?);
        }
        let cluster_rr = r.u32s()?;
        let cluster_instr = r.u64s()?;
        let n_modules = r.len()?;
        let mut modules = Vec::with_capacity(n_modules.min(1 << 16));
        for _ in 0..n_modules {
            let tags = r.u64s()?;
            let cache = CacheStats {
                accesses: r.u64()?,
                hits: r.u64()?,
                misses: r.u64()?,
                writebacks: r.u64()?,
                peak_queue: r.u64()? as usize,
            };
            let module = ModuleStats {
                merged_misses: r.u64()?,
                responses: r.u64()?,
            };
            modules.push(ModuleState {
                tags,
                cache,
                module,
            });
        }
        let n_channels = r.len()?;
        let mut channels = Vec::with_capacity(n_channels.min(1 << 16));
        for _ in 0..n_channels {
            let stats = r.dram_stats()?;
            let transfers = r.u64()?;
            channels.push(ChannelState { stats, transfers });
        }
        let req_stats = r.net_stats()?;
        let reply_stats = r.net_stats()?;
        if r.pos != bytes.len() {
            return Err(corrupt("trailing bytes after checkpoint payload"));
        }
        Ok(Checkpoint {
            clusters,
            tcus_per_cluster,
            memory_modules,
            dram_channels,
            prog_len,
            cycle,
            pc,
            next_tid,
            spawn_count,
            spawn_entry,
            gregs,
            mtcu_iregs,
            mtcu_fregs,
            mem,
            stats,
            spawn_log,
            cluster_rr,
            cluster_instr,
            modules,
            channels,
            req_stats,
            reply_stats,
        })
    }
}

fn corrupt(what: &'static str) -> SimError {
    SimError::InvalidConfig { what }
}

fn put_u32(b: &mut Vec<u8>, v: u32) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(b: &mut Vec<u8>, v: u64) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn put_u32s(b: &mut Vec<u8>, vs: &[u32]) {
    put_u32(b, vs.len() as u32);
    for &v in vs {
        put_u32(b, v);
    }
}

fn put_u64s(b: &mut Vec<u8>, vs: &[u64]) {
    put_u32(b, vs.len() as u32);
    for &v in vs {
        put_u64(b, v);
    }
}

fn put_machine_stats(b: &mut Vec<u8>, s: &MachineStats) {
    for v in [
        s.cycles,
        s.instructions,
        s.flops,
        s.mem_reads,
        s.mem_writes,
        s.threads,
        s.spawns,
        s.stall_scoreboard,
        s.stall_fpu,
        s.stall_mdu,
        s.stall_lsu,
    ] {
        put_u64(b, v);
    }
}

fn put_spawn_stats(b: &mut Vec<u8>, s: &SpawnStats) {
    for v in [
        s.index as u64,
        s.threads,
        s.start_cycle,
        s.cycles,
        s.instructions,
        s.flops,
        s.mem_reads,
        s.mem_writes,
        s.dram_bytes,
        s.stall_scoreboard,
        s.stall_fpu,
        s.stall_mdu,
        s.stall_lsu,
    ] {
        put_u64(b, v);
    }
}

fn put_dram_stats(b: &mut Vec<u8>, s: &DramStats) {
    for v in [
        s.reads,
        s.writes,
        s.bytes,
        s.busy_cycles,
        s.peak_queue as u64,
        s.ecc_corrected,
        s.ecc_detected,
        s.ecc_retries,
        s.ecc_unrecoverable,
    ] {
        put_u64(b, v);
    }
}

fn put_net_stats(b: &mut Vec<u8>, s: &NetStats) {
    for v in [
        s.injected,
        s.delivered,
        s.total_latency,
        s.peak_in_flight as u64,
        s.inject_rejections,
        s.corrupted,
        s.retried,
        s.retry_exhausted,
    ] {
        put_u64(b, v);
    }
}

struct Reader<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn u32(&mut self) -> Result<u32, SimError> {
        let end = self.pos + 4;
        if end > self.b.len() {
            return Err(corrupt("checkpoint truncated"));
        }
        let v = u32::from_le_bytes(self.b[self.pos..end].try_into().unwrap());
        self.pos = end;
        Ok(v)
    }

    fn u64(&mut self) -> Result<u64, SimError> {
        let end = self.pos + 8;
        if end > self.b.len() {
            return Err(corrupt("checkpoint truncated"));
        }
        let v = u64::from_le_bytes(self.b[self.pos..end].try_into().unwrap());
        self.pos = end;
        Ok(v)
    }

    /// A length prefix, sanity-bounded by the remaining payload so a
    /// corrupt count cannot drive a huge allocation.
    fn len(&mut self) -> Result<usize, SimError> {
        let n = self.u32()? as usize;
        if n > self.b.len() - self.pos {
            return Err(corrupt("checkpoint length prefix exceeds payload"));
        }
        Ok(n)
    }

    fn u32s(&mut self) -> Result<Vec<u32>, SimError> {
        let n = self.len()?;
        if n * 4 > self.b.len() - self.pos {
            return Err(corrupt("checkpoint truncated inside u32 array"));
        }
        (0..n).map(|_| self.u32()).collect()
    }

    fn u64s(&mut self) -> Result<Vec<u64>, SimError> {
        let n = self.len()?;
        if n * 8 > self.b.len() - self.pos {
            return Err(corrupt("checkpoint truncated inside u64 array"));
        }
        (0..n).map(|_| self.u64()).collect()
    }

    fn machine_stats(&mut self) -> Result<MachineStats, SimError> {
        Ok(MachineStats {
            cycles: self.u64()?,
            instructions: self.u64()?,
            flops: self.u64()?,
            mem_reads: self.u64()?,
            mem_writes: self.u64()?,
            threads: self.u64()?,
            spawns: self.u64()?,
            stall_scoreboard: self.u64()?,
            stall_fpu: self.u64()?,
            stall_mdu: self.u64()?,
            stall_lsu: self.u64()?,
        })
    }

    fn spawn_stats(&mut self) -> Result<SpawnStats, SimError> {
        Ok(SpawnStats {
            index: self.u64()? as usize,
            threads: self.u64()?,
            start_cycle: self.u64()?,
            cycles: self.u64()?,
            instructions: self.u64()?,
            flops: self.u64()?,
            mem_reads: self.u64()?,
            mem_writes: self.u64()?,
            dram_bytes: self.u64()?,
            stall_scoreboard: self.u64()?,
            stall_fpu: self.u64()?,
            stall_mdu: self.u64()?,
            stall_lsu: self.u64()?,
        })
    }

    fn dram_stats(&mut self) -> Result<DramStats, SimError> {
        Ok(DramStats {
            reads: self.u64()?,
            writes: self.u64()?,
            bytes: self.u64()?,
            busy_cycles: self.u64()?,
            peak_queue: self.u64()? as usize,
            ecc_corrected: self.u64()?,
            ecc_detected: self.u64()?,
            ecc_retries: self.u64()?,
            ecc_unrecoverable: self.u64()?,
        })
    }

    fn net_stats(&mut self) -> Result<NetStats, SimError> {
        Ok(NetStats {
            injected: self.u64()?,
            delivered: self.u64()?,
            total_latency: self.u64()?,
            peak_in_flight: self.u64()? as usize,
            inject_rejections: self.u64()?,
            corrupted: self.u64()?,
            retried: self.u64()?,
            retry_exhausted: self.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            clusters: 4,
            tcus_per_cluster: 32,
            memory_modules: 4,
            dram_channels: 1,
            prog_len: 17,
            cycle: 12345,
            pc: 9,
            next_tid: 64,
            spawn_count: 64,
            spawn_entry: 4,
            gregs: (0..16).collect(),
            mtcu_iregs: (100..132).collect(),
            mtcu_fregs: (200..232).collect(),
            mem: (0..512).collect(),
            stats: MachineStats {
                cycles: 12345,
                instructions: 999,
                threads: 64,
                ..Default::default()
            },
            spawn_log: vec![SpawnStats {
                index: 0,
                threads: 64,
                start_cycle: 10,
                cycles: 400,
                ..Default::default()
            }],
            cluster_rr: vec![1, 2, 3, 4],
            cluster_instr: vec![10, 20, 30, 40],
            modules: (0..4)
                .map(|i| ModuleState {
                    tags: vec![i, 0, i << 2 | 3],
                    cache: CacheStats {
                        accesses: 100 + i,
                        hits: 90,
                        misses: 10,
                        writebacks: 2,
                        peak_queue: 5,
                    },
                    module: ModuleStats {
                        merged_misses: 1,
                        responses: 100,
                    },
                })
                .collect(),
            channels: vec![ChannelState {
                stats: DramStats {
                    reads: 10,
                    bytes: 640,
                    ecc_detected: 1,
                    ..Default::default()
                },
                transfers: 12,
            }],
            req_stats: NetStats {
                injected: 128,
                delivered: 128,
                total_latency: 900,
                peak_in_flight: 17,
                inject_rejections: 3,
                ..Default::default()
            },
            reply_stats: NetStats {
                injected: 128,
                delivered: 128,
                corrupted: 2,
                retried: 2,
                ..Default::default()
            },
        }
    }

    #[test]
    fn byte_round_trip_is_exact() {
        let cp = sample();
        let bytes = cp.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(cp, back);
    }

    #[test]
    fn truncation_is_rejected_everywhere() {
        let bytes = sample().to_bytes();
        for cut in [0, 4, 7, 8, 40, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                Checkpoint::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} must be rejected"
            );
        }
    }

    #[test]
    fn bad_magic_and_trailing_bytes_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] ^= 0xFF;
        assert!(Checkpoint::from_bytes(&bytes).is_err());
        bytes[0] ^= 0xFF;
        bytes.push(0);
        assert!(Checkpoint::from_bytes(&bytes).is_err());
    }
}
