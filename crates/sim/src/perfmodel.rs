//! Analytic (bottleneck) performance model.
//!
//! The cycle simulator is exact but cannot run 512³ inputs on 131,072
//! TCUs in reasonable time, so paper-scale projections use this model:
//! each phase (one spawn) is characterized by its compute, interconnect
//! and DRAM demands, and its duration is the maximum of the three
//! service times plus a startup latency — precisely the Roofline
//! argument of Section VI-B with the interconnect added as a third
//! ceiling (the paper's observations (b) and (c)).
//!
//! Per-resource efficiency factors account for the gap between ideal
//! service rates and what the cycle simulator actually sustains
//! (arbitration, queue turbulence, imperfect overlap). They are
//! calibrated by `xmt-fft`'s model-vs-simulator tests and recorded in
//! EXPERIMENTS.md.

use crate::config::XmtConfig;
use xmt_noc::{effective_throughput, TrafficClass};

/// Fraction of ideal FPU issue bandwidth sustained in practice.
pub const COMPUTE_EFFICIENCY: f64 = 0.90;
/// Fraction of ideal DRAM bandwidth sustained (bank conflicts, refresh,
/// read/write turnaround).
pub const DRAM_EFFICIENCY: f64 = 0.80;
/// Fraction of the NoC's saturation throughput sustained by real
/// (bursty) phase traffic.
pub const ICN_EFFICIENCY: f64 = 0.90;

/// Resource demands of one phase (one parallel section).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseDemand {
    /// Label for reports ("stage 3", "rotation", …).
    pub name: String,
    /// Actual floating-point operations.
    pub flops: f64,
    /// Words moved cluster→memory (stores).
    pub icn_words_up: f64,
    /// Words moved memory→cluster (loads, twiddles).
    pub icn_words_down: f64,
    /// Bytes that must cross the DRAM pins.
    pub dram_bytes: f64,
    /// Traffic structure seen by the blocking NoC levels.
    pub traffic: TrafficClass,
    /// Virtual threads available (limits usable TCUs).
    pub parallelism: f64,
}

/// Which resource bound a phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// FPU issue bandwidth.
    Compute,
    /// Interconnect word throughput.
    Icn,
    /// Off-chip DRAM bandwidth.
    Dram,
    /// Too little parallelism / dominated by startup latency.
    Latency,
}

/// Modeled execution time of one phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTime {
    /// Human-readable name.
    pub name: String,
    /// Cycle count.
    pub cycles: f64,
    /// The `bound` value.
    pub bound: Bottleneck,
    /// The three component times (cycles), for reporting.
    pub compute_cycles: f64,
    /// The `icn_cycles` value.
    pub icn_cycles: f64,
    /// The `dram_cycles` value.
    pub dram_cycles: f64,
}

/// Model one phase on one configuration.
pub fn phase_time(cfg: &XmtConfig, d: &PhaseDemand) -> PhaseTime {
    let topo = cfg.topology();

    // Compute ceiling: FPUs issue one FLOP per cycle each, but only as
    // many TCUs as there are threads can feed them.
    let usable_clusters = (d.parallelism / cfg.tcus_per_cluster as f64)
        .min(cfg.clusters as f64)
        .max(1.0);
    let fpu_rate = usable_clusters * cfg.fpus_per_cluster as f64 * COMPUTE_EFFICIENCY;
    let compute_cycles = d.flops / fpu_rate;

    // Interconnect ceiling: each direction independently sustains
    // clusters × effective-throughput words per cycle.
    let icn_rate = usable_clusters * effective_throughput(&topo, d.traffic) * ICN_EFFICIENCY;
    let icn_cycles = (d.icn_words_up.max(d.icn_words_down)) / icn_rate;

    // DRAM ceiling.
    let dram_rate = cfg.dram_channels() as f64 * cfg.dram.bytes_per_cycle * DRAM_EFFICIENCY;
    let dram_cycles = d.dram_bytes / dram_rate;

    // Startup: broadcast + one full memory round trip.
    let startup = (cfg.clusters as f64).log2().ceil()
        + 2.0 * topo.latency_cycles() as f64
        + cfg.dram.access_latency as f64;

    let body = compute_cycles.max(icn_cycles).max(dram_cycles);
    let bound = if startup > body {
        Bottleneck::Latency
    } else if body == compute_cycles {
        Bottleneck::Compute
    } else if body == icn_cycles {
        Bottleneck::Icn
    } else {
        Bottleneck::Dram
    };
    PhaseTime {
        name: d.name.clone(),
        cycles: body + startup,
        bound,
        compute_cycles,
        icn_cycles,
        dram_cycles,
    }
}

/// Model a sequence of phases; returns per-phase times and the total.
pub fn run_phases(cfg: &XmtConfig, demands: &[PhaseDemand]) -> (Vec<PhaseTime>, f64) {
    let times: Vec<PhaseTime> = demands.iter().map(|d| phase_time(cfg, d)).collect();
    let total = times.iter().map(|t| t.cycles).sum();
    (times, total)
}

/// GFLOPS achieved by `flops` (any convention) over `cycles` at the
/// configuration's clock.
pub fn gflops(cfg: &XmtConfig, flops: f64, cycles: f64) -> f64 {
    if cycles <= 0.0 {
        return 0.0;
    }
    flops * cfg.clock_ghz / cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::XmtConfig;

    fn demand(flops: f64, up: f64, down: f64, dram: f64) -> PhaseDemand {
        PhaseDemand {
            name: "t".into(),
            flops,
            icn_words_up: up,
            icn_words_down: down,
            dram_bytes: dram,
            traffic: TrafficClass::Hashed,
            parallelism: 1e9,
        }
    }

    #[test]
    fn dram_bound_phase_on_4k() {
        // The 4k config is bandwidth-bound for FFT-like intensity
        // (paper observation (a)).
        let cfg = XmtConfig::xmt_4k();
        let n = 1e8;
        let t = phase_time(&cfg, &demand(12.75 * n, 2.0 * n, 3.75 * n, 16.0 * n));
        assert_eq!(t.bound, Bottleneck::Dram);
    }

    #[test]
    fn icn_bound_phase_on_128k_x4() {
        // The x4 config has DRAM to spare; the ICN binds (observation (c)).
        let cfg = XmtConfig::xmt_128k_x4();
        let n = 1e8;
        let t = phase_time(&cfg, &demand(12.75 * n, 2.0 * n, 3.75 * n, 16.0 * n));
        assert_eq!(t.bound, Bottleneck::Icn);
    }

    #[test]
    fn compute_bound_when_intensity_high() {
        let cfg = XmtConfig::xmt_4k();
        let n = 1e7;
        let t = phase_time(&cfg, &demand(1000.0 * n, 0.1 * n, 0.1 * n, 0.1 * n));
        assert_eq!(t.bound, Bottleneck::Compute);
    }

    #[test]
    fn latency_bound_for_tiny_work() {
        let cfg = XmtConfig::xmt_64k();
        let t = phase_time(&cfg, &demand(10.0, 10.0, 10.0, 10.0));
        assert_eq!(t.bound, Bottleneck::Latency);
    }

    #[test]
    fn limited_parallelism_raises_compute_time() {
        let cfg = XmtConfig::xmt_4k();
        let mut d = demand(1e8, 0.0, 0.0, 0.0);
        let full = phase_time(&cfg, &d).cycles;
        d.parallelism = 32.0; // one cluster's worth of threads
        let limited = phase_time(&cfg, &d).cycles;
        assert!(limited > 50.0 * full, "full {full} vs limited {limited}");
    }

    #[test]
    fn phases_sum() {
        let cfg = XmtConfig::xmt_8k();
        let d = vec![demand(1e6, 1e6, 1e6, 1e6), demand(2e6, 2e6, 2e6, 2e6)];
        let (times, total) = run_phases(&cfg, &d);
        assert_eq!(times.len(), 2);
        assert!((times[0].cycles + times[1].cycles - total).abs() < 1e-6);
    }

    #[test]
    fn gflops_at_clock() {
        let cfg = XmtConfig::xmt_4k();
        // 3.3e9 flops in 1e9 cycles at 3.3 GHz = 10.89 GFLOPS.
        assert!((gflops(&cfg, 3.3e9, 1e9) - 10.89).abs() < 1e-9);
    }
}
