//! The block-compiled execution tier's runtime half: the per-program
//! trace cache (DESIGN.md §15).
//!
//! `xmt_isa::block` provides the build-time pieces — superblock
//! extraction ([`BlockMap`]) and per-instruction lowering into flat
//! [`MicroOp`] records. This module owns the *cache*: one pre-sized
//! micro-op slot per program counter, filled a superblock at a time the
//! first time execution enters the block (or all at once for the
//! threaded engine, whose workers share the cache read-only). The issue
//! loops replay warm slots with a dense one-byte dispatch and fall back
//! to the per-instruction interpreter path at every machine-level
//! boundary, which is why enabling the tier cannot move a single cycle:
//! the lowered records compute the same values through the same
//! `eval_*` kernels, and everything with scheduling consequences still
//! runs the original code.

use xmt_isa::block::{lower_op, BlockMap, MicroOp, UnitLat, UopKind};
use xmt_isa::decoded::DecodedProgram;

/// Which execution tier the parallel issue loops use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TranslationTier {
    /// Per-instruction dispatch through the decoded stream only — the
    /// pre-tier simulator, byte for byte.
    Interpreter,
    /// Trace-cache replay of superblocks (the default). Bit-identical
    /// cycle accounting; the golden and engine-agreement suites pin
    /// this with the tier on and off.
    #[default]
    Block,
}

/// Counters describing how the trace cache was exercised. Fully
/// deterministic for a given (program, config, engine): the CI tier
/// stage asserts byte-equality across repeated runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceStats {
    /// Superblocks in the program (static).
    pub blocks: u64,
    /// Superblocks actually lowered (lazily on first entry, or all of
    /// them when a run pre-lowers for the threaded engine's workers).
    pub lowered: u64,
    /// Micro-ops materialized by those lowerings.
    pub uops: u64,
    /// Trace entries via branch/jump resolution. Thread activations
    /// also enter a trace (at the spawn entry block) but are already
    /// counted by `MachineStats::threads`; callers wanting total
    /// entries add the two.
    pub entries: u64,
}

/// The per-(program, pc) trace cache: superblock map plus one micro-op
/// slot per pc, lowered per block on first entry.
#[derive(Debug, Clone)]
pub struct TraceCache {
    map: BlockMap,
    uops: Vec<MicroOp>,
    lat: UnitLat,
    stats: TraceStats,
}

impl TraceCache {
    /// Size a cold cache for `decoded`. `fpu_lat`/`mdu_lat` are the
    /// simulator's unit latencies, baked into each lowered record.
    pub fn new(decoded: &DecodedProgram, fpu_lat: u64, mdu_lat: u64) -> Self {
        let map = BlockMap::new(decoded);
        let blocks = map.blocks() as u64;
        Self {
            map,
            uops: vec![MicroOp::COLD; decoded.len()],
            lat: UnitLat {
                fpu: fpu_lat as u8,
                mdu: mdu_lat as u8,
            },
            stats: TraceStats {
                blocks,
                ..TraceStats::default()
            },
        }
    }

    /// Read the slot at `pc` without lowering. Replay loops that cannot
    /// mutate the cache (threaded workers) use this and treat a
    /// [`UopKind::Cold`] result as "take the interpreter path".
    #[inline(always)]
    pub fn fetch(&self, pc: usize) -> MicroOp {
        self.uops[pc]
    }

    /// Read the slot at `pc`, lowering its whole superblock first if
    /// this is the first entry. The hot path is one indexed load plus a
    /// byte compare.
    #[inline(always)]
    pub fn fetch_warm(&mut self, decoded: &DecodedProgram, pc: usize) -> MicroOp {
        let u = self.uops[pc];
        if u.kind == UopKind::Cold {
            return self.warm(decoded, pc);
        }
        u
    }

    /// Miss path: lower the superblock containing `pc`. `pc` is usually
    /// a block leader (every seam the issue loops re-enter through —
    /// spawn entries, branch targets, fall-throughs past a terminator —
    /// is one by construction), but mid-block entry is handled too, so
    /// any missed seam degrades to a lowering, never to wrong replay.
    #[cold]
    fn warm(&mut self, decoded: &DecodedProgram, pc: usize) -> MicroOp {
        let entry = self.map.leader_of(pc);
        let len = self.map.block_len(entry);
        for p in entry..entry + len {
            let ends = p + 1 == entry + len;
            self.uops[p] = lower_op(decoded.fetch(p), self.lat, ends);
        }
        self.stats.lowered += 1;
        self.stats.uops += len as u64;
        self.uops[pc]
    }

    /// Lower every superblock up front. The threaded engine calls this
    /// before handing workers a read-only reference, so its replay
    /// loops never see a cold slot.
    pub fn lower_all(&mut self, decoded: &DecodedProgram) {
        for pc in 0..self.uops.len() {
            if self.map.is_leader(pc) && self.uops[pc].kind == UopKind::Cold {
                self.warm(decoded, pc);
            }
        }
    }

    /// Count one trace entry (branch/jump resolution landing on a
    /// block).
    #[inline(always)]
    pub fn note_entry(&mut self) {
        self.stats.entries += 1;
    }

    /// Fold entries counted outside the cache (the threaded engine's
    /// per-shard counters) into the stats.
    pub fn add_entries(&mut self, n: u64) {
        self.stats.entries += n;
    }

    /// The exercise counters.
    pub fn stats(&self) -> TraceStats {
        self.stats
    }

    /// The superblock partition (read-only).
    pub fn map(&self) -> &BlockMap {
        &self.map
    }

    /// The lowered micro-op slots, one per pc ([`UopKind::Cold`] where
    /// no block has been entered yet). Read-only: the translation
    /// validator in `xmt-verify` checks these exact records against the
    /// reference ISA semantics.
    pub fn uops(&self) -> &[MicroOp] {
        &self.uops
    }

    /// The unit latencies baked into every lowered record.
    pub fn unit_lat(&self) -> UnitLat {
        self.lat
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmt_isa::reg::ir;
    use xmt_isa::{Instr, ProgramBuilder};

    fn small_decoded() -> DecodedProgram {
        let mut b = ProgramBuilder::new();
        b.li(ir(1), 4);
        b.push(Instr::Branch {
            cond: xmt_isa::BranchCond::Ne,
            rs1: ir(1),
            rs2: ir(0),
            target: 3,
        });
        b.li(ir(2), 9);
        b.halt();
        DecodedProgram::new(&b.build().unwrap())
    }

    #[test]
    fn lazy_lowering_fills_one_block_at_a_time() {
        let dec = small_decoded();
        let mut tc = TraceCache::new(&dec, 4, 8);
        assert_eq!(tc.stats().blocks, 3); // [0..=1], [2], [3]
        assert_eq!(tc.fetch(0).kind, UopKind::Cold);
        let u = tc.fetch_warm(&dec, 0);
        assert_eq!(u.kind, UopKind::Li);
        assert_eq!(tc.stats().lowered, 1);
        assert_eq!(tc.stats().uops, 2);
        // The other blocks stay cold until entered.
        assert_eq!(tc.fetch(2).kind, UopKind::Cold);
        assert_eq!(tc.fetch(3).kind, UopKind::Cold);
        let _ = tc.fetch_warm(&dec, 3);
        assert_eq!(tc.stats().lowered, 2);
        // Re-entry is a hit: nothing lowers again.
        let _ = tc.fetch_warm(&dec, 0);
        assert_eq!(tc.stats().lowered, 2);
    }

    #[test]
    fn lower_all_warms_every_block() {
        let dec = small_decoded();
        let mut tc = TraceCache::new(&dec, 4, 8);
        tc.lower_all(&dec);
        assert_eq!(tc.stats().lowered, tc.stats().blocks);
        for pc in 0..dec.len() {
            assert_ne!(tc.fetch(pc).kind, UopKind::Cold, "pc {pc}");
        }
        assert_eq!(tc.stats().uops, dec.len() as u64);
    }

    #[test]
    fn default_tier_is_block() {
        assert_eq!(TranslationTier::default(), TranslationTier::Block);
    }
}
