//! The cycle-level XMT machine simulator.
//!
//! Composes the pieces of Fig. 1: an MTCU running serial sections, TCU
//! clusters with shared FPU/MDU/LSU ports, the prefix-sum unit, the
//! spawn broadcast, the request/reply interconnect (`xmt-noc`) and the
//! hashed memory modules with shared DRAM channels (`xmt-mem`).
//!
//! Functional semantics are shared with the untimed interpreter
//! (`xmt_isa::interp::exec_compute` and the pure `eval_*` helpers), so
//! a program produces bit-identical results on both engines; this
//! simulator adds *when* — the cycle counts the paper's evaluation is
//! built on.
//!
//! Timing model summary (all per 3.3 GHz core cycle):
//! * TCUs are in-order and scalar; ALU-class ops take 1 cycle.
//! * FPU ops: issue limited to `fpus_per_cluster` per cluster per
//!   cycle, 4-cycle result latency.
//! * MDU ops: 1 issue per cluster per cycle, 8-cycle latency.
//! * Loads/stores: 1 LSU slot per cluster per cycle injects into the
//!   request NoC; loads are non-blocking (scoreboarded) with up to 8
//!   outstanding per TCU — the paper's "prefetching methods".
//! * Memory modules service one access per cycle in arrival order;
//!   misses go to the module's shared DRAM channel.
//! * `spawn` broadcast costs log₂(clusters) cycles; thread IDs are
//!   handed out by the PS unit with unlimited same-cycle combining.

use crate::checkpoint::{ChannelState, Checkpoint, ModuleState};
use crate::config::XmtConfig;
use crate::fault::FaultPlan;
use crate::probe::{BlockedTcus, NoProbe, Probe, SampleCtx};
use crate::tier::{TraceCache, TraceStats, TranslationTier};
use crate::txn_slab::TxnSlab;
use std::collections::VecDeque;
use xmt_isa::block::{eval_branch_uop, exec_uop};
use xmt_isa::decoded::{DecodedProgram, NUM_STEP_CLASSES};
use xmt_isa::instr::{eval_branch, Instr, Unit};
use xmt_isa::interp::exec_compute;
use xmt_isa::reg::{fr, ir, FReg, IReg, RegFile, NUM_GREGS};
use xmt_isa::Program;
use xmt_mem::{AddressHash, ChannelRequest, DramChannel, DramReq, MemReq, MemResp, MemoryModule};
use xmt_noc::{Delivered, FaultyNetwork, Flit, Network, Topology};

#[path = "machine_threaded.rs"]
mod threaded;

/// FPU result latency in cycles.
const FPU_LATENCY: u64 = 4;
/// MDU (multiply/divide) latency in cycles.
const MDU_LATENCY: u64 = 8;
/// The unit latencies above as the [`xmt_isa::UnitLat`] value baked
/// into every lowered micro-op — exported so external validators
/// (`xmt-verify`'s translation-validation pass, `xmt_lint`) recompute
/// the canonical lowering with the machine's own numbers.
pub const UNIT_LAT: xmt_isa::UnitLat = xmt_isa::UnitLat {
    fpu: FPU_LATENCY as u8,
    mdu: MDU_LATENCY as u8,
};
/// MTCU private-cache access latency for serial-mode memory ops.
const SERIAL_MEM_LATENCY: u64 = 4;
/// Maximum outstanding memory operations per TCU (models the XMT
/// prefetch/decoupling capability).
const MAX_OUTSTANDING: u8 = 8;
/// Default watchdog no-progress horizon in cycles. Generous: legitimate
/// quiet stretches are bounded by DRAM latency (hundreds of cycles), so
/// two million cycles without one instruction retiring or one thread
/// starting is always a hang.
const DEFAULT_WATCHDOG: u64 = 2_000_000;

/// Simulator errors. Every variant carries the program counter of the
/// fault (where one exists) and the machine cycle it surfaced on:
/// deep construction sites that cannot see the clock leave `at_cycle`
/// at 0 and the step boundary stamps it via [`SimError::stamped`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Memory access outside the configured memory image.
    MemOutOfBounds {
        /// Program counter at the fault.
        pc: usize,
        /// Faulting word address.
        addr: u64,
        /// Machine cycle the fault surfaced on.
        at_cycle: u64,
    },
    /// Nested spawn, halt-in-parallel, etc.
    BadInstruction {
        /// Program counter at the fault.
        pc: usize,
        /// Description of the illegal action.
        what: &'static str,
        /// Machine cycle the fault surfaced on.
        at_cycle: u64,
    },
    /// Cycle limit exceeded — deadlock or runaway program.
    CycleLimit {
        /// Cycle at which the limit tripped.
        at_cycle: u64,
    },
    /// Execution ran off the end of the program.
    PcOutOfRange {
        /// Program counter at the fault.
        pc: usize,
        /// Machine cycle the fault surfaced on.
        at_cycle: u64,
    },
    /// The watchdog saw no forward progress (no instruction retired and
    /// no thread started) for a whole no-progress horizon — a hang that
    /// would otherwise burn the entire cycle budget, e.g. a stuck-at
    /// TCU holding the spawn barrier open forever.
    Stalled {
        /// Cycle the watchdog fired on.
        at_cycle: u64,
        /// Instructions retired when progress last advanced.
        last_retired: u64,
    },
    /// An internal protocol invariant broke (e.g. a NoC delivery whose
    /// transaction tag is unknown). Always a simulator bug, surfaced as
    /// a typed error instead of a panic so long sweeps keep their
    /// partial results.
    Protocol {
        /// Which invariant broke.
        what: &'static str,
        /// Machine cycle the fault surfaced on.
        at_cycle: u64,
    },
    /// The builder was asked for an impossible machine (fault indices
    /// out of range, every TCU disabled, all DRAM channels dead, …).
    InvalidConfig {
        /// What was wrong.
        what: &'static str,
    },
}

impl SimError {
    /// The machine cycle the error surfaced on (0 for construction-time
    /// errors, which precede the first cycle).
    pub fn cycle(&self) -> u64 {
        match *self {
            SimError::MemOutOfBounds { at_cycle, .. }
            | SimError::BadInstruction { at_cycle, .. }
            | SimError::CycleLimit { at_cycle }
            | SimError::PcOutOfRange { at_cycle, .. }
            | SimError::Stalled { at_cycle, .. }
            | SimError::Protocol { at_cycle, .. } => at_cycle,
            SimError::InvalidConfig { .. } => 0,
        }
    }

    /// Fill in `at_cycle` if the construction site could not see the
    /// clock (left it at 0). Applied at the step boundaries.
    fn stamped(mut self, cycle: u64) -> Self {
        match &mut self {
            SimError::MemOutOfBounds { at_cycle, .. }
            | SimError::BadInstruction { at_cycle, .. }
            | SimError::CycleLimit { at_cycle }
            | SimError::PcOutOfRange { at_cycle, .. }
            | SimError::Stalled { at_cycle, .. }
            | SimError::Protocol { at_cycle, .. } => {
                if *at_cycle == 0 {
                    *at_cycle = cycle;
                }
            }
            SimError::InvalidConfig { .. } => {}
        }
        self
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::MemOutOfBounds { pc, addr, at_cycle } => write!(
                f,
                "memory access at word {addr:#x} out of bounds (pc {pc}, cycle {at_cycle})"
            ),
            SimError::BadInstruction { pc, what, at_cycle } => {
                write!(f, "{what} at pc {pc} (cycle {at_cycle})")
            }
            SimError::CycleLimit { at_cycle } => write!(f, "cycle limit hit at {at_cycle}"),
            SimError::PcOutOfRange { pc, at_cycle } => {
                write!(f, "pc {pc} out of range (cycle {at_cycle})")
            }
            SimError::Stalled {
                at_cycle,
                last_retired,
            } => write!(
                f,
                "no forward progress: watchdog fired at cycle {at_cycle} \
                 ({last_retired} instructions retired)"
            ),
            SimError::Protocol { what, at_cycle } => {
                write!(f, "protocol invariant broken: {what} (cycle {at_cycle})")
            }
            SimError::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Typed status of a [`RunOutcome`]: how the run ended.
///
/// Replaces the old `Result<RunReport, FailedRun>` pair (and the
/// `Done`/`Paused` enum `run_until` used to return) with one surface:
/// every way a run can stop is a variant here, and the partial report
/// travels alongside in the [`RunOutcome`] rather than inside an error
/// type.
#[derive(Debug, Clone, PartialEq)]
pub enum RunStatus {
    /// The program reached `halt`; the report is complete.
    Completed,
    /// [`Machine::run_until`] paused at the first quiescent cycle at or
    /// after the requested pause point; [`Machine::checkpoint`] can
    /// snapshot the machine, or the run can simply continue.
    Paused {
        /// Cycle the machine paused on.
        at_cycle: u64,
    },
    /// The run stopped on a typed error ([`SimError::cycle`] gives the
    /// failure cycle); the report is partial, as of that cycle.
    Failed(SimError),
}

/// Everything [`Machine::run`] / [`Machine::run_until`] reports: a
/// typed [`RunStatus`] plus the [`RunReport`] — complete on success,
/// partial at a pause or failure — so a swept or faulted run that
/// times out still yields its counters, spawn log and utilization.
///
/// Subsumes the old `RunReport`-on-`Ok` / `FailedRun`-on-`Err` pair:
/// one value, with combinators for the common call shapes
/// ([`RunOutcome::expect`], [`RunOutcome::unwrap`],
/// [`RunOutcome::into_result`]).
#[derive(Debug, Clone)]
#[must_use = "a RunOutcome may carry a failure; check its status"]
pub struct RunOutcome {
    /// How the run ended.
    pub status: RunStatus,
    /// The run's report — complete when `status` is
    /// [`RunStatus::Completed`], otherwise partial as of the pause or
    /// failure cycle.
    pub report: RunReport,
}

impl RunOutcome {
    /// True when the program ran to `halt`.
    pub fn is_completed(&self) -> bool {
        matches!(self.status, RunStatus::Completed)
    }

    /// True when the run paused at a quiescent cycle (only
    /// [`Machine::run_until`] produces this).
    pub fn is_paused(&self) -> bool {
        matches!(self.status, RunStatus::Paused { .. })
    }

    /// The typed error, when the run failed.
    pub fn error(&self) -> Option<&SimError> {
        match &self.status {
            RunStatus::Failed(e) => Some(e),
            _ => None,
        }
    }

    /// The cycle the outcome was decided on: the failure cycle, the
    /// pause cycle, or the final cycle of a completed run.
    pub fn at_cycle(&self) -> u64 {
        match &self.status {
            RunStatus::Completed => self.report.stats.cycles,
            RunStatus::Paused { at_cycle } => *at_cycle,
            RunStatus::Failed(e) => e.cycle(),
        }
    }

    /// The completed report, or a panic naming `what` and the error —
    /// the moral equivalent of `Result::expect` for call sites that
    /// treat anything but completion as a bug.
    #[track_caller]
    pub fn expect(self, what: &str) -> RunReport {
        match self.status {
            RunStatus::Completed => self.report,
            RunStatus::Paused { at_cycle } => {
                panic!("{what}: run paused at cycle {at_cycle}")
            }
            RunStatus::Failed(e) => panic!("{what}: {e}"),
        }
    }

    /// The completed report, or a panic carrying the error.
    #[track_caller]
    pub fn unwrap(self) -> RunReport {
        self.expect("run did not complete")
    }

    /// Split back into the old `Result` shape for `?`-style callers:
    /// a failure becomes `Err` with its typed error, anything else
    /// (completed *or* paused) yields the report.
    pub fn into_result(self) -> Result<RunReport, SimError> {
        match self.status {
            RunStatus::Failed(e) => Err(e),
            _ => Ok(self.report),
        }
    }
}

/// What a memory transaction will do when its reply arrives.
#[derive(Debug, Clone, Copy)]
enum TxnKind {
    LoadI(IReg),
    LoadF(FReg),
    Store,
}

#[derive(Debug, Clone, Copy)]
struct Txn {
    cluster: usize,
    tcu: usize,
    addr: u32,
    kind: TxnKind,
    /// Store data (set at issue) or load data (captured when the
    /// request reaches its home module, preserving module order).
    value: u32,
}

/// One TCU's execution context.
///
/// `repr(C)` pins the field order: every field the per-cycle issue
/// loop and the fast-forward scan inspect sits in the first 32 bytes,
/// so classifying a TCU (idle / latency-busy / scoreboard-blocked)
/// touches one cache line; the register file only comes in when the
/// TCU actually executes.
#[derive(Debug)]
#[repr(C)]
struct Tcu {
    /// Cycle until which the TCU is busy (FPU/MDU latency).
    busy_until: u64,
    pc: usize,
    /// Scoreboard: bitmask of integer registers with pending loads.
    pend_i: u32,
    /// Scoreboard: bitmask of FP registers with pending loads.
    pend_f: u32,
    active: bool,
    /// Outstanding memory transactions (loads + stores).
    outstanding: u8,
    /// Memoized issue classification of the instruction at `pc` against
    /// the current scoreboard (see [`IssueClass`]). Kept current by
    /// [`reclassify`] at every pc change and scoreboard clear, so the
    /// per-cycle issue loop and the fast-forward scan classify a
    /// stalled TCU from this one byte without refetching the program.
    cls: IssueClass,
    /// Hard-fault: never activates; threads remap around it.
    disabled: bool,
    /// Hard-fault: accepts a thread, then never issues (holds the spawn
    /// barrier open until the watchdog fires).
    stuck: bool,
    rf: RegFile,
}

impl Tcu {
    fn idle() -> Self {
        Self {
            busy_until: 0,
            pc: 0,
            pend_i: 0,
            pend_f: 0,
            active: false,
            outstanding: 0,
            cls: IssueClass::BadPc,
            disabled: false,
            stuck: false,
            rf: RegFile::new(0),
        }
    }
}

/// What a TCU's next visit will do, resolved from (`pc`, scoreboard)
/// whenever either changes. Latency (`busy_until`) and port budgets are
/// deliberately excluded: they vary cycle-to-cycle and stay as direct
/// checks in the issue loop. The payoff is on stall-dominated cycles —
/// classifying a blocked TCU touches only its own cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IssueClass {
    /// `pc` outside the program: the visit faults.
    BadPc,
    /// Scoreboard conflict: stall until a reply clears it.
    Scoreboard,
    /// Issues on the ALU (always has budget).
    Alu,
    /// Wants the shared FPU port.
    Fpu,
    /// Wants the shared MDU port.
    Mdu,
    /// Wants the shared LSU port.
    Lsu,
    /// Branch or jump: always issues.
    Branch,
    /// `ps`/`sspawn`: always issues (global-state ops).
    Ps,
    /// `join`: retires, or waits silently on posted stores.
    Join,
    /// `nop`: always issues.
    Nop,
    /// Illegal in parallel mode: the visit faults.
    Illegal,
}

/// [`StepClass`] → [`IssueClass`] lookup. The static half of issue
/// classification is precomputed per pc at decode time, so classifying
/// (and in particular *re*classifying after every issue) is the two
/// dynamic tests plus this table — no `Instr` match in the hot loop.
const STEP_TO_ISSUE: [IssueClass; NUM_STEP_CLASSES] = [
    IssueClass::Alu,
    IssueClass::Fpu,
    IssueClass::Mdu,
    IssueClass::Lsu,
    IssueClass::Branch,
    IssueClass::Ps,
    IssueClass::Join,
    IssueClass::Nop,
    IssueClass::Illegal,
];

/// Classify the instruction at `pc` against the scoreboard masks.
#[inline]
fn classify(decoded: &DecodedProgram, pc: usize, pend_i: u32, pend_f: u32) -> IssueClass {
    if pc >= decoded.len() {
        return IssueClass::BadPc;
    }
    let d = decoded.fetch(pc);
    if pend_i & d.imask != 0 || pend_f & d.fmask != 0 {
        return IssueClass::Scoreboard;
    }
    STEP_TO_ISSUE[d.step as usize]
}

/// Number of [`IssueClass`] variants (indexes [`ClusterMasks::cls`]).
const NUM_ISSUE_CLASSES: usize = IssueClass::Illegal as usize + 1;

/// Per-cluster bitmask mirror of the TCU hot state, bit `t` ↔ TCU `t`.
///
/// The masks let the issue loops reason about a whole cluster with a
/// handful of word ops instead of touching one cache line per TCU: the
/// reference loop uses `active & !busy` to visit only TCUs whose visit
/// can have an effect, and the fast-forward engine issues straight off
/// the per-class masks ([`Machine::step_cluster_bulk`]), accruing the
/// stalls of losing contenders by popcount.
///
/// Invariants (maintained by every mutation path in this file; the
/// threaded engine moves each cluster's masks into its shard for the
/// run and maintains them through the same mutation paths):
/// - `cls[k]` has bit `t` set iff `cluster[t].cls == k`, active or not.
/// - `active` has bit `t` set iff `cluster[t].active`.
/// - `busy` has bit `t` set iff `busy_until > cycle`, where `cycle` is
///   the cycle currently being stepped; cleared via `wheel` at the top
///   of each cluster step.
/// - `out_nz` / `at_cap`: `outstanding > 0` / `>= MAX_OUTSTANDING`.
#[derive(Debug, Clone)]
struct ClusterMasks {
    active: u64,
    busy: u64,
    /// TCUs whose `busy_until` equals a future cycle `x`, filed under
    /// slot `x & 15`. Sound because issue latencies are ≤ 8 < 16 and
    /// quiet skips never jump past the minimum live `busy_until`, so a
    /// slot can never hold two generations at once. Skips replay the
    /// wakes they jumped over via [`ClusterMasks::wake_through`].
    wheel: [u64; 16],
    cls: [u64; NUM_ISSUE_CLASSES],
    out_nz: u64,
    at_cap: u64,
    /// Stuck-at TCUs: excluded from every mask-driven issue path (a
    /// stuck TCU activates but never issues). Not folded into `busy` —
    /// the 16-slot wheel would alias a forever-busy sentinel.
    stuck: u64,
    /// Disabled TCUs: never activate. Mirrors `Tcu::disabled` so
    /// cluster-level idle capacity can be sized without touching the
    /// TCU array (the threaded engine's initial grant sizing).
    disabled: u64,
}

impl ClusterMasks {
    fn new(ntcus: usize) -> Self {
        let mut cls = [0u64; NUM_ISSUE_CLASSES];
        // Idle TCUs carry `IssueClass::BadPc` (see `Tcu::idle`).
        cls[IssueClass::BadPc as usize] = ones(ntcus);
        Self {
            active: 0,
            busy: 0,
            wheel: [0; 16],
            cls,
            out_nz: 0,
            at_cap: 0,
            stuck: 0,
            disabled: 0,
        }
    }

    /// Clear TCUs whose latency expires on `cycle` from `busy`.
    /// Idempotent within a cycle (the slot zeroes), so the bulk path
    /// can wake before deciding to fall back to the plain loop.
    #[inline(always)]
    fn wake(&mut self, cycle: u64) {
        let slot = (cycle & 15) as usize;
        self.busy &= !self.wheel[slot];
        self.wheel[slot] = 0;
    }

    /// Record `busy_until` for TCU `t` after a latency issue.
    #[inline(always)]
    fn set_busy(&mut self, t: usize, busy_until: u64) {
        let bit = 1u64 << t;
        self.busy |= bit;
        self.wheel[(busy_until & 15) as usize] |= bit;
    }

    /// Perform the wakes of the `n` skipped cycles `next ..= next+n-1`
    /// in one go, as quiet-cycle fast-forwarding must: per-cycle
    /// stepping would have called [`ClusterMasks::wake`] on each. A TCU
    /// whose `busy_until` equals a skipped cycle (typically `next`
    /// itself — the skip horizon never passes a *later* live
    /// `busy_until`) would otherwise keep a stale `busy` bit and be
    /// invisible to the mask-driven issue loops until its wheel slot
    /// happened to come around again, silently dropping its stall
    /// accrual. Sixteen wakes visit every slot, so larger jumps clear
    /// the whole wheel; waking a still-busy TCU early is harmless —
    /// the issue loops re-check `busy_until` before acting.
    #[inline]
    fn wake_through(&mut self, next: u64, n: u64) {
        for k in 0..n.min(16) {
            self.wake(next + k);
        }
    }
}

/// A mask with the low `n` bits set (`n ≤ 64`).
#[inline(always)]
fn ones(n: usize) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Rotate `mask` (defined over `ntcus` bits) so round-robin position
/// `start` lands at bit 0; ascending trailing-zero extraction then
/// yields TCU indices in round-robin visit order.
#[inline(always)]
fn rr_rotate(mask: u64, start: usize, ntcus: usize) -> u64 {
    if start == 0 {
        mask
    } else {
        ((mask >> start) | (mask << (ntcus - start))) & ones(ntcus)
    }
}

/// Map a bit position of an [`rr_rotate`]d mask back to a TCU index.
#[inline(always)]
fn rr_unrotate(r: usize, start: usize, ntcus: usize) -> usize {
    let t = start + r;
    if t >= ntcus {
        t - ntcus
    } else {
        t
    }
}

/// [`reclassify`], mirroring the change into the cluster's class masks.
#[inline(always)]
fn reclassify_masked(tcu: &mut Tcu, m: &mut ClusterMasks, t: usize, decoded: &DecodedProgram) {
    let new = classify(decoded, tcu.pc, tcu.pend_i, tcu.pend_f);
    let bit = 1u64 << t;
    m.cls[tcu.cls as usize] &= !bit;
    m.cls[new as usize] |= bit;
    tcu.cls = new;
}

/// Execution mode of the machine.
#[derive(Debug)]
enum Mode {
    /// MTCU running; `resume_at` models multi-cycle serial operations.
    Serial {
        pc: usize,
        resume_at: u64,
    },
    /// Parallel section: TCUs executing threads of the current spawn.
    Parallel {
        return_pc: usize,
    },
    Finished,
}

/// Counters accumulated over the whole run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MachineStats {
    /// Cycle count.
    pub cycles: u64,
    /// The `instructions` value.
    pub instructions: u64,
    /// The `flops` value.
    pub flops: u64,
    /// The `mem_reads` value.
    pub mem_reads: u64,
    /// The `mem_writes` value.
    pub mem_writes: u64,
    /// The `threads` value.
    pub threads: u64,
    /// The `spawns` value.
    pub spawns: u64,
    /// Issue stalls by cause.
    pub stall_scoreboard: u64,
    /// The `stall_fpu` value.
    pub stall_fpu: u64,
    /// The `stall_mdu` value.
    pub stall_mdu: u64,
    /// The `stall_lsu` value.
    pub stall_lsu: u64,
}

/// Per-spawn (per parallel section) statistics — the phase-level data
/// behind the Roofline points of Fig. 3.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpawnStats {
    /// Index of the spawn in program order.
    pub index: usize,
    /// Virtual threads executed.
    pub threads: u64,
    /// Machine cycle the spawn instruction issued on (start of the
    /// broadcast) — positions the phase on a trace timeline.
    pub start_cycle: u64,
    /// Wall cycles from spawn start to the barrier completing.
    pub cycles: u64,
    /// The `instructions` value.
    pub instructions: u64,
    /// The `flops` value.
    pub flops: u64,
    /// The `mem_reads` value.
    pub mem_reads: u64,
    /// The `mem_writes` value.
    pub mem_writes: u64,
    /// Bytes actually transferred on the DRAM channels.
    pub dram_bytes: u64,
    /// Scoreboard stall cycles accrued inside this section.
    pub stall_scoreboard: u64,
    /// FPU-port stall cycles accrued inside this section.
    pub stall_fpu: u64,
    /// MDU-port stall cycles accrued inside this section.
    pub stall_mdu: u64,
    /// LSU/NoC/memory stall cycles accrued inside this section.
    pub stall_lsu: u64,
}

impl SpawnStats {
    /// Achieved GFLOPS (actual FLOP count) at `clock_ghz`.
    pub fn gflops(&self, clock_ghz: f64) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.flops as f64 * clock_ghz / self.cycles as f64
    }

    /// Operational intensity in FLOPs per DRAM byte.
    pub fn intensity(&self) -> f64 {
        if self.dram_bytes == 0 {
            return f64::INFINITY;
        }
        self.flops as f64 / self.dram_bytes as f64
    }
}

/// Post-run utilization snapshot (see [`Machine::utilization`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UtilizationReport {
    /// Instructions issued by each cluster.
    pub cluster_instr: Vec<u64>,
    /// Cache-bank accesses per memory module.
    pub module_accesses: Vec<u64>,
    /// Cache hit rate per module (1.0 when untouched).
    pub module_hit_rate: Vec<f64>,
    /// Fraction of cycles each DRAM channel was busy.
    pub channel_busy: Vec<f64>,
    /// FLOPs issued / (cycles × FPUs): compute-ceiling utilization.
    pub fpu_utilization: f64,
}

impl UtilizationReport {
    /// Max/mean ratio of per-cluster instruction counts (1.0 = perfect
    /// load balance; the XMT thread scheduler should keep this low).
    pub fn cluster_imbalance(&self) -> f64 {
        let max = self.cluster_instr.iter().copied().max().unwrap_or(0) as f64;
        let sum: u64 = self.cluster_instr.iter().sum();
        let mean = sum as f64 / self.cluster_instr.len().max(1) as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Max/mean ratio of per-module access counts (address hashing
    /// should keep this near 1).
    pub fn module_imbalance(&self) -> f64 {
        let max = self.module_accesses.iter().copied().max().unwrap_or(0) as f64;
        let sum: u64 = self.module_accesses.iter().sum();
        let mean = sum as f64 / self.module_accesses.len().max(1) as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// Everything a completed run reports: the overall counters, the
/// per-phase (per-spawn) log behind the Roofline points of Fig. 3, and
/// the component-utilization snapshot. One struct instead of the old
/// `RunSummary` + separate `Machine::utilization()` accessor, so every
/// caller — benches, tables, tests — gets the whole picture from
/// [`Machine::run`] in one move.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Accumulated statistics.
    pub stats: MachineStats,
    /// The `spawns` value.
    pub spawns: Vec<SpawnStats>,
    /// Per-component utilization (cluster issue balance, module cache
    /// behaviour, DRAM-channel occupancy, FPU-ceiling fraction).
    pub utilization: UtilizationReport,
}

struct SpawnTracker {
    index: usize,
    start_cycle: u64,
    start: MachineStats,
    start_dram_bytes: u64,
    threads_at_start: u64,
}

/// Which advance loop [`Machine::run`] uses. Every engine produces
/// bit-identical [`RunReport`] / memory / register state — the golden
/// cycle tests pin this; engines only differ in wall-clock speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Plain cycle-by-cycle loop: every component steps every cycle.
    /// The semantic baseline the optimized engines are checked against.
    Reference,
    /// Event-driven fast-forward: on cycles where nothing can issue,
    /// jump straight to the next component event (FPU/MDU completion,
    /// NoC arrival, cache-response maturation, DRAM completion, serial
    /// resume) and accrue the skipped cycles' stall statistics in bulk.
    #[default]
    FastForward,
    /// Two-phase parallel cluster stepping on worker threads: each
    /// cycle the clusters compute locally in parallel, then the main
    /// thread replays their memory-injection attempts in cluster order
    /// so NoC arbitration and transaction tags match the serial
    /// engines exactly. Includes the fast-forward optimization. Falls
    /// back to [`Engine::FastForward`] for programs that mutate global
    /// state from parallel mode (`ps`/`sspawn`).
    Threaded {
        /// Worker count; 0 picks one per available core (capped at
        /// the cluster count).
        threads: usize,
    },
}

/// A matured reply headed for a TCU (cluster, tcu, kind, value).
struct ReplyDelivery {
    cluster: usize,
    tcu: usize,
    kind: TxnKind,
    value: u32,
}

/// Result of scanning one cluster for fast-forward eligibility.
#[derive(Debug, Clone, Copy)]
struct ClusterScan {
    /// Some TCU could issue (or fault) next cycle — cannot skip.
    issue_next: bool,
    /// Earliest `busy_until` among latency-stalled TCUs (`u64::MAX`
    /// when none).
    min_busy: u64,
    /// TCUs that would burn a scoreboard-stall per skipped cycle.
    blocked_scoreboard: u64,
    /// TCUs that would burn an LSU-stall per skipped cycle (at the
    /// outstanding-transaction cap).
    blocked_lsu: u64,
    /// Idle TCUs (would activate if thread IDs remained).
    idle: u64,
}

/// Scan a cluster as it would be seen at the top of cycle `next`:
/// classify every TCU as issuing, latency-stalled, scoreboard-stalled,
/// LSU-capped, silently waiting (join with posted stores) or idle.
/// Mirrors the issue tests of `step_cluster` exactly; any instruction
/// that would issue *or fault* reports `issue_next` so the per-cycle
/// path keeps sole ownership of side effects and errors.
///
/// With `COMPLETE` the scan visits every TCU — the threaded engine
/// sizes thread-ID grants from `idle`, so its counts must stay complete
/// even once `issue_next` is set. The fast-forward engine only uses the
/// counts when nothing issues, so it passes `COMPLETE = false` and the
/// scan returns the moment `issue_next` is decided.
fn scan_cluster<const COMPLETE: bool>(cluster: &[Tcu], next: u64) -> ClusterScan {
    let mut scan = ClusterScan {
        issue_next: false,
        min_busy: u64::MAX,
        blocked_scoreboard: 0,
        blocked_lsu: 0,
        idle: 0,
    };
    for tcu in cluster {
        if !tcu.active {
            // A disabled TCU never activates: it is not idle capacity,
            // so thread-ID grant sizing must not count it.
            if !tcu.disabled {
                scan.idle += 1;
            }
            continue;
        }
        if tcu.busy_until > next {
            scan.min_busy = scan.min_busy.min(tcu.busy_until);
            continue;
        }
        if tcu.stuck {
            // Stuck-at: active but never issues — no stall counter, no
            // issue, no event. Only the watchdog ends this.
            continue;
        }
        match tcu.cls {
            IssueClass::Scoreboard => scan.blocked_scoreboard += 1,
            IssueClass::Lsu if tcu.outstanding >= MAX_OUTSTANDING => {
                scan.blocked_lsu += 1;
            }
            IssueClass::Join if tcu.outstanding > 0 => {
                // Join waiting on posted stores is silent: no stall
                // counter, no issue. The reply that unblocks it is a
                // tracked memory event.
            }
            // Every other class issues or faults (port budgets start
            // ≥1 per cluster, and a budget only empties on a cycle
            // that issued — which this, by construction, is not).
            _ => {
                scan.issue_next = true;
                if !COMPLETE {
                    return scan;
                }
            }
        }
    }
    scan
}

/// Memoized aggregate of a completed all-clusters fast-forward scan
/// that found nothing able to issue or activate. Valid until any TCU
/// mutates (an instruction issues, a thread activates, or a memory
/// reply is applied) or the clock reaches `min_busy`; quiet steps and
/// bulk skips preserve it, so memory-bound stretches pay for one
/// O(clusters × TCUs) scan instead of one per quiet cycle.
#[derive(Debug, Clone, Copy)]
struct FfScanCache {
    min_busy: u64,
    blocked_scoreboard: u64,
    blocked_lsu: u64,
}

/// The XMT machine. Built via [`MachineBuilder`].
///
/// The probe type parameter is the observability hook: [`NoProbe`]
/// (the default) has `Probe::ENABLED == false`, so every probe branch
/// in the advance loops constant-folds away and an unprobed machine is
/// bit-for-bit and cycle-for-cycle the pre-observability simulator.
pub struct Machine<P: Probe = NoProbe> {
    cfg: XmtConfig,
    prog: Program,
    /// Functional shared memory (word addressed).
    pub mem: Vec<u32>,
    gregs: [u32; NUM_GREGS],
    mtcu_rf: RegFile,
    mode: Mode,
    cycle: u64,
    /// Parallel-section thread allocation (the PS unit's counter).
    next_tid: u32,
    spawn_count: u32,
    spawn_entry: usize,
    clusters: Vec<Vec<Tcu>>,
    cluster_rr: Vec<usize>,
    /// Instructions issued per cluster (load-balance observability).
    cluster_instr: Vec<u64>,
    req_net: Box<dyn Network>,
    reply_net: Box<dyn Network>,
    modules: Vec<MemoryModule>,
    channels: Vec<DramChannel>,
    module_outbox: Vec<VecDeque<u64>>,
    hash: AddressHash,
    /// In-flight memory transactions, keyed by the dense generational
    /// tags the slab hands out. Tags travel through NoC flits, module
    /// queues and DRAM requests exactly as before; every engine
    /// allocates and frees them in the same order, so the tag stream —
    /// and with it every stat — stays bit-identical across engines.
    txns: TxnSlab<Txn>,
    /// The `max_cycles` value.
    pub max_cycles: u64,
    /// Watchdog no-progress horizon: if no instruction retires and no
    /// thread starts for this many cycles, the run fails with
    /// [`SimError::Stalled`] instead of burning the whole cycle budget.
    pub watchdog: u64,
    /// Cycle on which the progress fingerprint last advanced.
    progress_cycle: u64,
    /// Progress fingerprint (instructions retired + threads started).
    progress_mark: u64,
    /// Accumulated statistics.
    pub stats: MachineStats,
    spawn_log: Vec<SpawnStats>,
    tracker: Option<SpawnTracker>,
    /// Advance-loop selection for [`Machine::run`].
    pub engine: Engine,
    /// Predecoded instruction stream: unit, hazard masks and flop flag
    /// resolved once at construction so the issue loop does one
    /// contiguous fetch per TCU instead of a program fetch plus a
    /// hazard-table lookup plus per-instruction re-derivation.
    decoded: DecodedProgram,
    /// Program touches global state from parallel mode (`ps`/`sspawn`),
    /// which the threaded engine cannot partition across workers.
    has_global_ops: bool,
    /// Completed memory-system steps. Trails `cycle` by the summed
    /// spawn-broadcast cycles (which advance the machine clock without
    /// stepping components); `cycle - mem_clock` converts component
    /// clocks to machine clocks.
    mem_clock: u64,
    /// Sorted indices of modules with work (`MemoryModule::is_active`);
    /// only these step each cycle. `module_active` mirrors membership.
    active_modules: Vec<usize>,
    module_active: Vec<bool>,
    /// Sorted indices of channels with transfers pending.
    active_channels: Vec<usize>,
    channel_active: Vec<bool>,
    /// Sorted indices of non-empty module outboxes.
    active_outboxes: Vec<usize>,
    outbox_active: Vec<bool>,
    /// Per-cluster bitmask mirrors of TCU hot state (see
    /// [`ClusterMasks`]); every mutation path in this file keeps them
    /// current, so the issue loops can skip or bulk-process TCUs
    /// without touching their cache lines.
    masks: Vec<ClusterMasks>,
    /// Memoized quiet-scan aggregates for [`Machine::fast_forward`].
    ff_cache: Option<FfScanCache>,
    /// Reusable per-cycle scratch: matured replies awaiting write-back.
    scratch_replies: Vec<ReplyDelivery>,
    /// Reusable per-cycle scratch: NoC deliveries (request and reply
    /// nets alternate on the same buffer within a cycle).
    scratch_deliveries: Vec<Delivered>,
    /// Reusable per-cycle scratch: module → DRAM channel requests.
    scratch_creqs: Vec<ChannelRequest>,
    /// Reusable per-cycle scratch: module responses.
    scratch_resps: Vec<MemResp>,
    /// The attached probe (zero-sized [`NoProbe`] by default).
    probe: P,
    /// Next sampling boundary (`u64::MAX` when the probe never fires).
    next_sample: u64,
    /// Cycle of the most recent sample, so the end-of-run flush in
    /// [`Machine::report`] does not double-emit.
    last_sample: u64,
    /// Block-compiled execution tier (DESIGN.md §15): `Some` when the
    /// builder selected [`TranslationTier::Block`]. Holds the lazily
    /// warmed superblock trace cache the issue loops replay from; the
    /// interpreter path remains the fallback at every cold slot and
    /// machine-level boundary.
    trace: Option<Box<TraceCache>>,
    /// Tier-only worklist of clusters with any active TCU, maintained by
    /// `step_parallel_fast` so fully idle clusters (proven quiescent:
    /// no busy TCUs, empty wake wheel) are never visited or skip-woken.
    par_active: Vec<usize>,
    /// Parallel cycles elapsed in the current section (tier bookkeeping
    /// for the lazy round-robin advance; always 0 when the tier is off).
    pcyc: u64,
    /// Per-cluster section cycle through which `cluster_rr` has been
    /// advanced; `sync_rr` settles the arrears before a cluster steps.
    rr_synced: Vec<u64>,
}

/// Insert `idx` into a sorted active list if not already present.
fn activate(list: &mut Vec<usize>, flags: &mut [bool], idx: usize) {
    if !flags[idx] {
        flags[idx] = true;
        let pos = list.partition_point(|&x| x < idx);
        list.insert(pos, idx);
    }
}

/// Bounds-check a base+offset word address against the memory image.
#[inline(always)]
fn addr_of(pc: usize, base: u32, off: u32, mem_len: usize) -> Result<usize, SimError> {
    let a = base as u64 + off as u64;
    if (a as usize) < mem_len {
        Ok(a as usize)
    } else {
        // The clock is out of reach here; the step boundary stamps it.
        Err(SimError::MemOutOfBounds {
            pc,
            addr: a,
            at_cycle: 0,
        })
    }
}

/// Issue a load/store into the request network. Returns false if the
/// network refused it this cycle. A free function over the exact pieces
/// it needs so `step_cluster` can keep its disjoint field borrows.
///
/// Tag protocol: the slab's next tag is *peeked* and stamped into the
/// flit first; the transaction is only committed on a successful
/// injection, so a refused attempt leaves the tag stream untouched —
/// the same allocation order every engine observes.
#[allow(clippy::too_many_arguments)]
fn issue_memory(
    tcu: &mut Tcu,
    c: usize,
    t: usize,
    pc: usize,
    ins: &Instr,
    mem_len: usize,
    hash: &AddressHash,
    req_net: &mut dyn Network,
    txns: &mut TxnSlab<Txn>,
    stats: &mut MachineStats,
) -> Result<bool, SimError> {
    let (addr, kind, value) = match *ins {
        Instr::Lw { rd, base, off } => {
            let a = addr_of(pc, tcu.rf.read_i(base), off, mem_len)?;
            (a, TxnKind::LoadI(rd), 0)
        }
        Instr::Flw { fd, base, off } => {
            let a = addr_of(pc, tcu.rf.read_i(base), off, mem_len)?;
            (a, TxnKind::LoadF(fd), 0)
        }
        Instr::Sw { rs, base, off } => {
            let a = addr_of(pc, tcu.rf.read_i(base), off, mem_len)?;
            (a, TxnKind::Store, tcu.rf.read_i(rs))
        }
        Instr::Fsw { fs, base, off } => {
            let a = addr_of(pc, tcu.rf.read_i(base), off, mem_len)?;
            (a, TxnKind::Store, tcu.rf.read_f(fs).to_bits())
        }
        _ => unreachable!("issue_memory on non-memory instruction"),
    };
    let module = hash.module_of(addr as u32);
    let tag = txns.peek_tag();
    if !req_net.try_inject(Flit {
        src: c,
        dst: module,
        tag,
    }) {
        return Ok(false);
    }
    let committed = txns.insert(Txn {
        cluster: c,
        tcu: t,
        addr: addr as u32,
        kind,
        value,
    });
    debug_assert_eq!(committed, tag);
    tcu.outstanding += 1;
    match kind {
        TxnKind::LoadI(rd) => {
            if rd.index() != 0 {
                tcu.pend_i |= 1 << rd.index();
            }
            stats.mem_reads += 1;
        }
        TxnKind::LoadF(fd) => {
            tcu.pend_f |= 1 << fd.index();
            stats.mem_reads += 1;
        }
        TxnKind::Store => {
            stats.mem_writes += 1;
        }
    }
    Ok(true)
}

/// Staged construction of a [`Machine`]: configuration, program,
/// initial memory image, engine selection and probe registration in
/// one chainable value, replacing the old `Machine::new(cfg, prog,
/// mem_words)` plus post-hoc field pokes and write calls.
///
/// ```
/// # use xmt_sim::{Engine, MachineBuilder, XmtConfig};
/// # use xmt_isa::ProgramBuilder;
/// # let mut b = ProgramBuilder::new();
/// # b.halt();
/// # let prog = b.build().unwrap();
/// let mut m = MachineBuilder::new(&XmtConfig::xmt_4k().scaled_to(4), prog)
///     .mem_words(1024)
///     .write_f32s(16, &[1.0, 2.0])
///     .engine(Engine::FastForward)
///     .build();
/// m.run().unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct MachineBuilder {
    cfg: XmtConfig,
    prog: Program,
    mem: Vec<u32>,
    engine: Engine,
    max_cycles: Option<u64>,
    faults: FaultPlan,
    watchdog: Option<u64>,
    tier: TranslationTier,
}

impl MachineBuilder {
    /// Start building a machine for `cfg` running `prog`. The memory
    /// image starts empty; size it with [`MachineBuilder::mem_words`]
    /// or implicitly via the `write_*` methods.
    pub fn new(cfg: &XmtConfig, prog: Program) -> Self {
        Self {
            cfg: *cfg,
            prog,
            mem: Vec::new(),
            engine: Engine::default(),
            max_cycles: None,
            faults: FaultPlan::default(),
            watchdog: None,
            tier: TranslationTier::default(),
        }
    }

    /// Grow the memory image to at least `words` zeroed words.
    pub fn mem_words(mut self, words: usize) -> Self {
        if self.mem.len() < words {
            self.mem.resize(words, 0);
        }
        self
    }

    /// Select the advance engine (default [`Engine::FastForward`]).
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Select the execution tier (default [`TranslationTier::Block`],
    /// the trace-cache replay path). [`TranslationTier::Interpreter`]
    /// restores per-instruction dispatch; the two are bit-identical in
    /// every architectural and statistical output, differing only in
    /// host-side speed.
    pub fn tier(mut self, tier: TranslationTier) -> Self {
        self.tier = tier;
        self
    }

    /// Override the runaway/deadlock cycle limit.
    pub fn max_cycles(mut self, max_cycles: u64) -> Self {
        self.max_cycles = Some(max_cycles);
        self
    }

    /// Override the watchdog no-progress horizon (default two million
    /// cycles; see [`SimError::Stalled`]).
    pub fn watchdog(mut self, horizon: u64) -> Self {
        self.watchdog = Some(horizon);
        self
    }

    /// Attach a deterministic [`FaultPlan`]. A benign plan (the
    /// default) interposes nothing: the machine is bit-identical to one
    /// built without faults.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Graceful-degradation shorthand: take whole clusters and DRAM
    /// channels offline. Spawned threads remap around the dead clusters
    /// and the address hash spreads lines over the surviving module
    /// groups, so a correct program still produces correct output at
    /// reduced throughput. Merges into the current fault plan.
    pub fn degraded(mut self, dead_clusters: &[usize], dead_channels: &[usize]) -> Self {
        for &c in dead_clusters {
            self.faults.dead_clusters.push(c);
        }
        for &ch in dead_channels {
            self.faults.dead_channels.push(ch);
        }
        self
    }

    /// Store an `f32` slice at word address `addr` (bit-cast), growing
    /// the memory image to fit.
    pub fn write_f32s(mut self, addr: usize, data: &[f32]) -> Self {
        self = self.mem_words(addr + data.len());
        for (i, &v) in data.iter().enumerate() {
            self.mem[addr + i] = v.to_bits();
        }
        self
    }

    /// Store a `u32` slice at word address `addr`, growing the memory
    /// image to fit.
    pub fn write_u32s(mut self, addr: usize, data: &[u32]) -> Self {
        self = self.mem_words(addr + data.len());
        self.mem[addr..addr + data.len()].copy_from_slice(data);
        self
    }

    /// Build an unprobed machine (the zero-overhead default). Panics on
    /// an invalid fault plan; use [`MachineBuilder::try_build`] for a
    /// typed error instead.
    pub fn build(self) -> Machine {
        self.try_build().expect("invalid machine configuration")
    }

    /// Build an unprobed machine, returning
    /// [`SimError::InvalidConfig`] when the configuration or fault plan
    /// is impossible (indices out of range, every TCU disabled, …).
    pub fn try_build(self) -> Result<Machine, SimError> {
        self.try_build_probed(NoProbe)
    }

    /// Build a machine with `probe` attached. Panicking sibling of
    /// [`MachineBuilder::try_build_probed`].
    pub fn build_probed<P: Probe>(self, probe: P) -> Machine<P> {
        self.try_build_probed(probe)
            .expect("invalid machine configuration")
    }

    /// Validate the fault plan against the configuration.
    fn validate_faults(&self) -> Result<(), SimError> {
        let f = &self.faults;
        let err = |what| Err(SimError::InvalidConfig { what });
        if f.dead_clusters.iter().any(|&c| c >= self.cfg.clusters) {
            return err("dead cluster index out of range");
        }
        if f.dead_tcus
            .iter()
            .chain(&f.stuck_tcus)
            .any(|id| id.cluster >= self.cfg.clusters || id.tcu >= self.cfg.tcus_per_cluster)
        {
            return err("faulted TCU index out of range");
        }
        if f.dead_channels
            .iter()
            .any(|&ch| ch >= self.cfg.dram_channels())
        {
            return err("dead DRAM channel index out of range");
        }
        let p_ok = |p: f64| (0.0..=1.0).contains(&p);
        if !p_ok(f.dram_single) || !p_ok(f.dram_double) || !p_ok(f.noc_corrupt) {
            return err("fault probability out of [0, 1]");
        }
        if !f.dead_channels.is_empty() {
            if self.cfg.memory_modules > 64 {
                return err("degraded placement requires \u{2264} 64 memory modules");
            }
            let mut dead = f.dead_channels.clone();
            dead.sort_unstable();
            dead.dedup();
            if dead.len() >= self.cfg.dram_channels() {
                return err("at least one DRAM channel must stay online");
            }
        }
        // At least one TCU must be able to run threads.
        let mut dead_clusters = f.dead_clusters.clone();
        dead_clusters.sort_unstable();
        dead_clusters.dedup();
        let mut dead_tcus: Vec<(usize, usize)> = f
            .dead_tcus
            .iter()
            .map(|id| (id.cluster, id.tcu))
            .filter(|&(c, _)| !dead_clusters.contains(&c))
            .collect();
        dead_tcus.sort_unstable();
        dead_tcus.dedup();
        let total = self.cfg.clusters * self.cfg.tcus_per_cluster;
        let dead = dead_clusters.len() * self.cfg.tcus_per_cluster + dead_tcus.len();
        if dead >= total {
            return err("every TCU is disabled");
        }
        Ok(())
    }

    /// Build a machine with `probe` attached. The probe's
    /// [`Probe::bind`] runs here, before the first cycle, so ring
    /// buffers are sized once and the hot path never allocates. With a
    /// benign fault plan the constructed machine is bit-identical to
    /// the pre-fault-injection simulator: no fault layer is interposed
    /// anywhere.
    pub fn try_build_probed<P: Probe>(self, mut probe: P) -> Result<Machine<P>, SimError> {
        self.validate_faults()?;
        let MachineBuilder {
            cfg,
            prog,
            mem,
            engine,
            max_cycles,
            faults,
            watchdog,
            tier,
        } = self;
        assert!(
            cfg.tcus_per_cluster <= 64,
            "the mask-accelerated issue loop packs a cluster into u64 \
             bitmasks; configs beyond 64 TCUs per cluster are unsupported"
        );
        probe.bind(&cfg);
        let next_sample = if P::ENABLED {
            probe.interval().max(1)
        } else {
            u64::MAX
        };
        let topo = cfg.topology();
        let reply_topo = if topo.is_nonblocking() {
            Topology::pure_mot(cfg.memory_modules, cfg.clusters)
        } else {
            Topology::hybrid(
                cfg.memory_modules,
                cfg.clusters,
                cfg.mot_levels,
                cfg.butterfly_levels,
            )
        };
        let modules = (0..cfg.memory_modules)
            .map(|i| MemoryModule::new(i, cfg.cache))
            .collect();
        let mut channels: Vec<DramChannel> = (0..cfg.dram_channels())
            .map(|_| DramChannel::new(cfg.dram))
            .collect();
        for (ch, channel) in channels.iter_mut().enumerate() {
            if let Some(ecc) = faults.ecc_for_channel(ch) {
                channel.enable_ecc(ecc);
            }
        }
        // Dead DRAM channels take their whole memory-module group
        // offline; the hash spreads lines over the survivors.
        let offline_modules: Vec<usize> = faults
            .dead_channels
            .iter()
            .flat_map(|&ch| ch * cfg.mm_per_dram_ctrl..(ch + 1) * cfg.mm_per_dram_ctrl)
            .collect();
        let hash = if offline_modules.is_empty() {
            AddressHash::new(cfg.memory_modules, cfg.cache.line_words)
        } else {
            AddressHash::degraded(cfg.memory_modules, cfg.cache.line_words, &offline_modules)
        };
        let mut req_net = xmt_noc::build_network(topo);
        let mut reply_net = xmt_noc::build_network(reply_topo);
        if let Some(lf) = faults.req_net_faults() {
            req_net = Box::new(FaultyNetwork::new(req_net, lf));
        }
        if let Some(lf) = faults.reply_net_faults() {
            reply_net = Box::new(FaultyNetwork::new(reply_net, lf));
        }
        let decoded = DecodedProgram::new(&prog);
        let trace = (tier == TranslationTier::Block)
            .then(|| Box::new(TraceCache::new(&decoded, FPU_LATENCY, MDU_LATENCY)));
        let has_global_ops = (0..prog.len())
            .any(|pc| matches!(prog.fetch(pc), Instr::Ps { .. } | Instr::Sspawn { .. }));
        let n_channels = channels.len();
        let mut m = Machine {
            prog,
            mem,
            gregs: [0; NUM_GREGS],
            mtcu_rf: RegFile::new(0),
            mode: Mode::Serial {
                pc: 0,
                resume_at: 0,
            },
            cycle: 0,
            next_tid: 0,
            spawn_count: 0,
            spawn_entry: 0,
            clusters: (0..cfg.clusters)
                .map(|_| (0..cfg.tcus_per_cluster).map(|_| Tcu::idle()).collect())
                .collect(),
            cluster_rr: vec![0; cfg.clusters],
            cluster_instr: vec![0; cfg.clusters],
            req_net,
            reply_net,
            modules,
            channels,
            module_outbox: vec![VecDeque::new(); cfg.memory_modules],
            hash,
            txns: TxnSlab::new(),
            max_cycles: max_cycles.unwrap_or(200_000_000),
            watchdog: watchdog.unwrap_or(DEFAULT_WATCHDOG),
            progress_cycle: 0,
            progress_mark: 0,
            stats: MachineStats::default(),
            spawn_log: Vec::new(),
            tracker: None,
            engine,
            decoded,
            has_global_ops,
            mem_clock: 0,
            active_modules: Vec::new(),
            module_active: vec![false; cfg.memory_modules],
            active_channels: Vec::new(),
            channel_active: vec![false; n_channels],
            active_outboxes: Vec::new(),
            outbox_active: vec![false; cfg.memory_modules],
            masks: vec![ClusterMasks::new(cfg.tcus_per_cluster); cfg.clusters],
            ff_cache: None,
            scratch_replies: Vec::new(),
            scratch_deliveries: Vec::new(),
            scratch_creqs: Vec::new(),
            scratch_resps: Vec::new(),
            probe,
            next_sample,
            last_sample: 0,
            trace,
            par_active: Vec::new(),
            pcyc: 0,
            rr_synced: vec![0; cfg.clusters],
            cfg,
        };
        for &c in &faults.dead_clusters {
            for tcu in &mut m.clusters[c] {
                tcu.disabled = true;
            }
            m.masks[c].disabled = ones(m.cfg.tcus_per_cluster);
        }
        for id in &faults.dead_tcus {
            m.clusters[id.cluster][id.tcu].disabled = true;
            m.masks[id.cluster].disabled |= 1u64 << id.tcu;
        }
        for id in &faults.stuck_tcus {
            let tcu = &mut m.clusters[id.cluster][id.tcu];
            if !tcu.disabled {
                tcu.stuck = true;
                m.masks[id.cluster].stuck |= 1u64 << id.tcu;
            }
        }
        Ok(m)
    }

    /// Build a machine and restore `cp` into it, resuming the run the
    /// checkpoint was taken from. The builder must describe the same
    /// machine (config, program, fault plan) that produced the
    /// checkpoint — geometry is validated, and the fault layers rewind
    /// their deterministic streams to the saved cursors, so the resumed
    /// run finishes with the same final cycle count and spawn digest as
    /// the uninterrupted one under every engine.
    pub fn resume(self, cp: &Checkpoint) -> Result<Machine, SimError> {
        self.resume_probed(cp, NoProbe)
    }

    /// [`MachineBuilder::resume`] with `probe` attached. The probe's
    /// sampling clock is aligned to the *next* interval boundary after
    /// the checkpoint cycle (no catch-up samples for the skipped
    /// prefix), and [`Probe::resync`] is called once with the restored
    /// cumulative state so interval deltas continue from the
    /// checkpoint — a *fresh* [`crate::IntervalProbe`] resumes as the
    /// tail of the uninterrupted run's stream, with the interval the
    /// checkpoint split accounting only its post-checkpoint fraction.
    /// Re-attaching the paused machine's own probe
    /// ([`Machine::into_probe`] +
    /// [`IntervalProbe::into_carried`](crate::IntervalProbe::into_carried))
    /// strengthens that to full bit-identity: the split interval's row
    /// comes out exactly as the uninterrupted run would have emitted
    /// it.
    pub fn resume_probed<P: Probe>(
        self,
        cp: &Checkpoint,
        probe: P,
    ) -> Result<Machine<P>, SimError> {
        let mut m = self.try_build_probed(probe)?;
        let geometry_ok = cp.clusters as usize == m.cfg.clusters
            && cp.tcus_per_cluster as usize == m.cfg.tcus_per_cluster
            && cp.memory_modules as usize == m.cfg.memory_modules
            && cp.dram_channels as usize == m.cfg.dram_channels()
            && cp.prog_len as usize == m.prog.len()
            && cp.gregs.len() == NUM_GREGS
            && cp.mtcu_iregs.len() == 32
            && cp.mtcu_fregs.len() == 32
            && cp.cluster_rr.len() == m.cfg.clusters
            && cp.cluster_instr.len() == m.cfg.clusters
            && cp.modules.len() == m.cfg.memory_modules
            && cp.channels.len() == m.cfg.dram_channels();
        if !geometry_ok {
            return Err(SimError::InvalidConfig {
                what: "checkpoint geometry does not match the machine",
            });
        }
        m.mem = cp.mem.clone();
        m.gregs.copy_from_slice(&cp.gregs);
        for i in 0..32 {
            m.mtcu_rf.write_i(ir(i), cp.mtcu_iregs[i]);
            m.mtcu_rf.write_f(fr(i), f32::from_bits(cp.mtcu_fregs[i]));
        }
        m.cycle = cp.cycle;
        m.next_tid = cp.next_tid;
        m.spawn_count = cp.spawn_count;
        m.spawn_entry = cp.spawn_entry as usize;
        m.stats = cp.stats;
        m.spawn_log = cp.spawn_log.clone();
        m.cluster_rr = cp.cluster_rr.iter().map(|&r| r as usize).collect();
        m.cluster_instr = cp.cluster_instr.clone();
        m.mode = Mode::Serial {
            pc: cp.pc as usize,
            resume_at: cp.cycle + 1,
        };
        // The restored clock counts as fresh progress; component clocks
        // restart at 0 and `cycle - mem_clock` absorbs the offset.
        m.progress_cycle = cp.cycle;
        m.progress_mark = cp.stats.instructions + cp.stats.threads;
        m.last_sample = cp.cycle;
        for (module, ms) in m.modules.iter_mut().zip(&cp.modules) {
            let bank = module.bank_mut();
            bank.restore_tags(&ms.tags);
            bank.stats = ms.cache;
            module.stats = ms.module;
        }
        for (channel, cs) in m.channels.iter_mut().zip(&cp.channels) {
            channel.restore_state(cs.stats, cs.transfers);
        }
        m.req_net.restore_stats(cp.req_stats);
        m.reply_net.restore_stats(cp.reply_stats);
        if P::ENABLED {
            // Jump the sampling clock past the restored prefix (else
            // `poll_probe` would emit a catch-up sample for every
            // boundary below `cp.cycle`) and re-prime the probe's
            // delta baseline from the restored cumulative counters.
            let iv = m.probe.interval().max(1);
            m.next_sample = (cp.cycle / iv).saturating_add(1).saturating_mul(iv);
            m.emit_sample_with(cp.cycle, true);
        }
        Ok(m)
    }
}

impl<P: Probe> Machine<P> {
    /// Store an `f32` slice at word address `addr` (bit-cast).
    pub fn write_f32s(&mut self, addr: usize, data: &[f32]) {
        for (i, &v) in data.iter().enumerate() {
            self.mem[addr + i] = v.to_bits();
        }
    }

    /// Read `len` f32s from word address `addr`.
    pub fn read_f32s(&self, addr: usize, len: usize) -> Vec<f32> {
        self.mem[addr..addr + len]
            .iter()
            .map(|&w| f32::from_bits(w))
            .collect()
    }

    /// Read `out.len()` f32s from word address `addr` into `out` —
    /// the allocation-free sibling of [`Machine::read_f32s`] for
    /// repeated validation reads.
    pub fn read_f32s_into(&self, addr: usize, out: &mut [f32]) {
        let src = &self.mem[addr..addr + out.len()];
        for (o, &w) in out.iter_mut().zip(src) {
            *o = f32::from_bits(w);
        }
    }

    /// Store a `u32` slice at word address `addr`.
    pub fn write_u32s(&mut self, addr: usize, data: &[u32]) {
        self.mem[addr..addr + data.len()].copy_from_slice(data);
    }

    /// The attached probe (e.g. to pull [`crate::IntervalProbe::rows`]
    /// after a run).
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// Consume the machine and hand back its probe — used when a
    /// paused machine is torn down but its probe should continue on
    /// the checkpoint-restored successor (see
    /// [`IntervalProbe::into_carried`](crate::IntervalProbe::into_carried)).
    pub fn into_probe(self) -> P {
        self.probe
    }

    /// The configuration used.
    pub fn config(&self) -> &XmtConfig {
        &self.cfg
    }

    /// Snapshot of the global registers (useful after a run).
    pub fn gregs_snapshot(&self) -> [u32; NUM_GREGS] {
        self.gregs
    }

    /// Utilization snapshot: per-cluster issue counts, per-module
    /// cache behaviour and DRAM-channel occupancy. Folded into the
    /// [`RunReport`] so callers no longer query the machine post-run.
    fn utilization(&self) -> UtilizationReport {
        let cluster_instr = self.cluster_instr.clone();
        let module_accesses: Vec<u64> = self
            .modules
            .iter()
            .map(|m| m.bank().stats.accesses)
            .collect();
        let module_hit_rate: Vec<f64> = self
            .modules
            .iter()
            .map(|m| {
                let st = m.bank().stats;
                if st.accesses == 0 {
                    1.0
                } else {
                    st.hits as f64 / st.accesses as f64
                }
            })
            .collect();
        let channel_busy: Vec<f64> = self
            .channels
            .iter()
            .map(|ch| {
                if self.cycle == 0 {
                    0.0
                } else {
                    ch.stats.busy_cycles as f64 / self.cycle as f64
                }
            })
            .collect();
        let fpu_util = if self.cycle == 0 {
            0.0
        } else {
            self.stats.flops as f64
                / (self.cycle as f64 * (self.cfg.clusters * self.cfg.fpus_per_cluster) as f64)
        };
        UtilizationReport {
            cluster_instr,
            module_accesses,
            module_hit_rate,
            channel_busy,
            fpu_utilization: fpu_util,
        }
    }

    /// Total DRAM bytes moved so far.
    fn dram_bytes(&self) -> u64 {
        self.channels.iter().map(|c| c.stats.bytes).sum()
    }

    /// Run to `halt` with the selected [`Engine`]. The [`RunOutcome`]
    /// always carries a [`RunReport`]: complete on
    /// [`RunStatus::Completed`] (the spawn log is moved into it — use
    /// [`Machine::spawn_log`] for any later inspection), partial up to
    /// the failure cycle on [`RunStatus::Failed`].
    pub fn run(&mut self) -> RunOutcome {
        match self.run_inner() {
            Ok(report) => RunOutcome {
                status: RunStatus::Completed,
                report,
            },
            Err(error) => RunOutcome {
                status: RunStatus::Failed(error),
                report: self.report(),
            },
        }
    }

    fn run_inner(&mut self) -> Result<RunReport, SimError> {
        match self.engine {
            Engine::Reference => self.run_reference(),
            Engine::FastForward => self.run_ff(),
            Engine::Threaded { threads } => {
                // With a probe attached the threaded engine would lag
                // samples: workers bank skip-accrued stall deltas until
                // their next step reply, so mid-run boundaries see
                // stale aggregates. Fast-forward samples exactly, so a
                // probed Threaded selection falls back to it (the
                // sample stream stays bit-identical to Reference).
                if P::ENABLED || self.has_global_ops || self.clusters.len() < 2 {
                    self.run_ff()
                } else {
                    threaded::run(self, threads)
                }
            }
        }
    }

    /// Cycle-budget and watchdog check, run at every step boundary in
    /// every engine. The progress fingerprint is instructions retired
    /// plus threads started: any cycle that advances neither for a
    /// whole watchdog horizon is a hang (legitimate quiet stretches are
    /// bounded by DRAM latency), reported as [`SimError::Stalled`] at
    /// exactly `progress_cycle + watchdog` — the fast-forward and
    /// threaded engines cap their skip horizons there so all three
    /// engines fail on the identical cycle.
    fn check_progress(&mut self) -> Result<(), SimError> {
        if self.cycle > self.max_cycles {
            return Err(SimError::CycleLimit {
                at_cycle: self.cycle,
            });
        }
        let mark = self.stats.instructions + self.stats.threads;
        if mark != self.progress_mark {
            self.progress_mark = mark;
            self.progress_cycle = self.cycle;
        } else if self.cycle >= self.progress_cycle + self.watchdog {
            return Err(SimError::Stalled {
                at_cycle: self.cycle,
                last_retired: self.stats.instructions,
            });
        }
        Ok(())
    }

    /// The skip horizon the watchdog imposes: one past the firing
    /// cycle, so a fast-forward lands exactly on it.
    fn watchdog_horizon(&self) -> u64 {
        (self.progress_cycle + self.watchdog).saturating_add(1)
    }

    /// The baseline advance loop: one `step` per simulated cycle.
    fn run_reference(&mut self) -> Result<RunReport, SimError> {
        while !matches!(self.mode, Mode::Finished) {
            self.step()?;
            self.check_progress()?;
        }
        Ok(self.report())
    }

    /// Fast-forwarding advance loop. Two optimizations over the
    /// reference loop, both invisible in the stats: cycles that do step
    /// use mask-driven bulk issue ([`Machine::step_fast`]), and after
    /// any cycle that issued no instruction and activated no thread the
    /// clock jumps directly to the next cycle on which anything can
    /// happen.
    fn run_ff(&mut self) -> Result<RunReport, SimError> {
        while !matches!(self.mode, Mode::Finished) {
            self.ff_advance()?;
        }
        Ok(self.report())
    }

    /// One fast-forward iteration: a stepped cycle, then (if it was
    /// quiet) a bulk skip to the next event.
    fn ff_advance(&mut self) -> Result<(), SimError> {
        let instr_before = self.stats.instructions;
        let threads_before = self.stats.threads;
        self.step_fast()?;
        self.check_progress()?;
        if instr_before == self.stats.instructions && threads_before == self.stats.threads {
            self.fast_forward();
            self.check_progress()?;
        } else {
            // The step mutated TCU state (issue or activation), so
            // any memoized quiet scan is stale.
            self.ff_cache = None;
        }
        Ok(())
    }

    /// Run until the first *quiescent* cycle at or after `pause_at`
    /// (serial mode, every transaction, NoC flit, module queue and
    /// DRAM transfer drained), or to completion if the program halts
    /// first. A paused machine can be snapshotted with
    /// [`Machine::checkpoint`] and later resumed via
    /// [`MachineBuilder::resume`], or simply run onward. Always
    /// advances with the fast-forward engine; the pause point is
    /// normalized so the checkpoint bytes are engine-invariant and the
    /// final results match an uninterrupted run bit-for-bit.
    ///
    /// On [`RunStatus::Paused`] the report is a *snapshot* (the spawn
    /// log is cloned, not moved) so the machine can be checkpointed or
    /// run onward without losing history.
    pub fn run_until(&mut self, pause_at: u64) -> RunOutcome {
        match self.run_until_inner(pause_at) {
            Ok(Some(at_cycle)) => RunOutcome {
                status: RunStatus::Paused { at_cycle },
                report: self.report_snapshot(),
            },
            Ok(None) => RunOutcome {
                status: RunStatus::Completed,
                report: self.report(),
            },
            Err(error) => RunOutcome {
                status: RunStatus::Failed(error),
                report: self.report(),
            },
        }
    }

    /// `Some(pause_cycle)` on a quiescent pause, `None` on completion.
    fn run_until_inner(&mut self, pause_at: u64) -> Result<Option<u64>, SimError> {
        while !matches!(self.mode, Mode::Finished) {
            if self.cycle >= pause_at && self.quiescent() {
                self.normalize_pause();
                return Ok(Some(self.cycle));
            }
            self.ff_advance()?;
        }
        Ok(None)
    }

    /// True when nothing is in flight anywhere: serial mode, no
    /// transactions, every module/channel/outbox idle, both NoCs empty
    /// (including fault-layer retries) and no open spawn section. At
    /// such a cycle the whole machine state is captured by the
    /// architectural registers plus the component counters.
    fn quiescent(&self) -> bool {
        matches!(self.mode, Mode::Serial { .. })
            && self.txns.is_empty()
            && self.active_modules.is_empty()
            && self.active_channels.is_empty()
            && self.active_outboxes.is_empty()
            && self.req_net.in_flight() == 0
            && self.reply_net.in_flight() == 0
            && self.tracker.is_none()
    }

    /// Canonicalize a quiescent pause point: jump the clock to the eve
    /// of the MTCU's resume cycle (where the fast-forward engine would
    /// naturally land) and re-anchor `resume_at`. Unobservable in the
    /// final results — it only moves the clock within a stretch where
    /// nothing can happen — and it makes checkpoint bytes independent
    /// of how the pause cycle was reached.
    fn normalize_pause(&mut self) {
        if let Mode::Serial { pc, resume_at } = self.mode {
            let c = self.cycle.max(resume_at.saturating_sub(1));
            self.cycle = c;
            self.stats.cycles = c;
            self.mode = Mode::Serial {
                pc,
                resume_at: c + 1,
            };
            self.poll_probe();
        }
    }

    /// Snapshot a quiescent machine into a [`Checkpoint`]. Fails with
    /// [`SimError::Protocol`] when called with work in flight — use
    /// [`Machine::run_until`] to reach a quiescent cycle first.
    pub fn checkpoint(&mut self) -> Result<Checkpoint, SimError> {
        if !self.quiescent() {
            return Err(SimError::Protocol {
                what: "checkpoint of a non-quiescent machine",
                at_cycle: self.cycle,
            });
        }
        self.normalize_pause();
        let pc = match self.mode {
            Mode::Serial { pc, .. } => pc,
            _ => unreachable!("quiescent() guarantees serial mode"),
        };
        Ok(Checkpoint {
            clusters: self.cfg.clusters as u32,
            tcus_per_cluster: self.cfg.tcus_per_cluster as u32,
            memory_modules: self.cfg.memory_modules as u32,
            dram_channels: self.cfg.dram_channels() as u32,
            prog_len: self.prog.len() as u32,
            cycle: self.cycle,
            pc: pc as u32,
            next_tid: self.next_tid,
            spawn_count: self.spawn_count,
            spawn_entry: self.spawn_entry as u32,
            gregs: self.gregs.to_vec(),
            mtcu_iregs: (0..32).map(|i| self.mtcu_rf.read_i(ir(i))).collect(),
            mtcu_fregs: (0..32)
                .map(|i| self.mtcu_rf.read_f(fr(i)).to_bits())
                .collect(),
            mem: self.mem.clone(),
            stats: self.stats,
            spawn_log: self.spawn_log.clone(),
            cluster_rr: self.cluster_rr.iter().map(|&r| r as u32).collect(),
            cluster_instr: self.cluster_instr.clone(),
            modules: self
                .modules
                .iter()
                .map(|m| ModuleState {
                    tags: m.bank().tag_snapshot(),
                    cache: m.bank().stats,
                    module: m.stats,
                })
                .collect(),
            channels: self
                .channels
                .iter()
                .map(|ch| {
                    let (stats, transfers) = ch.state();
                    ChannelState { stats, transfers }
                })
                .collect(),
            req_stats: self.req_net.stats(),
            reply_stats: self.reply_net.stats(),
        })
    }

    /// [`Machine::checkpoint`] straight to serialized bytes — the form
    /// every consumer that moves checkpoints across threads, files or
    /// sockets (the job server's slice commit, its write-ahead
    /// journal) actually wants. Same quiescence requirement.
    pub fn checkpoint_bytes(&mut self) -> Result<Vec<u8>, SimError> {
        Ok(self.checkpoint()?.to_bytes())
    }

    /// Move the clock from the end of a quiet cycle to just before the
    /// next event, replicating the bulk effects per-cycle stepping
    /// would have had: stall counters accrue per skipped cycle,
    /// round-robin pointers advance, component clocks jump.
    fn fast_forward(&mut self) {
        let next = self.cycle + 1;
        // The earliest cycle on which stepping could do something;
        // capped so a totally event-free machine still trips the
        // cycle-limit check exactly where the reference engine does,
        // and so the watchdog fires on the identical cycle (a stuck
        // TCU never issues, which a quiet-scan would skip past).
        let mut horizon = (self.max_cycles + 1).min(self.watchdog_horizon());
        let mut blocked_scoreboard = 0u64;
        let mut blocked_lsu = 0u64;
        let parallel = match self.mode {
            Mode::Finished => return,
            Mode::Serial { resume_at, .. } => {
                if resume_at <= next {
                    return; // the MTCU issues next cycle
                }
                horizon = horizon.min(resume_at);
                false
            }
            Mode::Parallel { .. } => {
                // A memoized scan stays exact while nothing that feeds
                // it changed: issues/activations/replies invalidate it,
                // and past `min_busy` a latency-stalled TCU wakes.
                let agg = match self.ff_cache.filter(|c| next < c.min_busy) {
                    Some(c) => c,
                    None => {
                        let mut agg = FfScanCache {
                            min_busy: u64::MAX,
                            blocked_scoreboard: 0,
                            blocked_lsu: 0,
                        };
                        // With the tier on and thread IDs exhausted,
                        // clusters off the worklist have no active TCUs:
                        // nothing to issue, wake or attribute stalls to,
                        // so the scan covers the worklist only.
                        let members: Option<&[usize]> = (self.trace.is_some()
                            && self.next_tid >= self.spawn_count)
                            .then_some(self.par_active.as_slice());
                        let n_scan = members.map_or(self.clusters.len(), |m| m.len());
                        for i in 0..n_scan {
                            let c = members.map_or(i, |m| m[i]);
                            let scan = scan_cluster::<false>(&self.clusters[c], next);
                            if scan.issue_next
                                || (scan.idle > 0 && self.next_tid < self.spawn_count)
                            {
                                return; // someone issues or activates next cycle
                            }
                            agg.min_busy = agg.min_busy.min(scan.min_busy);
                            agg.blocked_scoreboard += scan.blocked_scoreboard;
                            agg.blocked_lsu += scan.blocked_lsu;
                        }
                        self.ff_cache = Some(agg);
                        agg
                    }
                };
                horizon = horizon.min(agg.min_busy);
                blocked_scoreboard = agg.blocked_scoreboard;
                blocked_lsu = agg.blocked_lsu;
                true
            }
        };
        if let Some(e) = self.memory_next_event() {
            horizon = horizon.min(e);
        }
        if P::ENABLED {
            // Sampling boundaries are events: stop the skip at the
            // boundary so the probe records the same machine state
            // per-cycle stepping would. Splitting a quiet skip is
            // stats-invariant (stall accrual, wheel wakes and
            // round-robin advance all split additively), so the run's
            // aggregates — and the unprobed engine — are untouched.
            horizon = horizon.min(self.next_sample.saturating_add(1));
        }
        if horizon <= next {
            return;
        }
        let n = horizon - next;
        self.req_net.skip_idle(n);
        self.reply_net.skip_idle(n);
        for &m in &self.active_modules {
            self.modules[m].skip_idle(n);
        }
        for &c in &self.active_channels {
            self.channels[c].skip_idle(n);
        }
        self.mem_clock += n;
        if parallel {
            self.stats.stall_scoreboard += n * blocked_scoreboard;
            self.stats.stall_lsu += n * blocked_lsu;
            if self.trace.is_some() {
                // Only worklist clusters can hold a non-empty wake
                // wheel (inactive ⇒ empty, the worklist invariant), and
                // the round-robin pointers catch up lazily via `pcyc`
                // instead of an O(clusters) advance per skip.
                let masks = &mut self.masks;
                for &c in &self.par_active {
                    masks[c].wake_through(next, n);
                }
                self.pcyc += n;
            } else {
                for m in &mut self.masks {
                    m.wake_through(next, n);
                }
                let ntcus = self.cfg.tcus_per_cluster;
                let adv = (n % ntcus as u64) as usize;
                for rr in &mut self.cluster_rr {
                    *rr = (*rr + adv) % ntcus;
                }
            }
        }
        self.cycle += n;
        self.stats.cycles = self.cycle;
        self.poll_probe();
    }

    /// Earliest machine-clock cycle at which the memory system can
    /// change state on its own, or `None` when fully drained.
    fn memory_next_event(&self) -> Option<u64> {
        // A queued reply injection retries every cycle (it can be
        // refused by backpressure, which mutates NoC stats).
        if !self.active_outboxes.is_empty() {
            return Some(self.cycle + 1);
        }
        let off = self.cycle - self.mem_clock;
        let mut e = u64::MAX;
        if let Some(x) = self.req_net.next_event() {
            e = e.min(x + off);
        }
        if let Some(x) = self.reply_net.next_event() {
            e = e.min(x + off);
        }
        for &m in &self.active_modules {
            if let Some(x) = self.modules[m].next_event() {
                e = e.min(x + off);
            }
        }
        for &c in &self.active_channels {
            if let Some(x) = self.channels[c].next_event() {
                e = e.min(x + off);
            }
        }
        (e != u64::MAX).then_some(e)
    }

    /// Per-spawn statistics accumulated so far. [`Machine::run`] moves
    /// the log into its [`RunReport`] rather than cloning it, so after
    /// a completed run the report owns the entries and this is empty;
    /// it is useful when driving the machine manually via
    /// [`Machine::step`].
    pub fn spawn_log(&self) -> &[SpawnStats] {
        &self.spawn_log
    }

    /// Trace-cache exercise counters of the block-compiled tier, or
    /// `None` when the machine was built with
    /// [`TranslationTier::Interpreter`]. Deterministic for a given
    /// (program, config, engine) — the CI tier stage pins this.
    pub fn trace_stats(&self) -> Option<TraceStats> {
        self.trace.as_deref().map(TraceCache::stats)
    }

    /// The block-compiled tier's trace cache itself (read-only), or
    /// `None` under [`TranslationTier::Interpreter`]. The translation
    /// validator in `xmt-verify` audits the lowered records a run
    /// actually replayed through this view.
    pub fn trace_cache(&self) -> Option<&TraceCache> {
        self.trace.as_deref()
    }

    /// Assemble the [`RunReport`], flushing the probe's final partial
    /// interval first so interval totals equal the run aggregates.
    fn report(&mut self) -> RunReport {
        if P::ENABLED && self.cycle > self.last_sample {
            self.emit_sample(self.cycle);
        }
        RunReport {
            stats: self.stats,
            spawns: std::mem::take(&mut self.spawn_log),
            utilization: self.utilization(),
        }
    }

    /// A cloning report of the machine *as of now*, without flushing
    /// the probe or consuming the spawn log — the pause-path report:
    /// the machine keeps its history and can run onward or be
    /// checkpointed.
    fn report_snapshot(&self) -> RunReport {
        RunReport {
            stats: self.stats,
            spawns: self.spawn_log.clone(),
            utilization: self.utilization(),
        }
    }

    /// Emit samples for every boundary the clock has reached. Behind
    /// `P::ENABLED` so the `NoProbe` hot path compiles this away; the
    /// `while` handles the serial spawn broadcast jumping the clock
    /// across several boundaries at once (each gets a sample, from the
    /// same post-step state — identically in every engine).
    #[inline(always)]
    fn poll_probe(&mut self) {
        if !P::ENABLED {
            return;
        }
        while self.cycle >= self.next_sample {
            let boundary = self.next_sample;
            self.next_sample = boundary.saturating_add(self.probe.interval().max(1));
            self.emit_sample(boundary);
        }
    }

    /// Build a [`SampleCtx`] from the live component state and hand it
    /// to the probe. Split borrows keep this allocation-free.
    fn emit_sample(&mut self, boundary: u64) {
        self.emit_sample_with(boundary, false);
    }

    /// [`Machine::emit_sample`], or (with `resync`) the same context
    /// handed to [`Probe::resync`] instead — used once after a
    /// checkpoint restore to re-prime the probe's delta baseline.
    fn emit_sample_with(&mut self, boundary: u64, resync: bool) {
        let Machine {
            probe,
            stats,
            cycle,
            tracker,
            req_net,
            reply_net,
            txns,
            channels,
            modules,
            masks,
            last_sample,
            ..
        } = self;
        let mut blocked = BlockedTcus::default();
        for m in masks.iter() {
            let ready = m.active & !m.busy & !m.stuck;
            blocked.scoreboard +=
                u64::from((m.cls[IssueClass::Scoreboard as usize] & ready).count_ones());
            blocked.fpu += u64::from((m.cls[IssueClass::Fpu as usize] & ready).count_ones());
            blocked.mdu += u64::from((m.cls[IssueClass::Mdu as usize] & ready).count_ones());
            blocked.lsu += u64::from((m.cls[IssueClass::Lsu as usize] & ready).count_ones());
        }
        let ctx = SampleCtx {
            boundary,
            cycle: *cycle,
            spawn: tracker.as_ref().map(|t| t.index as u64),
            stats,
            req_net: req_net.stats(),
            reply_net: reply_net.stats(),
            noc_in_flight: (req_net.in_flight() + reply_net.in_flight()) as u64,
            txns_in_flight: txns.len() as u64,
            blocked,
            channels,
            modules,
        };
        if resync {
            probe.resync(&ctx);
        } else {
            probe.record(&ctx);
            *last_sample = *cycle;
        }
    }

    /// Advance the machine one cycle.
    pub fn step(&mut self) -> Result<(), SimError> {
        let r = self.step_inner();
        r.map_err(|e| e.stamped(self.cycle))
    }

    fn step_inner(&mut self) -> Result<(), SimError> {
        self.cycle += 1;
        self.stats.cycles = self.cycle;
        match self.mode {
            Mode::Serial { pc, resume_at } => {
                if self.cycle >= resume_at {
                    self.step_serial(pc)?;
                }
                // Serial mode still drains the memory system (posted
                // writes from the previous section are already done by
                // the barrier, but channels may be finishing refills).
                self.step_memory_system()?;
            }
            Mode::Parallel { return_pc } => {
                self.step_parallel()?;
                self.step_memory_system()?;
                self.maybe_finish_spawn(return_pc);
            }
            Mode::Finished => {}
        }
        self.poll_probe();
        Ok(())
    }

    /// [`Machine::step`] with mask-driven bulk issue in parallel mode.
    /// Only the fast-forward engine uses this; the reference engine
    /// sticks to the per-TCU visit loop it is the baseline for.
    fn step_fast(&mut self) -> Result<(), SimError> {
        let r = self.step_fast_inner();
        r.map_err(|e| e.stamped(self.cycle))
    }

    fn step_fast_inner(&mut self) -> Result<(), SimError> {
        self.cycle += 1;
        self.stats.cycles = self.cycle;
        match self.mode {
            Mode::Serial { pc, resume_at } => {
                if self.cycle >= resume_at {
                    self.step_serial(pc)?;
                }
                self.step_memory_system()?;
            }
            Mode::Parallel { return_pc } => {
                self.step_parallel_fast()?;
                self.step_memory_system()?;
                self.maybe_finish_spawn(return_pc);
            }
            Mode::Finished => {}
        }
        self.poll_probe();
        Ok(())
    }

    /// One parallel-mode cycle over every cluster, bulk-issuing off the
    /// cluster masks wherever the per-TCU visit order is unobservable.
    /// Falls back to the plain [`Machine::step_cluster`] loop for any
    /// cluster where it could be observed: pending thread activations
    /// interleave with issues in round-robin order, a ready `ps` /
    /// `sspawn` mutates shared state in that order, and a ready fault
    /// must surface at the reference engine's exact visit.
    fn step_parallel_fast(&mut self) -> Result<(), SimError> {
        if self.trace.is_none() {
            for c in 0..self.clusters.len() {
                self.step_cluster_fast(c)?;
            }
            return Ok(());
        }
        self.step_parallel_fast_tiered()
    }

    /// One cluster's slice of a fast parallel cycle: wake the wheel,
    /// then dispatch to the plain or bulk issue loop (see
    /// [`Machine::step_parallel_fast`] for the criteria).
    #[inline]
    fn step_cluster_fast(&mut self, c: usize) -> Result<(), SimError> {
        let cycle = self.cycle;
        let ntcus = self.cfg.tcus_per_cluster;
        let want_threads = self.next_tid < self.spawn_count;
        let tier_on = self.trace.is_some();
        let m = &mut self.masks[c];
        m.wake(cycle);
        let ready = m.active & !m.busy & !m.stuck;
        // Tier refinement (bit-identical): an activation needs an idle
        // enabled TCU in *this* cluster. Idle TCUs appearing mid-cycle
        // (a join) are never revisited, and a mid-cycle `sspawn` mint
        // is covered by the `ordered` full walk, so the cycle-start
        // masks decide exactly.
        let activations =
            want_threads && (!tier_on || (!m.active & !m.disabled & ones(ntcus)) != 0);
        let ordered = m.cls[IssueClass::Ps as usize]
            | m.cls[IssueClass::BadPc as usize]
            | m.cls[IssueClass::Illegal as usize];
        if activations || ordered & ready != 0 {
            self.step_cluster(c)
        } else {
            self.step_cluster_bulk(c, ready)
        }
    }

    /// Settle a cluster's round-robin arrears before it steps. With the
    /// tier on, skipped clusters and bulk fast-forwards no longer eagerly
    /// advance every `cluster_rr` each cycle; `pcyc` counts the parallel
    /// cycles of the current section and each cluster catches up lazily
    /// (same scheme as the threaded engine's shard `synced` field).
    #[inline]
    fn sync_rr(&mut self, c: usize) {
        let ntcus = self.cfg.tcus_per_cluster;
        let lag = (self.pcyc - self.rr_synced[c]) % ntcus as u64;
        if lag > 0 {
            self.cluster_rr[c] = (self.cluster_rr[c] + lag as usize) % ntcus;
        }
        // The step about to run advances the pointer once more.
        self.rr_synced[c] = self.pcyc + 1;
    }

    /// Tiered fast parallel cycle: only clusters on the `par_active`
    /// worklist are visited. A cluster leaves the list when its last
    /// thread joins (proven quiescent: joins drain posted stores first,
    /// and an empty active mask implies an empty wake wheel, so an
    /// unvisited cluster is a guaranteed no-op) and can only rejoin via
    /// activation, which rebuilds the list under a full walk.
    fn step_parallel_fast_tiered(&mut self) -> Result<(), SimError> {
        let nclusters = self.clusters.len();
        if self.next_tid < self.spawn_count {
            // Thread IDs remain: any cluster may activate an idle TCU,
            // so walk them all and rebuild the worklist.
            self.par_active.clear();
            for c in 0..nclusters {
                self.sync_rr(c);
                self.step_cluster_fast(c)?;
            }
            for c in 0..nclusters {
                if self.masks[c].active != 0 {
                    self.par_active.push(c);
                }
            }
            self.pcyc += 1;
            return Ok(());
        }
        // Steady state: compact the worklist in place while stepping.
        let mut list = std::mem::take(&mut self.par_active);
        let mut w = 0;
        for i in 0..list.len() {
            let c = list[i];
            if self.masks[c].active == 0 {
                continue;
            }
            self.sync_rr(c);
            if let Err(e) = self.step_cluster_fast(c) {
                self.par_active = list;
                return Err(e);
            }
            if self.next_tid < self.spawn_count {
                // An `sspawn` minted thread IDs mid-cycle. The
                // reference walk visits clusters in ascending order, so
                // every cluster after `c` — listed or not — may now
                // activate idle TCUs this same cycle; clusters at or
                // before `c` already had their visit.
                list.truncate(w);
                for c2 in c + 1..nclusters {
                    self.sync_rr(c2);
                    if let Err(e) = self.step_cluster_fast(c2) {
                        self.par_active = list;
                        return Err(e);
                    }
                }
                for c2 in 0..nclusters {
                    if self.masks[c2].active != 0 && list.binary_search(&c2).is_err() {
                        list.push(c2);
                    }
                }
                list.sort_unstable();
                self.par_active = list;
                self.pcyc += 1;
                return Ok(());
            }
            list[w] = c;
            w += 1;
        }
        list.truncate(w);
        self.par_active = list;
        self.pcyc += 1;
        Ok(())
    }

    /// Bulk-issue one cluster cycle straight off the masks: stall
    /// counters accrue by popcount without touching the stalled TCUs'
    /// cache lines, port winners are picked in round-robin order by
    /// rotate + trailing-zeros, and only TCUs that actually execute are
    /// dereferenced. Exactly mirrors [`Machine::step_cluster`] (the
    /// golden cross-engine tests pin this); the caller has already
    /// woken the masks and excluded activations and order-sensitive
    /// classes.
    fn step_cluster_bulk(&mut self, c: usize, ready: u64) -> Result<(), SimError> {
        let instr_at_entry = self.stats.instructions;
        let ntcus = self.cfg.tcus_per_cluster;
        let fpu_budget = self.cfg.fpus_per_cluster;
        let mdu_budget = self.cfg.mdus_per_cluster;
        let lsu_budget = self.cfg.lsus_per_cluster;
        let start = self.cluster_rr[c];
        self.cluster_rr[c] = (start + 1) % ntcus;
        let Machine {
            clusters,
            masks,
            decoded,
            gregs,
            stats,
            mem,
            hash,
            req_net,
            txns,
            cycle,
            trace,
            ..
        } = self;
        let mut trace = trace.as_deref_mut();
        let cluster = &mut clusters[c][..];
        let m = &mut masks[c];
        let mem_len = mem.len();
        let cycle = *cycle;

        // Snapshot the per-class ready sets before any issue mutates
        // the masks: a TCU's class is stable until its own visit (no
        // cross-TCU effect changes it inside a cluster cycle), so the
        // snapshot is exactly what the plain loop observes per visit.
        let sb = m.cls[IssueClass::Scoreboard as usize] & ready;
        let alu = m.cls[IssueClass::Alu as usize] & ready;
        let fpu = m.cls[IssueClass::Fpu as usize] & ready;
        let mdu = m.cls[IssueClass::Mdu as usize] & ready;
        let lsu = m.cls[IssueClass::Lsu as usize] & ready;
        let br = m.cls[IssueClass::Branch as usize] & ready;
        let join = m.cls[IssueClass::Join as usize] & ready;
        let nop = m.cls[IssueClass::Nop as usize] & ready;

        // Scoreboard-blocked TCUs burn one stall each, unvisited.
        stats.stall_scoreboard += u64::from(sb.count_ones());

        // ALU, branch and nop always issue (ALU ports are provisioned
        // one per TCU) and only touch the owning TCU, so round-robin
        // order among them is unobservable; ascending order is fine.
        let mut bits = alu;
        while bits != 0 {
            let t = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let tcu = &mut cluster[t];
            if let Some(tc) = trace.as_deref_mut() {
                let u = tc.fetch_warm(decoded, tcu.pc);
                let ok = exec_uop(&u, &mut tcu.rf, gregs);
                debug_assert!(ok, "ALU-class instruction must be compute-executable");
            } else {
                let d = decoded.fetch(tcu.pc);
                let ok = exec_compute(&d.instr, &mut tcu.rf, gregs);
                debug_assert!(ok, "ALU-class instruction must be compute-executable");
            }
            tcu.pc += 1;
            reclassify_masked(tcu, m, t, decoded);
            stats.instructions += 1;
        }
        let mut bits = br;
        while bits != 0 {
            let t = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let tcu = &mut cluster[t];
            let pc = tcu.pc;
            if let Some(tc) = trace.as_deref_mut() {
                let u = tc.fetch_warm(decoded, pc);
                tcu.pc = eval_branch_uop(&u, &tcu.rf).unwrap_or(pc + 1);
                tc.note_entry();
            } else {
                match decoded.fetch(pc).instr {
                    Instr::Branch {
                        cond,
                        rs1,
                        rs2,
                        target,
                    } => {
                        let taken = eval_branch(cond, tcu.rf.read_i(rs1), tcu.rf.read_i(rs2));
                        tcu.pc = if taken { target } else { pc + 1 };
                    }
                    Instr::Jump { target } => tcu.pc = target,
                    _ => unreachable!(),
                }
            }
            reclassify_masked(tcu, m, t, decoded);
            stats.instructions += 1;
        }
        let mut bits = nop;
        while bits != 0 {
            let t = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let tcu = &mut cluster[t];
            tcu.pc += 1;
            reclassify_masked(tcu, m, t, decoded);
            stats.instructions += 1;
        }

        // FPU/MDU: the port goes to the first contenders in round-robin
        // order; every loser burns one stall, counted without a visit.
        let mut rot = rr_rotate(fpu, start, ntcus);
        let mut budget = fpu_budget;
        while rot != 0 && budget > 0 {
            let t = rr_unrotate(rot.trailing_zeros() as usize, start, ntcus);
            rot &= rot - 1;
            budget -= 1;
            let tcu = &mut cluster[t];
            if let Some(tc) = trace.as_deref_mut() {
                let u = tc.fetch_warm(decoded, tcu.pc);
                let ok = exec_uop(&u, &mut tcu.rf, gregs);
                debug_assert!(ok);
            } else {
                let d = decoded.fetch(tcu.pc);
                let ok = exec_compute(&d.instr, &mut tcu.rf, gregs);
                debug_assert!(ok);
            }
            tcu.busy_until = cycle + FPU_LATENCY;
            m.set_busy(t, cycle + FPU_LATENCY);
            tcu.pc += 1;
            reclassify_masked(tcu, m, t, decoded);
            stats.instructions += 1;
            stats.flops += 1;
        }
        stats.stall_fpu += u64::from(rot.count_ones());
        let mut rot = rr_rotate(mdu, start, ntcus);
        let mut budget = mdu_budget;
        while rot != 0 && budget > 0 {
            let t = rr_unrotate(rot.trailing_zeros() as usize, start, ntcus);
            rot &= rot - 1;
            budget -= 1;
            let tcu = &mut cluster[t];
            if let Some(tc) = trace.as_deref_mut() {
                let u = tc.fetch_warm(decoded, tcu.pc);
                let ok = exec_uop(&u, &mut tcu.rf, gregs);
                debug_assert!(ok);
            } else {
                let d = decoded.fetch(tcu.pc);
                let ok = exec_compute(&d.instr, &mut tcu.rf, gregs);
                debug_assert!(ok);
            }
            tcu.busy_until = cycle + MDU_LATENCY;
            m.set_busy(t, cycle + MDU_LATENCY);
            tcu.pc += 1;
            reclassify_masked(tcu, m, t, decoded);
            stats.instructions += 1;
        }
        stats.stall_mdu += u64::from(rot.count_ones());

        // LSU: same round-robin port arbitration, plus the per-TCU
        // outstanding-transaction cap (stalls without consuming the
        // port) and NoC backpressure (consumes the port and stalls).
        let mut rot = rr_rotate(lsu, start, ntcus);
        let mut budget = lsu_budget;
        while rot != 0 {
            if budget == 0 {
                stats.stall_lsu += u64::from(rot.count_ones());
                break;
            }
            let t = rr_unrotate(rot.trailing_zeros() as usize, start, ntcus);
            rot &= rot - 1;
            let bit = 1u64 << t;
            if m.at_cap & bit != 0 {
                stats.stall_lsu += 1;
                continue;
            }
            let tcu = &mut cluster[t];
            let pc = tcu.pc;
            let d = decoded.fetch(pc);
            if !issue_memory(
                tcu,
                c,
                t,
                pc,
                &d.instr,
                mem_len,
                hash,
                req_net.as_mut(),
                txns,
                stats,
            )? {
                budget -= 1;
                stats.stall_lsu += 1;
                continue;
            }
            budget -= 1;
            m.out_nz |= bit;
            if tcu.outstanding >= MAX_OUTSTANDING {
                m.at_cap |= bit;
            }
            tcu.pc += 1;
            reclassify_masked(tcu, m, t, decoded);
            stats.instructions += 1;
        }

        // Joins with posted stores outstanding wait silently; the rest
        // retire. (Plain loop leaves `cls` at `Join` on retire, so the
        // class masks stay untouched here too.)
        let retire = join & !m.out_nz;
        let mut bits = retire;
        while bits != 0 {
            let t = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            cluster[t].active = false;
        }
        m.active &= !retire;
        stats.instructions += u64::from(retire.count_ones());

        self.cluster_instr[c] += self.stats.instructions - instr_at_entry;
        Ok(())
    }

    fn addr_of(&self, pc: usize, base: u32, off: u32) -> Result<usize, SimError> {
        addr_of(pc, base, off, self.mem.len())
    }

    fn step_serial(&mut self, pc: usize) -> Result<(), SimError> {
        if pc >= self.prog.len() {
            return Err(SimError::PcOutOfRange {
                pc,
                at_cycle: self.cycle,
            });
        }
        let ins = self.prog.fetch(pc);
        self.stats.instructions += 1;
        if ins.is_flop() {
            self.stats.flops += 1;
        }
        // Compute-class instructions (includes ReadGr).
        let mut rf = std::mem::replace(&mut self.mtcu_rf, RegFile::new(0));
        let handled = exec_compute(&ins, &mut rf, &self.gregs);
        self.mtcu_rf = rf;
        if handled {
            let lat = match ins.unit() {
                Unit::Fpu => FPU_LATENCY,
                Unit::Mdu => MDU_LATENCY,
                _ => 1,
            };
            self.mode = Mode::Serial {
                pc: pc + 1,
                resume_at: self.cycle + lat,
            };
            return Ok(());
        }
        match ins {
            Instr::WriteGr { rs, dst } => {
                self.gregs[dst.index()] = self.mtcu_rf.read_i(rs);
                self.mode = Mode::Serial {
                    pc: pc + 1,
                    resume_at: self.cycle + 1,
                };
            }
            Instr::Lw { rd, base, off } => {
                let a = self.addr_of(pc, self.mtcu_rf.read_i(base), off)?;
                let v = self.mem[a];
                self.mtcu_rf.write_i(rd, v);
                self.stats.mem_reads += 1;
                self.mode = Mode::Serial {
                    pc: pc + 1,
                    resume_at: self.cycle + SERIAL_MEM_LATENCY,
                };
            }
            Instr::Sw { rs, base, off } => {
                let a = self.addr_of(pc, self.mtcu_rf.read_i(base), off)?;
                self.mem[a] = self.mtcu_rf.read_i(rs);
                self.stats.mem_writes += 1;
                self.mode = Mode::Serial {
                    pc: pc + 1,
                    resume_at: self.cycle + SERIAL_MEM_LATENCY,
                };
            }
            Instr::Flw { fd, base, off } => {
                let a = self.addr_of(pc, self.mtcu_rf.read_i(base), off)?;
                let v = f32::from_bits(self.mem[a]);
                self.mtcu_rf.write_f(fd, v);
                self.stats.mem_reads += 1;
                self.mode = Mode::Serial {
                    pc: pc + 1,
                    resume_at: self.cycle + SERIAL_MEM_LATENCY,
                };
            }
            Instr::Fsw { fs, base, off } => {
                let a = self.addr_of(pc, self.mtcu_rf.read_i(base), off)?;
                self.mem[a] = self.mtcu_rf.read_f(fs).to_bits();
                self.stats.mem_writes += 1;
                self.mode = Mode::Serial {
                    pc: pc + 1,
                    resume_at: self.cycle + SERIAL_MEM_LATENCY,
                };
            }
            Instr::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                let t = eval_branch(cond, self.mtcu_rf.read_i(rs1), self.mtcu_rf.read_i(rs2));
                let next = if t { target } else { pc + 1 };
                self.mode = Mode::Serial {
                    pc: next,
                    resume_at: self.cycle + 1,
                };
            }
            Instr::Jump { target } => {
                self.mode = Mode::Serial {
                    pc: target,
                    resume_at: self.cycle + 1,
                };
            }
            Instr::Ps { rd, inc, on } => {
                let old = self.gregs[on.index()];
                self.gregs[on.index()] = old.wrapping_add(self.mtcu_rf.read_i(inc));
                self.mtcu_rf.write_i(rd, old);
                self.mode = Mode::Serial {
                    pc: pc + 1,
                    resume_at: self.cycle + 1,
                };
            }
            Instr::Spawn { count, entry } => {
                let n = self.mtcu_rf.read_i(count);
                self.stats.spawns += 1;
                self.spawn_count = n;
                self.spawn_entry = entry;
                self.next_tid = 0;
                if self.trace.is_some() {
                    // Fresh section: restart the lazy round-robin clock
                    // and the cluster worklist (rebuilt on the first
                    // parallel cycle, when thread IDs are available).
                    self.pcyc = 0;
                    self.rr_synced.fill(0);
                    self.par_active.clear();
                }
                // Broadcast: the parallel section reaches every cluster
                // in log₂(clusters) cycles (Section II-A: "start all
                // TCUs at once in the same time it takes to start one").
                let broadcast = (self.cfg.clusters as f64).log2().ceil() as u64 + 1;
                self.tracker = Some(SpawnTracker {
                    index: self.spawn_log.len(),
                    start_cycle: self.cycle,
                    start: self.stats,
                    start_dram_bytes: self.dram_bytes(),
                    threads_at_start: self.stats.threads,
                });
                self.cycle += broadcast;
                self.stats.cycles = self.cycle;
                self.mode = Mode::Parallel { return_pc: pc + 1 };
            }
            Instr::Join => {
                return Err(SimError::BadInstruction {
                    pc,
                    what: "join in serial mode",
                    at_cycle: self.cycle,
                })
            }
            Instr::Sspawn { .. } => {
                return Err(SimError::BadInstruction {
                    pc,
                    what: "sspawn in serial mode",
                    at_cycle: self.cycle,
                })
            }
            Instr::Halt => {
                self.mode = Mode::Finished;
            }
            // Everything executable lands in a prior arm; anything
            // else is a trap, not a panic — the caller gets a typed
            // error with cycle/PC context.
            _ => {
                return Err(SimError::BadInstruction {
                    pc,
                    what: "instruction not executable in serial mode",
                    at_cycle: self.cycle,
                })
            }
        }
        Ok(())
    }

    /// One parallel-mode cycle over every cluster.
    fn step_parallel(&mut self) -> Result<(), SimError> {
        for c in 0..self.clusters.len() {
            self.step_cluster(c)?;
        }
        Ok(())
    }

    fn step_cluster(&mut self, c: usize) -> Result<(), SimError> {
        let instr_at_entry = self.stats.instructions;
        let ntcus = self.cfg.tcus_per_cluster;
        let mut fpu_budget = self.cfg.fpus_per_cluster;
        let mut mdu_budget = self.cfg.mdus_per_cluster;
        let mut lsu_budget = self.cfg.lsus_per_cluster;
        let start = self.cluster_rr[c];
        self.cluster_rr[c] = (start + 1) % ntcus;
        // Split `self` into disjoint field borrows so the issue loop
        // holds one `&mut Tcu` per iteration instead of re-indexing
        // `self.clusters[c][t]` (two bounds checks the optimizer cannot
        // hoist past the interleaved shared-state writes) at every
        // touch.
        let Machine {
            clusters,
            masks,
            decoded,
            gregs,
            stats,
            mem,
            hash,
            req_net,
            txns,
            next_tid,
            spawn_count,
            spawn_entry,
            cycle,
            trace,
            ..
        } = self;
        let mut trace = trace.as_deref_mut();
        let cluster = &mut clusters[c][..];
        let m = &mut masks[c];
        let mem_len = mem.len();
        let cycle = *cycle;
        m.wake(cycle);

        // Visit order, built without the per-TCU `% ntcus` (an integer
        // division the compiler cannot strength-reduce for a runtime
        // cluster width). When no idle TCU can activate this cycle —
        // thread IDs are exhausted and no ready `sspawn` could mint
        // more mid-cycle — the loop walks only ready TCUs: the masks
        // prove idle and latency-busy visits are no-ops, so their cache
        // lines are never touched.
        let ready = m.active & !m.busy & !m.stuck;
        // With the tier on, an activation additionally needs an idle
        // enabled TCU here (see `step_cluster_fast` for why cycle-start
        // masks decide exactly); disabled TCUs never take a thread, but
        // stuck TCUs do — they hold it without issuing.
        let can_activate = *next_tid < *spawn_count
            && (trace.is_none() || (!m.active & !m.disabled & ones(ntcus)) != 0);
        let mut order = [0u8; 64];
        let visits: &[u8] = if can_activate || m.cls[IssueClass::Ps as usize] & ready != 0 {
            for (i, t) in (start..ntcus).chain(0..start).enumerate() {
                order[i] = t as u8;
            }
            &order[..ntcus]
        } else {
            let mut rot = rr_rotate(ready, start, ntcus);
            let mut n = 0;
            while rot != 0 {
                order[n] = rr_unrotate(rot.trailing_zeros() as usize, start, ntcus) as u8;
                rot &= rot - 1;
                n += 1;
            }
            &order[..n]
        };

        for &t in visits {
            let t = t as usize;
            let bit = 1u64 << t;
            let tcu = &mut cluster[t];
            // Activate idle TCUs while thread IDs remain (the PS unit
            // allocates in constant time, so every idle TCU can pick up
            // a thread in the same cycle).
            if !tcu.active {
                if tcu.disabled {
                    continue;
                }
                // Thread ids are handed out globally; cluster c TCU t
                // competes with all others, which the central counter
                // models exactly.
                if *next_tid < *spawn_count {
                    let tid = *next_tid;
                    *next_tid += 1;
                    tcu.active = true;
                    m.active |= bit;
                    tcu.rf = RegFile::new(tid);
                    tcu.pc = *spawn_entry;
                    tcu.busy_until = 0;
                    tcu.pend_i = 0;
                    tcu.pend_f = 0;
                    reclassify_masked(tcu, m, t, decoded);
                    stats.threads += 1;
                } else {
                    continue;
                }
            }
            if tcu.busy_until > cycle {
                continue;
            }
            // A stuck-at TCU holds its thread but never issues; it
            // makes no progress and no noise (the watchdog catches the
            // barrier it will never reach).
            if tcu.stuck {
                continue;
            }
            match tcu.cls {
                IssueClass::BadPc => {
                    return Err(SimError::PcOutOfRange {
                        pc: tcu.pc,
                        at_cycle: cycle,
                    });
                }
                IssueClass::Scoreboard => {
                    stats.stall_scoreboard += 1;
                }
                IssueClass::Alu => {
                    if let Some(tc) = trace.as_deref_mut() {
                        let u = tc.fetch_warm(decoded, tcu.pc);
                        let ok = exec_uop(&u, &mut tcu.rf, gregs);
                        debug_assert!(ok, "ALU-class instruction must be compute-executable");
                    } else {
                        let d = decoded.fetch(tcu.pc);
                        let ok = exec_compute(&d.instr, &mut tcu.rf, gregs);
                        debug_assert!(ok, "ALU-class instruction must be compute-executable");
                    }
                    tcu.pc += 1;
                    reclassify_masked(tcu, m, t, decoded);
                    stats.instructions += 1;
                }
                IssueClass::Fpu => {
                    if fpu_budget == 0 {
                        stats.stall_fpu += 1;
                        continue;
                    }
                    fpu_budget -= 1;
                    if let Some(tc) = trace.as_deref_mut() {
                        let u = tc.fetch_warm(decoded, tcu.pc);
                        let ok = exec_uop(&u, &mut tcu.rf, gregs);
                        debug_assert!(ok);
                        debug_assert_eq!(u.lat as u64, FPU_LATENCY);
                    } else {
                        let d = decoded.fetch(tcu.pc);
                        let ok = exec_compute(&d.instr, &mut tcu.rf, gregs);
                        debug_assert!(ok);
                    }
                    tcu.busy_until = cycle + FPU_LATENCY;
                    m.set_busy(t, cycle + FPU_LATENCY);
                    tcu.pc += 1;
                    reclassify_masked(tcu, m, t, decoded);
                    stats.instructions += 1;
                    stats.flops += 1;
                }
                IssueClass::Mdu => {
                    if mdu_budget == 0 {
                        stats.stall_mdu += 1;
                        continue;
                    }
                    mdu_budget -= 1;
                    if let Some(tc) = trace.as_deref_mut() {
                        let u = tc.fetch_warm(decoded, tcu.pc);
                        let ok = exec_uop(&u, &mut tcu.rf, gregs);
                        debug_assert!(ok);
                        debug_assert_eq!(u.lat as u64, MDU_LATENCY);
                    } else {
                        let d = decoded.fetch(tcu.pc);
                        let ok = exec_compute(&d.instr, &mut tcu.rf, gregs);
                        debug_assert!(ok);
                    }
                    tcu.busy_until = cycle + MDU_LATENCY;
                    m.set_busy(t, cycle + MDU_LATENCY);
                    tcu.pc += 1;
                    reclassify_masked(tcu, m, t, decoded);
                    stats.instructions += 1;
                }
                IssueClass::Lsu => {
                    if lsu_budget == 0 {
                        stats.stall_lsu += 1;
                        continue;
                    }
                    if tcu.outstanding >= MAX_OUTSTANDING {
                        stats.stall_lsu += 1;
                        continue;
                    }
                    let pc = tcu.pc;
                    let d = decoded.fetch(pc);
                    if !issue_memory(
                        tcu,
                        c,
                        t,
                        pc,
                        &d.instr,
                        mem_len,
                        hash,
                        req_net.as_mut(),
                        txns,
                        stats,
                    )? {
                        // NoC refused (rate limit/backpressure): the
                        // port attempt still consumed the LSU slot.
                        lsu_budget -= 1;
                        stats.stall_lsu += 1;
                        continue;
                    }
                    lsu_budget -= 1;
                    m.out_nz |= bit;
                    if tcu.outstanding >= MAX_OUTSTANDING {
                        m.at_cap |= bit;
                    }
                    tcu.pc += 1;
                    reclassify_masked(tcu, m, t, decoded);
                    stats.instructions += 1;
                }
                IssueClass::Branch => {
                    let pc = tcu.pc;
                    if let Some(tc) = trace.as_deref_mut() {
                        let u = tc.fetch_warm(decoded, pc);
                        tcu.pc = eval_branch_uop(&u, &tcu.rf).unwrap_or(pc + 1);
                        tc.note_entry();
                    } else {
                        match decoded.fetch(pc).instr {
                            Instr::Branch {
                                cond,
                                rs1,
                                rs2,
                                target,
                            } => {
                                let taken =
                                    eval_branch(cond, tcu.rf.read_i(rs1), tcu.rf.read_i(rs2));
                                tcu.pc = if taken { target } else { pc + 1 };
                            }
                            Instr::Jump { target } => tcu.pc = target,
                            _ => unreachable!(),
                        }
                    }
                    reclassify_masked(tcu, m, t, decoded);
                    stats.instructions += 1;
                }
                IssueClass::Ps => {
                    match decoded.fetch(tcu.pc).instr {
                        Instr::Ps { rd, inc, on } => {
                            let old = gregs[on.index()];
                            gregs[on.index()] = old.wrapping_add(tcu.rf.read_i(inc));
                            tcu.rf.write_i(rd, old);
                            tcu.pc += 1;
                        }
                        Instr::Sspawn { rd, count } => {
                            // PS on the spawn bound: the barrier now
                            // also waits for the new virtual threads,
                            // which idle TCUs pick up immediately.
                            let old = *spawn_count;
                            *spawn_count = spawn_count.wrapping_add(tcu.rf.read_i(count));
                            tcu.rf.write_i(rd, old);
                            tcu.pc += 1;
                        }
                        _ => unreachable!(),
                    }
                    reclassify_masked(tcu, m, t, decoded);
                    stats.instructions += 1;
                }
                IssueClass::Join => {
                    // Posted stores must drain before the thread
                    // retires (the spawn barrier is a memory fence).
                    if tcu.outstanding > 0 {
                        continue;
                    }
                    tcu.active = false;
                    m.active &= !bit;
                    stats.instructions += 1;
                }
                IssueClass::Nop => {
                    tcu.pc += 1;
                    reclassify_masked(tcu, m, t, decoded);
                    stats.instructions += 1;
                }
                IssueClass::Illegal => {
                    let pc = tcu.pc;
                    return Err(match decoded.fetch(pc).instr {
                        Instr::Spawn { .. } => SimError::BadInstruction {
                            pc,
                            what: "nested spawn",
                            at_cycle: cycle,
                        },
                        Instr::Halt => SimError::BadInstruction {
                            pc,
                            what: "halt in parallel mode",
                            at_cycle: cycle,
                        },
                        _ => SimError::BadInstruction {
                            pc,
                            what: "instruction illegal in parallel mode",
                            at_cycle: cycle,
                        },
                    });
                }
            }
        }
        self.cluster_instr[c] += self.stats.instructions - instr_at_entry;
        Ok(())
    }

    /// Advance the NoC, memory modules, DRAM channels and replies.
    fn step_memory_system(&mut self) -> Result<(), SimError> {
        let mut replies = std::mem::take(&mut self.scratch_replies);
        self.step_memory_system_collect(&mut replies)?;
        if !replies.is_empty() {
            // Replies clear scoreboard bits and drop outstanding
            // counts, so any memoized quiet scan is stale.
            self.ff_cache = None;
        }
        let Machine {
            clusters,
            masks,
            decoded,
            ..
        } = self;
        for r in replies.drain(..) {
            let tcu = &mut clusters[r.cluster][r.tcu];
            let m = &mut masks[r.cluster];
            match r.kind {
                TxnKind::LoadI(rd) => {
                    tcu.rf.write_i(rd, r.value);
                    tcu.pend_i &= !(1u32 << rd.index());
                }
                TxnKind::LoadF(fd) => {
                    tcu.rf.write_f(fd, f32::from_bits(r.value));
                    tcu.pend_f &= !(1u32 << fd.index());
                }
                TxnKind::Store => {}
            }
            tcu.outstanding -= 1;
            let bit = 1u64 << r.tcu;
            m.at_cap &= !bit;
            if tcu.outstanding == 0 {
                m.out_nz &= !bit;
            }
            // A cleared scoreboard bit can only unblock; other classes
            // are unaffected by replies.
            if tcu.cls == IssueClass::Scoreboard {
                reclassify_masked(tcu, m, r.tcu, decoded);
            }
        }
        self.scratch_replies = replies;
        Ok(())
    }

    /// One memory-system cycle with matured replies pushed to `out`
    /// instead of applied (the threaded engine routes them to the
    /// worker that owns the target cluster). Only *active* modules,
    /// channels and outboxes are visited; idle components are clock-
    /// synced lazily when something arrives for them.
    ///
    /// Every NoC delivery must map to a live transaction; a dangling
    /// tag (e.g. a fault layer exhausting its retry budget and
    /// dropping a flit) is a broken protocol invariant and surfaces as
    /// [`SimError::Protocol`] rather than a panic.
    fn step_memory_system_collect(&mut self, out: &mut Vec<ReplyDelivery>) -> Result<(), SimError> {
        self.mem_route_requests()?;
        self.mem_step_modules();
        self.mem_drain_collect(out)
    }

    /// Memory-cycle stage 1: request network → modules. The functional
    /// effect happens here (arrival order at the home module defines
    /// the memory order; kernels separate read and write sets between
    /// barriers).
    fn mem_route_requests(&mut self) -> Result<(), SimError> {
        let mut deliveries = std::mem::take(&mut self.scratch_deliveries);
        self.req_net.step_into(&mut deliveries);
        for d in deliveries.drain(..) {
            let Some(txn) = self.txns.get_mut(d.flit.tag) else {
                return Err(SimError::Protocol {
                    what: "request delivery for a dead transaction",
                    at_cycle: 0,
                });
            };
            match txn.kind {
                TxnKind::LoadI(_) | TxnKind::LoadF(_) => {
                    txn.value = self.mem[txn.addr as usize];
                }
                TxnKind::Store => {
                    self.mem[txn.addr as usize] = txn.value;
                }
            }
            let addr = txn.addr;
            let is_write = matches!(txn.kind, TxnKind::Store);
            if P::ENABLED {
                // Oracle hook at the exact point that defines memory
                // order. The issuing TCU still carries the thread's
                // tid: a virtual thread only retires at `join` once
                // its outstanding count drains to zero.
                let (cluster, tcu) = (txn.cluster, txn.tcu);
                let tid = self.clusters[cluster][tcu].rf.tid;
                let spawn = self.tracker.as_ref().map(|t| t.index as u64);
                self.probe.mem_access(spawn, tid, addr, is_write);
            }
            // The module is about to take its step for this memory
            // cycle, so align it to the *previous* one.
            self.modules[d.flit.dst].sync_to(self.mem_clock);
            self.modules[d.flit.dst].enqueue(MemReq {
                addr,
                is_write,
                tag: d.flit.tag,
            });
            activate(
                &mut self.active_modules,
                &mut self.module_active,
                d.flit.dst,
            );
        }
        self.scratch_deliveries = deliveries;
        Ok(())
    }

    /// Memory-cycle stage 2: active modules service their queues and
    /// emit DRAM requests (accumulated into `scratch_creqs`, in active-
    /// module order) and replies (routed to the per-module outboxes).
    /// The threaded engine replaces this stage with a work-stealing
    /// pass over the same active list — each module's step is
    /// independent, and the creq/outbox merge is re-serialized in
    /// module order — so both paths leave identical state for
    /// [`Machine::mem_drain_collect`].
    fn mem_step_modules(&mut self) {
        let mut creqs = std::mem::take(&mut self.scratch_creqs);
        let mut resps = std::mem::take(&mut self.scratch_resps);
        for &m in &self.active_modules {
            self.modules[m].step(&mut creqs, &mut resps);
            for resp in resps.drain(..) {
                self.module_outbox[m].push_back(resp.req.tag);
                activate(&mut self.active_outboxes, &mut self.outbox_active, m);
            }
        }
        self.scratch_resps = resps;
        self.scratch_creqs = creqs;
        self.retire_inactive_modules();
    }

    /// Drop modules that went quiescent from the active list (shared
    /// tail of the serial and threaded module-step stages).
    fn retire_inactive_modules(&mut self) {
        let module_active = &mut self.module_active;
        let modules = &self.modules;
        self.active_modules.retain(|&m| {
            let still = modules[m].is_active();
            module_active[m] = still;
            still
        });
    }

    /// Memory-cycle stage 3: DRAM channels, module fills, reply
    /// injection and reply delivery. Consumes the channel requests
    /// stage 2 left in `scratch_creqs`.
    fn mem_drain_collect(&mut self, out: &mut Vec<ReplyDelivery>) -> Result<(), SimError> {
        let mut creqs = std::mem::take(&mut self.scratch_creqs);
        for cr in creqs.drain(..) {
            let ch = cr.module / self.cfg.mm_per_dram_ctrl;
            self.channels[ch].sync_to(self.mem_clock);
            self.channels[ch].enqueue(DramReq {
                tag: cr.module as u64,
                ..cr.req
            });
            activate(&mut self.active_channels, &mut self.channel_active, ch);
        }
        self.scratch_creqs = creqs;
        self.mem_clock += 1;
        // DRAM channels → module fills.
        for &ch in &self.active_channels {
            if let Some(done) = self.channels[ch].step() {
                let m = done.req.tag as usize;
                // Post-step: both module and channel clocks now sit at
                // the current memory cycle.
                self.modules[m].sync_to(self.mem_clock);
                self.modules[m].on_fill(done);
                if self.modules[m].is_active() {
                    activate(&mut self.active_modules, &mut self.module_active, m);
                }
            }
        }
        let channel_active = &mut self.channel_active;
        let channels = &self.channels;
        self.active_channels.retain(|&ch| {
            let still = channels[ch].pending() > 0;
            channel_active[ch] = still;
            still
        });
        // Module outboxes → reply network (one injection per module
        // port per cycle).
        let outbox_active = &mut self.outbox_active;
        let module_outbox = &mut self.module_outbox;
        let reply_net = &mut self.reply_net;
        let txns = &self.txns;
        let mut dead_tag = false;
        self.active_outboxes.retain(|&m| {
            if let Some(&tag) = module_outbox[m].front() {
                match txns.get(tag) {
                    Some(txn) => {
                        if reply_net.try_inject(Flit {
                            src: m,
                            dst: txn.cluster,
                            tag,
                        }) {
                            module_outbox[m].pop_front();
                        }
                    }
                    None => dead_tag = true,
                }
            }
            let still = !module_outbox[m].is_empty();
            outbox_active[m] = still;
            still
        });
        if dead_tag {
            return Err(SimError::Protocol {
                what: "module reply for a dead transaction",
                at_cycle: 0,
            });
        }
        // Reply network → TCUs.
        let mut deliveries = std::mem::take(&mut self.scratch_deliveries);
        self.reply_net.step_into(&mut deliveries);
        for d in deliveries.drain(..) {
            let Some(txn) = self.txns.remove(d.flit.tag) else {
                return Err(SimError::Protocol {
                    what: "reply delivery for a dead transaction",
                    at_cycle: 0,
                });
            };
            out.push(ReplyDelivery {
                cluster: txn.cluster,
                tcu: txn.tcu,
                kind: txn.kind,
                value: txn.value,
            });
        }
        self.scratch_deliveries = deliveries;
        Ok(())
    }

    /// Close the parallel section when all work and memory drained.
    fn maybe_finish_spawn(&mut self, return_pc: usize) {
        if self.next_tid < self.spawn_count {
            return;
        }
        if self.clusters.iter().any(|cl| cl.iter().any(|t| t.active)) {
            return;
        }
        self.maybe_finish_spawn_drained(return_pc);
    }

    /// Barrier tail shared with the threaded engine (which knows TCU
    /// activity from its workers' scans): `txns` covers every request
    /// or reply in a NoC or outbox; the active lists cover modules with
    /// queued/maturing work and channels with fills or write-backs in
    /// flight. A module waiting only on a DRAM fill is inactive, but
    /// its channel stays active until the fill completes and `on_fill`
    /// reactivates the module — so empty lists plus empty `txns` is
    /// exactly the reference engine's full drain scan.
    fn maybe_finish_spawn_drained(&mut self, return_pc: usize) {
        if self.next_tid < self.spawn_count {
            return;
        }
        if !self.txns.is_empty()
            || !self.active_modules.is_empty()
            || !self.active_channels.is_empty()
        {
            return;
        }
        // Section complete: log its stats and resume serial mode.
        if let Some(tr) = self.tracker.take() {
            self.spawn_log.push(SpawnStats {
                index: tr.index,
                threads: self.stats.threads - tr.threads_at_start,
                start_cycle: tr.start_cycle,
                cycles: self.cycle - tr.start_cycle,
                instructions: self.stats.instructions - tr.start.instructions,
                flops: self.stats.flops - tr.start.flops,
                mem_reads: self.stats.mem_reads - tr.start.mem_reads,
                mem_writes: self.stats.mem_writes - tr.start.mem_writes,
                dram_bytes: self.dram_bytes() - tr.start_dram_bytes,
                stall_scoreboard: self.stats.stall_scoreboard - tr.start.stall_scoreboard,
                stall_fpu: self.stats.stall_fpu - tr.start.stall_fpu,
                stall_mdu: self.stats.stall_mdu - tr.start.stall_mdu,
                stall_lsu: self.stats.stall_lsu - tr.start.stall_lsu,
            });
        }
        if self.trace.is_some() {
            // Settle every cluster's lazy round-robin arrears so the
            // serial-mode `cluster_rr` bytes (checkpointed, compared
            // across engines) match eager per-cycle advancing exactly.
            let ntcus = self.cfg.tcus_per_cluster;
            for c in 0..self.cluster_rr.len() {
                let lag = (self.pcyc - self.rr_synced[c]) % ntcus as u64;
                if lag > 0 {
                    self.cluster_rr[c] = (self.cluster_rr[c] + lag as usize) % ntcus;
                }
                self.rr_synced[c] = self.pcyc;
            }
        }
        self.mode = Mode::Serial {
            pc: return_pc,
            resume_at: self.cycle + 1,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmt_isa::reg::{fr, gr, ir};
    use xmt_isa::ProgramBuilder;

    fn tiny_config() -> XmtConfig {
        XmtConfig::xmt_4k().scaled_to(4)
    }

    fn spawn_store_tids(n: u32) -> Program {
        let mut b = ProgramBuilder::new();
        let par = b.label();
        let after = b.label();
        b.li(ir(1), n);
        b.spawn(ir(1), par);
        b.jump(after);
        b.bind(par);
        b.tid(ir(2));
        b.slli(ir(3), ir(2), 1);
        b.sw(ir(3), ir(2), 0);
        b.join();
        b.bind(after);
        b.halt();
        b.build().unwrap()
    }

    /// The sparse active sets (`active_modules` and friends) must stay
    /// sorted, duplicate-free and in lockstep with their membership
    /// flags under arbitrary insert/remove interleavings — `activate`
    /// inserts, and the step loops remove via `retain` with flag
    /// write-back. A `BTreeSet` mirror is the specification.
    #[test]
    fn active_set_survives_insert_remove_churn() {
        const N: usize = 24;
        let mut list: Vec<usize> = Vec::new();
        let mut flags = vec![false; N];
        let mut mirror = std::collections::BTreeSet::new();
        let mut rng = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for _ in 0..4000 {
            let idx = (next() % N as u64) as usize;
            if next() % 3 != 0 {
                // Double-activation is the common case in the step
                // loops (a module gets traffic every cycle); it must
                // be idempotent.
                activate(&mut list, &mut flags, idx);
                mirror.insert(idx);
            } else {
                // The step loops drop members mid-iteration exactly
                // like this: retain + flag write-back.
                list.retain(|&x| {
                    let still = x != idx;
                    if !still {
                        flags[x] = false;
                    }
                    still
                });
                mirror.remove(&idx);
            }
            let expect: Vec<usize> = mirror.iter().copied().collect();
            assert_eq!(list, expect, "active list diverged from mirror");
            for (i, &f) in flags.iter().enumerate() {
                assert_eq!(f, mirror.contains(&i), "flag {i} out of sync");
            }
        }
        // Drain to empty and verify reuse from a clean slate.
        list.retain(|&x| {
            flags[x] = false;
            false
        });
        mirror.clear();
        assert!(list.is_empty());
        activate(&mut list, &mut flags, N - 1);
        activate(&mut list, &mut flags, 0);
        activate(&mut list, &mut flags, N - 1);
        assert_eq!(list, [0, N - 1]);
    }

    #[test]
    fn serial_arithmetic_runs() {
        let mut b = ProgramBuilder::new();
        b.li(ir(1), 6).li(ir(2), 7).mul(ir(3), ir(1), ir(2));
        b.li(ir(4), 10).sw(ir(3), ir(4), 0).halt();
        let mut m = MachineBuilder::new(&tiny_config(), b.build().unwrap())
            .mem_words(64)
            .build();
        let s = m.run().unwrap();
        assert_eq!(m.mem[10], 42);
        assert!(s.stats.cycles >= 6);
        // MDU latency must be visible in the cycle count.
        assert!(s.stats.cycles >= MDU_LATENCY);
    }

    #[test]
    fn parallel_section_matches_interpreter() {
        let prog = spawn_store_tids(64);
        let mut m = MachineBuilder::new(&tiny_config(), prog.clone())
            .mem_words(256)
            .build();
        let s = m.run().unwrap();
        for t in 0..64u32 {
            assert_eq!(m.mem[t as usize], t * 2, "tid {t}");
        }
        assert_eq!(s.stats.threads, 64);
        assert_eq!(s.spawns.len(), 1);
        assert_eq!(s.spawns[0].threads, 64);
        assert_eq!(s.spawns[0].mem_writes, 64);

        // The untimed interpreter agrees bit-for-bit.
        let mut i = xmt_isa::Interp::new(256);
        i.run(&prog).unwrap();
        assert_eq!(&i.mem[..128], &m.mem[..128]);
    }

    #[test]
    fn loads_roundtrip_through_noc() {
        // Threads copy mem[tid] -> mem[tid + 64].
        let mut b = ProgramBuilder::new();
        let par = b.label();
        let after = b.label();
        b.li(ir(1), 32);
        b.spawn(ir(1), par);
        b.jump(after);
        b.bind(par);
        b.tid(ir(2));
        b.lw(ir(3), ir(2), 0);
        b.sw(ir(3), ir(2), 64);
        b.join();
        b.bind(after);
        b.halt();
        let mut m = MachineBuilder::new(&tiny_config(), b.build().unwrap())
            .mem_words(256)
            .build();
        for t in 0..32u32 {
            m.mem[t as usize] = 1000 + t;
        }
        let s = m.run().unwrap();
        for t in 0..32usize {
            assert_eq!(m.mem[t + 64], 1000 + t as u32);
        }
        assert_eq!(s.spawns[0].mem_reads, 32);
        assert_eq!(s.spawns[0].mem_writes, 32);
        // A NoC round trip plus memory access takes real time.
        assert!(s.spawns[0].cycles > 10);
    }

    #[test]
    fn fp_math_through_machine() {
        let mut b = ProgramBuilder::new();
        let par = b.label();
        let after = b.label();
        b.li(ir(1), 8);
        b.spawn(ir(1), par);
        b.jump(after);
        b.bind(par);
        b.tid(ir(2));
        b.flw(fr(0), ir(2), 0);
        b.fmul(fr(1), fr(0), fr(0));
        b.fsw(fr(1), ir(2), 16);
        b.join();
        b.bind(after);
        b.halt();
        let mut m = MachineBuilder::new(&tiny_config(), b.build().unwrap())
            .mem_words(64)
            .build();
        let inputs: Vec<f32> = (0..8).map(|i| i as f32 + 0.5).collect();
        m.write_f32s(0, &inputs);
        let s = m.run().unwrap();
        let out = m.read_f32s(16, 8);
        for (i, (&x, &y)) in inputs.iter().zip(&out).enumerate() {
            assert_eq!(y, x * x, "lane {i}");
        }
        assert_eq!(s.spawns[0].flops, 8);
    }

    #[test]
    fn ps_allocates_unique_tickets() {
        let mut b = ProgramBuilder::new();
        let par = b.label();
        let after = b.label();
        b.li(ir(1), 16);
        b.spawn(ir(1), par);
        b.jump(after);
        b.bind(par);
        b.li(ir(2), 1);
        b.ps(ir(3), ir(2), gr(1));
        b.tid(ir(4));
        b.sw(ir(3), ir(4), 0);
        b.join();
        b.bind(after);
        b.halt();
        let mut m = MachineBuilder::new(&tiny_config(), b.build().unwrap())
            .mem_words(64)
            .build();
        m.run().unwrap();
        let mut tickets: Vec<u32> = m.mem[..16].to_vec();
        tickets.sort_unstable();
        assert_eq!(tickets, (0..16).collect::<Vec<u32>>());
    }

    #[test]
    fn more_threads_than_tcus_reuses_tcus() {
        let cfg = tiny_config();
        let total_tcus = cfg.tcus as u32;
        let prog = spawn_store_tids(total_tcus * 4);
        let mut m = MachineBuilder::new(&cfg, prog)
            .mem_words((total_tcus * 8) as usize)
            .build();
        let s = m.run().unwrap();
        assert_eq!(s.stats.threads as u32, total_tcus * 4);
        for t in 0..(total_tcus * 4) {
            assert_eq!(m.mem[t as usize], t * 2);
        }
    }

    #[test]
    fn cycle_limit_catches_runaway() {
        let mut b = ProgramBuilder::new();
        let top = b.label();
        b.bind(top);
        b.jump(top);
        let mut m = MachineBuilder::new(&tiny_config(), b.build().unwrap())
            .mem_words(16)
            .build();
        m.max_cycles = 10_000;
        assert!(matches!(
            m.run().status,
            RunStatus::Failed(SimError::CycleLimit { .. })
        ));
    }

    #[test]
    fn nested_spawn_is_error() {
        let mut b = ProgramBuilder::new();
        let par = b.label();
        let after = b.label();
        b.li(ir(1), 2);
        b.spawn(ir(1), par);
        b.jump(after);
        b.bind(par);
        b.spawn(ir(1), par);
        b.join();
        b.bind(after);
        b.halt();
        let mut m = MachineBuilder::new(&tiny_config(), b.build().unwrap())
            .mem_words(16)
            .build();
        assert!(matches!(
            m.run().status,
            RunStatus::Failed(SimError::BadInstruction { .. })
        ));
    }

    #[test]
    fn out_of_bounds_reported() {
        let mut b = ProgramBuilder::new();
        b.li(ir(1), 9999).lw(ir(2), ir(1), 0).halt();
        let mut m = MachineBuilder::new(&tiny_config(), b.build().unwrap())
            .mem_words(16)
            .build();
        assert!(matches!(
            m.run().status,
            RunStatus::Failed(SimError::MemOutOfBounds { .. })
        ));
    }

    #[test]
    fn spawn_barrier_drains_memory() {
        // After the spawn returns, all stores must be visible without
        // any further simulation.
        let prog = spawn_store_tids(128);
        let mut m = MachineBuilder::new(&tiny_config(), prog)
            .mem_words(512)
            .build();
        m.run().unwrap();
        assert!(m.txns.is_empty());
        for t in 0..128u32 {
            assert_eq!(m.mem[t as usize], t * 2);
        }
    }

    #[test]
    fn sspawn_extends_parallel_section() {
        // 4 initial threads; thread 0 sspawns 4 more; all 8 write
        // their tid, and the barrier waits for the late arrivals.
        let mut b = ProgramBuilder::new();
        let par = b.label();
        let after = b.label();
        let work = b.label();
        b.li(ir(1), 4);
        b.spawn(ir(1), par);
        b.jump(after);
        b.bind(par);
        b.tid(ir(2));
        b.bne(ir(2), ir(0), work); // only tid 0 extends
        b.li(ir(3), 4);
        b.sspawn(ir(4), ir(3));
        b.bind(work);
        b.sw(ir(2), ir(2), 0);
        b.join();
        b.bind(after);
        b.halt();
        let prog = b.build().unwrap();

        let mut m = MachineBuilder::new(&tiny_config(), prog.clone())
            .mem_words(64)
            .build();
        let s = m.run().unwrap();
        assert_eq!(s.stats.threads, 8, "4 original + 4 sspawned");
        for t in 0..8u32 {
            assert_eq!(m.mem[t as usize], t, "tid {t} must have run");
        }

        // Interpreter agrees.
        let mut i = xmt_isa::Interp::new(64);
        i.run(&prog).unwrap();
        assert_eq!(&i.mem[..8], &m.mem[..8]);
    }

    #[test]
    fn sspawn_in_serial_is_error() {
        let mut b = ProgramBuilder::new();
        b.li(ir(1), 2).sspawn(ir(2), ir(1)).halt();
        let mut m = MachineBuilder::new(&tiny_config(), b.build().unwrap())
            .mem_words(16)
            .build();
        assert!(matches!(
            m.run().status,
            RunStatus::Failed(SimError::BadInstruction { .. })
        ));
    }

    #[test]
    fn utilization_report_is_balanced_for_uniform_work() {
        let prog = spawn_store_tids(512);
        let mut m = MachineBuilder::new(&tiny_config(), prog)
            .mem_words(2048)
            .build();
        let u = m.run().unwrap().utilization;
        assert_eq!(u.cluster_instr.len(), 4);
        assert!(
            u.cluster_instr.iter().all(|&c| c > 0),
            "every cluster worked"
        );
        assert!(
            u.cluster_imbalance() < 1.5,
            "PS-based scheduling must balance: {}",
            u.cluster_imbalance()
        );
        assert!(
            u.module_imbalance() < 3.0,
            "hashing must spread modules: {}",
            u.module_imbalance()
        );
        for hr in &u.module_hit_rate {
            assert!((0.0..=1.0).contains(hr));
        }
        for cb in &u.channel_busy {
            assert!((0.0..=1.0).contains(cb));
        }
        assert!(u.fpu_utilization >= 0.0 && u.fpu_utilization <= 1.0);
    }

    #[test]
    fn two_spawns_two_stat_entries() {
        let mut b = ProgramBuilder::new();
        let par = b.label();
        let after1 = b.label();
        let after2 = b.label();
        b.li(ir(1), 8);
        b.spawn(ir(1), par);
        b.jump(after1);
        b.bind(par);
        b.tid(ir(2));
        b.sw(ir(2), ir(2), 0);
        b.join();
        b.bind(after1);
        b.li(ir(1), 16);
        b.spawn(ir(1), par);
        b.jump(after2);
        b.bind(after2);
        b.halt();
        let mut m = MachineBuilder::new(&tiny_config(), b.build().unwrap())
            .mem_words(64)
            .build();
        let s = m.run().unwrap();
        assert_eq!(s.spawns.len(), 2);
        assert_eq!(s.spawns[0].threads, 8);
        assert_eq!(s.spawns[1].threads, 16);
        assert_eq!(s.stats.spawns, 2);
    }

    /// A benign fault plan must not perturb the machine at all: same
    /// cycles, stats and memory as a build with no plan.
    #[test]
    fn benign_fault_plan_is_bit_identical() {
        let prog = spawn_store_tids(64);
        let mut base = MachineBuilder::new(&tiny_config(), prog.clone())
            .mem_words(256)
            .build();
        let sb = base.run().unwrap();
        let mut planned = MachineBuilder::new(&tiny_config(), prog)
            .mem_words(256)
            .faults(FaultPlan::new(0xDEAD_BEEF))
            .build();
        let sp = planned.run().unwrap();
        assert_eq!(sb.stats, sp.stats);
        assert_eq!(base.mem, planned.mem);
    }

    /// A stuck TCU holds the spawn barrier open forever; the watchdog
    /// must convert that hang into `Stalled` — on the same cycle for
    /// every engine — and the partial report must still be delivered.
    #[test]
    fn stuck_tcu_trips_watchdog_in_every_engine() {
        let mut stall_cycles = Vec::new();
        for engine in [
            Engine::Reference,
            Engine::FastForward,
            Engine::Threaded { threads: 2 },
        ] {
            let mut m = MachineBuilder::new(&tiny_config(), spawn_store_tids(64))
                .mem_words(256)
                .faults(FaultPlan::new(1).stuck_tcu(1, 3))
                .watchdog(5_000)
                .build();
            m.engine = engine;
            let outcome = m.run();
            match outcome.status {
                RunStatus::Failed(SimError::Stalled { at_cycle, .. }) => {
                    stall_cycles.push(at_cycle);
                    // Everyone but the stuck TCU's thread retired work.
                    assert!(outcome.report.stats.instructions > 0);
                    assert_eq!(outcome.report.stats.threads, 64);
                }
                other => panic!("expected Stalled, got {other:?}"),
            }
        }
        assert_eq!(stall_cycles[0], stall_cycles[1]);
        assert_eq!(stall_cycles[0], stall_cycles[2]);
    }

    /// Disabled TCUs and clusters shed capacity, not correctness:
    /// threads remap onto the survivors and the results are exact.
    #[test]
    fn degraded_tcus_still_compute_correctly() {
        for engine in [
            Engine::Reference,
            Engine::FastForward,
            Engine::Threaded { threads: 2 },
        ] {
            let mut healthy = MachineBuilder::new(&tiny_config(), spawn_store_tids(64))
                .mem_words(256)
                .build();
            healthy.engine = engine;
            let sh = healthy.run().unwrap();
            let mut degraded = MachineBuilder::new(&tiny_config(), spawn_store_tids(64))
                .mem_words(256)
                .faults(FaultPlan::new(1).dead_cluster(2).dead_tcu(0, 1))
                .build();
            degraded.engine = engine;
            let sd = degraded.run().unwrap();
            assert_eq!(healthy.mem, degraded.mem, "engine {engine:?}");
            assert_eq!(sd.stats.threads, 64);
            // A quarter of the machine is gone; it cannot be faster.
            assert!(sd.stats.cycles >= sh.stats.cycles);
        }
    }

    /// Dead DRAM channels remap the address hash around the offline
    /// module group; memory results stay exact.
    #[test]
    fn degraded_channel_routes_around() {
        let cfg = XmtConfig::xmt_4k().scaled_to(16);
        assert!(cfg.dram_channels() >= 2, "need two channels to kill one");
        let mut m = MachineBuilder::new(&cfg, spawn_store_tids(64))
            .mem_words(256)
            .degraded(&[], &[1])
            .build();
        m.run().unwrap();
        for t in 0..64u32 {
            assert_eq!(m.mem[t as usize], t * 2, "tid {t}");
        }
    }

    /// Impossible fault plans are rejected up front, not at cycle N.
    #[test]
    fn invalid_fault_plans_are_rejected() {
        let cfg = tiny_config();
        let prog = spawn_store_tids(4);
        let bad = [
            FaultPlan::new(0).dead_cluster(99),
            FaultPlan::new(0).dead_tcu(0, 99),
            FaultPlan::new(0).stuck_tcu(99, 0),
            FaultPlan::new(0).dead_channel(99),
            FaultPlan::new(0)
                .dead_cluster(0)
                .dead_cluster(1)
                .dead_cluster(2)
                .dead_cluster(3),
            FaultPlan::new(0).dram_flips(1.5, 0.0),
            FaultPlan::new(0).noc_corrupt(-0.1),
        ];
        for plan in bad {
            let r = MachineBuilder::new(&cfg, prog.clone())
                .mem_words(64)
                .faults(plan.clone())
                .try_build();
            assert!(
                matches!(r, Err(SimError::InvalidConfig { .. })),
                "plan {plan:?} should be rejected"
            );
        }
    }

    /// Seeded DRAM flips and NoC corruption replay bit-identically and
    /// still produce functionally exact results (ECC corrects, the
    /// link layer retries).
    #[test]
    fn injected_soft_faults_replay_bit_identically() {
        let plan = FaultPlan::new(0xFEED)
            .dram_flips(0.05, 0.01)
            .noc_corrupt(0.02);
        let mut reports = Vec::new();
        for engine in [
            Engine::Reference,
            Engine::FastForward,
            Engine::Threaded { threads: 2 },
        ] {
            let mut m = MachineBuilder::new(&tiny_config(), spawn_store_tids(64))
                .mem_words(256)
                .faults(plan.clone())
                .build();
            m.engine = engine;
            let s = m.run().unwrap();
            for t in 0..64u32 {
                assert_eq!(m.mem[t as usize], t * 2, "tid {t} under {engine:?}");
            }
            reports.push(s.stats);
        }
        assert_eq!(reports[0], reports[1]);
        assert_eq!(reports[0], reports[2]);
    }

    /// Pause at a quiescent point, checkpoint, restore into a fresh
    /// machine, finish: final cycle count, stats and memory must match
    /// an uninterrupted run exactly.
    #[test]
    fn checkpoint_restore_matches_uninterrupted_run() {
        let prog = spawn_store_tids(64);
        let mut straight = MachineBuilder::new(&tiny_config(), prog.clone())
            .mem_words(256)
            .build();
        let ss = straight.run().unwrap();

        let mut first = MachineBuilder::new(&tiny_config(), prog.clone())
            .mem_words(256)
            .build();
        let paused = first.run_until(40);
        let at = match paused.status {
            RunStatus::Paused { at_cycle } => at_cycle,
            other => panic!("expected a pause, got {other:?}"),
        };
        let cp = first.checkpoint().unwrap();
        assert_eq!(cp.cycle(), at);
        let bytes = cp.to_bytes();
        let cp2 = Checkpoint::from_bytes(&bytes).unwrap();

        let mut resumed = MachineBuilder::new(&tiny_config(), prog)
            .mem_words(256)
            .resume(&cp2)
            .unwrap();
        let sr = resumed.run().unwrap();
        assert_eq!(ss.stats, sr.stats);
        assert_eq!(straight.mem, resumed.mem);
    }

    /// A checkpoint taken mid-flight must be refused, and a checkpoint
    /// from a different geometry must not restore.
    #[test]
    fn checkpoint_guards_protocol_and_geometry() {
        let prog = spawn_store_tids(64);
        let mut m = MachineBuilder::new(&tiny_config(), prog.clone())
            .mem_words(256)
            .build();
        // Step into the parallel section: work is in flight.
        while !matches!(m.mode, Mode::Parallel { .. }) {
            m.step().unwrap();
        }
        assert!(matches!(m.checkpoint(), Err(SimError::Protocol { .. })));
        // Finish cleanly, checkpoint, then try to restore into a
        // machine with different geometry.
        while !matches!(m.mode, Mode::Finished) {
            m.step().unwrap();
        }
        let mut m2 = MachineBuilder::new(&tiny_config(), prog.clone())
            .mem_words(256)
            .build();
        let st = m2.run_until(10);
        assert!(matches!(st.status, RunStatus::Paused { .. }));
        let cp = m2.checkpoint().unwrap();
        let r = MachineBuilder::new(&XmtConfig::xmt_4k().scaled_to(8), prog)
            .mem_words(256)
            .resume(&cp);
        assert!(matches!(r, Err(SimError::InvalidConfig { .. })));
    }

    /// `run_until` with a pause point past the program's end completes
    /// the run and reports `Completed` with the same results as `run`.
    #[test]
    fn run_until_past_end_is_done() {
        let prog = spawn_store_tids(16);
        let mut a = MachineBuilder::new(&tiny_config(), prog.clone())
            .mem_words(64)
            .build();
        let sa = a.run().unwrap();
        let mut b = MachineBuilder::new(&tiny_config(), prog)
            .mem_words(64)
            .build();
        let ob = b.run_until(u64::MAX);
        assert!(
            ob.is_completed(),
            "spurious pause/failure at {}",
            ob.at_cycle()
        );
        assert_eq!(sa.stats, ob.report.stats);
    }
}
