//! The cycle-level XMT machine simulator.
//!
//! Composes the pieces of Fig. 1: an MTCU running serial sections, TCU
//! clusters with shared FPU/MDU/LSU ports, the prefix-sum unit, the
//! spawn broadcast, the request/reply interconnect (`xmt-noc`) and the
//! hashed memory modules with shared DRAM channels (`xmt-mem`).
//!
//! Functional semantics are shared with the untimed interpreter
//! (`xmt_isa::interp::exec_compute` and the pure `eval_*` helpers), so
//! a program produces bit-identical results on both engines; this
//! simulator adds *when* — the cycle counts the paper's evaluation is
//! built on.
//!
//! Timing model summary (all per 3.3 GHz core cycle):
//! * TCUs are in-order and scalar; ALU-class ops take 1 cycle.
//! * FPU ops: issue limited to `fpus_per_cluster` per cluster per
//!   cycle, 4-cycle result latency.
//! * MDU ops: 1 issue per cluster per cycle, 8-cycle latency.
//! * Loads/stores: 1 LSU slot per cluster per cycle injects into the
//!   request NoC; loads are non-blocking (scoreboarded) with up to 8
//!   outstanding per TCU — the paper's "prefetching methods".
//! * Memory modules service one access per cycle in arrival order;
//!   misses go to the module's shared DRAM channel.
//! * `spawn` broadcast costs log₂(clusters) cycles; thread IDs are
//!   handed out by the PS unit with unlimited same-cycle combining.

use crate::config::XmtConfig;
use std::collections::HashMap;
use std::collections::VecDeque;
use xmt_isa::instr::{eval_branch, Instr, Unit};
use xmt_isa::interp::exec_compute;
use xmt_isa::reg::{FReg, IReg, RegFile, NUM_GREGS};
use xmt_isa::Program;
use xmt_mem::{AddressHash, ChannelRequest, DramChannel, DramReq, MemReq, MemoryModule};
use xmt_noc::{Flit, Network, Topology};

#[path = "machine_threaded.rs"]
mod threaded;

/// FPU result latency in cycles.
const FPU_LATENCY: u64 = 4;
/// MDU (multiply/divide) latency in cycles.
const MDU_LATENCY: u64 = 8;
/// MTCU private-cache access latency for serial-mode memory ops.
const SERIAL_MEM_LATENCY: u64 = 4;
/// Maximum outstanding memory operations per TCU (models the XMT
/// prefetch/decoupling capability).
const MAX_OUTSTANDING: u8 = 8;

/// Simulator errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Memory access outside the configured memory image.
    MemOutOfBounds {
        /// Program counter at the fault.
        pc: usize,
        /// Faulting word address.
        addr: u64,
    },
    /// Nested spawn, halt-in-parallel, etc.
    BadInstruction {
        /// Program counter at the fault.
        pc: usize,
        /// Description of the illegal action.
        what: &'static str,
    },
    /// Cycle limit exceeded — deadlock or runaway program.
    CycleLimit {
        /// Cycle at which the limit tripped.
        at_cycle: u64,
    },
    /// Execution ran off the end of the program.
    PcOutOfRange {
        /// Program counter at the fault.
        pc: usize,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::MemOutOfBounds { pc, addr } => {
                write!(f, "memory access at word {addr:#x} out of bounds (pc {pc})")
            }
            SimError::BadInstruction { pc, what } => write!(f, "{what} at pc {pc}"),
            SimError::CycleLimit { at_cycle } => write!(f, "cycle limit hit at {at_cycle}"),
            SimError::PcOutOfRange { pc } => write!(f, "pc {pc} out of range"),
        }
    }
}

impl std::error::Error for SimError {}

/// What a memory transaction will do when its reply arrives.
#[derive(Debug, Clone, Copy)]
enum TxnKind {
    LoadI(IReg),
    LoadF(FReg),
    Store,
}

#[derive(Debug, Clone, Copy)]
struct Txn {
    cluster: usize,
    tcu: usize,
    addr: u32,
    kind: TxnKind,
    /// Store data (set at issue) or load data (captured when the
    /// request reaches its home module, preserving module order).
    value: u32,
}

/// One TCU's execution context.
#[derive(Debug)]
struct Tcu {
    active: bool,
    rf: RegFile,
    pc: usize,
    /// Cycle until which the TCU is busy (FPU/MDU latency).
    busy_until: u64,
    /// Scoreboard: bitmask of integer registers with pending loads.
    pend_i: u32,
    /// Scoreboard: bitmask of FP registers with pending loads.
    pend_f: u32,
    /// Outstanding memory transactions (loads + stores).
    outstanding: u8,
}

impl Tcu {
    fn idle() -> Self {
        Self {
            active: false,
            rf: RegFile::new(0),
            pc: 0,
            busy_until: 0,
            pend_i: 0,
            pend_f: 0,
            outstanding: 0,
        }
    }

    /// Scoreboard check against the precomputed per-pc hazard masks
    /// (reads plus WAW target — see `Instr::hazard_masks`).
    fn blocked(&self, masks: (u32, u32)) -> bool {
        self.pend_i & masks.0 != 0 || self.pend_f & masks.1 != 0
    }
}

/// Execution mode of the machine.
#[derive(Debug)]
enum Mode {
    /// MTCU running; `resume_at` models multi-cycle serial operations.
    Serial {
        pc: usize,
        resume_at: u64,
    },
    /// Parallel section: TCUs executing threads of the current spawn.
    Parallel {
        return_pc: usize,
    },
    Finished,
}

/// Counters accumulated over the whole run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MachineStats {
    /// Cycle count.
    pub cycles: u64,
    /// The `instructions` value.
    pub instructions: u64,
    /// The `flops` value.
    pub flops: u64,
    /// The `mem_reads` value.
    pub mem_reads: u64,
    /// The `mem_writes` value.
    pub mem_writes: u64,
    /// The `threads` value.
    pub threads: u64,
    /// The `spawns` value.
    pub spawns: u64,
    /// Issue stalls by cause.
    pub stall_scoreboard: u64,
    /// The `stall_fpu` value.
    pub stall_fpu: u64,
    /// The `stall_mdu` value.
    pub stall_mdu: u64,
    /// The `stall_lsu` value.
    pub stall_lsu: u64,
}

/// Per-spawn (per parallel section) statistics — the phase-level data
/// behind the Roofline points of Fig. 3.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpawnStats {
    /// Index of the spawn in program order.
    pub index: usize,
    /// Virtual threads executed.
    pub threads: u64,
    /// Wall cycles from spawn start to the barrier completing.
    pub cycles: u64,
    /// The `instructions` value.
    pub instructions: u64,
    /// The `flops` value.
    pub flops: u64,
    /// The `mem_reads` value.
    pub mem_reads: u64,
    /// The `mem_writes` value.
    pub mem_writes: u64,
    /// Bytes actually transferred on the DRAM channels.
    pub dram_bytes: u64,
}

impl SpawnStats {
    /// Achieved GFLOPS (actual FLOP count) at `clock_ghz`.
    pub fn gflops(&self, clock_ghz: f64) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.flops as f64 * clock_ghz / self.cycles as f64
    }

    /// Operational intensity in FLOPs per DRAM byte.
    pub fn intensity(&self) -> f64 {
        if self.dram_bytes == 0 {
            return f64::INFINITY;
        }
        self.flops as f64 / self.dram_bytes as f64
    }
}

/// Post-run utilization snapshot (see [`Machine::utilization`]).
#[derive(Debug, Clone, PartialEq)]
pub struct UtilizationReport {
    /// Instructions issued by each cluster.
    pub cluster_instr: Vec<u64>,
    /// Cache-bank accesses per memory module.
    pub module_accesses: Vec<u64>,
    /// Cache hit rate per module (1.0 when untouched).
    pub module_hit_rate: Vec<f64>,
    /// Fraction of cycles each DRAM channel was busy.
    pub channel_busy: Vec<f64>,
    /// FLOPs issued / (cycles × FPUs): compute-ceiling utilization.
    pub fpu_utilization: f64,
}

impl UtilizationReport {
    /// Max/mean ratio of per-cluster instruction counts (1.0 = perfect
    /// load balance; the XMT thread scheduler should keep this low).
    pub fn cluster_imbalance(&self) -> f64 {
        let max = self.cluster_instr.iter().copied().max().unwrap_or(0) as f64;
        let sum: u64 = self.cluster_instr.iter().sum();
        let mean = sum as f64 / self.cluster_instr.len().max(1) as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Max/mean ratio of per-module access counts (address hashing
    /// should keep this near 1).
    pub fn module_imbalance(&self) -> f64 {
        let max = self.module_accesses.iter().copied().max().unwrap_or(0) as f64;
        let sum: u64 = self.module_accesses.iter().sum();
        let mean = sum as f64 / self.module_accesses.len().max(1) as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// Result of a completed run.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Accumulated statistics.
    pub stats: MachineStats,
    /// The `spawns` value.
    pub spawns: Vec<SpawnStats>,
}

struct SpawnTracker {
    index: usize,
    start_cycle: u64,
    start: MachineStats,
    start_dram_bytes: u64,
    threads_at_start: u64,
}

/// Which advance loop [`Machine::run`] uses. Every engine produces
/// bit-identical [`RunSummary`] / memory / register state — the golden
/// cycle tests pin this; engines only differ in wall-clock speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Plain cycle-by-cycle loop: every component steps every cycle.
    /// The semantic baseline the optimized engines are checked against.
    Reference,
    /// Event-driven fast-forward: on cycles where nothing can issue,
    /// jump straight to the next component event (FPU/MDU completion,
    /// NoC arrival, cache-response maturation, DRAM completion, serial
    /// resume) and accrue the skipped cycles' stall statistics in bulk.
    #[default]
    FastForward,
    /// Two-phase parallel cluster stepping on worker threads: each
    /// cycle the clusters compute locally in parallel, then the main
    /// thread replays their memory-injection attempts in cluster order
    /// so NoC arbitration and transaction tags match the serial
    /// engines exactly. Includes the fast-forward optimization. Falls
    /// back to [`Engine::FastForward`] for programs that mutate global
    /// state from parallel mode (`ps`/`sspawn`).
    Threaded {
        /// Worker count; 0 picks one per available core (capped at
        /// the cluster count).
        threads: usize,
    },
}

/// A matured reply headed for a TCU (cluster, tcu, kind, value).
struct ReplyDelivery {
    cluster: usize,
    tcu: usize,
    kind: TxnKind,
    value: u32,
}

/// Result of scanning one cluster for fast-forward eligibility.
struct ClusterScan {
    /// Some TCU could issue (or fault) next cycle — cannot skip.
    issue_next: bool,
    /// Earliest `busy_until` among latency-stalled TCUs (`u64::MAX`
    /// when none).
    min_busy: u64,
    /// TCUs that would burn a scoreboard-stall per skipped cycle.
    blocked_scoreboard: u64,
    /// TCUs that would burn an LSU-stall per skipped cycle (at the
    /// outstanding-transaction cap).
    blocked_lsu: u64,
    /// Idle TCUs (would activate if thread IDs remained).
    idle: u64,
}

/// Scan a cluster as it would be seen at the top of cycle `next`:
/// classify every TCU as issuing, latency-stalled, scoreboard-stalled,
/// LSU-capped, silently waiting (join with posted stores) or idle.
/// Mirrors the issue tests of `step_cluster` exactly; any instruction
/// that would issue *or fault* reports `issue_next` so the per-cycle
/// path keeps sole ownership of side effects and errors. The scan
/// always visits every TCU — the threaded engine sizes thread-ID
/// grants from `idle`, so the counts must stay complete even once
/// `issue_next` is set.
fn scan_cluster(cluster: &[Tcu], prog: &Program, hazard: &[(u32, u32)], next: u64) -> ClusterScan {
    let mut scan = ClusterScan {
        issue_next: false,
        min_busy: u64::MAX,
        blocked_scoreboard: 0,
        blocked_lsu: 0,
        idle: 0,
    };
    for tcu in cluster {
        if !tcu.active {
            scan.idle += 1;
            continue;
        }
        if tcu.busy_until > next {
            scan.min_busy = scan.min_busy.min(tcu.busy_until);
            continue;
        }
        if tcu.pc >= prog.len() {
            scan.issue_next = true; // will fault: no skipping past it
            continue;
        }
        let (im, fm) = hazard[tcu.pc];
        if tcu.pend_i & im != 0 || tcu.pend_f & fm != 0 {
            scan.blocked_scoreboard += 1;
            continue;
        }
        let ins = prog.fetch(tcu.pc);
        match ins.unit() {
            Unit::Lsu if tcu.outstanding >= MAX_OUTSTANDING => {
                scan.blocked_lsu += 1;
            }
            Unit::Lsu => {
                scan.issue_next = true;
            }
            Unit::Control if matches!(ins, Instr::Join) && tcu.outstanding > 0 => {
                // Join waiting on posted stores is silent: no stall
                // counter, no issue. The reply that unblocks it is a
                // tracked memory event.
            }
            // Every other unit issues (port budgets start ≥1 per
            // cluster, and a budget only empties on a cycle that
            // issued — which this, by construction, is not).
            _ => {
                scan.issue_next = true;
            }
        }
    }
    scan
}

/// The XMT machine.
pub struct Machine {
    cfg: XmtConfig,
    prog: Program,
    /// Functional shared memory (word addressed).
    pub mem: Vec<u32>,
    gregs: [u32; NUM_GREGS],
    mtcu_rf: RegFile,
    mode: Mode,
    cycle: u64,
    /// Parallel-section thread allocation (the PS unit's counter).
    next_tid: u32,
    spawn_count: u32,
    spawn_entry: usize,
    clusters: Vec<Vec<Tcu>>,
    cluster_rr: Vec<usize>,
    /// Instructions issued per cluster (load-balance observability).
    cluster_instr: Vec<u64>,
    req_net: Box<dyn Network>,
    reply_net: Box<dyn Network>,
    modules: Vec<MemoryModule>,
    channels: Vec<DramChannel>,
    module_outbox: Vec<VecDeque<u64>>,
    hash: AddressHash,
    txns: HashMap<u64, Txn>,
    next_txn: u64,
    /// The `max_cycles` value.
    pub max_cycles: u64,
    /// Accumulated statistics.
    pub stats: MachineStats,
    spawn_log: Vec<SpawnStats>,
    tracker: Option<SpawnTracker>,
    /// Advance-loop selection for [`Machine::run`].
    pub engine: Engine,
    /// Per-pc combined (integer, float) scoreboard hazard masks —
    /// reads plus the WAW target — so the per-TCU ready check is two
    /// AND/compare pairs instead of a register-list walk.
    hazard: Vec<(u32, u32)>,
    /// Program touches global state from parallel mode (`ps`/`sspawn`),
    /// which the threaded engine cannot partition across workers.
    has_global_ops: bool,
    /// Completed memory-system steps. Trails `cycle` by the summed
    /// spawn-broadcast cycles (which advance the machine clock without
    /// stepping components); `cycle - mem_clock` converts component
    /// clocks to machine clocks.
    mem_clock: u64,
    /// Sorted indices of modules with work (`MemoryModule::is_active`);
    /// only these step each cycle. `module_active` mirrors membership.
    active_modules: Vec<usize>,
    module_active: Vec<bool>,
    /// Sorted indices of channels with transfers pending.
    active_channels: Vec<usize>,
    channel_active: Vec<bool>,
    /// Sorted indices of non-empty module outboxes.
    active_outboxes: Vec<usize>,
    outbox_active: Vec<bool>,
}

/// Insert `idx` into a sorted active list if not already present.
fn activate(list: &mut Vec<usize>, flags: &mut [bool], idx: usize) {
    if !flags[idx] {
        flags[idx] = true;
        let pos = list.partition_point(|&x| x < idx);
        list.insert(pos, idx);
    }
}

impl Machine {
    /// Build a machine for `cfg` with `mem_words` words of zeroed
    /// shared memory.
    pub fn new(cfg: &XmtConfig, prog: Program, mem_words: usize) -> Self {
        let topo = cfg.topology();
        let reply_topo = if topo.is_nonblocking() {
            Topology::pure_mot(cfg.memory_modules, cfg.clusters)
        } else {
            Topology::hybrid(
                cfg.memory_modules,
                cfg.clusters,
                cfg.mot_levels,
                cfg.butterfly_levels,
            )
        };
        let modules = (0..cfg.memory_modules)
            .map(|i| MemoryModule::new(i, cfg.cache))
            .collect();
        let channels: Vec<DramChannel> = (0..cfg.dram_channels())
            .map(|_| DramChannel::new(cfg.dram))
            .collect();
        let hazard = (0..prog.len())
            .map(|pc| prog.fetch(pc).hazard_masks())
            .collect();
        let has_global_ops = (0..prog.len())
            .any(|pc| matches!(prog.fetch(pc), Instr::Ps { .. } | Instr::Sspawn { .. }));
        let n_channels = channels.len();
        Self {
            prog,
            mem: vec![0; mem_words],
            gregs: [0; NUM_GREGS],
            mtcu_rf: RegFile::new(0),
            mode: Mode::Serial {
                pc: 0,
                resume_at: 0,
            },
            cycle: 0,
            next_tid: 0,
            spawn_count: 0,
            spawn_entry: 0,
            clusters: (0..cfg.clusters)
                .map(|_| (0..cfg.tcus_per_cluster).map(|_| Tcu::idle()).collect())
                .collect(),
            cluster_rr: vec![0; cfg.clusters],
            cluster_instr: vec![0; cfg.clusters],
            req_net: xmt_noc::build_network(topo),
            reply_net: xmt_noc::build_network(reply_topo),
            modules,
            channels,
            module_outbox: vec![VecDeque::new(); cfg.memory_modules],
            hash: AddressHash::new(cfg.memory_modules, cfg.cache.line_words),
            txns: HashMap::new(),
            next_txn: 0,
            max_cycles: 200_000_000,
            stats: MachineStats::default(),
            spawn_log: Vec::new(),
            tracker: None,
            engine: Engine::default(),
            hazard,
            has_global_ops,
            mem_clock: 0,
            active_modules: Vec::new(),
            module_active: vec![false; cfg.memory_modules],
            active_channels: Vec::new(),
            channel_active: vec![false; n_channels],
            active_outboxes: Vec::new(),
            outbox_active: vec![false; cfg.memory_modules],
            cfg: *cfg,
        }
    }

    /// Store an `f32` slice at word address `addr` (bit-cast).
    pub fn write_f32s(&mut self, addr: usize, data: &[f32]) {
        for (i, &v) in data.iter().enumerate() {
            self.mem[addr + i] = v.to_bits();
        }
    }

    /// Read `len` f32s from word address `addr`.
    pub fn read_f32s(&self, addr: usize, len: usize) -> Vec<f32> {
        self.mem[addr..addr + len]
            .iter()
            .map(|&w| f32::from_bits(w))
            .collect()
    }

    /// Store a `u32` slice at word address `addr`.
    pub fn write_u32s(&mut self, addr: usize, data: &[u32]) {
        self.mem[addr..addr + data.len()].copy_from_slice(data);
    }

    /// The configuration used.
    pub fn config(&self) -> &XmtConfig {
        &self.cfg
    }

    /// Snapshot of the global registers (useful after a run).
    pub fn gregs_snapshot(&self) -> [u32; NUM_GREGS] {
        self.gregs
    }

    /// Post-run utilization/observability report: per-cluster issue
    /// counts, per-module cache behaviour and DRAM-channel occupancy.
    pub fn utilization(&self) -> UtilizationReport {
        let cluster_instr = self.cluster_instr.clone();
        let module_accesses: Vec<u64> = self
            .modules
            .iter()
            .map(|m| m.bank().stats.accesses)
            .collect();
        let module_hit_rate: Vec<f64> = self
            .modules
            .iter()
            .map(|m| {
                let st = m.bank().stats;
                if st.accesses == 0 {
                    1.0
                } else {
                    st.hits as f64 / st.accesses as f64
                }
            })
            .collect();
        let channel_busy: Vec<f64> = self
            .channels
            .iter()
            .map(|ch| {
                if self.cycle == 0 {
                    0.0
                } else {
                    ch.stats.busy_cycles as f64 / self.cycle as f64
                }
            })
            .collect();
        let fpu_util = if self.cycle == 0 {
            0.0
        } else {
            self.stats.flops as f64
                / (self.cycle as f64 * (self.cfg.clusters * self.cfg.fpus_per_cluster) as f64)
        };
        UtilizationReport {
            cluster_instr,
            module_accesses,
            module_hit_rate,
            channel_busy,
            fpu_utilization: fpu_util,
        }
    }

    /// Total DRAM bytes moved so far.
    fn dram_bytes(&self) -> u64 {
        self.channels.iter().map(|c| c.stats.bytes).sum()
    }

    /// Run to `halt` with the selected [`Engine`]. Returns overall and
    /// per-spawn statistics; the spawn log is moved out (use
    /// [`Machine::spawn_log`] for any later inspection).
    pub fn run(&mut self) -> Result<RunSummary, SimError> {
        match self.engine {
            Engine::Reference => self.run_reference(),
            Engine::FastForward => self.run_ff(),
            Engine::Threaded { threads } => {
                if self.has_global_ops || self.clusters.len() < 2 {
                    self.run_ff()
                } else {
                    threaded::run(self, threads)
                }
            }
        }
    }

    /// The baseline advance loop: one `step` per simulated cycle.
    fn run_reference(&mut self) -> Result<RunSummary, SimError> {
        while !matches!(self.mode, Mode::Finished) {
            self.step()?;
            if self.cycle > self.max_cycles {
                return Err(SimError::CycleLimit {
                    at_cycle: self.cycle,
                });
            }
        }
        Ok(self.summary())
    }

    /// Fast-forwarding advance loop: after any cycle that issued no
    /// instruction and activated no thread, jump directly to the next
    /// cycle on which anything can happen.
    fn run_ff(&mut self) -> Result<RunSummary, SimError> {
        while !matches!(self.mode, Mode::Finished) {
            let instr_before = self.stats.instructions;
            let threads_before = self.stats.threads;
            self.step()?;
            if self.cycle > self.max_cycles {
                return Err(SimError::CycleLimit {
                    at_cycle: self.cycle,
                });
            }
            if instr_before == self.stats.instructions && threads_before == self.stats.threads {
                self.fast_forward();
                if self.cycle > self.max_cycles {
                    return Err(SimError::CycleLimit {
                        at_cycle: self.cycle,
                    });
                }
            }
        }
        Ok(self.summary())
    }

    /// Move the clock from the end of a quiet cycle to just before the
    /// next event, replicating the bulk effects per-cycle stepping
    /// would have had: stall counters accrue per skipped cycle,
    /// round-robin pointers advance, component clocks jump.
    fn fast_forward(&mut self) {
        let next = self.cycle + 1;
        // The earliest cycle on which stepping could do something;
        // capped so a totally event-free machine still trips the
        // cycle-limit check exactly where the reference engine does.
        let mut horizon = self.max_cycles + 1;
        let mut blocked_scoreboard = 0u64;
        let mut blocked_lsu = 0u64;
        let parallel = match self.mode {
            Mode::Finished => return,
            Mode::Serial { resume_at, .. } => {
                if resume_at <= next {
                    return; // the MTCU issues next cycle
                }
                horizon = horizon.min(resume_at);
                false
            }
            Mode::Parallel { .. } => {
                for cluster in &self.clusters {
                    let scan = scan_cluster(cluster, &self.prog, &self.hazard, next);
                    if scan.issue_next || (scan.idle > 0 && self.next_tid < self.spawn_count) {
                        return; // someone issues or activates next cycle
                    }
                    horizon = horizon.min(scan.min_busy);
                    blocked_scoreboard += scan.blocked_scoreboard;
                    blocked_lsu += scan.blocked_lsu;
                }
                true
            }
        };
        if let Some(e) = self.memory_next_event() {
            horizon = horizon.min(e);
        }
        if horizon <= next {
            return;
        }
        let n = horizon - next;
        self.req_net.skip_idle(n);
        self.reply_net.skip_idle(n);
        for &m in &self.active_modules {
            self.modules[m].skip_idle(n);
        }
        for &c in &self.active_channels {
            self.channels[c].skip_idle(n);
        }
        self.mem_clock += n;
        if parallel {
            self.stats.stall_scoreboard += n * blocked_scoreboard;
            self.stats.stall_lsu += n * blocked_lsu;
            let ntcus = self.cfg.tcus_per_cluster;
            let adv = (n % ntcus as u64) as usize;
            for rr in &mut self.cluster_rr {
                *rr = (*rr + adv) % ntcus;
            }
        }
        self.cycle += n;
        self.stats.cycles = self.cycle;
    }

    /// Earliest machine-clock cycle at which the memory system can
    /// change state on its own, or `None` when fully drained.
    fn memory_next_event(&self) -> Option<u64> {
        // A queued reply injection retries every cycle (it can be
        // refused by backpressure, which mutates NoC stats).
        if !self.active_outboxes.is_empty() {
            return Some(self.cycle + 1);
        }
        let off = self.cycle - self.mem_clock;
        let mut e = u64::MAX;
        if let Some(x) = self.req_net.next_event() {
            e = e.min(x + off);
        }
        if let Some(x) = self.reply_net.next_event() {
            e = e.min(x + off);
        }
        for &m in &self.active_modules {
            if let Some(x) = self.modules[m].next_event() {
                e = e.min(x + off);
            }
        }
        for &c in &self.active_channels {
            if let Some(x) = self.channels[c].next_event() {
                e = e.min(x + off);
            }
        }
        (e != u64::MAX).then_some(e)
    }

    /// Per-spawn statistics accumulated so far. [`Machine::run`] moves
    /// the log into its [`RunSummary`] rather than cloning it, so after
    /// a completed run the summary owns the entries and this is empty;
    /// it is useful when driving the machine manually via
    /// [`Machine::step`].
    pub fn spawn_log(&self) -> &[SpawnStats] {
        &self.spawn_log
    }

    fn summary(&mut self) -> RunSummary {
        RunSummary {
            stats: self.stats,
            spawns: std::mem::take(&mut self.spawn_log),
        }
    }

    /// Advance the machine one cycle.
    pub fn step(&mut self) -> Result<(), SimError> {
        self.cycle += 1;
        self.stats.cycles = self.cycle;
        match self.mode {
            Mode::Serial { pc, resume_at } => {
                if self.cycle >= resume_at {
                    self.step_serial(pc)?;
                }
                // Serial mode still drains the memory system (posted
                // writes from the previous section are already done by
                // the barrier, but channels may be finishing refills).
                self.step_memory_system();
            }
            Mode::Parallel { return_pc } => {
                self.step_parallel()?;
                self.step_memory_system();
                self.maybe_finish_spawn(return_pc);
            }
            Mode::Finished => {}
        }
        Ok(())
    }

    fn addr_of(&self, pc: usize, base: u32, off: u32) -> Result<usize, SimError> {
        let a = base as u64 + off as u64;
        if (a as usize) < self.mem.len() {
            Ok(a as usize)
        } else {
            Err(SimError::MemOutOfBounds { pc, addr: a })
        }
    }

    fn step_serial(&mut self, pc: usize) -> Result<(), SimError> {
        if pc >= self.prog.len() {
            return Err(SimError::PcOutOfRange { pc });
        }
        let ins = self.prog.fetch(pc);
        self.stats.instructions += 1;
        if ins.is_flop() {
            self.stats.flops += 1;
        }
        // Compute-class instructions (includes ReadGr).
        let mut rf = std::mem::replace(&mut self.mtcu_rf, RegFile::new(0));
        let handled = exec_compute(&ins, &mut rf, &self.gregs);
        self.mtcu_rf = rf;
        if handled {
            let lat = match ins.unit() {
                Unit::Fpu => FPU_LATENCY,
                Unit::Mdu => MDU_LATENCY,
                _ => 1,
            };
            self.mode = Mode::Serial {
                pc: pc + 1,
                resume_at: self.cycle + lat,
            };
            return Ok(());
        }
        match ins {
            Instr::WriteGr { rs, dst } => {
                self.gregs[dst.index()] = self.mtcu_rf.read_i(rs);
                self.mode = Mode::Serial {
                    pc: pc + 1,
                    resume_at: self.cycle + 1,
                };
            }
            Instr::Lw { rd, base, off } => {
                let a = self.addr_of(pc, self.mtcu_rf.read_i(base), off)?;
                let v = self.mem[a];
                self.mtcu_rf.write_i(rd, v);
                self.stats.mem_reads += 1;
                self.mode = Mode::Serial {
                    pc: pc + 1,
                    resume_at: self.cycle + SERIAL_MEM_LATENCY,
                };
            }
            Instr::Sw { rs, base, off } => {
                let a = self.addr_of(pc, self.mtcu_rf.read_i(base), off)?;
                self.mem[a] = self.mtcu_rf.read_i(rs);
                self.stats.mem_writes += 1;
                self.mode = Mode::Serial {
                    pc: pc + 1,
                    resume_at: self.cycle + SERIAL_MEM_LATENCY,
                };
            }
            Instr::Flw { fd, base, off } => {
                let a = self.addr_of(pc, self.mtcu_rf.read_i(base), off)?;
                let v = f32::from_bits(self.mem[a]);
                self.mtcu_rf.write_f(fd, v);
                self.stats.mem_reads += 1;
                self.mode = Mode::Serial {
                    pc: pc + 1,
                    resume_at: self.cycle + SERIAL_MEM_LATENCY,
                };
            }
            Instr::Fsw { fs, base, off } => {
                let a = self.addr_of(pc, self.mtcu_rf.read_i(base), off)?;
                self.mem[a] = self.mtcu_rf.read_f(fs).to_bits();
                self.stats.mem_writes += 1;
                self.mode = Mode::Serial {
                    pc: pc + 1,
                    resume_at: self.cycle + SERIAL_MEM_LATENCY,
                };
            }
            Instr::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                let t = eval_branch(cond, self.mtcu_rf.read_i(rs1), self.mtcu_rf.read_i(rs2));
                let next = if t { target } else { pc + 1 };
                self.mode = Mode::Serial {
                    pc: next,
                    resume_at: self.cycle + 1,
                };
            }
            Instr::Jump { target } => {
                self.mode = Mode::Serial {
                    pc: target,
                    resume_at: self.cycle + 1,
                };
            }
            Instr::Ps { rd, inc, on } => {
                let old = self.gregs[on.index()];
                self.gregs[on.index()] = old.wrapping_add(self.mtcu_rf.read_i(inc));
                self.mtcu_rf.write_i(rd, old);
                self.mode = Mode::Serial {
                    pc: pc + 1,
                    resume_at: self.cycle + 1,
                };
            }
            Instr::Spawn { count, entry } => {
                let n = self.mtcu_rf.read_i(count);
                self.stats.spawns += 1;
                self.spawn_count = n;
                self.spawn_entry = entry;
                self.next_tid = 0;
                // Broadcast: the parallel section reaches every cluster
                // in log₂(clusters) cycles (Section II-A: "start all
                // TCUs at once in the same time it takes to start one").
                let broadcast = (self.cfg.clusters as f64).log2().ceil() as u64 + 1;
                self.tracker = Some(SpawnTracker {
                    index: self.spawn_log.len(),
                    start_cycle: self.cycle,
                    start: self.stats,
                    start_dram_bytes: self.dram_bytes(),
                    threads_at_start: self.stats.threads,
                });
                self.cycle += broadcast;
                self.stats.cycles = self.cycle;
                self.mode = Mode::Parallel { return_pc: pc + 1 };
            }
            Instr::Join => {
                return Err(SimError::BadInstruction {
                    pc,
                    what: "join in serial mode",
                })
            }
            Instr::Sspawn { .. } => {
                return Err(SimError::BadInstruction {
                    pc,
                    what: "sspawn in serial mode",
                })
            }
            Instr::Halt => {
                self.mode = Mode::Finished;
            }
            other => unreachable!("unhandled serial instruction {other:?}"),
        }
        Ok(())
    }

    /// One parallel-mode cycle over every cluster.
    fn step_parallel(&mut self) -> Result<(), SimError> {
        for c in 0..self.clusters.len() {
            self.step_cluster(c)?;
        }
        Ok(())
    }

    fn step_cluster(&mut self, c: usize) -> Result<(), SimError> {
        let instr_at_entry = self.stats.instructions;
        let ntcus = self.cfg.tcus_per_cluster;
        let mut fpu_budget = self.cfg.fpus_per_cluster;
        let mut mdu_budget = self.cfg.mdus_per_cluster;
        let mut lsu_budget = self.cfg.lsus_per_cluster;
        let start = self.cluster_rr[c];
        self.cluster_rr[c] = (start + 1) % ntcus;

        for i in 0..ntcus {
            let t = (start + i) % ntcus;
            // Activate idle TCUs while thread IDs remain (the PS unit
            // allocates in constant time, so every idle TCU can pick up
            // a thread in the same cycle).
            if !self.clusters[c][t].active {
                // Thread ids are handed out globally; cluster c TCU t
                // competes with all others, which the central counter
                // models exactly.
                if self.next_tid < self.spawn_count {
                    let tid = self.next_tid;
                    self.next_tid += 1;
                    let tcu = &mut self.clusters[c][t];
                    tcu.active = true;
                    tcu.rf = RegFile::new(tid);
                    tcu.pc = self.spawn_entry;
                    tcu.busy_until = 0;
                    tcu.pend_i = 0;
                    tcu.pend_f = 0;
                    self.stats.threads += 1;
                } else {
                    continue;
                }
            }
            if self.clusters[c][t].busy_until > self.cycle {
                continue;
            }
            let pc = self.clusters[c][t].pc;
            if pc >= self.prog.len() {
                return Err(SimError::PcOutOfRange { pc });
            }
            let ins = self.prog.fetch(pc);
            if self.clusters[c][t].blocked(self.hazard[pc]) {
                self.stats.stall_scoreboard += 1;
                continue;
            }
            match ins.unit() {
                Unit::Alu => {
                    let tcu = &mut self.clusters[c][t];
                    let ok = exec_compute(&ins, &mut tcu.rf, &self.gregs);
                    debug_assert!(ok, "ALU-class instruction must be compute-executable");
                    tcu.pc += 1;
                    self.stats.instructions += 1;
                }
                Unit::Fpu => {
                    if fpu_budget == 0 {
                        self.stats.stall_fpu += 1;
                        continue;
                    }
                    fpu_budget -= 1;
                    let tcu = &mut self.clusters[c][t];
                    let ok = exec_compute(&ins, &mut tcu.rf, &self.gregs);
                    debug_assert!(ok);
                    tcu.busy_until = self.cycle + FPU_LATENCY;
                    tcu.pc += 1;
                    self.stats.instructions += 1;
                    self.stats.flops += 1;
                }
                Unit::Mdu => {
                    if mdu_budget == 0 {
                        self.stats.stall_mdu += 1;
                        continue;
                    }
                    mdu_budget -= 1;
                    let tcu = &mut self.clusters[c][t];
                    let ok = exec_compute(&ins, &mut tcu.rf, &self.gregs);
                    debug_assert!(ok);
                    tcu.busy_until = self.cycle + MDU_LATENCY;
                    tcu.pc += 1;
                    self.stats.instructions += 1;
                }
                Unit::Lsu => {
                    if lsu_budget == 0 {
                        self.stats.stall_lsu += 1;
                        continue;
                    }
                    if self.clusters[c][t].outstanding >= MAX_OUTSTANDING {
                        self.stats.stall_lsu += 1;
                        continue;
                    }
                    if !self.issue_memory(c, t, pc, &ins)? {
                        // NoC refused (rate limit/backpressure): the
                        // port attempt still consumed the LSU slot.
                        lsu_budget -= 1;
                        self.stats.stall_lsu += 1;
                        continue;
                    }
                    lsu_budget -= 1;
                    self.clusters[c][t].pc += 1;
                    self.stats.instructions += 1;
                }
                Unit::Branch => {
                    let tcu = &mut self.clusters[c][t];
                    match ins {
                        Instr::Branch {
                            cond,
                            rs1,
                            rs2,
                            target,
                        } => {
                            let taken = eval_branch(cond, tcu.rf.read_i(rs1), tcu.rf.read_i(rs2));
                            tcu.pc = if taken { target } else { pc + 1 };
                        }
                        Instr::Jump { target } => tcu.pc = target,
                        _ => unreachable!(),
                    }
                    self.stats.instructions += 1;
                }
                Unit::Ps => {
                    match ins {
                        Instr::Ps { rd, inc, on } => {
                            let tcu = &mut self.clusters[c][t];
                            let old = self.gregs[on.index()];
                            self.gregs[on.index()] = old.wrapping_add(tcu.rf.read_i(inc));
                            tcu.rf.write_i(rd, old);
                            tcu.pc += 1;
                        }
                        Instr::Sspawn { rd, count } => {
                            // PS on the spawn bound: the barrier now
                            // also waits for the new virtual threads,
                            // which idle TCUs pick up immediately.
                            let tcu = &mut self.clusters[c][t];
                            let old = self.spawn_count;
                            self.spawn_count = self.spawn_count.wrapping_add(tcu.rf.read_i(count));
                            tcu.rf.write_i(rd, old);
                            tcu.pc += 1;
                        }
                        _ => unreachable!(),
                    }
                    self.stats.instructions += 1;
                }
                Unit::Control => match ins {
                    Instr::Join => {
                        // Posted stores must drain before the thread
                        // retires (the spawn barrier is a memory fence).
                        if self.clusters[c][t].outstanding > 0 {
                            continue;
                        }
                        self.clusters[c][t].active = false;
                        self.stats.instructions += 1;
                    }
                    Instr::Nop => {
                        self.clusters[c][t].pc += 1;
                        self.stats.instructions += 1;
                    }
                    Instr::Spawn { .. } => {
                        return Err(SimError::BadInstruction {
                            pc,
                            what: "nested spawn",
                        })
                    }
                    Instr::Halt => {
                        return Err(SimError::BadInstruction {
                            pc,
                            what: "halt in parallel mode",
                        })
                    }
                    _ => {
                        return Err(SimError::BadInstruction {
                            pc,
                            what: "instruction illegal in parallel mode",
                        })
                    }
                },
            }
        }
        self.cluster_instr[c] += self.stats.instructions - instr_at_entry;
        Ok(())
    }

    /// Issue a load/store into the request network. Returns false if
    /// the network refused it this cycle.
    fn issue_memory(
        &mut self,
        c: usize,
        t: usize,
        pc: usize,
        ins: &Instr,
    ) -> Result<bool, SimError> {
        let (addr, kind, value, is_write) = {
            let tcu = &self.clusters[c][t];
            match *ins {
                Instr::Lw { rd, base, off } => {
                    let a = self.addr_of(pc, tcu.rf.read_i(base), off)?;
                    (a, TxnKind::LoadI(rd), 0, false)
                }
                Instr::Flw { fd, base, off } => {
                    let a = self.addr_of(pc, tcu.rf.read_i(base), off)?;
                    (a, TxnKind::LoadF(fd), 0, false)
                }
                Instr::Sw { rs, base, off } => {
                    let a = self.addr_of(pc, tcu.rf.read_i(base), off)?;
                    (a, TxnKind::Store, tcu.rf.read_i(rs), true)
                }
                Instr::Fsw { fs, base, off } => {
                    let a = self.addr_of(pc, tcu.rf.read_i(base), off)?;
                    (a, TxnKind::Store, tcu.rf.read_f(fs).to_bits(), true)
                }
                _ => unreachable!("issue_memory on non-memory instruction"),
            }
        };
        let module = self.hash.module_of(addr as u32);
        let tag = self.next_txn;
        if !self.req_net.try_inject(Flit {
            src: c,
            dst: module,
            tag,
        }) {
            return Ok(false);
        }
        self.next_txn += 1;
        self.txns.insert(
            tag,
            Txn {
                cluster: c,
                tcu: t,
                addr: addr as u32,
                kind,
                value,
            },
        );
        let tcu = &mut self.clusters[c][t];
        tcu.outstanding += 1;
        match kind {
            TxnKind::LoadI(rd) => {
                if rd.index() != 0 {
                    tcu.pend_i |= 1 << rd.index();
                }
                self.stats.mem_reads += 1;
            }
            TxnKind::LoadF(fd) => {
                tcu.pend_f |= 1 << fd.index();
                self.stats.mem_reads += 1;
            }
            TxnKind::Store => {
                self.stats.mem_writes += 1;
            }
        }
        let _ = is_write;
        Ok(true)
    }

    /// Advance the NoC, memory modules, DRAM channels and replies.
    fn step_memory_system(&mut self) {
        let mut replies = Vec::new();
        self.step_memory_system_collect(&mut replies);
        for r in replies {
            let tcu = &mut self.clusters[r.cluster][r.tcu];
            match r.kind {
                TxnKind::LoadI(rd) => {
                    tcu.rf.write_i(rd, r.value);
                    tcu.pend_i &= !(1u32 << rd.index());
                }
                TxnKind::LoadF(fd) => {
                    tcu.rf.write_f(fd, f32::from_bits(r.value));
                    tcu.pend_f &= !(1u32 << fd.index());
                }
                TxnKind::Store => {}
            }
            tcu.outstanding -= 1;
        }
    }

    /// One memory-system cycle with matured replies pushed to `out`
    /// instead of applied (the threaded engine routes them to the
    /// worker that owns the target cluster). Only *active* modules,
    /// channels and outboxes are visited; idle components are clock-
    /// synced lazily when something arrives for them.
    fn step_memory_system_collect(&mut self, out: &mut Vec<ReplyDelivery>) {
        // Request network → modules. Functional effect happens here
        // (arrival order at the home module defines the memory order;
        // kernels separate read and write sets between barriers).
        for d in self.req_net.step() {
            let txn = self.txns.get_mut(&d.flit.tag).expect("txn exists");
            match txn.kind {
                TxnKind::LoadI(_) | TxnKind::LoadF(_) => {
                    txn.value = self.mem[txn.addr as usize];
                }
                TxnKind::Store => {
                    self.mem[txn.addr as usize] = txn.value;
                }
            }
            // The module is about to take its step for this memory
            // cycle, so align it to the *previous* one.
            self.modules[d.flit.dst].sync_to(self.mem_clock);
            self.modules[d.flit.dst].enqueue(MemReq {
                addr: txn.addr,
                is_write: matches!(txn.kind, TxnKind::Store),
                tag: d.flit.tag,
            });
            activate(
                &mut self.active_modules,
                &mut self.module_active,
                d.flit.dst,
            );
        }
        // Modules: service + emit DRAM requests.
        let mut creqs: Vec<ChannelRequest> = Vec::new();
        for &m in &self.active_modules {
            for resp in self.modules[m].step(&mut creqs) {
                self.module_outbox[m].push_back(resp.req.tag);
                activate(&mut self.active_outboxes, &mut self.outbox_active, m);
            }
        }
        let module_active = &mut self.module_active;
        let modules = &self.modules;
        self.active_modules.retain(|&m| {
            let still = modules[m].is_active();
            module_active[m] = still;
            still
        });
        for cr in creqs {
            let ch = cr.module / self.cfg.mm_per_dram_ctrl;
            self.channels[ch].sync_to(self.mem_clock);
            self.channels[ch].enqueue(DramReq {
                tag: cr.module as u64,
                ..cr.req
            });
            activate(&mut self.active_channels, &mut self.channel_active, ch);
        }
        self.mem_clock += 1;
        // DRAM channels → module fills.
        for &ch in &self.active_channels {
            if let Some(done) = self.channels[ch].step() {
                let m = done.req.tag as usize;
                // Post-step: both module and channel clocks now sit at
                // the current memory cycle.
                self.modules[m].sync_to(self.mem_clock);
                self.modules[m].on_fill(done);
                if self.modules[m].is_active() {
                    activate(&mut self.active_modules, &mut self.module_active, m);
                }
            }
        }
        let channel_active = &mut self.channel_active;
        let channels = &self.channels;
        self.active_channels.retain(|&ch| {
            let still = channels[ch].pending() > 0;
            channel_active[ch] = still;
            still
        });
        // Module outboxes → reply network (one injection per module
        // port per cycle).
        let outbox_active = &mut self.outbox_active;
        let module_outbox = &mut self.module_outbox;
        let reply_net = &mut self.reply_net;
        let txns = &self.txns;
        self.active_outboxes.retain(|&m| {
            if let Some(&tag) = module_outbox[m].front() {
                let cluster = txns[&tag].cluster;
                if reply_net.try_inject(Flit {
                    src: m,
                    dst: cluster,
                    tag,
                }) {
                    module_outbox[m].pop_front();
                }
            }
            let still = !module_outbox[m].is_empty();
            outbox_active[m] = still;
            still
        });
        // Reply network → TCUs.
        for d in self.reply_net.step() {
            let txn = self.txns.remove(&d.flit.tag).expect("txn exists");
            out.push(ReplyDelivery {
                cluster: txn.cluster,
                tcu: txn.tcu,
                kind: txn.kind,
                value: txn.value,
            });
        }
    }

    /// Close the parallel section when all work and memory drained.
    fn maybe_finish_spawn(&mut self, return_pc: usize) {
        if self.next_tid < self.spawn_count {
            return;
        }
        if self.clusters.iter().any(|cl| cl.iter().any(|t| t.active)) {
            return;
        }
        self.maybe_finish_spawn_drained(return_pc);
    }

    /// Barrier tail shared with the threaded engine (which knows TCU
    /// activity from its workers' scans): `txns` covers every request
    /// or reply in a NoC or outbox; the active lists cover modules with
    /// queued/maturing work and channels with fills or write-backs in
    /// flight. A module waiting only on a DRAM fill is inactive, but
    /// its channel stays active until the fill completes and `on_fill`
    /// reactivates the module — so empty lists plus empty `txns` is
    /// exactly the reference engine's full drain scan.
    fn maybe_finish_spawn_drained(&mut self, return_pc: usize) {
        if self.next_tid < self.spawn_count {
            return;
        }
        if !self.txns.is_empty()
            || !self.active_modules.is_empty()
            || !self.active_channels.is_empty()
        {
            return;
        }
        // Section complete: log its stats and resume serial mode.
        if let Some(tr) = self.tracker.take() {
            self.spawn_log.push(SpawnStats {
                index: tr.index,
                threads: self.stats.threads - tr.threads_at_start,
                cycles: self.cycle - tr.start_cycle,
                instructions: self.stats.instructions - tr.start.instructions,
                flops: self.stats.flops - tr.start.flops,
                mem_reads: self.stats.mem_reads - tr.start.mem_reads,
                mem_writes: self.stats.mem_writes - tr.start.mem_writes,
                dram_bytes: self.dram_bytes() - tr.start_dram_bytes,
            });
        }
        self.mode = Mode::Serial {
            pc: return_pc,
            resume_at: self.cycle + 1,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmt_isa::reg::{fr, gr, ir};
    use xmt_isa::ProgramBuilder;

    fn tiny_config() -> XmtConfig {
        XmtConfig::xmt_4k().scaled_to(4)
    }

    fn spawn_store_tids(n: u32) -> Program {
        let mut b = ProgramBuilder::new();
        let par = b.label();
        let after = b.label();
        b.li(ir(1), n);
        b.spawn(ir(1), par);
        b.jump(after);
        b.bind(par);
        b.tid(ir(2));
        b.slli(ir(3), ir(2), 1);
        b.sw(ir(3), ir(2), 0);
        b.join();
        b.bind(after);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn serial_arithmetic_runs() {
        let mut b = ProgramBuilder::new();
        b.li(ir(1), 6).li(ir(2), 7).mul(ir(3), ir(1), ir(2));
        b.li(ir(4), 10).sw(ir(3), ir(4), 0).halt();
        let mut m = Machine::new(&tiny_config(), b.build().unwrap(), 64);
        let s = m.run().unwrap();
        assert_eq!(m.mem[10], 42);
        assert!(s.stats.cycles >= 6);
        // MDU latency must be visible in the cycle count.
        assert!(s.stats.cycles >= MDU_LATENCY);
    }

    #[test]
    fn parallel_section_matches_interpreter() {
        let prog = spawn_store_tids(64);
        let mut m = Machine::new(&tiny_config(), prog.clone(), 256);
        let s = m.run().unwrap();
        for t in 0..64u32 {
            assert_eq!(m.mem[t as usize], t * 2, "tid {t}");
        }
        assert_eq!(s.stats.threads, 64);
        assert_eq!(s.spawns.len(), 1);
        assert_eq!(s.spawns[0].threads, 64);
        assert_eq!(s.spawns[0].mem_writes, 64);

        // The untimed interpreter agrees bit-for-bit.
        let mut i = xmt_isa::Interp::new(256);
        i.run(&prog).unwrap();
        assert_eq!(&i.mem[..128], &m.mem[..128]);
    }

    #[test]
    fn loads_roundtrip_through_noc() {
        // Threads copy mem[tid] -> mem[tid + 64].
        let mut b = ProgramBuilder::new();
        let par = b.label();
        let after = b.label();
        b.li(ir(1), 32);
        b.spawn(ir(1), par);
        b.jump(after);
        b.bind(par);
        b.tid(ir(2));
        b.lw(ir(3), ir(2), 0);
        b.sw(ir(3), ir(2), 64);
        b.join();
        b.bind(after);
        b.halt();
        let mut m = Machine::new(&tiny_config(), b.build().unwrap(), 256);
        for t in 0..32u32 {
            m.mem[t as usize] = 1000 + t;
        }
        let s = m.run().unwrap();
        for t in 0..32usize {
            assert_eq!(m.mem[t + 64], 1000 + t as u32);
        }
        assert_eq!(s.spawns[0].mem_reads, 32);
        assert_eq!(s.spawns[0].mem_writes, 32);
        // A NoC round trip plus memory access takes real time.
        assert!(s.spawns[0].cycles > 10);
    }

    #[test]
    fn fp_math_through_machine() {
        let mut b = ProgramBuilder::new();
        let par = b.label();
        let after = b.label();
        b.li(ir(1), 8);
        b.spawn(ir(1), par);
        b.jump(after);
        b.bind(par);
        b.tid(ir(2));
        b.flw(fr(0), ir(2), 0);
        b.fmul(fr(1), fr(0), fr(0));
        b.fsw(fr(1), ir(2), 16);
        b.join();
        b.bind(after);
        b.halt();
        let mut m = Machine::new(&tiny_config(), b.build().unwrap(), 64);
        let inputs: Vec<f32> = (0..8).map(|i| i as f32 + 0.5).collect();
        m.write_f32s(0, &inputs);
        let s = m.run().unwrap();
        let out = m.read_f32s(16, 8);
        for (i, (&x, &y)) in inputs.iter().zip(&out).enumerate() {
            assert_eq!(y, x * x, "lane {i}");
        }
        assert_eq!(s.spawns[0].flops, 8);
    }

    #[test]
    fn ps_allocates_unique_tickets() {
        let mut b = ProgramBuilder::new();
        let par = b.label();
        let after = b.label();
        b.li(ir(1), 16);
        b.spawn(ir(1), par);
        b.jump(after);
        b.bind(par);
        b.li(ir(2), 1);
        b.ps(ir(3), ir(2), gr(1));
        b.tid(ir(4));
        b.sw(ir(3), ir(4), 0);
        b.join();
        b.bind(after);
        b.halt();
        let mut m = Machine::new(&tiny_config(), b.build().unwrap(), 64);
        m.run().unwrap();
        let mut tickets: Vec<u32> = m.mem[..16].to_vec();
        tickets.sort_unstable();
        assert_eq!(tickets, (0..16).collect::<Vec<u32>>());
    }

    #[test]
    fn more_threads_than_tcus_reuses_tcus() {
        let cfg = tiny_config();
        let total_tcus = cfg.tcus as u32;
        let prog = spawn_store_tids(total_tcus * 4);
        let mut m = Machine::new(&cfg, prog, (total_tcus * 8) as usize);
        let s = m.run().unwrap();
        assert_eq!(s.stats.threads as u32, total_tcus * 4);
        for t in 0..(total_tcus * 4) {
            assert_eq!(m.mem[t as usize], t * 2);
        }
    }

    #[test]
    fn cycle_limit_catches_runaway() {
        let mut b = ProgramBuilder::new();
        let top = b.label();
        b.bind(top);
        b.jump(top);
        let mut m = Machine::new(&tiny_config(), b.build().unwrap(), 16);
        m.max_cycles = 10_000;
        assert!(matches!(m.run(), Err(SimError::CycleLimit { .. })));
    }

    #[test]
    fn nested_spawn_is_error() {
        let mut b = ProgramBuilder::new();
        let par = b.label();
        let after = b.label();
        b.li(ir(1), 2);
        b.spawn(ir(1), par);
        b.jump(after);
        b.bind(par);
        b.spawn(ir(1), par);
        b.join();
        b.bind(after);
        b.halt();
        let mut m = Machine::new(&tiny_config(), b.build().unwrap(), 16);
        assert!(matches!(m.run(), Err(SimError::BadInstruction { .. })));
    }

    #[test]
    fn out_of_bounds_reported() {
        let mut b = ProgramBuilder::new();
        b.li(ir(1), 9999).lw(ir(2), ir(1), 0).halt();
        let mut m = Machine::new(&tiny_config(), b.build().unwrap(), 16);
        assert!(matches!(m.run(), Err(SimError::MemOutOfBounds { .. })));
    }

    #[test]
    fn spawn_barrier_drains_memory() {
        // After the spawn returns, all stores must be visible without
        // any further simulation.
        let prog = spawn_store_tids(128);
        let mut m = Machine::new(&tiny_config(), prog, 512);
        m.run().unwrap();
        assert!(m.txns.is_empty());
        for t in 0..128u32 {
            assert_eq!(m.mem[t as usize], t * 2);
        }
    }

    #[test]
    fn sspawn_extends_parallel_section() {
        // 4 initial threads; thread 0 sspawns 4 more; all 8 write
        // their tid, and the barrier waits for the late arrivals.
        let mut b = ProgramBuilder::new();
        let par = b.label();
        let after = b.label();
        let work = b.label();
        b.li(ir(1), 4);
        b.spawn(ir(1), par);
        b.jump(after);
        b.bind(par);
        b.tid(ir(2));
        b.bne(ir(2), ir(0), work); // only tid 0 extends
        b.li(ir(3), 4);
        b.sspawn(ir(4), ir(3));
        b.bind(work);
        b.sw(ir(2), ir(2), 0);
        b.join();
        b.bind(after);
        b.halt();
        let prog = b.build().unwrap();

        let mut m = Machine::new(&tiny_config(), prog.clone(), 64);
        let s = m.run().unwrap();
        assert_eq!(s.stats.threads, 8, "4 original + 4 sspawned");
        for t in 0..8u32 {
            assert_eq!(m.mem[t as usize], t, "tid {t} must have run");
        }

        // Interpreter agrees.
        let mut i = xmt_isa::Interp::new(64);
        i.run(&prog).unwrap();
        assert_eq!(&i.mem[..8], &m.mem[..8]);
    }

    #[test]
    fn sspawn_in_serial_is_error() {
        let mut b = ProgramBuilder::new();
        b.li(ir(1), 2).sspawn(ir(2), ir(1)).halt();
        let mut m = Machine::new(&tiny_config(), b.build().unwrap(), 16);
        assert!(matches!(m.run(), Err(SimError::BadInstruction { .. })));
    }

    #[test]
    fn utilization_report_is_balanced_for_uniform_work() {
        let prog = spawn_store_tids(512);
        let mut m = Machine::new(&tiny_config(), prog, 2048);
        m.run().unwrap();
        let u = m.utilization();
        assert_eq!(u.cluster_instr.len(), 4);
        assert!(
            u.cluster_instr.iter().all(|&c| c > 0),
            "every cluster worked"
        );
        assert!(
            u.cluster_imbalance() < 1.5,
            "PS-based scheduling must balance: {}",
            u.cluster_imbalance()
        );
        assert!(
            u.module_imbalance() < 3.0,
            "hashing must spread modules: {}",
            u.module_imbalance()
        );
        for hr in &u.module_hit_rate {
            assert!((0.0..=1.0).contains(hr));
        }
        for cb in &u.channel_busy {
            assert!((0.0..=1.0).contains(cb));
        }
        assert!(u.fpu_utilization >= 0.0 && u.fpu_utilization <= 1.0);
    }

    #[test]
    fn two_spawns_two_stat_entries() {
        let mut b = ProgramBuilder::new();
        let par = b.label();
        let after1 = b.label();
        let after2 = b.label();
        b.li(ir(1), 8);
        b.spawn(ir(1), par);
        b.jump(after1);
        b.bind(par);
        b.tid(ir(2));
        b.sw(ir(2), ir(2), 0);
        b.join();
        b.bind(after1);
        b.li(ir(1), 16);
        b.spawn(ir(1), par);
        b.jump(after2);
        b.bind(after2);
        b.halt();
        let mut m = Machine::new(&tiny_config(), b.build().unwrap(), 64);
        let s = m.run().unwrap();
        assert_eq!(s.spawns.len(), 2);
        assert_eq!(s.spawns[0].threads, 8);
        assert_eq!(s.spawns[1].threads, 16);
        assert_eq!(s.stats.spawns, 2);
    }
}
