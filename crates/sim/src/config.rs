//! XMT architecture configurations (Table II of the paper) and scaled
//! variants for tractable cycle simulation.

use xmt_mem::{CacheConfig, DramConfig};
use xmt_noc::Topology;

/// One architecture configuration: the machine-organization row set of
/// Table II plus clocking and memory parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XmtConfig {
    /// Human-readable name ("4k", "8k", "64k", "128k x2", "128k x4").
    pub name: &'static str,
    /// The `tcus` value.
    pub tcus: usize,
    /// The `clusters` value.
    pub clusters: usize,
    /// The `tcus_per_cluster` value.
    pub tcus_per_cluster: usize,
    /// The `memory_modules` value.
    pub memory_modules: usize,
    /// Memory modules per DRAM controller/channel.
    pub mm_per_dram_ctrl: usize,
    /// The `fpus_per_cluster` value.
    pub fpus_per_cluster: usize,
    /// ALUs per cluster (one per TCU in every paper configuration).
    pub alus_per_cluster: usize,
    /// The `mdus_per_cluster` value.
    pub mdus_per_cluster: usize,
    /// The `lsus_per_cluster` value.
    pub lsus_per_cluster: usize,
    /// NoC level split (Table II).
    pub mot_levels: u32,
    /// The `butterfly_levels` value.
    pub butterfly_levels: u32,
    /// Core clock in GHz (the paper assumes 3.3 GHz throughout).
    pub clock_ghz: f64,
    /// Technology node in nm (Table III).
    pub tech_nm: u32,
    /// 3D-VLSI silicon layers (Table III).
    pub si_layers: u32,
    /// Per-module cache slice.
    pub cache: CacheConfig,
    /// DRAM channel parameters.
    pub dram: DramConfig,
}

impl XmtConfig {
    /// Number of DRAM channels.
    pub fn dram_channels(&self) -> usize {
        self.memory_modules / self.mm_per_dram_ctrl
    }

    /// NoC topology (cluster ports × module ports with the Table II
    /// level split).
    pub fn topology(&self) -> Topology {
        if self.butterfly_levels == 0 {
            Topology::pure_mot(self.clusters, self.memory_modules)
        } else {
            Topology::hybrid(
                self.clusters,
                self.memory_modules,
                self.mot_levels,
                self.butterfly_levels,
            )
        }
    }

    /// Peak floating-point rate in GFLOPS (one FLOP per FPU per cycle).
    pub fn peak_gflops(&self) -> f64 {
        (self.clusters * self.fpus_per_cluster) as f64 * self.clock_ghz
    }

    /// Peak off-chip bandwidth in GB/s.
    pub fn peak_dram_gbs(&self) -> f64 {
        self.dram_channels() as f64 * self.dram.bytes_per_cycle * self.clock_ghz
    }

    /// Total on-chip cache in MiB.
    pub fn total_cache_mib(&self) -> f64 {
        let per_module = self.cache.lines * self.cache.line_words * 4;
        (self.memory_modules * per_module) as f64 / (1024.0 * 1024.0)
    }

    /// The "4k" baseline: largest single-layer 22 nm configuration.
    pub fn xmt_4k() -> Self {
        Self {
            name: "4k",
            tcus: 4096,
            clusters: 128,
            tcus_per_cluster: 32,
            memory_modules: 128,
            mm_per_dram_ctrl: 8,
            fpus_per_cluster: 1,
            alus_per_cluster: 32,
            mdus_per_cluster: 1,
            lsus_per_cluster: 1,
            mot_levels: 14,
            butterfly_levels: 0,
            clock_ghz: 3.3,
            tech_nm: 22,
            si_layers: 1,
            cache: CacheConfig::default_module(),
            dram: DramConfig::ddr_like(),
        }
    }

    /// The "8k" configuration: 3D VLSI (2 layers), air cooling.
    pub fn xmt_8k() -> Self {
        Self {
            name: "8k",
            tcus: 8192,
            clusters: 256,
            memory_modules: 256,
            mot_levels: 16,
            si_layers: 2,
            ..Self::xmt_4k()
        }
    }

    /// The "64k" configuration: microfluidic cooling, 8 layers, hybrid
    /// NoC (8 MoT + 7 butterfly levels).
    pub fn xmt_64k() -> Self {
        Self {
            name: "64k",
            tcus: 65536,
            clusters: 2048,
            memory_modules: 2048,
            mot_levels: 8,
            butterfly_levels: 7,
            si_layers: 8,
            ..Self::xmt_4k()
        }
    }

    /// The "128k x2" configuration: 14 nm, silicon photonics doubling
    /// the DRAM-controller ratio, 2 FPUs per cluster.
    pub fn xmt_128k_x2() -> Self {
        Self {
            name: "128k x2",
            tcus: 131072,
            clusters: 4096,
            memory_modules: 4096,
            mm_per_dram_ctrl: 4,
            fpus_per_cluster: 2,
            mot_levels: 6,
            butterfly_levels: 9,
            tech_nm: 14,
            si_layers: 9,
            ..Self::xmt_4k()
        }
    }

    /// The "128k x4" configuration: MFC-cooled photonics give every
    /// memory module its own DRAM controller; 4 FPUs per cluster.
    pub fn xmt_128k_x4() -> Self {
        Self {
            name: "128k x4",
            mm_per_dram_ctrl: 1,
            fpus_per_cluster: 4,
            ..Self::xmt_128k_x2()
        }
    }

    /// All five paper configurations in Table II order.
    pub fn paper_configs() -> Vec<XmtConfig> {
        vec![
            Self::xmt_4k(),
            Self::xmt_8k(),
            Self::xmt_64k(),
            Self::xmt_128k_x2(),
            Self::xmt_128k_x4(),
        ]
    }

    /// A proportionally scaled-down variant with `clusters` clusters,
    /// for tractable cycle simulation. Keeps TCUs/cluster, FPU ratio,
    /// MM:cluster ratio, MMs-per-controller and the *blocking* level
    /// count; shrinks the MoT levels to fit the smaller port count.
    /// DRAM latency is also shortened proportionally to keep the
    /// latency-bandwidth balance of the full machine.
    pub fn scaled_to(&self, clusters: usize) -> XmtConfig {
        assert!(clusters.is_power_of_two());
        assert!(clusters <= self.clusters);
        let modules = clusters * self.memory_modules / self.clusters;
        let bits = clusters.trailing_zeros() + modules.trailing_zeros();
        // The butterfly model routes on destination bits, so at most
        // log2(ports) blocking stages exist on a scaled machine.
        let bfly = self
            .butterfly_levels
            .min(bits.saturating_sub(2))
            .min(clusters.trailing_zeros());
        let mut c = *self;
        c.clusters = clusters;
        c.tcus = clusters * self.tcus_per_cluster;
        c.memory_modules = modules;
        c.butterfly_levels = bfly;
        c.mot_levels = bits - bfly;
        c.mm_per_dram_ctrl = self.mm_per_dram_ctrl.min(modules);
        c.dram = DramConfig {
            access_latency: 60,
            ..self.dram
        };
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_rows_match_paper() {
        let cfgs = XmtConfig::paper_configs();
        let tcus: Vec<usize> = cfgs.iter().map(|c| c.tcus).collect();
        assert_eq!(tcus, vec![4096, 8192, 65536, 131072, 131072]);
        let clusters: Vec<usize> = cfgs.iter().map(|c| c.clusters).collect();
        assert_eq!(clusters, vec![128, 256, 2048, 4096, 4096]);
        let mot: Vec<u32> = cfgs.iter().map(|c| c.mot_levels).collect();
        assert_eq!(mot, vec![14, 16, 8, 6, 6]);
        let bfly: Vec<u32> = cfgs.iter().map(|c| c.butterfly_levels).collect();
        assert_eq!(bfly, vec![0, 0, 7, 9, 9]);
        let mmpc: Vec<usize> = cfgs.iter().map(|c| c.mm_per_dram_ctrl).collect();
        assert_eq!(mmpc, vec![8, 8, 8, 4, 1]);
        let fpus: Vec<usize> = cfgs.iter().map(|c| c.fpus_per_cluster).collect();
        assert_eq!(fpus, vec![1, 1, 1, 2, 4]);
        for c in &cfgs {
            assert_eq!(c.tcus, c.clusters * c.tcus_per_cluster);
            assert_eq!(c.tcus_per_cluster, 32);
            assert_eq!(c.alus_per_cluster, 32);
            assert_eq!(c.mdus_per_cluster, 1);
            assert_eq!(c.lsus_per_cluster, 1);
        }
    }

    #[test]
    fn dram_channel_counts_match_section_v() {
        // Section V-B: "The 32 DRAM channels of this configuration" (8k);
        // V-C: "the 256 DRAM channels of this configuration" (64k).
        assert_eq!(XmtConfig::xmt_4k().dram_channels(), 16);
        assert_eq!(XmtConfig::xmt_8k().dram_channels(), 32);
        assert_eq!(XmtConfig::xmt_64k().dram_channels(), 256);
        assert_eq!(XmtConfig::xmt_128k_x2().dram_channels(), 1024);
        assert_eq!(XmtConfig::xmt_128k_x4().dram_channels(), 4096);
    }

    #[test]
    fn off_chip_bandwidth_matches_section_v() {
        // Section V-B: 32 channels need 6.76 Tb/s → 845 GB/s.
        let gbs = XmtConfig::xmt_8k().peak_dram_gbs();
        assert!((gbs - 845.0).abs() < 1.0, "8k off-chip {gbs} GB/s");
    }

    #[test]
    fn peak_gflops_sane() {
        // 4k: 128 FPUs at 3.3 GHz = 422.4 GFLOPS.
        assert!((XmtConfig::xmt_4k().peak_gflops() - 422.4).abs() < 0.1);
        // 128k x4: 16384 FPUs = 54.1 TFLOPS (Table VI: 54).
        let tf = XmtConfig::xmt_128k_x4().peak_gflops() / 1000.0;
        assert!((tf - 54.1).abs() < 0.1, "x4 peak {tf} TFLOPS");
    }

    #[test]
    fn table6_cache_total() {
        // Table VI: 128 MB total cache for the 128k x4 configuration.
        let mib = XmtConfig::xmt_128k_x4().total_cache_mib();
        assert!((mib - 128.0).abs() < 1.0, "cache {mib} MiB");
    }

    #[test]
    fn topology_round_trips() {
        let t = XmtConfig::xmt_64k().topology();
        assert_eq!(t.mot_levels, 8);
        assert_eq!(t.butterfly_levels, 7);
        assert!(XmtConfig::xmt_8k().topology().is_nonblocking());
    }

    #[test]
    fn scaling_preserves_ratios() {
        let s = XmtConfig::xmt_64k().scaled_to(16);
        assert_eq!(s.clusters, 16);
        assert_eq!(s.memory_modules, 16);
        assert_eq!(s.tcus, 512);
        assert_eq!(s.fpus_per_cluster, 1);
        assert!(s.butterfly_levels > 0, "keeps blocking character");
        let t = s.topology();
        assert_eq!(t.mot_levels + t.butterfly_levels, 8);
    }
}
