//! # xmt-sim — cycle-level simulator of the XMT many-core
//!
//! The workspace's stand-in for XMTSim (Section III-A of the paper):
//! a cycle-stepped model of the architecture in Fig. 1 — MTCU, TCU
//! clusters with shared functional units, prefix-sum unit, spawn/join
//! broadcast, hybrid MoT/butterfly interconnect and hashed memory
//! modules over shared DRAM channels.
//!
//! * [`config`] — the five Table II/III architecture configurations and
//!   proportionally scaled variants for tractable simulation.
//! * [`physical`] — silicon area / power / off-chip I/O model
//!   (reproduces Table III and the Table VI power figures).
//! * [`machine`] — the simulator proper; functionally exact (shares the
//!   `xmt-isa` semantic core) and timed.
//! * [`perfmodel`] — the calibrated bottleneck model used to project
//!   paper-scale (512³, 131,072-TCU) runs that the cycle simulator
//!   cannot execute directly.
//! * [`probe`] / [`trace`] — cycle-resolved observability: zero-cost
//!   [`Probe`] hooks sampled every K cycles into fixed ring buffers,
//!   exported as Chrome `trace_event` JSON or a per-phase roofline /
//!   stall-attribution table.
//! * [`tier`] — the block-compiled execution tier: a per-program trace
//!   cache of superblock micro-ops that the issue loops replay via
//!   dense dispatch, bit-identical to per-instruction interpretation.
//! * [`fault`] / [`checkpoint`] — deterministic resilience: seeded
//!   [`FaultPlan`]s (ECC-checked DRAM flips, NoC corruption + retry,
//!   dead/stuck components), graceful degradation around offline
//!   clusters and channels, and quiescent-point [`Checkpoint`]
//!   snapshots that resume bit-identically.

#![warn(missing_docs)]
pub mod checkpoint;
pub mod config;
pub mod energy;
pub mod fault;
pub mod machine;
pub mod perfmodel;
pub mod physical;
pub mod probe;
pub mod simcfg;
pub mod tier;
pub mod trace;
mod txn_slab;

pub use checkpoint::Checkpoint;
pub use config::XmtConfig;
pub use energy::{gflops_per_watt, phase_energy, EnergyBreakdown, EnergyModel};
pub use fault::{FaultPlan, TcuId};
pub use machine::{
    Engine, Machine, MachineBuilder, MachineStats, RunOutcome, RunReport, RunStatus, SimError,
    SpawnStats, UtilizationReport, UNIT_LAT,
};
pub use perfmodel::{phase_time, run_phases, Bottleneck, PhaseDemand, PhaseTime};
pub use physical::{summarize, PhysicalSummary};
pub use probe::{
    BlockedTcus, Conflict, IntervalProbe, IntervalRow, NoProbe, Probe, RaceCheck, SampleCtx,
};
pub use simcfg::{program_digest, SimConfig};
pub use tier::{TraceCache, TraceStats, TranslationTier};
pub use trace::{chrome_trace, phase_table};
