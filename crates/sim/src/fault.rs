//! Deterministic fault-injection plans.
//!
//! A [`FaultPlan`] is a pure description of every fault a run should
//! experience: DRAM bit flips checked against the SECDED ECC model,
//! NoC flit corruption with bounded retry, and hard component faults
//! (disabled or stuck TCUs, offline clusters and DRAM channels). The
//! plan carries one master seed; every consumer derives its own seed
//! stream from it with a splitmix64-style finalizer, so a run with the
//! same plan replays bit-identically under all three engines — no
//! wall-clock time and no OS randomness is ever consulted.

use xmt_mem::EccConfig;
use xmt_noc::LinkFaults;

/// Identifies a TCU by its position in the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcuId {
    /// Home cluster.
    pub cluster: usize,
    /// TCU index within the cluster.
    pub tcu: usize,
}

/// Seeded, declarative description of the faults a run experiences.
///
/// The default plan (any seed, all rates zero, no dead components) is
/// *benign*: building a machine with it is bit-identical to building
/// one with no plan at all — no fault layer is interposed.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Master seed; all per-component streams derive from it.
    pub seed: u64,
    /// Per-read probability of a correctable single-bit DRAM flip.
    pub dram_single: f64,
    /// Per-read probability of a detectable double-bit DRAM flip.
    pub dram_double: f64,
    /// Bounded in-place retries after a detected double-bit flip.
    pub dram_retry_limit: u32,
    /// Per-delivery probability of NoC flit corruption.
    pub noc_corrupt: f64,
    /// Bounded redeliveries after a corrupted flit.
    pub noc_retry_limit: u32,
    /// Exponential backoff base for NoC redelivery (cycles).
    pub noc_backoff_base: u64,
    /// Clusters whose TCUs never activate (threads remap around them).
    pub dead_clusters: Vec<usize>,
    /// Individual TCUs that never activate.
    pub dead_tcus: Vec<TcuId>,
    /// TCUs that accept a thread and then never issue (detected by the
    /// watchdog as [`crate::SimError::Stalled`]).
    pub stuck_tcus: Vec<TcuId>,
    /// DRAM channels taken offline; the module groups they serve are
    /// removed from the address hash and traffic routes around them.
    pub dead_channels: Vec<usize>,
}

impl FaultPlan {
    /// A plan with the given master seed and no faults.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            dram_single: 0.0,
            dram_double: 0.0,
            dram_retry_limit: 2,
            noc_corrupt: 0.0,
            noc_retry_limit: 4,
            noc_backoff_base: 2,
            dead_clusters: Vec::new(),
            dead_tcus: Vec::new(),
            stuck_tcus: Vec::new(),
            dead_channels: Vec::new(),
        }
    }

    /// Set DRAM single/double bit-flip probabilities (per read).
    pub fn dram_flips(mut self, single: f64, double: f64) -> Self {
        self.dram_single = single;
        self.dram_double = double;
        self
    }

    /// Set the DRAM in-place retry budget per detected double flip.
    pub fn dram_retry_limit(mut self, limit: u32) -> Self {
        self.dram_retry_limit = limit;
        self
    }

    /// Set the NoC per-delivery corruption probability.
    pub fn noc_corrupt(mut self, p: f64) -> Self {
        self.noc_corrupt = p;
        self
    }

    /// Set the NoC redelivery budget per flit.
    pub fn noc_retry_limit(mut self, limit: u32) -> Self {
        self.noc_retry_limit = limit;
        self
    }

    /// Set the NoC exponential-backoff base (clamped to ≥ 1).
    pub fn noc_backoff_base(mut self, base: u64) -> Self {
        self.noc_backoff_base = base.max(1);
        self
    }

    /// Take a whole cluster offline (all its TCUs never activate).
    pub fn dead_cluster(mut self, cluster: usize) -> Self {
        self.dead_clusters.push(cluster);
        self
    }

    /// Take one TCU offline.
    pub fn dead_tcu(mut self, cluster: usize, tcu: usize) -> Self {
        self.dead_tcus.push(TcuId { cluster, tcu });
        self
    }

    /// Make one TCU stuck-at: it accepts a thread then never issues.
    pub fn stuck_tcu(mut self, cluster: usize, tcu: usize) -> Self {
        self.stuck_tcus.push(TcuId { cluster, tcu });
        self
    }

    /// Take a DRAM channel (and its memory-module group) offline.
    pub fn dead_channel(mut self, channel: usize) -> Self {
        self.dead_channels.push(channel);
        self
    }

    /// True iff building with this plan is bit-identical to building
    /// without one (no fault layer gets interposed anywhere).
    pub fn is_benign(&self) -> bool {
        self.dram_single == 0.0
            && self.dram_double == 0.0
            && self.noc_corrupt == 0.0
            && self.dead_clusters.is_empty()
            && self.dead_tcus.is_empty()
            && self.stuck_tcus.is_empty()
            && self.dead_channels.is_empty()
    }

    /// Derived seed stream for a named consumer. The master seed is
    /// mixed with a domain tag through the same finalizer the fault
    /// layers use, so streams are independent and reproducible.
    fn stream(&self, domain: u64) -> u64 {
        xmt_noc::fault_hash(self.seed, domain.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// ECC configuration for DRAM channel `ch`, or `None` when flip
    /// rates are zero (the channel keeps its bit-exact fault-free path).
    pub fn ecc_for_channel(&self, ch: usize) -> Option<EccConfig> {
        if self.dram_single == 0.0 && self.dram_double == 0.0 {
            return None;
        }
        Some(
            EccConfig::new(
                self.stream(0x1000 + ch as u64),
                self.dram_single,
                self.dram_double,
            )
            .retry_limit(self.dram_retry_limit),
        )
    }

    /// Link-fault configuration for the request NoC, or `None` when the
    /// corruption rate is zero.
    pub fn req_net_faults(&self) -> Option<LinkFaults> {
        self.net_faults(0x2000)
    }

    /// Link-fault configuration for the reply NoC, or `None` when the
    /// corruption rate is zero.
    pub fn reply_net_faults(&self) -> Option<LinkFaults> {
        self.net_faults(0x2001)
    }

    fn net_faults(&self, domain: u64) -> Option<LinkFaults> {
        if self.noc_corrupt == 0.0 {
            return None;
        }
        Some(
            LinkFaults::new(self.stream(domain), self.noc_corrupt)
                .retry_limit(self.noc_retry_limit)
                .backoff_base(self.noc_backoff_base),
        )
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_benign() {
        assert!(FaultPlan::default().is_benign());
        assert!(FaultPlan::new(42).is_benign());
        assert!(FaultPlan::new(42).ecc_for_channel(0).is_none());
        assert!(FaultPlan::new(42).req_net_faults().is_none());
    }

    #[test]
    fn any_fault_breaks_benignity() {
        assert!(!FaultPlan::new(1).dram_flips(1e-6, 0.0).is_benign());
        assert!(!FaultPlan::new(1).noc_corrupt(1e-4).is_benign());
        assert!(!FaultPlan::new(1).dead_cluster(0).is_benign());
        assert!(!FaultPlan::new(1).dead_tcu(0, 3).is_benign());
        assert!(!FaultPlan::new(1).stuck_tcu(1, 0).is_benign());
        assert!(!FaultPlan::new(1).dead_channel(2).is_benign());
    }

    #[test]
    fn seed_streams_are_independent_and_deterministic() {
        let p = FaultPlan::new(7).dram_flips(1e-5, 1e-7).noc_corrupt(1e-4);
        let a = p.ecc_for_channel(0).unwrap();
        let b = p.ecc_for_channel(1).unwrap();
        assert_ne!(a.seed, b.seed, "channels must draw distinct streams");
        let req = p.req_net_faults().unwrap();
        let rep = p.reply_net_faults().unwrap();
        assert_ne!(req.seed, rep.seed);
        // Replaying the plan gives the same streams.
        let p2 = FaultPlan::new(7).dram_flips(1e-5, 1e-7).noc_corrupt(1e-4);
        assert_eq!(p2.ecc_for_channel(0).unwrap().seed, a.seed);
        assert_eq!(p2.req_net_faults().unwrap().seed, req.seed);
    }
}
