//! [`SimConfig`] — a simulation request as a plain value.
//!
//! `MachineBuilder` grew one chainable knob per PR (engine, tier,
//! faults, degradation, watchdog, probe interval, …); composing a run
//! therefore meant threading a closure that "shapes" a builder, and
//! every bench bin re-derived the same wiring. [`SimConfig`] replaces
//! that: every knob is a field, the whole value is `Clone + PartialEq`,
//! and it lowers onto a builder in exactly one place
//! ([`SimConfig::builder`]).
//!
//! Because the workspace is vendored-offline (no serde), the value
//! carries its own canonical encoding: [`SimConfig::canon`] renders
//! every field — floats bit-exactly via `to_bits` — into a stable
//! `key=value` text, and [`SimConfig::digest`] folds that text together
//! with a program digest into the content address the result cache and
//! job queue key on. The cache key deliberately **excludes the engine
//! and the probe interval**: all three engines are bit-identical (so an
//! engine change must *hit* the cache), and probed/streaming runs
//! bypass the cache entirely; it **includes the tier**, matching the
//! service contract in DESIGN.md §16.

use crate::config::XmtConfig;
use crate::fault::FaultPlan;
use crate::machine::{Engine, MachineBuilder};
use crate::probe::IntervalProbe;
use crate::tier::TranslationTier;
use xmt_isa::codec::encode_program;
use xmt_isa::Program;

/// 64-bit FNV-1a over a byte string — the workspace's standard
/// content-digest primitive (same family as `spawn_digest`).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// Content digest of a program: FNV-1a over its canonical instruction
/// encoding (`xmt_isa::codec::encode_program`). Two programs with the
/// same digest execute identically on every engine.
pub fn program_digest(prog: &Program) -> u64 {
    fnv1a(&encode_program(prog))
}

/// A complete, self-contained description of one simulation run.
///
/// Everything [`MachineBuilder`] can be told, as data: architecture,
/// engine, execution tier, fault plan (including degradation), watchdog
/// and cycle-limit overrides, memory-image size, and an optional probe
/// interval for streaming runs. A `SimConfig` plus a program is a
/// *request* — hashable, comparable, and replayable bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// The architecture configuration (Table II row or scaled variant).
    pub arch: XmtConfig,
    /// Advance engine. Not part of the cache key: engines are
    /// bit-identical by contract.
    pub engine: Engine,
    /// Execution tier. Part of the cache key (service contract).
    pub tier: TranslationTier,
    /// Deterministic fault plan; carries the seed and all hard faults.
    pub faults: FaultPlan,
    /// Watchdog no-progress horizon override (`None` = default).
    pub watchdog: Option<u64>,
    /// Runaway cycle-limit override (`None` = default).
    pub max_cycles: Option<u64>,
    /// Sampling interval for streamed [`IntervalProbe`] rows; `None`
    /// runs unprobed (the zero-overhead default). Not part of the
    /// cache key: probed runs bypass the result cache.
    pub probe_interval: Option<u64>,
    /// Ring capacity for the interval probe (rows retained).
    pub probe_capacity: usize,
    /// Words of zeroed data memory the machine starts with (program
    /// inputs are written on top of this by the workload).
    pub mem_words: usize,
}

impl SimConfig {
    /// A config for `arch` with every knob at its default: FastForward
    /// engine, Block tier, benign faults, default watchdog/limits,
    /// unprobed, no memory.
    pub fn new(arch: &XmtConfig) -> Self {
        Self {
            arch: *arch,
            engine: Engine::default(),
            tier: TranslationTier::default(),
            faults: FaultPlan::default(),
            watchdog: None,
            max_cycles: None,
            probe_interval: None,
            probe_capacity: 1 << 14,
            mem_words: 0,
        }
    }

    /// Select the advance engine.
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Select the execution tier.
    pub fn tier(mut self, tier: TranslationTier) -> Self {
        self.tier = tier;
        self
    }

    /// Attach a fault plan.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Graceful-degradation shorthand: merge dead clusters and DRAM
    /// channels into the fault plan (mirrors
    /// [`MachineBuilder::degraded`]).
    pub fn degraded(mut self, dead_clusters: &[usize], dead_channels: &[usize]) -> Self {
        self.faults.dead_clusters.extend_from_slice(dead_clusters);
        self.faults.dead_channels.extend_from_slice(dead_channels);
        self
    }

    /// Override the watchdog horizon.
    pub fn watchdog(mut self, horizon: u64) -> Self {
        self.watchdog = Some(horizon);
        self
    }

    /// Override the runaway cycle limit.
    pub fn max_cycles(mut self, max: u64) -> Self {
        self.max_cycles = Some(max);
        self
    }

    /// Request streamed interval sampling every `interval` cycles.
    pub fn probed(mut self, interval: u64) -> Self {
        self.probe_interval = Some(interval);
        self
    }

    /// Set the interval-probe ring capacity.
    pub fn probe_capacity(mut self, rows: usize) -> Self {
        self.probe_capacity = rows;
        self
    }

    /// Require at least `words` words of data memory.
    pub fn mem_words(mut self, words: usize) -> Self {
        self.mem_words = self.mem_words.max(words);
        self
    }

    /// Lower this config onto a [`MachineBuilder`] for `prog` — the
    /// single place request values become machines. Workloads write
    /// their inputs on the returned builder and `build`/`resume` as
    /// usual.
    pub fn builder(&self, prog: Program) -> MachineBuilder {
        let mut b = MachineBuilder::new(&self.arch, prog)
            .engine(self.engine)
            .tier(self.tier)
            .faults(self.faults.clone())
            .mem_words(self.mem_words);
        if let Some(w) = self.watchdog {
            b = b.watchdog(w);
        }
        if let Some(c) = self.max_cycles {
            b = b.max_cycles(c);
        }
        b
    }

    /// The interval probe this config asks for, or `None` for an
    /// unprobed run.
    pub fn interval_probe(&self) -> Option<IntervalProbe> {
        self.probe_interval
            .map(|iv| IntervalProbe::new(iv, self.probe_capacity.max(1)))
    }

    /// Canonical text encoding of the *whole* config (including the
    /// engine and probe settings): stable across runs and platforms,
    /// floats rendered bit-exactly. Suitable for logs, golden files
    /// and wire framing.
    pub fn canon(&self) -> String {
        let mut s = self.cache_canon();
        s.push_str(&format!("engine={}\n", engine_canon(&self.engine)));
        s.push_str(&format!(
            "probe_interval={}\n",
            self.probe_interval.map_or(0, |v| v)
        ));
        s.push_str(&format!("probe_capacity={}\n", self.probe_capacity));
        s
    }

    /// The cache-key portion of the canonical encoding: everything
    /// that can change the run's *results* — architecture, tier, fault
    /// plan (seed included), watchdog, cycle limit, memory size — and
    /// nothing that cannot (engine, probe settings).
    pub fn cache_canon(&self) -> String {
        let a = &self.arch;
        let f = &self.faults;
        let mut s = String::with_capacity(512);
        s.push_str(&format!(
            "arch={} clusters={} tpc={} mm={} mmpc={} fpus={} alus={} mdus={} lsus={} \
             mot={} bfly={} clock={:016x} nm={} layers={}\n",
            a.name,
            a.clusters,
            a.tcus_per_cluster,
            a.memory_modules,
            a.mm_per_dram_ctrl,
            a.fpus_per_cluster,
            a.alus_per_cluster,
            a.mdus_per_cluster,
            a.lsus_per_cluster,
            a.mot_levels,
            a.butterfly_levels,
            a.clock_ghz.to_bits(),
            a.tech_nm,
            a.si_layers,
        ));
        s.push_str(&format!(
            "cache_lines={} cache_ways={} cache_lw={} cache_hit={}\n",
            a.cache.lines, a.cache.ways, a.cache.line_words, a.cache.hit_latency,
        ));
        s.push_str(&format!(
            "dram_bpc={:016x} dram_lat={} dram_lb={}\n",
            a.dram.bytes_per_cycle.to_bits(),
            a.dram.access_latency,
            a.dram.line_bytes,
        ));
        s.push_str(&format!("tier={}\n", tier_canon(&self.tier)));
        s.push_str(&format!(
            "seed={} dram_single={:016x} dram_double={:016x} dram_retry={} \
             noc_corrupt={:016x} noc_retry={} noc_backoff={}\n",
            f.seed,
            f.dram_single.to_bits(),
            f.dram_double.to_bits(),
            f.dram_retry_limit,
            f.noc_corrupt.to_bits(),
            f.noc_retry_limit,
            f.noc_backoff_base,
        ));
        s.push_str(&format!(
            "dead_clusters={:?} dead_tcus={:?} stuck_tcus={:?} dead_channels={:?}\n",
            f.dead_clusters,
            f.dead_tcus
                .iter()
                .map(|t| (t.cluster, t.tcu))
                .collect::<Vec<_>>(),
            f.stuck_tcus
                .iter()
                .map(|t| (t.cluster, t.tcu))
                .collect::<Vec<_>>(),
            f.dead_channels,
        ));
        s.push_str(&format!(
            "watchdog={} max_cycles={} mem_words={}\n",
            self.watchdog.map_or(0, |v| v),
            self.max_cycles.map_or(0, |v| v),
            self.mem_words,
        ));
        s
    }

    /// The content address of `(program, this config)`: FNV-1a over
    /// the program digest and [`SimConfig::cache_canon`]. This is the
    /// cache key `(program digest, config, seed, fault plan, tier)`
    /// from the service contract — bit-identical requests collide, and
    /// an engine change alone does not change the address.
    pub fn digest(&self, prog_digest: u64) -> u64 {
        let mut bytes = prog_digest.to_le_bytes().to_vec();
        bytes.extend_from_slice(self.cache_canon().as_bytes());
        fnv1a(&bytes)
    }
}

fn engine_canon(e: &Engine) -> String {
    match e {
        Engine::Reference => "reference".into(),
        Engine::FastForward => "fastforward".into(),
        Engine::Threaded { threads } => format!("threaded:{threads}"),
    }
}

fn tier_canon(t: &TranslationTier) -> &'static str {
    match t {
        TranslationTier::Interpreter => "interpreter",
        TranslationTier::Block => "block",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmt_isa::ProgramBuilder;

    fn prog() -> Program {
        let mut b = ProgramBuilder::new();
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn digest_ignores_engine_and_probe_but_not_tier_or_seed() {
        let arch = XmtConfig::xmt_4k().scaled_to(4);
        let base = SimConfig::new(&arch).mem_words(64);
        let pd = program_digest(&prog());
        let d0 = base.digest(pd);
        assert_eq!(
            base.clone().engine(Engine::Reference).digest(pd),
            d0,
            "engine must not change the content address"
        );
        assert_eq!(
            base.clone().probed(64).digest(pd),
            d0,
            "probe settings must not change the content address"
        );
        assert_ne!(
            base.clone().tier(TranslationTier::Interpreter).digest(pd),
            d0,
            "tier is part of the service contract key"
        );
        assert_ne!(
            base.clone().faults(FaultPlan::new(7)).digest(pd),
            d0,
            "fault seed is part of the key"
        );
        assert_ne!(base.clone().mem_words(128).digest(pd), d0);
        assert_ne!(
            base.digest(pd.wrapping_add(1)),
            d0,
            "program digest is part of the key"
        );
    }

    #[test]
    fn canon_is_stable_and_complete() {
        let arch = XmtConfig::xmt_8k().scaled_to(8);
        let c = SimConfig::new(&arch)
            .engine(Engine::Threaded { threads: 3 })
            .tier(TranslationTier::Interpreter)
            .faults(FaultPlan::new(9).dram_flips(1e-6, 1e-9).stuck_tcu(1, 2))
            .degraded(&[3], &[0])
            .watchdog(10_000)
            .max_cycles(1 << 20)
            .probed(128)
            .mem_words(4096);
        assert_eq!(c.canon(), c.clone().canon(), "encoding is deterministic");
        for needle in [
            "tier=interpreter",
            "engine=threaded:3",
            "seed=9",
            "stuck_tcus=[(1, 2)]",
            "dead_clusters=[3]",
            "watchdog=10000",
            "probe_interval=128",
            "mem_words=4096",
        ] {
            assert!(c.canon().contains(needle), "canon missing {needle}");
        }
    }

    #[test]
    fn builder_lowering_matches_hand_wiring() {
        let arch = XmtConfig::xmt_4k().scaled_to(4);
        let cfg = SimConfig::new(&arch)
            .engine(Engine::Reference)
            .mem_words(64);
        let a = cfg.builder(prog()).build().run().unwrap();
        let b = MachineBuilder::new(&arch, prog())
            .engine(Engine::Reference)
            .mem_words(64)
            .build()
            .run()
            .unwrap();
        assert_eq!(a.stats, b.stats);
    }
}
