//! Activity-based energy model.
//!
//! The paper's argument is ultimately about the *energy cost of data
//! movement* ("assuming that it is possible to reduce the energy cost
//! of data movement…", Section I). This module prices each activity
//! the simulator (or the phase model) counts — FLOPs, interconnect
//! word-hops, cache accesses, DRAM bytes, off-chip I/O bits — with
//! 22 nm-era per-event energies from the architecture literature, and
//! produces per-run energy breakdowns: joules per transform and
//! GFLOPS/W, comparable with the machine-level power model in
//! [`crate::physical`].

use crate::config::XmtConfig;
use crate::perfmodel::PhaseDemand;

/// Per-event energies in picojoules (22 nm class; scaled by the
/// config's technology node like logic power).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// One single-precision floating-point operation.
    pub pj_per_flop: f64,
    /// One integer/control instruction.
    pub pj_per_int_op: f64,
    /// Moving one 32-bit word across one NoC level.
    pub pj_per_hop_word: f64,
    /// One cache-bank access (32-bit word).
    pub pj_per_cache_access: f64,
    /// One byte moved across the DRAM interface (array access cost).
    pub pj_per_dram_byte: f64,
    /// Off-chip signalling energy per bit (config-dependent: copper
    /// serial vs photonics; see `crate::physical::io_pj_per_bit`).
    pub pj_per_io_bit: f64,
}

impl EnergyModel {
    /// Literature-calibrated defaults for a 22 nm node: ~10 pJ per SP
    /// FLOP, ~1 pJ per int op, ~0.6 pJ per word-hop, ~8 pJ per cache
    /// access, ~10 pJ/B DRAM array + the configuration's I/O energy.
    pub fn for_config(cfg: &XmtConfig) -> Self {
        let scale = match cfg.tech_nm {
            22 => 1.0,
            14 => 0.54,
            _ => 1.0,
        };
        let io = match cfg.name {
            "128k x2" => 0.6, // WDM photonics
            "128k x4" => 3.0, // fast MFC-cooled photonics
            _ => 15.0,        // copper / electrical serial
        };
        Self {
            pj_per_flop: 10.0 * scale,
            pj_per_int_op: 1.0 * scale,
            pj_per_hop_word: 0.6 * scale,
            pj_per_cache_access: 8.0 * scale,
            pj_per_dram_byte: 10.0,
            pj_per_io_bit: io,
        }
    }
}

/// Energy breakdown of one run or one modeled transform, in joules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Floating-point compute.
    pub compute_j: f64,
    /// Integer/control instructions.
    pub control_j: f64,
    /// On-chip interconnect traversal.
    pub noc_j: f64,
    /// Cache-bank accesses.
    pub cache_j: f64,
    /// DRAM array + off-chip signalling.
    pub dram_j: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total_j(&self) -> f64 {
        self.compute_j + self.control_j + self.noc_j + self.cache_j + self.dram_j
    }

    /// Fraction of energy spent moving data (NoC + cache + DRAM), the
    /// quantity the enabling technologies attack.
    pub fn data_movement_fraction(&self) -> f64 {
        let dm = self.noc_j + self.cache_j + self.dram_j;
        dm / self.total_j().max(f64::MIN_POSITIVE)
    }
}

/// Price the phase demands of a modeled transform on `cfg`.
pub fn phase_energy(cfg: &XmtConfig, demands: &[PhaseDemand]) -> EnergyBreakdown {
    let m = EnergyModel::for_config(cfg);
    let levels = cfg.topology().latency_cycles() as f64;
    let mut out = EnergyBreakdown::default();
    for d in demands {
        let words = d.icn_words_up + d.icn_words_down;
        out.compute_j += d.flops * m.pj_per_flop * 1e-12;
        // ~2 int ops (addressing/control) per word moved.
        out.control_j += 2.0 * words * m.pj_per_int_op * 1e-12;
        out.noc_j += words * levels * m.pj_per_hop_word * 1e-12;
        out.cache_j += words * m.pj_per_cache_access * 1e-12;
        out.dram_j += d.dram_bytes * (m.pj_per_dram_byte + 8.0 * m.pj_per_io_bit) * 1e-12;
    }
    out
}

/// Energy efficiency in GFLOPS per watt given a flop count, energy and
/// elapsed cycles at the configuration clock.
pub fn gflops_per_watt(cfg: &XmtConfig, flops: f64, energy: &EnergyBreakdown, cycles: f64) -> f64 {
    let seconds = cycles / (cfg.clock_ghz * 1e9);
    let watts = energy.total_j() / seconds;
    (flops / seconds / 1e9) / watts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::XmtConfig;
    use crate::perfmodel::PhaseDemand;
    use xmt_noc::TrafficClass;

    fn demand(flops: f64, words: f64, dram: f64) -> PhaseDemand {
        PhaseDemand {
            name: "t".into(),
            flops,
            icn_words_up: words / 2.0,
            icn_words_down: words / 2.0,
            dram_bytes: dram,
            traffic: TrafficClass::Hashed,
            parallelism: 1e9,
        }
    }

    #[test]
    fn data_movement_dominates_fft_energy() {
        // An FFT-like phase (low intensity) spends most energy moving
        // data — the paper's premise.
        let cfg = XmtConfig::xmt_4k();
        let e = phase_energy(&cfg, &[demand(12.75e9, 5.75e9, 24e9)]);
        assert!(
            e.data_movement_fraction() > 0.5,
            "{}",
            e.data_movement_fraction()
        );
    }

    #[test]
    fn compute_dominates_high_intensity_kernels() {
        let cfg = XmtConfig::xmt_4k();
        let e = phase_energy(&cfg, &[demand(1e12, 1e6, 1e6)]);
        assert!(e.data_movement_fraction() < 0.1);
    }

    #[test]
    fn photonics_cuts_offchip_energy() {
        // Same demands, different I/O technology: the photonic configs
        // pay far less per DRAM byte.
        let d = vec![demand(1e9, 1e9, 1e10)];
        let copper = phase_energy(&XmtConfig::xmt_64k(), &d);
        let photonic = phase_energy(&XmtConfig::xmt_128k_x2(), &d);
        assert!(
            photonic.dram_j < copper.dram_j / 2.0,
            "photonic {} vs copper {}",
            photonic.dram_j,
            copper.dram_j
        );
    }

    #[test]
    fn energy_power_consistency_with_physical_model() {
        // Average power implied by the 512³ FFT's energy and duration
        // must not exceed the machine's modeled peak power.
        for cfg in XmtConfig::paper_configs() {
            let proj = crate_project(&cfg);
            let e = phase_energy(&cfg, &proj.0);
            let seconds = proj.1 / (cfg.clock_ghz * 1e9);
            let avg_w = e.total_j() / seconds;
            let peak_w = crate::physical::summarize(&cfg).peak_power_w;
            assert!(
                avg_w < peak_w * 1.1,
                "{}: avg {avg_w:.0} W exceeds peak {peak_w:.0} W",
                cfg.name
            );
        }
    }

    /// Local stand-in for the higher-level crate's FFT demand builder
    /// (xmt-fft depends on xmt-sim, not the reverse): a 9-stage
    /// radix-8 512³ workload.
    fn crate_project(cfg: &XmtConfig) -> (Vec<PhaseDemand>, f64) {
        let n = 512f64 * 512.0 * 512.0;
        let demands: Vec<PhaseDemand> = (0..9)
            .map(|i| PhaseDemand {
                name: if i % 3 == 2 {
                    "rotation".into()
                } else {
                    format!("s{i}")
                },
                flops: n * if i % 3 == 2 { 7.5 } else { 12.75 },
                icn_words_up: 2.0 * n,
                icn_words_down: if i % 3 == 2 { 2.0 * n } else { 3.75 * n },
                dram_bytes: 24.0 * n,
                traffic: if i % 3 == 2 {
                    TrafficClass::Rotation
                } else {
                    TrafficClass::Hashed
                },
                parallelism: n / 8.0,
            })
            .collect();
        let (_, cycles) = crate::perfmodel::run_phases(cfg, &demands);
        (demands, cycles)
    }

    #[test]
    fn efficiency_improves_with_photonics() {
        let (d4, c4) = crate_project(&XmtConfig::xmt_4k());
        let e4 = phase_energy(&XmtConfig::xmt_4k(), &d4);
        let f4 = d4.iter().map(|d| d.flops).sum::<f64>();
        let eff4 = gflops_per_watt(&XmtConfig::xmt_4k(), f4, &e4, c4);

        let cfg = XmtConfig::xmt_128k_x4();
        let (dx, cx) = crate_project(&cfg);
        let ex = phase_energy(&cfg, &dx);
        let fx = dx.iter().map(|d| d.flops).sum::<f64>();
        let effx = gflops_per_watt(&cfg, fx, &ex, cx);
        assert!(
            effx > eff4,
            "photonic 14 nm config must be more efficient: {effx:.1} vs {eff4:.1} GF/W"
        );
    }
}
