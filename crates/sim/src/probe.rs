//! Cycle-resolved observability probes.
//!
//! A [`Probe`] is attached to a [`Machine`](crate::Machine) at build
//! time ([`MachineBuilder::build_probed`](crate::MachineBuilder::build_probed))
//! as a *generic parameter*, never a trait object. The disabled default
//! [`NoProbe`] has `ENABLED = false`, so every probe hook in the engine
//! hot paths sits behind `if P::ENABLED { ... }` and is constant-folded
//! away — the allocation-free hot path stays allocation-free and the
//! golden cycle counts and bench throughput are bit-for-bit those of an
//! unprobed machine (`bench_sim --probe --check` enforces this).
//!
//! Sampling contract: the machine calls [`Probe::record`] once per
//! elapsed interval of [`Probe::interval`] cycles, at the first moment
//! the clock reaches or passes the interval boundary, plus one final
//! flush when the run ends mid-interval. The [`SampleCtx`] passed in
//! borrows live component state (cumulative [`MachineStats`], DRAM
//! channels, memory modules, NoC counters, instantaneous stall masks),
//! so a probe computes per-interval deltas by keeping its own previous
//! snapshot. Because all three engines visit identical architectural
//! states at every cycle boundary, the sample stream is bit-identical
//! across engines (pinned by the `engine_agreement` proptest).
//!
//! [`IntervalProbe`] is the bundled implementation: a fixed-capacity
//! ring of plain-old-data rows allocated once at bind time.

use crate::config::XmtConfig;
use crate::machine::MachineStats;
use std::collections::HashMap;
use xmt_mem::{DramChannel, MemoryModule};
use xmt_noc::NetStats;

/// Instantaneous count of TCUs blocked at a sample boundary, split by
/// the issue-class reason recorded in the per-cluster `ClusterMasks`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockedTcus {
    /// Waiting on a scoreboarded register (outstanding load / in-flight
    /// FPU or MDU result).
    pub scoreboard: u64,
    /// Next instruction is FPU-class: blocked on a shared FPU port (or
    /// the scoreboard for its operands).
    pub fpu: u64,
    /// Next instruction is MDU-class: blocked on the shared MDU port.
    pub mdu: u64,
    /// Next instruction is LSU-class: blocked on an LSU port, NoC
    /// injection backpressure, or the outstanding-request cap while
    /// memory requests wait on DRAM.
    pub lsu: u64,
}

/// Everything a probe may read at a sample boundary. All references
/// borrow live machine state; copy what you need.
pub struct SampleCtx<'a> {
    /// The nominal interval boundary this sample accounts for. Strictly
    /// increasing by [`Probe::interval`] except for the final flush,
    /// where it equals the end-of-run cycle.
    pub boundary: u64,
    /// The machine clock when the sample was taken (`>= boundary`; the
    /// serial spawn broadcast can jump the clock past a boundary).
    pub cycle: u64,
    /// Index of the parallel section in progress, `None` in serial mode.
    pub spawn: Option<u64>,
    /// Cumulative run statistics.
    pub stats: &'a MachineStats,
    /// Request-network counters (cumulative).
    pub req_net: NetStats,
    /// Reply-network counters (cumulative).
    pub reply_net: NetStats,
    /// Flits currently inside both NoCs.
    pub noc_in_flight: u64,
    /// Memory transactions currently in flight end to end.
    pub txns_in_flight: u64,
    /// TCUs blocked right now, by cause.
    pub blocked: BlockedTcus,
    /// DRAM channels (cumulative `stats` plus instantaneous `pending`).
    pub channels: &'a [DramChannel],
    /// Memory modules (instantaneous `outstanding` queue depths).
    pub modules: &'a [MemoryModule],
}

impl SampleCtx<'_> {
    /// Total bytes moved over all DRAM channels so far.
    pub fn dram_bytes(&self) -> u64 {
        self.channels.iter().map(|c| c.stats.bytes).sum()
    }
}

/// Observer attached to a machine as a zero-cost generic parameter.
pub trait Probe {
    /// `false` compiles every probe hook out of the engine hot paths.
    const ENABLED: bool;

    /// Called once, before the first cycle, with the machine
    /// configuration — size ring buffers here so [`Probe::record`]
    /// never allocates.
    fn bind(&mut self, cfg: &XmtConfig) {
        let _ = cfg;
    }

    /// Sampling period in cycles (clamped to ≥ 1 by the machine).
    fn interval(&self) -> u64 {
        u64::MAX
    }

    /// Record one sample. Must not allocate: this runs inside the
    /// engine advance loops.
    fn record(&mut self, ctx: &SampleCtx<'_>);

    /// Re-prime the probe's delta baseline from restored cumulative
    /// state, *without* recording a row. Called once by
    /// [`MachineBuilder::resume_probed`](crate::MachineBuilder::resume_probed)
    /// after a checkpoint restore, so the first post-resume interval
    /// reports deltas relative to the checkpoint cycle rather than
    /// cumulative-from-machine-zero. Default: no-op (stateless probes
    /// need nothing).
    fn resync(&mut self, ctx: &SampleCtx<'_>) {
        let _ = ctx;
    }

    /// Called for every memory transaction issued from a parallel
    /// section, at the moment the request reaches its home memory
    /// module — the point that defines the global memory order.
    /// `spawn` is the parallel-section index (`None` would mean serial
    /// mode, but the MTCU touches memory directly and never routes
    /// through here), `tid` the issuing virtual thread. Default: no-op
    /// (and compiled out entirely when `ENABLED` is false).
    ///
    /// Unlike [`Probe::record`] this is a *correctness-oracle* hook,
    /// not a sampling hook: it is only intended for test probes such
    /// as [`RaceCheck`], which may allocate.
    fn mem_access(&mut self, spawn: Option<u64>, tid: u32, addr: u32, is_write: bool) {
        let _ = (spawn, tid, addr, is_write);
    }
}

/// The zero-cost disabled probe (the default machine type parameter).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoProbe;

impl Probe for NoProbe {
    const ENABLED: bool = false;

    fn record(&mut self, _ctx: &SampleCtx<'_>) {}
}

/// One materialized sample: per-interval deltas plus instantaneous
/// occupancy at the boundary. Produced by [`IntervalProbe::rows`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntervalRow {
    /// Nominal interval boundary (see [`SampleCtx::boundary`]).
    pub boundary: u64,
    /// Machine clock at the sample (see [`SampleCtx::cycle`]).
    pub cycle: u64,
    /// Parallel-section index, `None` in serial mode.
    pub spawn: Option<u64>,
    /// Instructions issued during the interval.
    pub instructions: u64,
    /// FP operations completed during the interval.
    pub flops: u64,
    /// Memory reads issued during the interval.
    pub mem_reads: u64,
    /// Memory writes issued during the interval.
    pub mem_writes: u64,
    /// Threads started during the interval.
    pub threads: u64,
    /// Scoreboard stall cycles accrued during the interval.
    pub stall_scoreboard: u64,
    /// FPU-port stall cycles accrued during the interval.
    pub stall_fpu: u64,
    /// MDU-port stall cycles accrued during the interval.
    pub stall_mdu: u64,
    /// LSU/NoC/memory stall cycles accrued during the interval.
    pub stall_lsu: u64,
    /// DRAM bytes moved during the interval.
    pub dram_bytes: u64,
    /// Flits injected into either NoC during the interval.
    pub noc_injected: u64,
    /// Flits delivered by either NoC during the interval.
    pub noc_delivered: u64,
    /// NoC injection rejections (backpressure) during the interval.
    pub noc_rejections: u64,
    /// Flits inside both NoCs at the boundary.
    pub noc_in_flight: u64,
    /// Memory transactions in flight at the boundary.
    pub txns_in_flight: u64,
    /// TCUs blocked at the boundary, by cause.
    pub blocked: BlockedTcus,
    /// Requests queued inside memory modules at the boundary.
    pub module_queue: u64,
    /// DRAM single-bit errors corrected by ECC during the interval.
    pub ecc_corrected: u64,
    /// DRAM double-bit errors detected by SECDED during the interval.
    pub ecc_detected: u64,
    /// NoC flits corrupted in flight during the interval.
    pub noc_corrupted: u64,
    /// NoC flit redeliveries (fault retries) during the interval.
    pub noc_retried: u64,
    /// Per-DRAM-channel busy cycles during the interval.
    pub channel_busy: Vec<u64>,
    /// Per-DRAM-channel queue depth at the boundary.
    pub channel_queue: Vec<u64>,
}

/// Fixed-size portion of a ring slot (`Copy`, so the ring is a flat
/// `Vec<RowFixed>` written in place — no per-sample allocation).
#[derive(Debug, Clone, Copy, Default)]
struct RowFixed {
    boundary: u64,
    cycle: u64,
    /// Spawn index, or `u64::MAX` for serial mode.
    spawn: u64,
    instructions: u64,
    flops: u64,
    mem_reads: u64,
    mem_writes: u64,
    threads: u64,
    stall_scoreboard: u64,
    stall_fpu: u64,
    stall_mdu: u64,
    stall_lsu: u64,
    dram_bytes: u64,
    noc_injected: u64,
    noc_delivered: u64,
    noc_rejections: u64,
    noc_in_flight: u64,
    txns_in_flight: u64,
    blocked: BlockedTcus,
    module_queue: u64,
    ecc_corrected: u64,
    ecc_detected: u64,
    noc_corrupted: u64,
    noc_retried: u64,
}

/// Cumulative counters as of the previous sample (for deltas).
#[derive(Debug, Clone, Copy, Default)]
struct Snapshot {
    stats: MachineStats,
    dram_bytes: u64,
    noc_injected: u64,
    noc_delivered: u64,
    noc_rejections: u64,
    ecc_corrected: u64,
    ecc_detected: u64,
    noc_corrupted: u64,
    noc_retried: u64,
}

/// Time-sliced counter probe: samples every `interval` cycles into a
/// fixed ring of `capacity` rows (oldest rows are overwritten once the
/// ring is full; [`IntervalProbe::dropped`] reports how many).
///
/// All storage is allocated once in [`Probe::bind`]; the per-channel
/// series live in flat `capacity × channels` arrays beside the ring.
#[derive(Debug, Clone)]
pub struct IntervalProbe {
    interval: u64,
    capacity: usize,
    nchan: usize,
    /// Samples recorded over the whole run (ring slot = `seq % capacity`).
    seq: u64,
    fixed: Vec<RowFixed>,
    chan_busy: Vec<u64>,
    chan_queue: Vec<u64>,
    last: Snapshot,
    last_chan_busy: Vec<u64>,
    /// Continuation mode ([`IntervalProbe::into_carried`]): the probe
    /// was extracted from a paused machine and is being re-attached to
    /// its checkpoint-restored successor, so `bind` preserves history
    /// and `resync` leaves the delta baseline at the last *emitted*
    /// boundary instead of re-priming it at the pause cycle.
    carried: bool,
}

impl IntervalProbe {
    /// Probe sampling every `interval` cycles, keeping the most recent
    /// `capacity` samples.
    pub fn new(interval: u64, capacity: usize) -> Self {
        assert!(interval > 0, "sampling interval must be positive");
        assert!(capacity > 0, "ring capacity must be positive");
        Self {
            interval,
            capacity,
            nchan: 0,
            seq: 0,
            fixed: Vec::new(),
            chan_busy: Vec::new(),
            chan_queue: Vec::new(),
            last: Snapshot::default(),
            last_chan_busy: Vec::new(),
            carried: false,
        }
    }

    /// Mark this probe as a *continuation* of an interrupted run: when
    /// re-attached via
    /// [`MachineBuilder::resume_probed`](crate::MachineBuilder::resume_probed),
    /// its ring, sample count and delta baseline survive `bind`, and
    /// `resync` is a no-op — the checkpoint restores every cumulative
    /// counter the baseline refers to, so the resumed sample stream is
    /// *bit-identical* to an uninterrupted run's, including the
    /// interval the pause split. (A fresh, non-carried probe resumed
    /// from a checkpoint instead starts its first delta at the
    /// checkpoint cycle.)
    ///
    /// Extract the probe from a paused machine with
    /// [`Machine::into_probe`](crate::Machine::into_probe).
    pub fn into_carried(mut self) -> Self {
        self.carried = true;
        self
    }

    /// Samples recorded over the whole run (including overwritten ones).
    pub fn samples(&self) -> u64 {
        self.seq
    }

    /// Samples lost to ring overwrite.
    pub fn dropped(&self) -> u64 {
        self.seq.saturating_sub(self.capacity as u64)
    }

    /// Cumulative statistics as of the last sample. After the machine's
    /// end-of-run flush this equals the run's final aggregates — the
    /// invariant the probe-correctness tests pin (and unlike summing
    /// [`IntervalProbe::rows`], it survives ring overwrite).
    pub fn totals(&self) -> MachineStats {
        self.last.stats
    }

    /// The retained samples, oldest first, materialized with their
    /// per-channel series.
    pub fn rows(&self) -> Vec<IntervalRow> {
        let first = self.seq.saturating_sub(self.capacity as u64);
        (first..self.seq)
            .map(|s| {
                let slot = (s % self.capacity as u64) as usize;
                let f = &self.fixed[slot];
                IntervalRow {
                    boundary: f.boundary,
                    cycle: f.cycle,
                    spawn: (f.spawn != u64::MAX).then_some(f.spawn),
                    instructions: f.instructions,
                    flops: f.flops,
                    mem_reads: f.mem_reads,
                    mem_writes: f.mem_writes,
                    threads: f.threads,
                    stall_scoreboard: f.stall_scoreboard,
                    stall_fpu: f.stall_fpu,
                    stall_mdu: f.stall_mdu,
                    stall_lsu: f.stall_lsu,
                    dram_bytes: f.dram_bytes,
                    noc_injected: f.noc_injected,
                    noc_delivered: f.noc_delivered,
                    noc_rejections: f.noc_rejections,
                    noc_in_flight: f.noc_in_flight,
                    txns_in_flight: f.txns_in_flight,
                    blocked: f.blocked,
                    module_queue: f.module_queue,
                    ecc_corrected: f.ecc_corrected,
                    ecc_detected: f.ecc_detected,
                    noc_corrupted: f.noc_corrupted,
                    noc_retried: f.noc_retried,
                    channel_busy: self.chan_busy[slot * self.nchan..(slot + 1) * self.nchan]
                        .to_vec(),
                    channel_queue: self.chan_queue[slot * self.nchan..(slot + 1) * self.nchan]
                        .to_vec(),
                }
            })
            .collect()
    }
}

/// A same-word, cross-thread conflict observed by [`RaceCheck`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conflict {
    /// Parallel-section index the conflict occurred in.
    pub spawn: u64,
    /// The contested word address.
    pub addr: u32,
    /// Thread whose access reached the word's home module first.
    pub first_tid: u32,
    /// Thread whose access completed the conflict.
    pub second_tid: u32,
    /// True when the earlier access was a write.
    pub first_is_write: bool,
    /// True when the later access was a write.
    pub second_is_write: bool,
}

/// Which threads have touched one word within the current spawn.
#[derive(Debug, Clone, Copy, Default)]
struct WordState {
    writer: Option<u32>,
    reader: Option<u32>,
    /// One conflict per word is enough evidence; don't flood.
    reported: bool,
}

/// Dynamic happens-before oracle for the static race detector in
/// `xmt-verify`: records, per parallel section, the first writer and
/// first reader of every touched word in the order requests arrive at
/// their home memory modules (the machine's definition of memory
/// order), and materializes a [`Conflict`] whenever two *distinct*
/// threads touch the same word and at least one of them writes.
///
/// Within a spawn there is no ordering between threads, so any such
/// pair is a data race *witnessed on this execution* — the oracle has
/// no false positives, and a static `race` finding it cannot reproduce
/// is either input-dependent or a conservative ⊤-widening. Word state
/// resets at each spawn boundary: the `spawn`/`join` barrier orders
/// everything across sections.
///
/// Test-only by design: it allocates per touched word and therefore
/// perturbs nothing it measures (the functional memory order is
/// engine-invariant), but it is not part of the zero-cost sampling
/// path and should not be attached to benchmark runs.
#[derive(Debug, Clone, Default)]
pub struct RaceCheck {
    cur_spawn: Option<u64>,
    words: HashMap<u32, WordState>,
    conflicts: Vec<Conflict>,
}

impl RaceCheck {
    /// A fresh oracle with no observations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Every conflict observed, in memory order.
    pub fn conflicts(&self) -> &[Conflict] {
        &self.conflicts
    }

    /// Number of conflicts observed (at most one per word per spawn).
    pub fn conflict_count(&self) -> usize {
        self.conflicts.len()
    }
}

impl Probe for RaceCheck {
    const ENABLED: bool = true;

    fn record(&mut self, _ctx: &SampleCtx<'_>) {}

    fn mem_access(&mut self, spawn: Option<u64>, tid: u32, addr: u32, is_write: bool) {
        let Some(spawn) = spawn else {
            return; // serial mode: single-threaded by construction
        };
        if self.cur_spawn != Some(spawn) {
            self.words.clear();
            self.cur_spawn = Some(spawn);
        }
        let w = self.words.entry(addr).or_default();
        let prior = match (w.writer, w.reader) {
            // A prior *write* by another thread conflicts with
            // anything; a prior read only conflicts with a write.
            (Some(pw), _) if pw != tid => Some((pw, true)),
            (_, Some(pr)) if pr != tid && is_write => Some((pr, false)),
            _ => None,
        };
        if let Some((first_tid, first_is_write)) = prior {
            if !w.reported {
                w.reported = true;
                self.conflicts.push(Conflict {
                    spawn,
                    addr,
                    first_tid,
                    second_tid: tid,
                    first_is_write,
                    second_is_write: is_write,
                });
            }
        }
        if is_write {
            w.writer.get_or_insert(tid);
        } else {
            w.reader.get_or_insert(tid);
        }
    }
}

impl Probe for IntervalProbe {
    const ENABLED: bool = true;

    fn bind(&mut self, cfg: &XmtConfig) {
        // A carried probe keeps its ring and baseline across the
        // rebuild — unless the machine geometry changed under it, in
        // which case continuation is meaningless and it re-initializes
        // like a fresh probe.
        if self.carried && self.nchan == cfg.dram_channels() && !self.fixed.is_empty() {
            return;
        }
        self.carried = false;
        self.nchan = cfg.dram_channels();
        self.fixed = vec![RowFixed::default(); self.capacity];
        self.chan_busy = vec![0; self.capacity * self.nchan];
        self.chan_queue = vec![0; self.capacity * self.nchan];
        self.last_chan_busy = vec![0; self.nchan];
        self.seq = 0;
        self.last = Snapshot::default();
    }

    fn interval(&self) -> u64 {
        self.interval
    }

    fn record(&mut self, ctx: &SampleCtx<'_>) {
        let slot = (self.seq % self.capacity as u64) as usize;
        let s = ctx.stats;
        let p = &self.last.stats;
        let dram_bytes = ctx.dram_bytes();
        let injected = ctx.req_net.injected + ctx.reply_net.injected;
        let delivered = ctx.req_net.delivered + ctx.reply_net.delivered;
        let rejections = ctx.req_net.inject_rejections + ctx.reply_net.inject_rejections;
        let ecc_corrected: u64 = ctx.channels.iter().map(|c| c.stats.ecc_corrected).sum();
        let ecc_detected: u64 = ctx.channels.iter().map(|c| c.stats.ecc_detected).sum();
        let corrupted = ctx.req_net.corrupted + ctx.reply_net.corrupted;
        let retried = ctx.req_net.retried + ctx.reply_net.retried;
        self.fixed[slot] = RowFixed {
            boundary: ctx.boundary,
            cycle: ctx.cycle,
            spawn: ctx.spawn.unwrap_or(u64::MAX),
            instructions: s.instructions - p.instructions,
            flops: s.flops - p.flops,
            mem_reads: s.mem_reads - p.mem_reads,
            mem_writes: s.mem_writes - p.mem_writes,
            threads: s.threads - p.threads,
            stall_scoreboard: s.stall_scoreboard - p.stall_scoreboard,
            stall_fpu: s.stall_fpu - p.stall_fpu,
            stall_mdu: s.stall_mdu - p.stall_mdu,
            stall_lsu: s.stall_lsu - p.stall_lsu,
            dram_bytes: dram_bytes - self.last.dram_bytes,
            noc_injected: injected - self.last.noc_injected,
            noc_delivered: delivered - self.last.noc_delivered,
            noc_rejections: rejections - self.last.noc_rejections,
            noc_in_flight: ctx.noc_in_flight,
            txns_in_flight: ctx.txns_in_flight,
            blocked: ctx.blocked,
            module_queue: ctx.modules.iter().map(|m| m.outstanding() as u64).sum(),
            ecc_corrected: ecc_corrected - self.last.ecc_corrected,
            ecc_detected: ecc_detected - self.last.ecc_detected,
            noc_corrupted: corrupted - self.last.noc_corrupted,
            noc_retried: retried - self.last.noc_retried,
        };
        let base = slot * self.nchan;
        for (k, ch) in ctx.channels.iter().enumerate() {
            self.chan_busy[base + k] = ch.stats.busy_cycles - self.last_chan_busy[k];
            self.chan_queue[base + k] = ch.pending() as u64;
            self.last_chan_busy[k] = ch.stats.busy_cycles;
        }
        self.last = Snapshot {
            stats: *s,
            dram_bytes,
            noc_injected: injected,
            noc_delivered: delivered,
            noc_rejections: rejections,
            ecc_corrected,
            ecc_detected,
            noc_corrupted: corrupted,
            noc_retried: retried,
        };
        self.seq += 1;
    }

    fn resync(&mut self, ctx: &SampleCtx<'_>) {
        // A carried probe's baseline already sits at the last *emitted*
        // boundary, and the checkpoint restored the cumulative counters
        // it refers to — re-priming at the pause cycle would drop the
        // pre-pause fraction of the split interval from the next row.
        if self.carried {
            return;
        }
        // Same cumulative reads as `record`, but only the baseline is
        // updated — no row is written and `seq` does not advance, so a
        // resumed stream continues exactly where the paused one left
        // off (per-interval deltas relative to the checkpoint).
        self.last = Snapshot {
            stats: *ctx.stats,
            dram_bytes: ctx.dram_bytes(),
            noc_injected: ctx.req_net.injected + ctx.reply_net.injected,
            noc_delivered: ctx.req_net.delivered + ctx.reply_net.delivered,
            noc_rejections: ctx.req_net.inject_rejections + ctx.reply_net.inject_rejections,
            ecc_corrected: ctx.channels.iter().map(|c| c.stats.ecc_corrected).sum(),
            ecc_detected: ctx.channels.iter().map(|c| c.stats.ecc_detected).sum(),
            noc_corrupted: ctx.req_net.corrupted + ctx.reply_net.corrupted,
            noc_retried: ctx.req_net.retried + ctx.reply_net.retried,
        };
        for (k, ch) in ctx.channels.iter().enumerate() {
            if k < self.last_chan_busy.len() {
                self.last_chan_busy[k] = ch.stats.busy_cycles;
            }
        }
    }
}
