//! Two-phase parallel cluster stepping (`Engine::Threaded`).
//!
//! Each simulated cycle splits into a *local compute* phase — worker
//! threads step disjoint contiguous blocks of clusters, recording every
//! memory-injection attempt instead of touching shared state — and a
//! *merge* phase on the main thread, which replays those attempts into
//! the request NoC in cluster order. Because thread-ID grants, NoC
//! arbitration, transaction tags and reply routing are all resolved in
//! the same deterministic order the serial engines use, the run is
//! bit-identical to `Engine::Reference` regardless of worker count or
//! OS scheduling (pinned by the golden cycle tests).
//!
//! Shared mutable state is confined to the main thread: workers own
//! their TCUs outright (moved out of `Machine::clusters` for the
//! duration of the run and moved back at shutdown) and see global
//! registers only as a per-spawn snapshot. Programs that mutate global
//! state from parallel mode (`ps`/`sspawn`) never reach this module —
//! `Machine::run` falls back to the fast-forward engine for them.
//!
//! The fast-forward optimization composes with threading: when a cycle
//! is quiet, the main thread combines the workers' per-cluster scans
//! with its own memory-event horizon and broadcasts a `Skip`, which
//! workers apply to their round-robin pointers and stall accruals.
//!
//! One intentional divergence: on a simulation *error* (out-of-bounds
//! access, pc overflow), the reference engine stops mid-cycle, leaving
//! later clusters unstepped; here, workers past the faulting one have
//! already stepped. The returned error is still the first in cluster
//! order, but machine state and statistics after a failed run may
//! differ from the reference engine's. Successful runs are identical.

use super::*;
use std::ops::Range;
use std::sync::mpsc::{channel, Receiver, Sender};

/// Immutable per-run parameters every worker needs.
#[derive(Clone, Copy)]
struct WorkerParams {
    ntcus: usize,
    fpus: usize,
    mdus: usize,
    lsus: usize,
    mem_len: usize,
    hash: AddressHash,
}

/// A matured reply to apply to a worker-owned TCU at the start of the
/// next cycle (equivalent to the reference engine applying it at the
/// end of the previous one: no issue logic runs in between).
struct Delivery {
    tcu: usize,
    kind: TxnKind,
    value: u32,
}

/// One memory-instruction injection attempt, replayed by the main
/// thread in cluster order. `accepted` is the worker's prediction
/// (first attempt of the cluster this cycle and the port had budget);
/// the replay asserts the real NoC agrees.
struct Attempt {
    cluster: usize,
    tcu: usize,
    addr: u32,
    kind: TxnKind,
    value: u32,
    module: usize,
    accepted: bool,
}

/// Per-worker scratch shuttled with every `Cmd::Step` and returned in
/// the reply: the main thread fills `grants`/`deliveries`/`budgets`,
/// the worker drains them and fills `attempts`/`scans`, and the whole
/// bundle rides back for reuse — after warm-up no per-cycle Vec is
/// allocated on either side. `Default` exists only so the main thread
/// can `mem::take` a bundle out of its pool while it is in flight.
#[derive(Default)]
struct StepBuffers {
    /// Contiguous thread-ID grant per owned cluster.
    grants: Vec<Range<u32>>,
    /// Replies to apply before issue, per owned cluster.
    deliveries: Vec<Vec<Delivery>>,
    /// Request-NoC injection budget per owned cluster.
    budgets: Vec<usize>,
    /// Memory-injection attempts recorded by the worker.
    attempts: Vec<Attempt>,
    /// Post-step scan per owned cluster, for grants and skip planning.
    scans: Vec<ClusterScan>,
}

enum Cmd {
    /// A parallel section begins: snapshot of the global registers and
    /// the section's entry pc.
    Spawn {
        gregs: [u32; NUM_GREGS],
        entry: usize,
    },
    /// Step every owned cluster one cycle.
    Step {
        cycle: u64,
        bufs: StepBuffers,
    },
    /// Fast-forward `n` quiet cycles: advance round-robin pointers and
    /// accrue the stall counters the last scan reported, in bulk.
    Skip {
        n: u64,
    },
    Stop,
}

struct StepReply {
    /// The shuttled scratch, with `attempts`/`scans` filled.
    bufs: StepBuffers,
    /// Statistics accumulated since the last reply (includes any
    /// skip-accrued stalls; `cycles` stays 0 — the main thread owns
    /// the clock).
    delta: MachineStats,
    /// First error in cluster order, if any.
    error: Option<SimError>,
}

enum Reply {
    Step(StepReply),
    /// Shutdown: the owned state moves back to the machine.
    Final {
        clusters: Vec<Vec<Tcu>>,
        rrs: Vec<usize>,
        cluster_instr: Vec<u64>,
        delta: MachineStats,
    },
}

/// Sum `d` into `into`, leaving the main-thread-owned fields
/// (`cycles`, `spawns`) alone.
fn add_stats(into: &mut MachineStats, d: &MachineStats) {
    into.instructions += d.instructions;
    into.flops += d.flops;
    into.mem_reads += d.mem_reads;
    into.mem_writes += d.mem_writes;
    into.threads += d.threads;
    into.stall_scoreboard += d.stall_scoreboard;
    into.stall_fpu += d.stall_fpu;
    into.stall_mdu += d.stall_mdu;
    into.stall_lsu += d.stall_lsu;
}

pub(super) fn run<P: Probe>(m: &mut Machine<P>, threads: usize) -> Result<RunReport, SimError> {
    let nclusters = m.cfg.clusters;
    let workers = if threads == 0 {
        rayon::current_num_threads()
    } else {
        threads
    }
    .clamp(1, nclusters);
    let params = WorkerParams {
        ntcus: m.cfg.tcus_per_cluster,
        fpus: m.cfg.fpus_per_cluster,
        mdus: m.cfg.mdus_per_cluster,
        lsus: m.cfg.lsus_per_cluster,
        mem_len: m.mem.len(),
        hash: m.hash,
    };
    let decoded = m.decoded.clone();

    // Contiguous cluster ranges, one per worker.
    let mut bounds: Vec<Range<usize>> = Vec::with_capacity(workers);
    let base = nclusters / workers;
    let extra = nclusters % workers;
    let mut lo = 0;
    for w in 0..workers {
        let hi = lo + base + usize::from(w < extra);
        bounds.push(lo..hi);
        lo = hi;
    }
    let owner_of: Vec<usize> = (0..workers)
        .flat_map(|w| std::iter::repeat_n(w, bounds[w].len()))
        .collect();

    // Move the TCU state out of the machine for the workers to own.
    let mut all_clusters = std::mem::take(&mut m.clusters).into_iter();
    let mut all_rr = std::mem::take(&mut m.cluster_rr).into_iter();
    let mut chunks: Vec<(Vec<Vec<Tcu>>, Vec<usize>)> = bounds
        .iter()
        .map(|r| {
            (
                all_clusters.by_ref().take(r.len()).collect(),
                all_rr.by_ref().take(r.len()).collect(),
            )
        })
        .collect();

    let mut cmd_txs: Vec<Sender<Cmd>> = Vec::with_capacity(workers);
    let mut reply_rxs: Vec<Receiver<Reply>> = Vec::with_capacity(workers);
    let (result, finals) = std::thread::scope(|s| {
        for (w, (chunk, rrs)) in chunks.drain(..).enumerate() {
            let (ctx, crx) = channel::<Cmd>();
            let (rtx, rrx) = channel::<Reply>();
            cmd_txs.push(ctx);
            reply_rxs.push(rrx);
            let lo = bounds[w].start;
            let decoded = &decoded;
            s.spawn(move || worker_main(crx, rtx, chunk, rrs, lo, decoded, params));
        }
        let result = main_loop(m, &cmd_txs, &reply_rxs, &bounds, &owner_of);
        for tx in &cmd_txs {
            let _ = tx.send(Cmd::Stop);
        }
        let mut finals = Vec::with_capacity(workers);
        for rx in &reply_rxs {
            loop {
                match rx.recv() {
                    Ok(Reply::Final {
                        clusters,
                        rrs,
                        cluster_instr,
                        delta,
                    }) => {
                        finals.push((clusters, rrs, cluster_instr, delta));
                        break;
                    }
                    Ok(Reply::Step(_)) => continue, // stale (error shutdown)
                    Err(_) => break,                // worker panicked; scope will propagate
                }
            }
        }
        (result, finals)
    });

    // Reassemble the machine (also on the error path, so the caller
    // can still inspect memory and statistics).
    for (w, (clusters, rrs, cluster_instr, delta)) in finals.into_iter().enumerate() {
        for (local, ci) in cluster_instr.into_iter().enumerate() {
            m.cluster_instr[bounds[w].start + local] += ci;
        }
        m.clusters.extend(clusters);
        m.cluster_rr.extend(rrs);
        add_stats(&mut m.stats, &delta);
    }
    result.map(|()| m.report())
}

fn main_loop<P: Probe>(
    m: &mut Machine<P>,
    cmd_txs: &[Sender<Cmd>],
    reply_rxs: &[Receiver<Reply>],
    bounds: &[Range<usize>],
    owner_of: &[usize],
) -> Result<(), SimError> {
    let nclusters = owner_of.len();
    let ntcus = m.cfg.tcus_per_cluster;
    // Post-cycle idle-TCU count per cluster (drives grant sizing) and
    // the latest per-cluster scans (drive skip planning). Before the
    // first spawn — and between sections — every non-disabled TCU is
    // idle (disabled TCUs are not idle capacity; the worker scans
    // exclude them too).
    let mut idle: Vec<u64> = (0..nclusters)
        .map(|c| ntcus as u64 - u64::from(m.masks[c].disabled.count_ones()))
        .collect();
    // Healthy (non-disabled) TCU capacity: `idle` sums to this when
    // every live TCU has drained, which is the barrier condition.
    let healthy_tcus: u64 = idle.iter().sum();
    let mut scans: Vec<ClusterScan> = Vec::new();
    // Replies awaiting application at the start of the next cycle,
    // grouped per worker, per owned cluster.
    let mut pending: Vec<Vec<Vec<Delivery>>> = bounds
        .iter()
        .map(|r| (0..r.len()).map(|_| Vec::new()).collect())
        .collect();
    let mut replies_buf: Vec<ReplyDelivery> = Vec::new();
    // One scratch bundle per worker, shuttled on every Step and
    // recovered from its reply (ping-pong: no per-cycle allocation).
    let mut bufs: Vec<StepBuffers> = bounds
        .iter()
        .map(|r| StepBuffers {
            grants: Vec::with_capacity(r.len()),
            deliveries: (0..r.len()).map(|_| Vec::new()).collect(),
            budgets: Vec::with_capacity(r.len()),
            attempts: Vec::new(),
            scans: Vec::with_capacity(r.len()),
        })
        .collect();

    loop {
        match m.mode {
            Mode::Finished => return Ok(()),
            Mode::Serial { .. } => {
                let instr_before = m.stats.instructions;
                m.step()?;
                m.check_progress()?;
                if let Mode::Parallel { .. } = m.mode {
                    // A spawn just executed: broadcast the section.
                    for tx in cmd_txs {
                        let _ = tx.send(Cmd::Spawn {
                            gregs: m.gregs,
                            entry: m.spawn_entry,
                        });
                    }
                } else if instr_before == m.stats.instructions {
                    // Quiet serial cycle (waiting out an instruction
                    // latency or a draining channel): fast-forward.
                    // Only the Serial arm of `fast_forward` can run
                    // here, which never touches the (empty) clusters.
                    m.fast_forward();
                    m.check_progress()?;
                }
            }
            Mode::Parallel { return_pc } => {
                m.cycle += 1;
                m.stats.cycles = m.cycle;
                // Phase 0 (main): size thread-ID grants from the idle
                // counts — exactly the TCUs the serial scan would have
                // activated, in the same global cluster order — and
                // sample each cluster's injection budget.
                for (w, r) in bounds.iter().enumerate() {
                    let mut b = std::mem::take(&mut bufs[w]);
                    b.grants.clear();
                    b.budgets.clear();
                    b.attempts.clear();
                    b.scans.clear();
                    for (local, c) in r.clone().enumerate() {
                        let avail = m.spawn_count - m.next_tid;
                        let g = (idle[c].min(avail as u64)) as u32;
                        b.grants.push(m.next_tid..m.next_tid + g);
                        m.next_tid += g;
                        b.budgets.push(m.req_net.inject_budget(c));
                        // Hand the accumulated replies over and keep
                        // the drained (capacity-retaining) Vec the
                        // worker emptied last cycle.
                        std::mem::swap(&mut b.deliveries[local], &mut pending[w][local]);
                    }
                    let _ = cmd_txs[w].send(Cmd::Step {
                        cycle: m.cycle,
                        bufs: b,
                    });
                }
                // Phase 1 runs in the workers; phase 2 (merge): replay
                // attempts in cluster order so tags and NoC arbitration
                // match the serial engines bit for bit.
                let instr_before = m.stats.instructions;
                let threads_before = m.stats.threads;
                scans.clear();
                let mut first_err: Option<SimError> = None;
                for (w, rx) in reply_rxs.iter().enumerate() {
                    let rep = match rx.recv() {
                        Ok(Reply::Step(rep)) => rep,
                        _ => {
                            return Err(SimError::Protocol {
                                what: "worker channel closed mid-cycle",
                                at_cycle: m.cycle,
                            });
                        }
                    };
                    add_stats(&mut m.stats, &rep.delta);
                    if first_err.is_none() {
                        for a in &rep.bufs.attempts {
                            // Peek-then-commit, exactly as the serial
                            // `issue_memory`: the tag stream only
                            // advances on accepted injections.
                            let tag = m.txns.peek_tag();
                            let accepted = m.req_net.try_inject(Flit {
                                src: a.cluster,
                                dst: a.module,
                                tag,
                            });
                            debug_assert_eq!(
                                accepted, a.accepted,
                                "worker mispredicted NoC acceptance"
                            );
                            if accepted {
                                m.txns.insert(Txn {
                                    cluster: a.cluster,
                                    tcu: a.tcu,
                                    addr: a.addr,
                                    kind: a.kind,
                                    value: a.value,
                                });
                            }
                        }
                        first_err = rep.error;
                    }
                    let base = scans.len();
                    for (local, &scan) in rep.bufs.scans.iter().enumerate() {
                        idle[base + local] = scan.idle;
                        scans.push(scan);
                    }
                    bufs[w] = rep.bufs;
                }
                if let Some(e) = first_err {
                    // `addr_of` faults surface from workers without a
                    // clock; stamp them with the merge-side cycle.
                    return Err(e.stamped(m.cycle));
                }
                let total_active: u64 = healthy_tcus - idle.iter().sum::<u64>();
                // Phase 3: the memory system, exactly as in the serial
                // engines; matured replies are routed to the worker
                // owning the target cluster for the next cycle.
                replies_buf.clear();
                m.step_memory_system_collect(&mut replies_buf)?;
                let mut pending_count = 0usize;
                for r in replies_buf.drain(..) {
                    let w = owner_of[r.cluster];
                    let local = r.cluster - bounds[w].start;
                    pending[w][local].push(Delivery {
                        tcu: r.tcu,
                        kind: r.kind,
                        value: r.value,
                    });
                    pending_count += 1;
                }
                if total_active == 0 {
                    m.maybe_finish_spawn_drained(return_pc);
                }
                m.check_progress()?;
                // Fast-forward: quiet cycle, no replies about to land,
                // nothing issuable and no thread to activate → jump to
                // the next event. Stall accrual and round-robin
                // advance happen worker-side from the same scans.
                let quiet =
                    instr_before == m.stats.instructions && threads_before == m.stats.threads;
                if quiet && pending_count == 0 && matches!(m.mode, Mode::Parallel { .. }) {
                    // Same watchdog cap as `fast_forward`: the skip
                    // may not leap past the cycle on which the
                    // watchdog would fire (a stuck TCU looks
                    // permanently quiet).
                    let mut horizon = (m.max_cycles + 1).min(m.watchdog_horizon());
                    let mut can_skip = true;
                    for scan in &scans {
                        if scan.issue_next || (scan.idle > 0 && m.next_tid < m.spawn_count) {
                            can_skip = false;
                            break;
                        }
                        horizon = horizon.min(scan.min_busy);
                    }
                    if can_skip {
                        if let Some(e) = m.memory_next_event() {
                            horizon = horizon.min(e);
                        }
                        if horizon > m.cycle + 1 {
                            let n = horizon - (m.cycle + 1);
                            for tx in cmd_txs {
                                let _ = tx.send(Cmd::Skip { n });
                            }
                            m.req_net.skip_idle(n);
                            m.reply_net.skip_idle(n);
                            for &mm in &m.active_modules {
                                m.modules[mm].skip_idle(n);
                            }
                            for &ch in &m.active_channels {
                                m.channels[ch].skip_idle(n);
                            }
                            m.mem_clock += n;
                            m.cycle += n;
                            m.stats.cycles = m.cycle;
                            m.check_progress()?;
                        }
                    }
                }
            }
        }
    }
}

fn worker_main(
    rx: Receiver<Cmd>,
    tx: Sender<Reply>,
    mut clusters: Vec<Vec<Tcu>>,
    mut rrs: Vec<usize>,
    lo: usize,
    decoded: &DecodedProgram,
    p: WorkerParams,
) {
    let mut gregs = [0u32; NUM_GREGS];
    let mut entry = 0usize;
    let mut cluster_instr = vec![0u64; clusters.len()];
    // Stats accumulated since the last Step reply (skip accruals land
    // here between replies).
    let mut pending = MachineStats::default();
    // (blocked_scoreboard, blocked_lsu) from the last scan, consumed
    // by Skip for bulk stall accrual.
    let mut last_blocked: Vec<(u64, u64)> = vec![(0, 0); clusters.len()];
    loop {
        match rx.recv() {
            Ok(Cmd::Spawn { gregs: g, entry: e }) => {
                gregs = g;
                entry = e;
            }
            Ok(Cmd::Step { cycle, mut bufs }) => {
                let mut delta = std::mem::take(&mut pending);
                let mut error = None;
                for (local, ds) in bufs.deliveries.iter_mut().enumerate() {
                    for d in ds.drain(..) {
                        let tcu = &mut clusters[local][d.tcu];
                        match d.kind {
                            TxnKind::LoadI(rd) => {
                                tcu.rf.write_i(rd, d.value);
                                tcu.pend_i &= !(1u32 << rd.index());
                            }
                            TxnKind::LoadF(fd) => {
                                tcu.rf.write_f(fd, f32::from_bits(d.value));
                                tcu.pend_f &= !(1u32 << fd.index());
                            }
                            TxnKind::Store => {}
                        }
                        tcu.outstanding -= 1;
                        if tcu.cls == IssueClass::Scoreboard {
                            reclassify(tcu, decoded);
                        }
                    }
                }
                for local in 0..clusters.len() {
                    if error.is_none() {
                        let mut grant = bufs.grants[local].clone();
                        let mut budget = bufs.budgets[local];
                        if let Err(e) = step_cluster_local(
                            &mut clusters[local],
                            &mut rrs[local],
                            &mut grant,
                            &mut budget,
                            cycle,
                            lo + local,
                            &gregs,
                            entry,
                            decoded,
                            p,
                            &mut bufs.attempts,
                            &mut delta,
                            &mut cluster_instr[local],
                        ) {
                            error = Some(e);
                        }
                    }
                    let scan = scan_cluster::<true>(&clusters[local], cycle + 1);
                    last_blocked[local] = (scan.blocked_scoreboard, scan.blocked_lsu);
                    bufs.scans.push(scan);
                }
                if tx
                    .send(Reply::Step(StepReply { bufs, delta, error }))
                    .is_err()
                {
                    return; // main thread gone
                }
            }
            Ok(Cmd::Skip { n }) => {
                let adv = (n % p.ntcus as u64) as usize;
                for (local, rr) in rrs.iter_mut().enumerate() {
                    *rr = (*rr + adv) % p.ntcus;
                    pending.stall_scoreboard += n * last_blocked[local].0;
                    pending.stall_lsu += n * last_blocked[local].1;
                }
            }
            Ok(Cmd::Stop) | Err(_) => {
                let _ = tx.send(Reply::Final {
                    clusters,
                    rrs,
                    cluster_instr,
                    delta: pending,
                });
                return;
            }
        }
    }
}

/// Worker-side mirror of `Machine::step_cluster` + `issue_memory`.
/// Must stay line-for-line equivalent in issue order, budget handling
/// and statistics — the golden cycle tests pin the equivalence. The
/// differences: thread IDs come from the pre-sized grant instead of
/// the shared counter, and memory instructions record an `Attempt`
/// (with a predicted accept/reject) instead of injecting.
#[allow(clippy::too_many_arguments)]
fn step_cluster_local(
    cluster: &mut [Tcu],
    rr: &mut usize,
    grant: &mut Range<u32>,
    inject_budget: &mut usize,
    cycle: u64,
    global_c: usize,
    gregs: &[u32; NUM_GREGS],
    entry: usize,
    decoded: &DecodedProgram,
    p: WorkerParams,
    attempts: &mut Vec<Attempt>,
    acc: &mut MachineStats,
    cluster_instr: &mut u64,
) -> Result<(), SimError> {
    let instr_at_entry = acc.instructions;
    let ntcus = p.ntcus;
    let mut fpu_budget = p.fpus;
    let mut mdu_budget = p.mdus;
    let mut lsu_budget = p.lsus;
    let start = *rr;
    *rr = (start + 1) % ntcus;

    // Round-robin order without the per-TCU `% ntcus` — mirror of the
    // `step_cluster` loop shape.
    for t in (start..ntcus).chain(0..start) {
        let tcu = &mut cluster[t];
        if !tcu.active {
            if tcu.disabled {
                continue;
            }
            // The grant is this cluster's contiguous slice of the
            // global thread-ID counter, sized to its idle-TCU count
            // (which already excludes disabled TCUs).
            if grant.start < grant.end {
                let tid = grant.start;
                grant.start += 1;
                tcu.active = true;
                tcu.rf = RegFile::new(tid);
                tcu.pc = entry;
                tcu.busy_until = 0;
                tcu.pend_i = 0;
                tcu.pend_f = 0;
                reclassify(tcu, decoded);
                acc.threads += 1;
            } else {
                continue;
            }
        }
        if tcu.busy_until > cycle {
            continue;
        }
        // Stuck-at TCUs hold their thread and never issue (mirror of
        // `step_cluster`; the watchdog detects the hang).
        if tcu.stuck {
            continue;
        }
        match tcu.cls {
            IssueClass::BadPc => {
                return Err(SimError::PcOutOfRange {
                    pc: tcu.pc,
                    at_cycle: cycle,
                });
            }
            IssueClass::Scoreboard => {
                acc.stall_scoreboard += 1;
            }
            IssueClass::Alu => {
                let d = decoded.fetch(tcu.pc);
                let ok = exec_compute(&d.instr, &mut tcu.rf, gregs);
                debug_assert!(ok, "ALU-class instruction must be compute-executable");
                tcu.pc += 1;
                reclassify(tcu, decoded);
                acc.instructions += 1;
            }
            IssueClass::Fpu => {
                if fpu_budget == 0 {
                    acc.stall_fpu += 1;
                    continue;
                }
                fpu_budget -= 1;
                let d = decoded.fetch(tcu.pc);
                let ok = exec_compute(&d.instr, &mut tcu.rf, gregs);
                debug_assert!(ok);
                tcu.busy_until = cycle + FPU_LATENCY;
                tcu.pc += 1;
                reclassify(tcu, decoded);
                acc.instructions += 1;
                acc.flops += 1;
            }
            IssueClass::Mdu => {
                if mdu_budget == 0 {
                    acc.stall_mdu += 1;
                    continue;
                }
                mdu_budget -= 1;
                let d = decoded.fetch(tcu.pc);
                let ok = exec_compute(&d.instr, &mut tcu.rf, gregs);
                debug_assert!(ok);
                tcu.busy_until = cycle + MDU_LATENCY;
                tcu.pc += 1;
                reclassify(tcu, decoded);
                acc.instructions += 1;
            }
            IssueClass::Lsu => {
                if lsu_budget == 0 {
                    acc.stall_lsu += 1;
                    continue;
                }
                if tcu.outstanding >= MAX_OUTSTANDING {
                    acc.stall_lsu += 1;
                    continue;
                }
                // Mirror of `issue_memory`: address/kind first (the
                // bounds fault precedes the injection attempt), then
                // predict acceptance from the sampled budget — exact,
                // because both NoCs accept at most one injection per
                // source per cycle and refuse solely on the
                // backpressure the budget reported.
                let pc = tcu.pc;
                let ins = decoded.fetch(pc).instr;
                let (addr, kind, value) = match ins {
                    Instr::Lw { rd, base, off } => (
                        addr_of(pc, tcu.rf.read_i(base), off, p.mem_len)?,
                        TxnKind::LoadI(rd),
                        0,
                    ),
                    Instr::Flw { fd, base, off } => (
                        addr_of(pc, tcu.rf.read_i(base), off, p.mem_len)?,
                        TxnKind::LoadF(fd),
                        0,
                    ),
                    Instr::Sw { rs, base, off } => (
                        addr_of(pc, tcu.rf.read_i(base), off, p.mem_len)?,
                        TxnKind::Store,
                        tcu.rf.read_i(rs),
                    ),
                    Instr::Fsw { fs, base, off } => (
                        addr_of(pc, tcu.rf.read_i(base), off, p.mem_len)?,
                        TxnKind::Store,
                        tcu.rf.read_f(fs).to_bits(),
                    ),
                    _ => unreachable!("LSU unit on non-memory instruction"),
                };
                let module = p.hash.module_of(addr as u32);
                let accepted = *inject_budget > 0;
                if accepted {
                    *inject_budget -= 1;
                }
                attempts.push(Attempt {
                    cluster: global_c,
                    tcu: t,
                    addr: addr as u32,
                    kind,
                    value,
                    module,
                    accepted,
                });
                lsu_budget -= 1;
                if !accepted {
                    // NoC refused: the attempt still consumed the slot.
                    acc.stall_lsu += 1;
                    continue;
                }
                tcu.outstanding += 1;
                match kind {
                    TxnKind::LoadI(rd) => {
                        if rd.index() != 0 {
                            tcu.pend_i |= 1 << rd.index();
                        }
                        acc.mem_reads += 1;
                    }
                    TxnKind::LoadF(fd) => {
                        tcu.pend_f |= 1 << fd.index();
                        acc.mem_reads += 1;
                    }
                    TxnKind::Store => {
                        acc.mem_writes += 1;
                    }
                }
                tcu.pc += 1;
                reclassify(tcu, decoded);
                acc.instructions += 1;
            }
            IssueClass::Branch => {
                let pc = tcu.pc;
                match decoded.fetch(pc).instr {
                    Instr::Branch {
                        cond,
                        rs1,
                        rs2,
                        target,
                    } => {
                        let taken = eval_branch(cond, tcu.rf.read_i(rs1), tcu.rf.read_i(rs2));
                        tcu.pc = if taken { target } else { pc + 1 };
                    }
                    Instr::Jump { target } => tcu.pc = target,
                    _ => unreachable!(),
                }
                reclassify(tcu, decoded);
                acc.instructions += 1;
            }
            IssueClass::Ps => {
                // `Machine::run` routes ps/sspawn programs to the
                // fast-forward engine; they cannot reach a worker.
                unreachable!("global-state op in threaded worker")
            }
            IssueClass::Join => {
                if tcu.outstanding > 0 {
                    continue;
                }
                tcu.active = false;
                acc.instructions += 1;
            }
            IssueClass::Nop => {
                tcu.pc += 1;
                reclassify(tcu, decoded);
                acc.instructions += 1;
            }
            IssueClass::Illegal => {
                let pc = tcu.pc;
                return Err(match decoded.fetch(pc).instr {
                    Instr::Spawn { .. } => SimError::BadInstruction {
                        pc,
                        what: "nested spawn",
                        at_cycle: cycle,
                    },
                    Instr::Halt => SimError::BadInstruction {
                        pc,
                        what: "halt in parallel mode",
                        at_cycle: cycle,
                    },
                    _ => SimError::BadInstruction {
                        pc,
                        what: "instruction illegal in parallel mode",
                        at_cycle: cycle,
                    },
                });
            }
        }
    }
    *cluster_instr += acc.instructions - instr_at_entry;
    Ok(())
}
