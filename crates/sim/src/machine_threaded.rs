//! Sharded parallel advance loop (`Engine::Threaded`).
//!
//! The machine is partitioned into *shards*: every cluster (with its
//! TCUs, round-robin pointer and issue scratch) and every memory
//! module lives in its own padded cell, and a pool of persistent
//! workers claims cells from a per-cycle work list with an atomic
//! cursor — work-stealing restricted to the **active-cluster list**,
//! so clusters with no running threads are never touched (the
//! reference engine walks every cluster every cycle; here an idle
//! shard costs nothing, not even a cache line).
//!
//! Synchronization is epoch-based, not message-based: the coordinator
//! publishes a command (step clusters / step modules / stop) by
//! bumping an epoch counter, participates in the claim loop itself,
//! and spin-waits for the workers' done counter — two atomic waves per
//! stepped cycle instead of the two mpsc round trips per worker the
//! previous engine paid (which cost it a ~10x slowdown at small
//! cluster counts). Quiet cycles do not step shards at all: the
//! coordinator scans the active shards — lazily, only once a cycle
//! has proven quiet — folds the scans into the same fast-forward
//! horizon the `FastForward` engine computes, and jumps the clock in
//! bulk, so barriers are amortized across entire memory-latency
//! stretches. With one participant (the resolved default when the
//! host has one CPU) the same loop runs inline with no
//! synchronization at all, and memory instructions inject straight
//! into the NoC instead of going through the record/replay path.
//!
//! Bit-identity with `Engine::Reference` is preserved by
//! re-serializing every globally-ordered decision on the coordinator:
//! thread-ID grants are sized in global cluster order before each
//! cycle, memory-injection attempts are recorded per shard and
//! replayed into the request NoC in cluster order (transaction tags
//! only advance on accepted injections, exactly as `issue_memory`),
//! and module steps — independent per module — are merged back in
//! module order before DRAM channels and reply routing run serially.
//! Round-robin pointers of unstepped clusters catch up lazily: the
//! pointer advances once per parallel cycle in every engine, so a
//! shard rejoining the work list (or the run ending) adds the number
//! of parallel cycles it sat out, modulo the cluster's TCU count.
//!
//! Programs that mutate global state from parallel mode
//! (`ps`/`sspawn`) and probed machines never reach this module —
//! `Machine::run` falls back to the fast-forward engine for them.
//!
//! One intentional divergence: on a simulation *error* (out-of-bounds
//! access, pc overflow), the reference engine stops mid-cycle, leaving
//! later clusters unstepped; here, every claimed shard of the faulting
//! cycle has already stepped. The returned error is still the first in
//! cluster order, but machine state and statistics after a failed run
//! may differ from the reference engine's. Successful runs are
//! identical.

use super::*;
use std::cell::UnsafeCell;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;
use xmt_isa::block::{MicroOp, UopKind};

/// Shard-side trace fetch: `None` selects the interpreter path —
/// either the tier is off or the slot is cold (the latter cannot
/// happen after `lower_all`, but the fallback keeps every seam safe).
#[inline(always)]
fn fetch_uop(trace: Option<&TraceCache>, pc: usize) -> Option<MicroOp> {
    let u = trace?.fetch(pc);
    (u.kind != UopKind::Cold).then_some(u)
}

/// Spin iterations before a waiting worker parks (the coordinator's
/// inter-epoch turnaround is usually far shorter than this).
const SPIN_ROUNDS: u32 = 1 << 12;
/// Minimum active-module count before the module-step stage is worth
/// an extra epoch (below it, the coordinator steps modules inline).
const MEM_PAR_MIN: usize = 8;

/// Immutable per-run parameters every participant needs.
#[derive(Clone, Copy)]
struct WorkerParams {
    ntcus: usize,
    fpus: usize,
    mdus: usize,
    lsus: usize,
    mem_len: usize,
    hash: AddressHash,
}

/// A matured reply to apply to a shard's TCU at the start of the next
/// cycle (equivalent to the reference engine applying it at the end of
/// the previous one: no issue logic runs in between).
struct Delivery {
    tcu: usize,
    kind: TxnKind,
    value: u32,
}

/// One memory-instruction injection attempt, replayed by the
/// coordinator in cluster order. `accepted` is the shard's prediction
/// (the port had budget); the replay asserts the real NoC agrees.
struct Attempt {
    tcu: usize,
    addr: u32,
    kind: TxnKind,
    value: u32,
    module: usize,
    accepted: bool,
}

/// One cluster shard: the TCU state moved out of the machine for the
/// run, plus everything a participant needs to step it and everything
/// the coordinator reads back afterwards. Padded so two shards never
/// share a cache line.
struct ClusterShard {
    tcus: Vec<Tcu>,
    /// The cluster's issue masks, moved out of the machine together
    /// with the TCUs and maintained by the exact mutation paths
    /// `step_cluster` uses — the mask-driven visit order is what makes
    /// a shard step as cheap as a reference step.
    masks: ClusterMasks,
    rr: usize,
    /// Parallel-cycle count `rr` reflects (lazy catch-up).
    synced: u64,
    /// Instructions issued by this cluster (merged at shutdown).
    instr: u64,
    /// Contiguous thread-ID grant for this cycle.
    grant: Range<u32>,
    /// Grant size, kept for the coordinator's idle bookkeeping.
    granted: u64,
    /// Request-NoC injection budget sampled for this cycle.
    budget: usize,
    /// Threads that retired (`join`) this cycle.
    joined: u64,
    /// Trace entries via branch/jump resolution (merged at shutdown).
    trace_entries: u64,
    /// Replies to apply before issue.
    deliveries: Vec<Delivery>,
    /// Injection attempts recorded this cycle (record/replay path).
    attempts: Vec<Attempt>,
    /// First error this shard hit this cycle.
    error: Option<SimError>,
}

/// Per-module scratch for the parallel module-step stage.
#[derive(Default)]
struct ModuleShard {
    creqs: Vec<ChannelRequest>,
    resps: Vec<MemResp>,
}

/// What an epoch asks the participants to do.
#[derive(Clone, Copy)]
enum EpochCmd {
    /// Claim clusters from the work list and step them one cycle.
    /// `pcyc` is the parallel-cycle count before this cycle, for lazy
    /// round-robin catch-up.
    Clusters {
        cycle: u64,
        pcyc: u64,
    },
    /// Claim modules from the work list and step each one memory
    /// cycle into its [`ModuleShard`].
    Modules,
    Stop,
}

/// Global-register snapshot and entry pc of the current section.
struct Section {
    gregs: [u32; NUM_GREGS],
    entry: usize,
}

#[repr(align(128))]
struct Pad<T>(UnsafeCell<T>);

/// State shared between the coordinator and the worker pool. All
/// `UnsafeCell` access follows the epoch protocol: the coordinator
/// owns every cell between epochs; during an epoch, each work-list
/// index is claimed by exactly one participant via `cursor`, and the
/// coordinator only touches cells through its own claim loop. The
/// `Release` epoch store / `Acquire` epoch load pair publishes the
/// coordinator's writes to workers; the `Release` done increment /
/// `Acquire` done load pair publishes the workers' writes back.
struct Shared<'a> {
    epoch: AtomicU64,
    done: AtomicU64,
    poisoned: AtomicBool,
    cmd: UnsafeCell<EpochCmd>,
    cursor: AtomicUsize,
    /// Cluster indices (Clusters epochs) or module indices (Modules
    /// epochs) to claim.
    work: UnsafeCell<Vec<u32>>,
    section: UnsafeCell<Section>,
    clusters: Vec<Pad<ClusterShard>>,
    modules: Vec<Pad<ModuleShard>>,
    /// Base pointer of `Machine::modules`, re-derived before every
    /// Modules epoch (never dereferenced outside one).
    modules_ptr: UnsafeCell<*mut MemoryModule>,
    /// Per-worker stat deltas for the current epoch.
    deltas: Vec<Pad<MachineStats>>,
    /// Per-worker parked flags (coordinator only unparks sleepers).
    parked: Vec<AtomicBool>,
    decoded: &'a DecodedProgram,
    /// Pre-lowered trace cache, shared read-only by every participant
    /// (`None` when the machine runs the interpreter tier).
    trace: Option<&'a TraceCache>,
    params: WorkerParams,
}

// SAFETY: every UnsafeCell is accessed under the epoch protocol
// documented on the struct; the raw module pointer is only
// dereferenced during a Modules epoch, at distinct indices per
// participant.
unsafe impl Sync for Shared<'_> {}

/// Signals epoch completion even if the participant's work panicked,
/// so the coordinator's spin-wait terminates (it then reports the
/// poisoning; the scope re-raises the panic at join).
struct DoneGuard<'a> {
    sh: &'a Shared<'a>,
}

impl Drop for DoneGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.sh.poisoned.store(true, Ordering::Release);
        }
        self.sh.done.fetch_add(1, Ordering::Release);
    }
}

/// Sum `d` into `into`, leaving the coordinator-owned fields
/// (`cycles`, `spawns`) alone.
fn add_stats(into: &mut MachineStats, d: &MachineStats) {
    into.instructions += d.instructions;
    into.flops += d.flops;
    into.mem_reads += d.mem_reads;
    into.mem_writes += d.mem_writes;
    into.threads += d.threads;
    into.stall_scoreboard += d.stall_scoreboard;
    into.stall_fpu += d.stall_fpu;
    into.stall_mdu += d.stall_mdu;
    into.stall_lsu += d.stall_lsu;
}

pub(super) fn run<P: Probe>(m: &mut Machine<P>, threads: usize) -> Result<RunReport, SimError> {
    debug_assert!(!P::ENABLED, "probed runs fall back before reaching here");
    let nclusters = m.cfg.clusters;
    let participants = if threads == 0 {
        rayon::current_num_threads()
    } else {
        threads
    }
    .clamp(1, nclusters);
    let spawned = participants - 1;
    let params = WorkerParams {
        ntcus: m.cfg.tcus_per_cluster,
        fpus: m.cfg.fpus_per_cluster,
        mdus: m.cfg.mdus_per_cluster,
        lsus: m.cfg.lsus_per_cluster,
        mem_len: m.mem.len(),
        hash: m.hash,
    };
    let decoded = m.decoded.clone();
    // Pre-lower every superblock so the shards' read-only fetches never
    // see a cold slot; the workers share one immutable cache.
    let trace: Option<TraceCache> = match m.trace.as_deref_mut() {
        Some(tc) => {
            tc.lower_all(&decoded);
            Some(tc.clone())
        }
        None => None,
    };

    // Move the TCU state (and the issue masks) out of the machine
    // into the shards.
    let healthy: Vec<u64> = m
        .masks
        .iter()
        .map(|mk| params.ntcus as u64 - u64::from(mk.disabled.count_ones()))
        .collect();
    let cluster_shards: Vec<Pad<ClusterShard>> = std::mem::take(&mut m.clusters)
        .into_iter()
        .zip(std::mem::take(&mut m.cluster_rr))
        .zip(std::mem::take(&mut m.masks))
        .map(|((tcus, rr), masks)| {
            Pad(UnsafeCell::new(ClusterShard {
                tcus,
                masks,
                rr,
                synced: 0,
                instr: 0,
                grant: 0..0,
                granted: 0,
                budget: 0,
                joined: 0,
                trace_entries: 0,
                deliveries: Vec::new(),
                attempts: Vec::new(),
                error: None,
            }))
        })
        .collect();

    let shared = Shared {
        epoch: AtomicU64::new(0),
        done: AtomicU64::new(0),
        poisoned: AtomicBool::new(false),
        cmd: UnsafeCell::new(EpochCmd::Stop),
        cursor: AtomicUsize::new(0),
        work: UnsafeCell::new(Vec::with_capacity(nclusters.max(m.modules.len()))),
        section: UnsafeCell::new(Section {
            gregs: [0; NUM_GREGS],
            entry: 0,
        }),
        clusters: cluster_shards,
        modules: (0..m.modules.len())
            .map(|_| Pad(UnsafeCell::new(ModuleShard::default())))
            .collect(),
        modules_ptr: UnsafeCell::new(std::ptr::null_mut()),
        deltas: (0..spawned)
            .map(|_| Pad(UnsafeCell::new(MachineStats::default())))
            .collect(),
        parked: (0..spawned).map(|_| AtomicBool::new(false)).collect(),
        decoded: &decoded,
        trace: trace.as_ref(),
        params,
    };

    let mut pcyc = 0u64;
    let result = std::thread::scope(|s| {
        let handles: Vec<_> = (0..spawned)
            .map(|w| {
                s.spawn({
                    let shared = &shared;
                    move || worker_main(shared, w)
                })
            })
            .collect();
        let worker_threads: Vec<std::thread::Thread> =
            handles.iter().map(|h| h.thread().clone()).collect();
        let mut pool = Pool {
            sh: &shared,
            worker_threads,
            done_target: 0,
        };
        let result = main_loop(m, &mut pool, &healthy, &mut pcyc);
        // Shut the pool down without waiting for the Stop epoch (a
        // panicked worker would never acknowledge it); the scope join
        // below is the real barrier and surfaces worker panics.
        pool.dispatch(EpochCmd::Stop, &mut MachineStats::default());
        result
    });

    // Reassemble the machine (also on the error path, so the caller
    // can still inspect memory and statistics). Round-robin pointers
    // catch up to the final parallel-cycle count here.
    let mut trace_entries = 0u64;
    for (c, cell) in shared.clusters.into_iter().enumerate() {
        let mut shard = cell.0.into_inner();
        let lag = (pcyc - shard.synced) % params.ntcus as u64;
        shard.rr = (shard.rr + lag as usize) % params.ntcus;
        m.clusters.push(shard.tcus);
        m.masks.push(shard.masks);
        m.cluster_rr.push(shard.rr);
        m.cluster_instr[c] += shard.instr;
        trace_entries += shard.trace_entries;
    }
    if let Some(tc) = m.trace.as_deref_mut() {
        tc.add_entries(trace_entries);
    }
    result.map(|()| m.report())
}

/// The epoch-dispatch half of the coordinator: publish a command,
/// participate in it, and wait for the pool.
struct Pool<'s, 'a> {
    sh: &'s Shared<'a>,
    worker_threads: Vec<std::thread::Thread>,
    done_target: u64,
}

impl Pool<'_, '_> {
    /// Publish `cmd`, run the coordinator's own claim loop, and leave
    /// the workers running theirs. Caller must `wait()` before
    /// touching any shard. The coordinator's stat delta accumulates
    /// into `delta`.
    fn dispatch(&mut self, cmd: EpochCmd, delta: &mut MachineStats) {
        let sh = self.sh;
        sh.cursor.store(0, Ordering::Relaxed);
        // SAFETY: coordinator owns the cells between epochs.
        unsafe { *sh.cmd.get() = cmd };
        if !self.worker_threads.is_empty() {
            sh.epoch.fetch_add(1, Ordering::Release);
            self.done_target += self.worker_threads.len() as u64;
            for (w, t) in self.worker_threads.iter().enumerate() {
                if sh.parked[w].load(Ordering::Acquire) {
                    t.unpark();
                }
            }
        }
        run_cmd(sh, cmd, delta);
    }

    /// Wait for every worker to finish the current epoch.
    fn wait(&self) -> Result<(), SimError> {
        let sh = self.sh;
        let mut spins = 0u32;
        while sh.done.load(Ordering::Acquire) < self.done_target {
            spins = spins.wrapping_add(1);
            if spins & 0x3FF == 0 {
                // Let workers run on oversubscribed hosts.
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        if sh.poisoned.load(Ordering::Acquire) {
            return Err(SimError::Protocol {
                what: "threaded worker panicked",
                at_cycle: 0,
            });
        }
        Ok(())
    }
}

fn worker_main(sh: &Shared<'_>, wid: usize) {
    let mut seen = 0u64;
    loop {
        // Wait for the next epoch: spin briefly, then park. A parked
        // worker is woken by the coordinator's targeted unpark; the
        // timeout only covers the benign race where the flag was read
        // before the store landed.
        let mut spins = 0u32;
        loop {
            let e = sh.epoch.load(Ordering::Acquire);
            if e != seen {
                seen = e;
                break;
            }
            spins += 1;
            if spins < SPIN_ROUNDS {
                std::hint::spin_loop();
            } else {
                sh.parked[wid].store(true, Ordering::Release);
                if sh.epoch.load(Ordering::Acquire) == seen {
                    std::thread::park_timeout(Duration::from_millis(1));
                }
                sh.parked[wid].store(false, Ordering::Relaxed);
            }
        }
        let guard = DoneGuard { sh };
        // SAFETY: published before the epoch bump; coordinator does
        // not write it again until after `wait()`.
        let cmd = unsafe { *sh.cmd.get() };
        let stop = matches!(cmd, EpochCmd::Stop);
        if !stop {
            let mut delta = MachineStats::default();
            run_cmd(sh, cmd, &mut delta);
            // SAFETY: this worker's own delta slot.
            unsafe { *sh.deltas[wid].0.get() = delta };
        }
        drop(guard);
        if stop {
            return;
        }
    }
}

/// The claim loop every participant (workers and coordinator) runs.
fn run_cmd(sh: &Shared<'_>, cmd: EpochCmd, delta: &mut MachineStats) {
    // SAFETY: work list is written by the coordinator before the epoch
    // and read-only during it.
    let work = unsafe { &*sh.work.get() };
    match cmd {
        EpochCmd::Clusters { cycle, pcyc } => loop {
            let i = sh.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= work.len() {
                break;
            }
            let c = work[i] as usize;
            // SAFETY: index `i` (hence cluster `c`) is claimed by
            // exactly one participant this epoch.
            let shard = unsafe { &mut *sh.clusters[c].0.get() };
            step_shard_recording(sh, shard, cycle, pcyc, delta);
        },
        EpochCmd::Modules => {
            // SAFETY: re-derived by the coordinator for this epoch.
            let base = unsafe { *sh.modules_ptr.get() };
            loop {
                let i = sh.cursor.fetch_add(1, Ordering::Relaxed);
                if i >= work.len() {
                    break;
                }
                let mm = work[i] as usize;
                // SAFETY: module `mm` and its shard are claimed by
                // exactly one participant this epoch; `base` points at
                // the live `Machine::modules` buffer, untouched by the
                // coordinator during the epoch.
                let module = unsafe { &mut *base.add(mm) };
                let ms = unsafe { &mut *sh.modules[mm].0.get() };
                module.step(&mut ms.creqs, &mut ms.resps);
            }
        }
        EpochCmd::Stop => {}
    }
}

/// Step one shard in record/replay mode: injection attempts land in
/// `shard.attempts` with a budget-predicted accept/reject for the
/// coordinator to replay in cluster order.
fn step_shard_recording(
    sh: &Shared<'_>,
    shard: &mut ClusterShard,
    cycle: u64,
    pcyc: u64,
    delta: &mut MachineStats,
) {
    let ClusterShard {
        tcus,
        masks,
        rr,
        synced,
        instr,
        grant,
        budget,
        joined,
        trace_entries,
        deliveries,
        attempts,
        error,
        ..
    } = shard;
    let mut sink = |tcu: usize, addr: u32, kind: TxnKind, value: u32, module: usize| {
        let accepted = *budget > 0;
        if accepted {
            *budget -= 1;
        }
        attempts.push(Attempt {
            tcu,
            addr,
            kind,
            value,
            module,
            accepted,
        });
        accepted
    };
    step_shard(
        sh,
        tcus,
        masks,
        rr,
        synced,
        instr,
        grant,
        joined,
        trace_entries,
        deliveries,
        error,
        &mut sink,
        cycle,
        pcyc,
        delta,
    );
}

/// Step one cluster shard one cycle: lazy round-robin catch-up, reply
/// application, and the issue loop. `sink` receives every memory
/// injection and reports acceptance.
#[allow(clippy::too_many_arguments)]
fn step_shard<F>(
    sh: &Shared<'_>,
    tcus: &mut [Tcu],
    masks: &mut ClusterMasks,
    rr: &mut usize,
    synced: &mut u64,
    instr: &mut u64,
    grant: &mut Range<u32>,
    joined: &mut u64,
    trace_entries: &mut u64,
    deliveries: &mut Vec<Delivery>,
    error: &mut Option<SimError>,
    sink: &mut F,
    cycle: u64,
    pcyc: u64,
    delta: &mut MachineStats,
) where
    F: FnMut(usize, u32, TxnKind, u32, usize) -> bool,
{
    let ntcus = sh.params.ntcus;
    let lag = (pcyc - *synced) % ntcus as u64;
    *rr = (*rr + lag as usize) % ntcus;
    *synced = pcyc + 1; // step_cluster_local advances rr once more
    for d in deliveries.drain(..) {
        let tcu = &mut tcus[d.tcu];
        match d.kind {
            TxnKind::LoadI(rd) => {
                tcu.rf.write_i(rd, d.value);
                tcu.pend_i &= !(1u32 << rd.index());
            }
            TxnKind::LoadF(fd) => {
                tcu.rf.write_f(fd, f32::from_bits(d.value));
                tcu.pend_f &= !(1u32 << fd.index());
            }
            TxnKind::Store => {}
        }
        tcu.outstanding -= 1;
        let bit = 1u64 << d.tcu;
        masks.at_cap &= !bit;
        if tcu.outstanding == 0 {
            masks.out_nz &= !bit;
        }
        // A cleared scoreboard bit can only unblock; other classes
        // are unaffected by replies.
        if tcu.cls == IssueClass::Scoreboard {
            reclassify_masked(tcu, masks, d.tcu, sh.decoded);
        }
    }
    // SAFETY: written by the coordinator before the epoch (at spawn
    // time), read-only during it.
    let section = unsafe { &*sh.section.get() };
    if let Err(e) = step_cluster_local(
        tcus,
        masks,
        rr,
        grant,
        joined,
        cycle,
        &section.gregs,
        section.entry,
        sh.decoded,
        sh.trace,
        trace_entries,
        sh.params,
        sink,
        delta,
        instr,
    ) {
        *error = Some(e);
    }
}

fn main_loop<P: Probe>(
    m: &mut Machine<P>,
    pool: &mut Pool<'_, '_>,
    healthy: &[u64],
    pcyc: &mut u64,
) -> Result<(), SimError> {
    let sh = pool.sh;
    let nclusters = healthy.len();
    let healthy_total: u64 = healthy.iter().sum();
    let inline = pool.worker_threads.is_empty();
    // Post-cycle idle-TCU count per cluster, maintained incrementally
    // from grants and joins (drives grant sizing and the active-work
    // decision — full scans only happen on quiet cycles). Before the
    // first spawn — and between sections — every non-disabled TCU is
    // idle.
    let mut idle: Vec<u64> = healthy.to_vec();
    let mut sum_idle: u64 = healthy_total;
    let mut replies_buf: Vec<ReplyDelivery> = Vec::new();
    // Coordinator-side copy of the active-cluster list: `sh.work` is
    // repurposed for module indices during Modules epochs, so the
    // merge and skip phases read this one.
    let mut active: Vec<u32> = Vec::with_capacity(nclusters);
    // Quiet-cycle scans of the active clusters (skip planning).
    let mut scans: Vec<ClusterScan> = Vec::with_capacity(nclusters);

    loop {
        match m.mode {
            Mode::Finished => return Ok(()),
            Mode::Serial { .. } => {
                let instr_before = m.stats.instructions;
                m.step()?;
                m.check_progress()?;
                if let Mode::Parallel { .. } = m.mode {
                    // A spawn just executed: publish the section for
                    // the shards to read on their next epoch.
                    // SAFETY: no epoch is in flight.
                    unsafe {
                        *sh.section.get() = Section {
                            gregs: m.gregs,
                            entry: m.spawn_entry,
                        };
                    }
                } else if instr_before == m.stats.instructions {
                    // Quiet serial cycle (waiting out an instruction
                    // latency or a draining channel): fast-forward.
                    // Only the Serial arm of `fast_forward` can run
                    // here, which never touches the (empty) clusters.
                    m.fast_forward();
                    m.check_progress()?;
                }
            }
            Mode::Parallel { return_pc } => {
                m.cycle += 1;
                m.stats.cycles = m.cycle;
                // Phase 0: build the active work list and size the
                // thread-ID grants from the idle counts — exactly the
                // TCUs the serial scan would have activated, in the
                // same global cluster order. A cluster joins the list
                // iff it has running TCUs or receives a grant; all
                // others are untouched this cycle.
                active.clear();
                for c in 0..nclusters {
                    let has_active = idle[c] < healthy[c];
                    let avail = (m.spawn_count - m.next_tid) as u64;
                    let g = if avail > 0 {
                        idle[c].min(avail) as u32
                    } else {
                        0
                    };
                    if !has_active && g == 0 {
                        continue;
                    }
                    // SAFETY: no epoch in flight; coordinator owns
                    // every cell.
                    let shard = unsafe { &mut *sh.clusters[c].0.get() };
                    shard.grant = m.next_tid..m.next_tid + g;
                    shard.granted = u64::from(g);
                    m.next_tid += g;
                    shard.joined = 0;
                    shard.error = None;
                    if !inline {
                        shard.budget = m.req_net.inject_budget(c);
                        shard.attempts.clear();
                    }
                    active.push(c as u32);
                }
                let instr_before = m.stats.instructions;
                let threads_before = m.stats.threads;
                let mut main_delta = MachineStats::default();
                let mut first_err: Option<SimError> = None;
                if inline {
                    // Phase 1+2, inline: the coordinator steps every
                    // active shard itself and injects directly — the
                    // sink is the exact `issue_memory` protocol, so no
                    // attempt recording or replay happens. Cluster
                    // order is the iteration order, and the first
                    // error stops the cycle just like the reference
                    // engine.
                    let txns = &mut m.txns;
                    let req_net = &mut m.req_net;
                    for &c in &active {
                        let c = c as usize;
                        // SAFETY: no workers exist; the coordinator
                        // owns every cell.
                        let shard = unsafe { &mut *sh.clusters[c].0.get() };
                        let ClusterShard {
                            tcus,
                            masks,
                            rr,
                            synced,
                            instr,
                            grant,
                            joined,
                            trace_entries,
                            deliveries,
                            error,
                            ..
                        } = shard;
                        let mut sink =
                            |tcu: usize, addr: u32, kind: TxnKind, value: u32, module: usize| {
                                let tag = txns.peek_tag();
                                let accepted = req_net.try_inject(Flit {
                                    src: c,
                                    dst: module,
                                    tag,
                                });
                                if accepted {
                                    txns.insert(Txn {
                                        cluster: c,
                                        tcu,
                                        addr,
                                        kind,
                                        value,
                                    });
                                }
                                accepted
                            };
                        step_shard(
                            sh,
                            tcus,
                            masks,
                            rr,
                            synced,
                            instr,
                            grant,
                            joined,
                            trace_entries,
                            deliveries,
                            error,
                            &mut sink,
                            m.cycle,
                            *pcyc,
                            &mut main_delta,
                        );
                        sum_idle += shard.joined;
                        sum_idle -= shard.granted;
                        idle[c] = idle[c] + shard.joined - shard.granted;
                        if let Some(e) = shard.error.take() {
                            first_err = Some(e);
                            break;
                        }
                    }
                    *pcyc += 1;
                    add_stats(&mut m.stats, &main_delta);
                } else {
                    {
                        // SAFETY: no epoch in flight.
                        let work = unsafe { &mut *sh.work.get() };
                        work.clear();
                        work.extend_from_slice(&active);
                    }
                    // Phase 1: step the shards (workers+coordinator).
                    pool.dispatch(
                        EpochCmd::Clusters {
                            cycle: m.cycle,
                            pcyc: *pcyc,
                        },
                        &mut main_delta,
                    );
                    pool.wait()?;
                    *pcyc += 1;
                    add_stats(&mut m.stats, &main_delta);
                    for d in &sh.deltas {
                        // SAFETY: epoch done; workers are waiting.
                        add_stats(&mut m.stats, unsafe { &*d.0.get() });
                    }
                    // Phase 2 (merge): replay attempts in cluster
                    // order so tags and NoC arbitration match the
                    // serial engines bit for bit, and fold the idle
                    // deltas back in.
                    for &c in &active {
                        let c = c as usize;
                        // SAFETY: epoch done; coordinator owns cells.
                        let shard = unsafe { &mut *sh.clusters[c].0.get() };
                        if first_err.is_none() {
                            for a in shard.attempts.drain(..) {
                                // Peek-then-commit, exactly as the
                                // serial `issue_memory`: the tag
                                // stream only advances on accepted
                                // injections.
                                let tag = m.txns.peek_tag();
                                let accepted = m.req_net.try_inject(Flit {
                                    src: c,
                                    dst: a.module,
                                    tag,
                                });
                                debug_assert_eq!(
                                    accepted, a.accepted,
                                    "shard mispredicted NoC acceptance"
                                );
                                if accepted {
                                    m.txns.insert(Txn {
                                        cluster: c,
                                        tcu: a.tcu,
                                        addr: a.addr,
                                        kind: a.kind,
                                        value: a.value,
                                    });
                                }
                            }
                            first_err = shard.error.take();
                        }
                        sum_idle += shard.joined;
                        sum_idle -= shard.granted;
                        idle[c] = idle[c] + shard.joined - shard.granted;
                    }
                }
                if let Some(e) = first_err {
                    // `addr_of` faults surface from shards without a
                    // clock; stamp them with the merge-side cycle.
                    return Err(e.stamped(m.cycle));
                }
                let total_active = healthy_total - sum_idle;
                // Phase 3: the memory system. Module steps are
                // independent per module, so a big enough active set
                // gets its own work-stealing epoch; everything with a
                // global order (request routing, DRAM channels, reply
                // injection) stays on the coordinator.
                replies_buf.clear();
                m.mem_route_requests()?;
                if !inline && m.active_modules.len() >= MEM_PAR_MIN {
                    {
                        // SAFETY: no epoch in flight.
                        let work = unsafe { &mut *sh.work.get() };
                        work.clear();
                        work.extend(m.active_modules.iter().map(|&mm| mm as u32));
                    }
                    // SAFETY: re-derive the buffer pointer for this
                    // epoch; the coordinator leaves `m.modules` alone
                    // until `wait()` returns.
                    unsafe { *sh.modules_ptr.get() = m.modules.as_mut_ptr() };
                    pool.dispatch(EpochCmd::Modules, &mut main_delta);
                    pool.wait()?;
                    // Merge in module order: responses to outboxes,
                    // channel requests into the serial creq stream.
                    let mut creqs = std::mem::take(&mut m.scratch_creqs);
                    for &mm in &m.active_modules {
                        // SAFETY: epoch done; coordinator owns cells.
                        let ms = unsafe { &mut *sh.modules[mm].0.get() };
                        for resp in ms.resps.drain(..) {
                            m.module_outbox[mm].push_back(resp.req.tag);
                            activate(&mut m.active_outboxes, &mut m.outbox_active, mm);
                        }
                        creqs.append(&mut ms.creqs);
                    }
                    m.scratch_creqs = creqs;
                    m.retire_inactive_modules();
                } else {
                    m.mem_step_modules();
                }
                m.mem_drain_collect(&mut replies_buf)?;
                // Matured replies land in the owning shard for the
                // next cycle.
                let pending_count = replies_buf.len();
                for r in replies_buf.drain(..) {
                    // SAFETY: no epoch in flight.
                    let shard = unsafe { &mut *sh.clusters[r.cluster].0.get() };
                    shard.deliveries.push(Delivery {
                        tcu: r.tcu,
                        kind: r.kind,
                        value: r.value,
                    });
                }
                if total_active == 0 {
                    m.maybe_finish_spawn_drained(return_pc);
                }
                m.check_progress()?;
                // Fast-forward: quiet cycle, no replies about to land,
                // nothing issuable and no thread to activate → jump to
                // the next event. Only now are the active shards
                // scanned (busy cycles never pay for a scan); clusters
                // outside the work list are fully idle and would
                // report `issue_next: false`, `min_busy: MAX` and zero
                // blocked counts, so only work-list shards constrain
                // the horizon. Round-robin pointers catch up lazily
                // from the parallel-cycle count.
                let quiet =
                    instr_before == m.stats.instructions && threads_before == m.stats.threads;
                if quiet && pending_count == 0 && matches!(m.mode, Mode::Parallel { .. }) {
                    // Same watchdog cap as `fast_forward`: the skip
                    // may not leap past the cycle on which the
                    // watchdog would fire (a stuck TCU looks
                    // permanently quiet).
                    let mut horizon = (m.max_cycles + 1).min(m.watchdog_horizon());
                    let mut can_skip = !(m.next_tid < m.spawn_count && sum_idle > 0);
                    scans.clear();
                    if can_skip {
                        for &c in &active {
                            // SAFETY: no epoch in flight.
                            let shard = unsafe { &*sh.clusters[c as usize].0.get() };
                            let scan = scan_cluster::<true>(&shard.tcus, m.cycle + 1);
                            debug_assert_eq!(scan.idle, idle[c as usize]);
                            if scan.issue_next {
                                can_skip = false;
                                break;
                            }
                            horizon = horizon.min(scan.min_busy);
                            scans.push(scan);
                        }
                    }
                    if can_skip {
                        if let Some(e) = m.memory_next_event() {
                            horizon = horizon.min(e);
                        }
                        if horizon > m.cycle + 1 {
                            let n = horizon - (m.cycle + 1);
                            for scan in &scans {
                                m.stats.stall_scoreboard += n * scan.blocked_scoreboard;
                                m.stats.stall_lsu += n * scan.blocked_lsu;
                            }
                            // Busy bits of skipped cycles must clear,
                            // exactly as `fast_forward` does, or the
                            // mask-driven issue loop would skip TCUs
                            // whose units finished during the jump.
                            // Non-work clusters have no busy bits set.
                            for &c in &active {
                                // SAFETY: no epoch in flight.
                                let shard = unsafe { &mut *sh.clusters[c as usize].0.get() };
                                shard.masks.wake_through(m.cycle + 1, n);
                            }
                            m.req_net.skip_idle(n);
                            m.reply_net.skip_idle(n);
                            for &mm in &m.active_modules {
                                m.modules[mm].skip_idle(n);
                            }
                            for &ch in &m.active_channels {
                                m.channels[ch].skip_idle(n);
                            }
                            m.mem_clock += n;
                            m.cycle += n;
                            m.stats.cycles = m.cycle;
                            *pcyc += n;
                            m.check_progress()?;
                        }
                    }
                }
            }
        }
    }
}

/// Shard-side mirror of `Machine::step_cluster` + `issue_memory`.
/// Must stay line-for-line equivalent in issue order, budget handling
/// and statistics — the golden cycle tests pin the equivalence. The
/// differences: thread IDs come from the pre-sized grant instead of
/// the shared counter, and memory instructions go through `sink`
/// (direct injection inline, record/replay under workers).
#[allow(clippy::too_many_arguments)]
fn step_cluster_local<F>(
    cluster: &mut [Tcu],
    m: &mut ClusterMasks,
    rr: &mut usize,
    grant: &mut Range<u32>,
    joined: &mut u64,
    cycle: u64,
    gregs: &[u32; NUM_GREGS],
    entry: usize,
    decoded: &DecodedProgram,
    trace: Option<&TraceCache>,
    trace_entries: &mut u64,
    p: WorkerParams,
    sink: &mut F,
    acc: &mut MachineStats,
    cluster_instr: &mut u64,
) -> Result<(), SimError>
where
    F: FnMut(usize, u32, TxnKind, u32, usize) -> bool,
{
    let instr_at_entry = acc.instructions;
    let ntcus = p.ntcus;
    let mut fpu_budget = p.fpus;
    let mut mdu_budget = p.mdus;
    let mut lsu_budget = p.lsus;
    let start = *rr;
    *rr = (start + 1) % ntcus;
    m.wake(cycle);

    let ready = m.active & !m.busy & !m.stuck;
    // Bulk path, mirror of the fast-forward engine's
    // `step_cluster_bulk`: when no idle TCU can activate this cycle
    // (the shard's grant is empty — the pre-sized equivalent of
    // `next_tid >= spawn_count`) and no ready TCU is in an
    // order-sensitive class, the per-TCU visit order is unobservable
    // and the cluster issues straight off the masks.
    if grant.start >= grant.end
        && (m.cls[IssueClass::Ps as usize]
            | m.cls[IssueClass::BadPc as usize]
            | m.cls[IssueClass::Illegal as usize])
            & ready
            == 0
    {
        step_cluster_bulk_local(
            cluster,
            m,
            ready,
            start,
            joined,
            cycle,
            gregs,
            decoded,
            trace,
            trace_entries,
            p,
            sink,
            acc,
        )?;
        *cluster_instr += acc.instructions - instr_at_entry;
        return Ok(());
    }

    // Visit order, mirror of `step_cluster`: walk every TCU only when
    // an idle one could activate this cycle; otherwise (a ready
    // `BadPc`/`Illegal` kept us off the bulk path) walk only ready
    // TCUs in round-robin order, which surfaces the same first error.
    let mut order = [0u8; 64];
    let visits: &[u8] = if grant.start < grant.end || m.cls[IssueClass::Ps as usize] & ready != 0 {
        for (i, t) in (start..ntcus).chain(0..start).enumerate() {
            order[i] = t as u8;
        }
        &order[..ntcus]
    } else {
        let mut rot = rr_rotate(ready, start, ntcus);
        let mut n = 0;
        while rot != 0 {
            order[n] = rr_unrotate(rot.trailing_zeros() as usize, start, ntcus) as u8;
            rot &= rot - 1;
            n += 1;
        }
        &order[..n]
    };

    for &t in visits {
        let t = t as usize;
        let bit = 1u64 << t;
        let tcu = &mut cluster[t];
        if !tcu.active {
            if tcu.disabled {
                continue;
            }
            // The grant is this cluster's contiguous slice of the
            // global thread-ID counter, sized to its idle-TCU count
            // (which already excludes disabled TCUs).
            if grant.start < grant.end {
                let tid = grant.start;
                grant.start += 1;
                tcu.active = true;
                m.active |= bit;
                tcu.rf = RegFile::new(tid);
                tcu.pc = entry;
                tcu.busy_until = 0;
                tcu.pend_i = 0;
                tcu.pend_f = 0;
                reclassify_masked(tcu, m, t, decoded);
                acc.threads += 1;
            } else {
                continue;
            }
        }
        if tcu.busy_until > cycle {
            continue;
        }
        // Stuck-at TCUs hold their thread and never issue (mirror of
        // `step_cluster`; the watchdog detects the hang).
        if tcu.stuck {
            continue;
        }
        match tcu.cls {
            IssueClass::BadPc => {
                return Err(SimError::PcOutOfRange {
                    pc: tcu.pc,
                    at_cycle: cycle,
                });
            }
            IssueClass::Scoreboard => {
                acc.stall_scoreboard += 1;
            }
            IssueClass::Alu => {
                let ok = if let Some(u) = fetch_uop(trace, tcu.pc) {
                    exec_uop(&u, &mut tcu.rf, gregs)
                } else {
                    let d = decoded.fetch(tcu.pc);
                    exec_compute(&d.instr, &mut tcu.rf, gregs)
                };
                debug_assert!(ok, "ALU-class instruction must be compute-executable");
                tcu.pc += 1;
                reclassify_masked(tcu, m, t, decoded);
                acc.instructions += 1;
            }
            IssueClass::Fpu => {
                if fpu_budget == 0 {
                    acc.stall_fpu += 1;
                    continue;
                }
                fpu_budget -= 1;
                let ok = if let Some(u) = fetch_uop(trace, tcu.pc) {
                    exec_uop(&u, &mut tcu.rf, gregs)
                } else {
                    let d = decoded.fetch(tcu.pc);
                    exec_compute(&d.instr, &mut tcu.rf, gregs)
                };
                debug_assert!(ok);
                tcu.busy_until = cycle + FPU_LATENCY;
                m.set_busy(t, cycle + FPU_LATENCY);
                tcu.pc += 1;
                reclassify_masked(tcu, m, t, decoded);
                acc.instructions += 1;
                acc.flops += 1;
            }
            IssueClass::Mdu => {
                if mdu_budget == 0 {
                    acc.stall_mdu += 1;
                    continue;
                }
                mdu_budget -= 1;
                let ok = if let Some(u) = fetch_uop(trace, tcu.pc) {
                    exec_uop(&u, &mut tcu.rf, gregs)
                } else {
                    let d = decoded.fetch(tcu.pc);
                    exec_compute(&d.instr, &mut tcu.rf, gregs)
                };
                debug_assert!(ok);
                tcu.busy_until = cycle + MDU_LATENCY;
                m.set_busy(t, cycle + MDU_LATENCY);
                tcu.pc += 1;
                reclassify_masked(tcu, m, t, decoded);
                acc.instructions += 1;
            }
            IssueClass::Lsu => {
                if lsu_budget == 0 {
                    acc.stall_lsu += 1;
                    continue;
                }
                if tcu.outstanding >= MAX_OUTSTANDING {
                    acc.stall_lsu += 1;
                    continue;
                }
                // Mirror of `issue_memory`: address/kind first (the
                // bounds fault precedes the injection attempt), then
                // the sink decides acceptance — by direct injection
                // inline, or by budget prediction under workers
                // (exact, because both NoCs accept at most one
                // injection per source per cycle and refuse solely on
                // the backpressure the budget reported).
                let pc = tcu.pc;
                let ins = decoded.fetch(pc).instr;
                let (addr, kind, value) = match ins {
                    Instr::Lw { rd, base, off } => (
                        addr_of(pc, tcu.rf.read_i(base), off, p.mem_len)?,
                        TxnKind::LoadI(rd),
                        0,
                    ),
                    Instr::Flw { fd, base, off } => (
                        addr_of(pc, tcu.rf.read_i(base), off, p.mem_len)?,
                        TxnKind::LoadF(fd),
                        0,
                    ),
                    Instr::Sw { rs, base, off } => (
                        addr_of(pc, tcu.rf.read_i(base), off, p.mem_len)?,
                        TxnKind::Store,
                        tcu.rf.read_i(rs),
                    ),
                    Instr::Fsw { fs, base, off } => (
                        addr_of(pc, tcu.rf.read_i(base), off, p.mem_len)?,
                        TxnKind::Store,
                        tcu.rf.read_f(fs).to_bits(),
                    ),
                    _ => unreachable!("LSU unit on non-memory instruction"),
                };
                let module = p.hash.module_of(addr as u32);
                let accepted = sink(t, addr as u32, kind, value, module);
                lsu_budget -= 1;
                if !accepted {
                    // NoC refused: the attempt still consumed the slot.
                    acc.stall_lsu += 1;
                    continue;
                }
                tcu.outstanding += 1;
                match kind {
                    TxnKind::LoadI(rd) => {
                        if rd.index() != 0 {
                            tcu.pend_i |= 1 << rd.index();
                        }
                        acc.mem_reads += 1;
                    }
                    TxnKind::LoadF(fd) => {
                        tcu.pend_f |= 1 << fd.index();
                        acc.mem_reads += 1;
                    }
                    TxnKind::Store => {
                        acc.mem_writes += 1;
                    }
                }
                m.out_nz |= bit;
                if tcu.outstanding >= MAX_OUTSTANDING {
                    m.at_cap |= bit;
                }
                tcu.pc += 1;
                reclassify_masked(tcu, m, t, decoded);
                acc.instructions += 1;
            }
            IssueClass::Branch => {
                let pc = tcu.pc;
                if let Some(u) = fetch_uop(trace, pc) {
                    tcu.pc = eval_branch_uop(&u, &tcu.rf).unwrap_or(pc + 1);
                    *trace_entries += 1;
                } else {
                    match decoded.fetch(pc).instr {
                        Instr::Branch {
                            cond,
                            rs1,
                            rs2,
                            target,
                        } => {
                            let taken = eval_branch(cond, tcu.rf.read_i(rs1), tcu.rf.read_i(rs2));
                            tcu.pc = if taken { target } else { pc + 1 };
                        }
                        Instr::Jump { target } => tcu.pc = target,
                        _ => unreachable!(),
                    }
                }
                reclassify_masked(tcu, m, t, decoded);
                acc.instructions += 1;
            }
            IssueClass::Ps => {
                // `Machine::run` routes ps/sspawn programs to the
                // fast-forward engine; they cannot reach a shard.
                unreachable!("global-state op in threaded shard")
            }
            IssueClass::Join => {
                if tcu.outstanding > 0 {
                    continue;
                }
                tcu.active = false;
                m.active &= !bit;
                *joined += 1;
                acc.instructions += 1;
            }
            IssueClass::Nop => {
                tcu.pc += 1;
                reclassify_masked(tcu, m, t, decoded);
                acc.instructions += 1;
            }
            IssueClass::Illegal => {
                let pc = tcu.pc;
                return Err(match decoded.fetch(pc).instr {
                    Instr::Spawn { .. } => SimError::BadInstruction {
                        pc,
                        what: "nested spawn",
                        at_cycle: cycle,
                    },
                    Instr::Halt => SimError::BadInstruction {
                        pc,
                        what: "halt in parallel mode",
                        at_cycle: cycle,
                    },
                    _ => SimError::BadInstruction {
                        pc,
                        what: "instruction illegal in parallel mode",
                        at_cycle: cycle,
                    },
                });
            }
        }
    }
    *cluster_instr += acc.instructions - instr_at_entry;
    Ok(())
}

/// Shard-side mirror of `Machine::step_cluster_bulk`: stall counters
/// accrue by popcount without touching the stalled TCUs' cache lines,
/// port winners are picked in round-robin order by rotate +
/// trailing-zeros, and only TCUs that actually execute are
/// dereferenced. The caller has already woken the masks and excluded
/// activations and order-sensitive classes; memory instructions go
/// through `sink` exactly as in the per-TCU walk.
#[allow(clippy::too_many_arguments)]
fn step_cluster_bulk_local<F>(
    cluster: &mut [Tcu],
    m: &mut ClusterMasks,
    ready: u64,
    start: usize,
    joined: &mut u64,
    cycle: u64,
    gregs: &[u32; NUM_GREGS],
    decoded: &DecodedProgram,
    trace: Option<&TraceCache>,
    trace_entries: &mut u64,
    p: WorkerParams,
    sink: &mut F,
    acc: &mut MachineStats,
) -> Result<(), SimError>
where
    F: FnMut(usize, u32, TxnKind, u32, usize) -> bool,
{
    let ntcus = p.ntcus;

    // Snapshot the per-class ready sets before any issue mutates the
    // masks: a TCU's class is stable until its own visit, so the
    // snapshot is exactly what the per-TCU walk observes per visit.
    let sb = m.cls[IssueClass::Scoreboard as usize] & ready;
    let alu = m.cls[IssueClass::Alu as usize] & ready;
    let fpu = m.cls[IssueClass::Fpu as usize] & ready;
    let mdu = m.cls[IssueClass::Mdu as usize] & ready;
    let lsu = m.cls[IssueClass::Lsu as usize] & ready;
    let br = m.cls[IssueClass::Branch as usize] & ready;
    let join = m.cls[IssueClass::Join as usize] & ready;
    let nop = m.cls[IssueClass::Nop as usize] & ready;

    // Scoreboard-blocked TCUs burn one stall each, unvisited.
    acc.stall_scoreboard += u64::from(sb.count_ones());

    // ALU, branch and nop always issue (ALU ports are provisioned one
    // per TCU) and only touch the owning TCU, so round-robin order
    // among them is unobservable; ascending order is fine.
    let mut bits = alu;
    while bits != 0 {
        let t = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        let tcu = &mut cluster[t];
        let ok = if let Some(u) = fetch_uop(trace, tcu.pc) {
            exec_uop(&u, &mut tcu.rf, gregs)
        } else {
            let d = decoded.fetch(tcu.pc);
            exec_compute(&d.instr, &mut tcu.rf, gregs)
        };
        debug_assert!(ok, "ALU-class instruction must be compute-executable");
        tcu.pc += 1;
        reclassify_masked(tcu, m, t, decoded);
        acc.instructions += 1;
    }
    let mut bits = br;
    while bits != 0 {
        let t = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        let tcu = &mut cluster[t];
        let pc = tcu.pc;
        if let Some(u) = fetch_uop(trace, pc) {
            tcu.pc = eval_branch_uop(&u, &tcu.rf).unwrap_or(pc + 1);
            *trace_entries += 1;
        } else {
            match decoded.fetch(pc).instr {
                Instr::Branch {
                    cond,
                    rs1,
                    rs2,
                    target,
                } => {
                    let taken = eval_branch(cond, tcu.rf.read_i(rs1), tcu.rf.read_i(rs2));
                    tcu.pc = if taken { target } else { pc + 1 };
                }
                Instr::Jump { target } => tcu.pc = target,
                _ => unreachable!(),
            }
        }
        reclassify_masked(tcu, m, t, decoded);
        acc.instructions += 1;
    }
    let mut bits = nop;
    while bits != 0 {
        let t = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        let tcu = &mut cluster[t];
        tcu.pc += 1;
        reclassify_masked(tcu, m, t, decoded);
        acc.instructions += 1;
    }

    // FPU/MDU: the port goes to the first contenders in round-robin
    // order; every loser burns one stall, counted without a visit.
    let mut rot = rr_rotate(fpu, start, ntcus);
    let mut budget = p.fpus;
    while rot != 0 && budget > 0 {
        let t = rr_unrotate(rot.trailing_zeros() as usize, start, ntcus);
        rot &= rot - 1;
        budget -= 1;
        let tcu = &mut cluster[t];
        let ok = if let Some(u) = fetch_uop(trace, tcu.pc) {
            exec_uop(&u, &mut tcu.rf, gregs)
        } else {
            let d = decoded.fetch(tcu.pc);
            exec_compute(&d.instr, &mut tcu.rf, gregs)
        };
        debug_assert!(ok);
        tcu.busy_until = cycle + FPU_LATENCY;
        m.set_busy(t, cycle + FPU_LATENCY);
        tcu.pc += 1;
        reclassify_masked(tcu, m, t, decoded);
        acc.instructions += 1;
        acc.flops += 1;
    }
    acc.stall_fpu += u64::from(rot.count_ones());
    let mut rot = rr_rotate(mdu, start, ntcus);
    let mut budget = p.mdus;
    while rot != 0 && budget > 0 {
        let t = rr_unrotate(rot.trailing_zeros() as usize, start, ntcus);
        rot &= rot - 1;
        budget -= 1;
        let tcu = &mut cluster[t];
        let ok = if let Some(u) = fetch_uop(trace, tcu.pc) {
            exec_uop(&u, &mut tcu.rf, gregs)
        } else {
            let d = decoded.fetch(tcu.pc);
            exec_compute(&d.instr, &mut tcu.rf, gregs)
        };
        debug_assert!(ok);
        tcu.busy_until = cycle + MDU_LATENCY;
        m.set_busy(t, cycle + MDU_LATENCY);
        tcu.pc += 1;
        reclassify_masked(tcu, m, t, decoded);
        acc.instructions += 1;
    }
    acc.stall_mdu += u64::from(rot.count_ones());

    // LSU: same round-robin port arbitration, plus the per-TCU
    // outstanding-transaction cap (stalls without consuming the port)
    // and NoC backpressure (consumes the port and stalls).
    let mut rot = rr_rotate(lsu, start, ntcus);
    let mut budget = p.lsus;
    while rot != 0 {
        if budget == 0 {
            acc.stall_lsu += u64::from(rot.count_ones());
            break;
        }
        let t = rr_unrotate(rot.trailing_zeros() as usize, start, ntcus);
        rot &= rot - 1;
        let bit = 1u64 << t;
        if m.at_cap & bit != 0 {
            acc.stall_lsu += 1;
            continue;
        }
        let tcu = &mut cluster[t];
        let pc = tcu.pc;
        let ins = decoded.fetch(pc).instr;
        let (addr, kind, value) = match ins {
            Instr::Lw { rd, base, off } => (
                addr_of(pc, tcu.rf.read_i(base), off, p.mem_len)?,
                TxnKind::LoadI(rd),
                0,
            ),
            Instr::Flw { fd, base, off } => (
                addr_of(pc, tcu.rf.read_i(base), off, p.mem_len)?,
                TxnKind::LoadF(fd),
                0,
            ),
            Instr::Sw { rs, base, off } => (
                addr_of(pc, tcu.rf.read_i(base), off, p.mem_len)?,
                TxnKind::Store,
                tcu.rf.read_i(rs),
            ),
            Instr::Fsw { fs, base, off } => (
                addr_of(pc, tcu.rf.read_i(base), off, p.mem_len)?,
                TxnKind::Store,
                tcu.rf.read_f(fs).to_bits(),
            ),
            _ => unreachable!("LSU unit on non-memory instruction"),
        };
        let module = p.hash.module_of(addr as u32);
        let accepted = sink(t, addr as u32, kind, value, module);
        budget -= 1;
        if !accepted {
            acc.stall_lsu += 1;
            continue;
        }
        tcu.outstanding += 1;
        match kind {
            TxnKind::LoadI(rd) => {
                if rd.index() != 0 {
                    tcu.pend_i |= 1 << rd.index();
                }
                acc.mem_reads += 1;
            }
            TxnKind::LoadF(fd) => {
                tcu.pend_f |= 1 << fd.index();
                acc.mem_reads += 1;
            }
            TxnKind::Store => {
                acc.mem_writes += 1;
            }
        }
        m.out_nz |= bit;
        if tcu.outstanding >= MAX_OUTSTANDING {
            m.at_cap |= bit;
        }
        tcu.pc += 1;
        reclassify_masked(tcu, m, t, decoded);
        acc.instructions += 1;
    }

    // Joins with posted stores outstanding wait silently; the rest
    // retire. (The per-TCU walk leaves `cls` at `Join` on retire, so
    // the class masks stay untouched here too.)
    let retire = join & !m.out_nz;
    let mut bits = retire;
    while bits != 0 {
        let t = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        cluster[t].active = false;
    }
    m.active &= !retire;
    *joined += u64::from(retire.count_ones());
    acc.instructions += u64::from(retire.count_ones());
    Ok(())
}
