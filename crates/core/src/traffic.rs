//! Bridge from the simulator's [`XmtConfig`] architecture description
//! to the static traffic analyzer's machine parameters.
//!
//! `xmt-verify` deliberately depends on `xmt-isa` alone, so its
//! [`TrafficParams`] is a plain bag of numbers; this module is where
//! those numbers come from — the same derating constants and rate
//! formulas the analytic performance model (`xmt_sim::perfmodel`) and
//! the cycle simulator's memory system use, so static predictions and
//! `IntervalProbe` measurements are comparable on the same machine.

use xmt_noc::{effective_throughput, TrafficClass};
use xmt_sim::XmtConfig;
use xmt_verify::traffic::TrafficParams;

/// Derating applied to peak issue/FPU rates (mirrors
/// `xmt_sim::perfmodel::COMPUTE_EFFICIENCY`).
pub const COMPUTE_EFFICIENCY: f64 = 0.90;
/// Sustainable fraction of peak DRAM bandwidth (mirrors
/// `xmt_sim::perfmodel::DRAM_EFFICIENCY`).
pub const DRAM_EFFICIENCY: f64 = 0.80;
/// Sustainable fraction of per-port NoC bandwidth (mirrors
/// `xmt_sim::perfmodel::ICN_EFFICIENCY`).
pub const ICN_EFFICIENCY: f64 = 0.90;

/// Build the static analyzer's machine parameters for `cfg`, assuming
/// hashed (address-interleaved) NoC traffic — the class every memory
/// access stream on this machine falls into, since lines are striped
/// across modules by address.
pub fn traffic_params(cfg: &XmtConfig) -> TrafficParams {
    let topo = cfg.topology();
    TrafficParams {
        line_words: cfg.cache.line_words as u64,
        cache_lines: (cfg.cache.lines * cfg.memory_modules) as u64,
        clusters: cfg.clusters as u64,
        tcus_per_cluster: cfg.tcus_per_cluster as u64,
        fpus_per_cluster: cfg.fpus_per_cluster as u64,
        lsus_per_cluster: cfg.lsus_per_cluster as u64,
        icn_words_per_cluster: effective_throughput(&topo, TrafficClass::Hashed) * ICN_EFFICIENCY,
        dram_bytes_per_cycle: cfg.dram_channels() as f64
            * cfg.dram.bytes_per_cycle
            * DRAM_EFFICIENCY,
        startup_cycles: (cfg.clusters as f64).log2().ceil()
            + 2.0 * topo.latency_cycles() as f64
            + cfg.dram.access_latency as f64,
        compute_efficiency: COMPUTE_EFFICIENCY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_config_params_match_the_perf_model_constants() {
        let p = traffic_params(&crate::golden::golden_config());
        assert_eq!(p.line_words, 8);
        assert_eq!(p.clusters, 4);
        assert_eq!(p.tcus_per_cluster, 32);
        assert_eq!(p.fpus_per_cluster, 1);
        // 1 channel × 8 B/cyc × 0.8.
        assert!((p.dram_bytes_per_cycle - 6.4).abs() < 1e-9);
        // Pure MoT sustains full per-port bandwidth.
        assert!((p.icn_words_per_cluster - 0.9).abs() < 1e-9);
        // Ridge = 4 × 1 × 0.9 / 6.4.
        assert!((p.ridge_intensity() - 0.5625).abs() < 1e-9);
    }

    #[test]
    fn paper_scale_ridge_is_stable_across_configs() {
        // 4k: 128 FPUs, 16 channels; 8k: 256 FPUs, 32 channels — the
        // flop:byte ridge is the same 1.125 on both (Table II scales
        // compute and DRAM together).
        for cfg in [XmtConfig::xmt_4k(), XmtConfig::xmt_8k()] {
            let p = traffic_params(&cfg);
            assert!(
                (p.ridge_intensity() - 1.125).abs() < 1e-9,
                "{}: {}",
                cfg.name,
                p.ridge_intensity()
            );
        }
    }
}
