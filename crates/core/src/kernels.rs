//! XMT FFT stage kernels.
//!
//! Each Stockham DIF stage becomes one `spawn` section of `rows · N/r`
//! virtual threads; every thread reads its `r` inputs, solves the
//! radix-`r` DFT in registers (via [`crate::codelet`]), applies
//! twiddles from the replicated lookup table, and writes `r` outputs
//! (Section IV-A "Choice of Radix" / "Twiddle Factors").
//!
//! Because the kernel generator plays the role of the XMTC compiler,
//! every stage constant (strides, masks, base addresses, replica
//! count) is baked in as an immediate: the only run-time input is the
//! thread id. All index arithmetic therefore compiles to shifts, masks
//! and adds — the MDU is never used on the hot path.
//!
//! The final stage of each dimension pass can *fuse the rotation*: its
//! stores go directly to the axis-rotated positions, saving a separate
//! data-movement pass (Section VI-B: "the rotation is combined with
//! the last iteration of the computation").

use crate::codelet::{CodeletEmitter, Cx};
use parafft::FftDirection;
use xmt_isa::reg::ir;
use xmt_isa::{Label, ProgramBuilder};

/// Replicated twiddle-table placement in XMT memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TwiddleLayout {
    /// Word address of the flat replicated table.
    pub base: u32,
    /// Number of interleaved replicas (power of two).
    pub copies: u32,
    /// Distinct factors in the table (= row length N).
    pub n: u32,
}

impl TwiddleLayout {
    /// Table footprint in words (complex factors × replicas × 2).
    pub fn words(&self) -> u32 {
        2 * self.n * self.copies
    }
}

/// Fused axis rotation of the current `(d0, d1, d2)` view, where the
/// pass's rows enumerate `(i0, i1)` and columns run over `d2`.
/// Element `(i0, i1, col)` is stored at `(i1·d2 + col)·d0 + i0` —
/// `rotate3d` of `parafft::permute`, degenerating to a transpose when
/// `d1 == 1` (the paper's footnote 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rotation {
    /// The `d0` value.
    pub d0: u32,
    /// The `d1` value.
    pub d1: u32,
    /// The `d2` value.
    pub d2: u32,
}

/// One stage's full parameter set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageKernel {
    /// Row length (power of two).
    pub n: u32,
    /// Number of rows processed simultaneously (fine-grained mapping:
    /// threads span all rows of the multidimensional array).
    pub rows: u32,
    /// Radix (2, 4 or 8).
    pub radix: u32,
    /// Stockham stride `s` (product of radices of earlier stages).
    pub s: u32,
    /// Word address of the source array (complex interleaved).
    pub src: u32,
    /// Word address of the destination array.
    pub dst: u32,
    /// Twiddle table (ignored for the last stage, which needs none).
    pub tw: TwiddleLayout,
    /// Fused rotation for the last stage of a dimension pass.
    pub rotation: Option<Rotation>,
    /// Transform direction (the twiddle table must match).
    pub direction: FftDirection,
}

impl StageKernel {
    /// Virtual threads this stage spawns (`rows · n / radix`).
    pub fn threads(&self) -> u32 {
        self.rows * (self.n / self.radix)
    }

    /// True for the last stage of its 1D transform (`s == n/r`), which
    /// has `p = 0` everywhere and therefore multiplies no twiddles.
    pub fn is_last(&self) -> bool {
        self.s == self.n / self.radix
    }
}

fn log2(x: u32) -> u32 {
    debug_assert!(x.is_power_of_two(), "{x} not a power of two");
    x.trailing_zeros()
}

/// Emit the parallel-section body for `k` at `entry` (the label must
/// already be bound by the caller). Ends with `join`.
pub fn emit_stage_body(b: &mut ProgramBuilder, k: &StageKernel) {
    assert!(
        matches!(k.radix, 2 | 4 | 8),
        "unsupported radix {}",
        k.radix
    );
    assert!(k.n.is_power_of_two() && k.n >= k.radix);
    assert_eq!(
        (k.n / k.radix) % k.s,
        0,
        "stride {} must divide {}",
        k.s,
        k.n / k.radix
    );
    let r = k.radix;
    let nr = k.n / r; // threads per row; also s·m
    let lnr = log2(nr);
    let ln = log2(k.n);
    let _ls = log2(k.s);
    let lr = log2(r);
    let last = k.is_last();
    if k.rotation.is_some() {
        assert!(last, "rotation can only fuse into the last stage");
    }

    // Integer register conventions inside the section:
    //   r1 = tid            r2 = within-row index
    //   r3 = row offset (words) of this thread's row
    //   r4 = scratch        r5 = src pointer (row + 2·within)
    //   r6 = dst pointer (k=0 position)
    //   r7 = q              r8 = p·s
    //   r9 = twiddle index accumulator
    //   r10, r11 = scratch  r12 = twiddle replica pointer
    b.tid(ir(1));
    if k.rows > 1 {
        b.andi(ir(2), ir(1), nr - 1);
        b.srli(ir(4), ir(1), lnr); // row
        b.slli(ir(3), ir(4), ln + 1); // row offset in words
    } else {
        // Single row: within = tid, row offset 0.
        b.andi(ir(2), ir(1), nr - 1);
        b.li(ir(3), 0);
        b.li(ir(4), 0);
    }

    // --- source pointer: src + row_off + 2·within; loads at +2·nr·j ---
    b.slli(ir(5), ir(2), 1);
    b.add(ir(5), ir(5), ir(3));
    b.li(ir(10), k.src);
    b.add(ir(5), ir(5), ir(10));

    // --- q and p·s ---
    if k.s == k.n / r {
        // Last stage: q = within, p·s = 0.
        b.add(ir(7), ir(2), ir(0));
        b.li(ir(8), 0);
    } else {
        b.andi(ir(7), ir(2), k.s - 1);
        b.sub(ir(8), ir(2), ir(7));
    }

    // --- destination pointer (position of output k = 0) ---
    match k.rotation {
        None => {
            // dst element = r·within − (r−1)·q; +row, +2 for words.
            b.slli(ir(6), ir(2), lr);
            b.slli(ir(10), ir(7), lr);
            b.sub(ir(10), ir(10), ir(7)); // (r−1)·q
            b.sub(ir(6), ir(6), ir(10));
            b.slli(ir(6), ir(6), 1);
            b.add(ir(6), ir(6), ir(3));
            b.li(ir(10), k.dst);
            b.add(ir(6), ir(6), ir(10));
        }
        Some(rot) => {
            // row = i0·d1 + i1; element (i0,i1,col) → (i1·d2+col)·d0+i0.
            // col₀ = within (q = within on the fused last stage);
            // successive outputs add nr to col, i.e. (nr << log2 d0)
            // elements in the rotated array — an immediate per k.
            let ld0 = log2(rot.d0);
            let ld1 = log2(rot.d1);
            let ld2 = log2(rot.d2);
            debug_assert_eq!(rot.d2, k.n);
            b.srli(ir(10), ir(4), ld1); // i0  (r4 still holds row)
            b.andi(ir(11), ir(4), rot.d1 - 1); // i1
            b.slli(ir(11), ir(11), ld2); // i1·d2
            b.add(ir(11), ir(11), ir(2)); // + col₀
            b.slli(ir(11), ir(11), ld0); // ·d0
            b.add(ir(11), ir(11), ir(10)); // + i0
            b.slli(ir(6), ir(11), 1); // words
            b.li(ir(10), k.dst);
            b.add(ir(6), ir(6), ir(10));
        }
    }

    // --- twiddle replica pointer (unless the stage needs none) ---
    if !last {
        let lc = log2(k.tw.copies);
        b.andi(ir(12), ir(1), k.tw.copies - 1);
        b.slli(ir(12), ir(12), 1);
        b.li(ir(10), k.tw.base);
        b.add(ir(12), ir(12), ir(10));
        // r9 = twiddle index for k=1 (= p·s), masked later.
        b.add(ir(9), ir(8), ir(0));
        let _ = lc;
    }

    // --- loads, codelet, twiddled stores ---
    let mut em = CodeletEmitter::new(b);
    let mut inputs: Vec<Cx> = Vec::with_capacity(r as usize);
    for j in 0..r {
        let c = em.alloc_cx();
        em.b.flw(c.0, ir(5), 2 * nr * j);
        em.b.flw(c.1, ir(5), 2 * nr * j + 1);
        inputs.push(c);
    }
    let dir = k.direction;
    let outputs: Vec<Cx> = match r {
        2 => {
            let (a, c) = em.dft2(inputs[0], inputs[1]);
            vec![a, c]
        }
        4 => em
            .dft4([inputs[0], inputs[1], inputs[2], inputs[3]], dir)
            .to_vec(),
        8 => {
            let h = em.alloc();
            em.b.fli(h, std::f64::consts::FRAC_1_SQRT_2 as f32);
            let x: [Cx; 8] = [
                inputs[0], inputs[1], inputs[2], inputs[3], inputs[4], inputs[5], inputs[6],
                inputs[7],
            ];
            let out = em.dft8(x, h, dir);
            em.release(h);
            out.to_vec()
        }
        _ => unreachable!(),
    };
    debug_assert!(em.peak() <= 32, "stage codelet exceeded the FP file");

    // Per-output store offset step: non-rotated layout advances s
    // elements per k; rotated layout advances nr·d0 elements per k.
    let store_step = match k.rotation {
        None => 2 * k.s,
        Some(rot) => 2 * nr * rot.d0,
    };
    let lc1 = if last { 0 } else { log2(k.tw.copies) + 1 };
    for (ki, y) in outputs.into_iter().enumerate() {
        let val = if ki == 0 || last {
            y
        } else {
            // Load ω^{idx}: word address r12 + (idx << (log2 copies+1)).
            em.b.andi(ir(9), ir(9), k.n - 1);
            em.b.slli(ir(10), ir(9), lc1);
            em.b.add(ir(10), ir(10), ir(12));
            let w = em.alloc_cx();
            em.b.flw(w.0, ir(10), 0);
            em.b.flw(w.1, ir(10), 1);
            let prod = em.cmul(y, w);
            em.release_cx(w);
            // Advance the index for the next k.
            em.b.add(ir(9), ir(9), ir(8));
            prod
        };
        em.b.fsw(val.0, ir(6), store_step * ki as u32);
        em.b.fsw(val.1, ir(6), store_step * ki as u32 + 1);
        em.release_cx(val);
    }
    b.join();
}

/// Emit a complete stage: binds `entry`, emits the body.
pub fn emit_stage(b: &mut ProgramBuilder, entry: Label, k: &StageKernel) {
    b.bind(entry);
    emit_stage_body(b, k);
}

/// Emit a *separate* rotation pass (the unfused alternative the paper
/// rejects in Section VI-B): pure data movement, no butterflies. Each
/// of `rows · n / 8` threads moves 8 elements of its row to their
/// rotated positions — the extra "round trip to memory" the fused
/// variant saves. Used by the `ablation_rotation` bench.
pub fn emit_rotation_copy_body(
    b: &mut ProgramBuilder,
    rows: u32,
    n: u32,
    src: u32,
    dst: u32,
    rot: Rotation,
) {
    assert!(n.is_power_of_two() && n >= 8);
    assert_eq!(rot.d2, n);
    let nr = n / 8;
    let lnr = log2(nr);
    let ln = log2(n);
    let (ld0, ld1, ld2) = (log2(rot.d0), log2(rot.d1), log2(rot.d2));

    b.tid(ir(1));
    b.andi(ir(2), ir(1), nr - 1); // within
    if rows > 1 {
        b.srli(ir(4), ir(1), lnr); // row
        b.slli(ir(3), ir(4), ln + 1); // row offset (words)
    } else {
        b.li(ir(3), 0);
        b.li(ir(4), 0);
    }
    // Source pointer: src + row_off + 2·within, elements at +2·nr·j.
    b.slli(ir(5), ir(2), 1);
    b.add(ir(5), ir(5), ir(3));
    b.li(ir(10), src);
    b.add(ir(5), ir(5), ir(10));
    // Rotated destination base (same mapping as the fused stage).
    b.srli(ir(10), ir(4), ld1); // i0
    b.andi(ir(11), ir(4), rot.d1 - 1); // i1
    b.slli(ir(11), ir(11), ld2);
    b.add(ir(11), ir(11), ir(2)); // + col0
    b.slli(ir(11), ir(11), ld0);
    b.add(ir(11), ir(11), ir(10));
    b.slli(ir(6), ir(11), 1);
    b.li(ir(10), dst);
    b.add(ir(6), ir(6), ir(10));

    let step = 2 * nr * rot.d0;
    let mut em = CodeletEmitter::new(b);
    for j in 0..8u32 {
        let c = em.alloc_cx();
        em.b.flw(c.0, ir(5), 2 * nr * j);
        em.b.flw(c.1, ir(5), 2 * nr * j + 1);
        em.b.fsw(c.0, ir(6), step * j);
        em.b.fsw(c.1, ir(6), step * j + 1);
        em.release_cx(c);
    }
    b.join();
}

#[cfg(test)]
mod tests {
    use super::*;
    use parafft::dft::max_error;
    use parafft::{Complex64, FftDirection, TwiddleTable};
    use xmt_isa::{Interp, ProgramBuilder};

    /// Build a one-stage program with serial driver code.
    fn one_stage_program(k: &StageKernel) -> xmt_isa::Program {
        let mut b = ProgramBuilder::new();
        let sec = b.label();
        let done = b.label();
        b.li(ir(1), k.threads());
        b.spawn(ir(1), sec);
        b.jump(done);
        b.bind(done);
        b.halt();
        emit_stage(&mut b, sec, k);
        b.build().unwrap()
    }

    fn write_complex(m: &mut Interp, addr: usize, data: &[Complex64]) {
        let flat: Vec<f32> = data
            .iter()
            .flat_map(|c| [c.re as f32, c.im as f32])
            .collect();
        m.write_f32s(addr, &flat);
    }

    fn read_complex(m: &Interp, addr: usize, n: usize) -> Vec<Complex64> {
        m.read_f32s(addr, 2 * n)
            .chunks(2)
            .map(|p| Complex64::new(p[0] as f64, p[1] as f64))
            .collect()
    }

    fn write_twiddles(m: &mut Interp, tw: &TwiddleLayout) {
        let table = TwiddleTable::<f32>::new(tw.n as usize, FftDirection::Forward);
        let rep = parafft::ReplicatedTwiddles::new(&table, tw.copies as usize);
        let flat: Vec<f32> = rep.flat().iter().flat_map(|c| [c.re, c.im]).collect();
        m.write_f32s(tw.base as usize, &flat);
    }

    /// Reference Stockham stage on the host.
    fn host_stage(src: &[Complex64], n: usize, rows: usize, r: usize, s: usize) -> Vec<Complex64> {
        let tw = TwiddleTable::<f64>::new(n, FftDirection::Forward);
        let mut out = vec![Complex64::new(0.0, 0.0); src.len()];
        let m = n / r / s;
        let _ = m;
        let sub = n / (s); // current sub-length × … we only need s·p·k mod n
        let _ = sub;
        let mm = n / r / s; // m = sub/r where sub = n/s? No: threads (p,q): p < n/(r·s)
        for row in 0..rows {
            let base = row * n;
            for p in 0..mm {
                for q in 0..s {
                    let mut xs = vec![Complex64::new(0.0, 0.0); r];
                    for (j, x) in xs.iter_mut().enumerate() {
                        *x = src[base + q + s * (p + mm * j)];
                    }
                    let ys = parafft::dft::dft(&xs, FftDirection::Forward);
                    for (kk, y) in ys.iter().enumerate() {
                        let w = tw.get(s * p * kk % n);
                        out[base + q + s * (r * p + kk)] = if kk == 0 { *y } else { *y * w };
                    }
                }
            }
        }
        out
    }

    fn sample(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| Complex64::new((i as f64 * 0.21).sin(), (i as f64 * 0.83).cos()))
            .collect()
    }

    fn check_stage(n: u32, rows: u32, radix: u32, s: u32) {
        let total = (n * rows) as usize;
        let tw = TwiddleLayout {
            base: (4 * total) as u32,
            copies: 4,
            n,
        };
        let k = StageKernel {
            n,
            rows,
            radix,
            s,
            src: 0,
            dst: (2 * total) as u32,
            tw,
            rotation: None,
            direction: FftDirection::Forward,
        };
        let prog = one_stage_program(&k);
        let mut m = Interp::new(4 * total + tw.words() as usize + 64);
        let input = sample(total);
        write_complex(&mut m, 0, &input);
        write_twiddles(&mut m, &tw);
        m.run(&prog).unwrap();
        let got = read_complex(&m, 2 * total, total);
        let want = host_stage(
            &input,
            n as usize,
            rows as usize,
            radix as usize,
            s as usize,
        );
        assert!(
            max_error(&got, &want) < 1e-4,
            "stage n={n} rows={rows} r={radix} s={s}: err {}",
            max_error(&got, &want)
        );
    }

    #[test]
    fn radix8_first_stage_matches_host() {
        check_stage(64, 1, 8, 1);
    }

    #[test]
    fn radix8_middle_stage_matches_host() {
        check_stage(512, 1, 8, 8);
    }

    #[test]
    fn radix8_last_stage_matches_host() {
        check_stage(64, 1, 8, 8);
    }

    #[test]
    fn radix4_and_radix2_stages_match_host() {
        check_stage(16, 1, 4, 1);
        check_stage(16, 1, 4, 4);
        check_stage(8, 1, 2, 4);
        check_stage(8, 1, 2, 1);
    }

    #[test]
    fn multi_row_stage_matches_host() {
        check_stage(32, 4, 8, 1);
        check_stage(32, 4, 8, 4);
    }

    #[test]
    fn rotation_stage_transposes_2d() {
        // 4 rows × 8 cols, last stage (s = n/r = 1 for n=8, r=8):
        // output must land transposed.
        let (rows, n, r) = (4u32, 8u32, 8u32);
        let total = (rows * n) as usize;
        let tw = TwiddleLayout {
            base: (4 * total) as u32,
            copies: 2,
            n,
        };
        let k = StageKernel {
            n,
            rows,
            radix: r,
            s: n / r,
            src: 0,
            dst: (2 * total) as u32,
            tw,
            rotation: Some(Rotation {
                d0: rows,
                d1: 1,
                d2: n,
            }),
            direction: FftDirection::Forward,
        };
        let prog = one_stage_program(&k);
        let mut m = Interp::new(4 * total + tw.words() as usize + 64);
        let input = sample(total);
        write_complex(&mut m, 0, &input);
        write_twiddles(&mut m, &tw);
        m.run(&prog).unwrap();
        let got = read_complex(&m, 2 * total, total);

        // Expected: stage output transposed (col-major of the stage result).
        let staged = host_stage(
            &input,
            n as usize,
            rows as usize,
            r as usize,
            (n / r) as usize,
        );
        let mut want = vec![Complex64::new(0.0, 0.0); total];
        for row in 0..rows as usize {
            for col in 0..n as usize {
                want[col * rows as usize + row] = staged[row * n as usize + col];
            }
        }
        assert!(
            max_error(&got, &want) < 1e-4,
            "err {}",
            max_error(&got, &want)
        );
    }

    #[test]
    fn thread_count_formula() {
        let k = StageKernel {
            n: 512,
            rows: 4,
            radix: 8,
            s: 1,
            src: 0,
            dst: 0,
            tw: TwiddleLayout {
                base: 0,
                copies: 1,
                n: 512,
            },
            rotation: None,
            direction: FftDirection::Forward,
        };
        assert_eq!(k.threads(), 4 * 64);
        assert!(!k.is_last());
    }

    #[test]
    #[should_panic(expected = "rotation can only fuse")]
    fn rotation_on_non_last_stage_panics() {
        let mut b = ProgramBuilder::new();
        let k = StageKernel {
            n: 64,
            rows: 1,
            radix: 8,
            s: 1,
            src: 0,
            dst: 0,
            tw: TwiddleLayout {
                base: 0,
                copies: 1,
                n: 64,
            },
            rotation: Some(Rotation {
                d0: 1,
                d1: 1,
                d2: 64,
            }),
            direction: FftDirection::Forward,
        };
        emit_stage_body(&mut b, &k);
    }
}
