//! Butterfly codelet emitter.
//!
//! Generates straight-line XMT instruction sequences for the in-register
//! DFT-of-size-r each thread performs (Section IV-A "Choice of Radix").
//! A small register allocator manages the 32 per-TCU FP registers — the
//! resource that caps the practical radix at 8 on XMT ("32 floating-
//! point registers … enough to store 16 single-precision complex
//! numbers", with the rest needed for twiddles and intermediates).

use parafft::FftDirection;
use xmt_isa::reg::{fr, FReg, NUM_FREGS};
use xmt_isa::ProgramBuilder;

/// A complex value held in two FP registers (re, im).
pub type Cx = (FReg, FReg);

/// Emits FP code through a [`ProgramBuilder`] while tracking register
/// liveness.
pub struct CodeletEmitter<'a> {
    /// The `b` value.
    pub b: &'a mut ProgramBuilder,
    free: Vec<FReg>,
    /// High-water mark of simultaneously live registers.
    peak: usize,
}

impl<'a> CodeletEmitter<'a> {
    /// Construct a new instance.
    pub fn new(b: &'a mut ProgramBuilder) -> Self {
        // Stack of free registers; pop from the end (high indices
        // first so low registers stay visually stable in disassembly).
        let free: Vec<FReg> = (0..NUM_FREGS).rev().map(fr).collect();
        Self { b, free, peak: 0 }
    }

    /// Allocate one FP register; panics if the file is exhausted —
    /// which is exactly the "radix > 8 does not fit" condition the
    /// paper describes.
    pub fn alloc(&mut self) -> FReg {
        let r = self
            .free
            .pop()
            .expect("FP register file exhausted: radix too large for 32 registers");
        self.peak = self.peak.max(NUM_FREGS - self.free.len());
        r
    }

    /// Allocate a complex register pair.
    pub fn alloc_cx(&mut self) -> Cx {
        (self.alloc(), self.alloc())
    }

    /// Return a register to the pool.
    pub fn release(&mut self, r: FReg) {
        debug_assert!(!self.free.contains(&r), "double free of {r}");
        self.free.push(r);
    }

    /// Return a complex pair to the pool.
    pub fn release_cx(&mut self, c: Cx) {
        self.release(c.0);
        self.release(c.1);
    }

    /// Registers currently live.
    pub fn live(&self) -> usize {
        NUM_FREGS - self.free.len()
    }

    /// Peak simultaneous liveness seen so far.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// `(a + b, a - b)` — the radix-2 butterfly. Consumes both inputs;
    /// reuses their registers for the outputs (zero net pressure).
    pub fn dft2(&mut self, a: Cx, b: Cx) -> (Cx, Cx) {
        let sum = self.alloc_cx();
        self.b.fadd(sum.0, a.0, b.0);
        self.b.fadd(sum.1, a.1, b.1);
        // Difference can overwrite a (its last use).
        self.b.fsub(a.0, a.0, b.0);
        self.b.fsub(a.1, a.1, b.1);
        self.release_cx(b);
        (sum, a)
    }

    /// Multiply by ∓i (90° rotation): forward uses `-i`
    /// (`(re,im) → (im,-re)`), inverse `+i`. Consumes the input.
    pub fn rot90(&mut self, x: Cx, dir: FftDirection) -> Cx {
        let t = self.alloc();
        match dir {
            FftDirection::Forward => {
                // out = (im, -re)
                self.b.fneg(t, x.0);
                let out = (x.1, t);
                self.release(x.0);
                out
            }
            FftDirection::Inverse => {
                // out = (-im, re)
                self.b.fneg(t, x.1);
                let out = (t, x.0);
                self.release(x.1);
                out
            }
        }
    }

    /// Full complex multiply `a · w` (4 mul + 2 add/sub). Consumes `a`;
    /// `w` stays live (twiddles are reused across outputs by callers
    /// that want to).
    pub fn cmul(&mut self, a: Cx, w: Cx) -> Cx {
        let t1 = self.alloc();
        let t2 = self.alloc();
        // re = a.re·w.re − a.im·w.im
        self.b.fmul(t1, a.0, w.0);
        self.b.fmul(t2, a.1, w.1);
        self.b.fsub(t1, t1, t2);
        // im = a.re·w.im + a.im·w.re
        self.b.fmul(t2, a.0, w.1);
        self.b.fmul(a.0, a.1, w.0);
        self.b.fadd(t2, t2, a.0);
        self.release(a.0);
        self.release(a.1);
        (t1, t2)
    }

    /// Multiply by `h·(1 ∓ i)` with `h = √2/2` — the ω₈^{∓1} twiddle,
    /// done in 2 mul + 2 add instead of a full cmul. `h` must hold √2/2.
    /// Consumes the input.
    pub fn mul_w8_1(&mut self, x: Cx, h: FReg, dir: FftDirection) -> Cx {
        let re = self.alloc();
        let im = self.alloc();
        match dir {
            FftDirection::Forward => {
                // (re+im)·h, (im−re)·h
                self.b.fadd(re, x.0, x.1);
                self.b.fsub(im, x.1, x.0);
            }
            FftDirection::Inverse => {
                // (re−im)·h, (im+re)·h
                self.b.fsub(re, x.0, x.1);
                self.b.fadd(im, x.1, x.0);
            }
        }
        self.b.fmul(re, re, h);
        self.b.fmul(im, im, h);
        self.release_cx(x);
        (re, im)
    }

    /// Multiply by `h·(−1 ∓ i)` — the ω₈^{∓3} twiddle. Consumes input.
    pub fn mul_w8_3(&mut self, x: Cx, h: FReg, dir: FftDirection) -> Cx {
        let re = self.alloc();
        let im = self.alloc();
        match dir {
            FftDirection::Forward => {
                // re' = (im−re)·h, im' = −(im+re)·h
                self.b.fsub(re, x.1, x.0);
                self.b.fadd(im, x.0, x.1);
                self.b.fmul(re, re, h);
                self.b.fmul(im, im, h);
                self.b.fneg(im, im);
            }
            FftDirection::Inverse => {
                // conjugate: re' = −(re+im)·h… derive from ω₈^{+3} = h(−1+i):
                // re' = x.re·(−h) − x.im·h = −h(re+im)
                // im' = x.re·h + x.im·(−h) = h(re−im)
                self.b.fadd(re, x.0, x.1);
                self.b.fsub(im, x.0, x.1);
                self.b.fmul(re, re, h);
                self.b.fneg(re, re);
                self.b.fmul(im, im, h);
            }
        }
        self.release_cx(x);
        (re, im)
    }

    /// 4-point DFT. Consumes the inputs, returns outputs in order.
    pub fn dft4(&mut self, x: [Cx; 4], dir: FftDirection) -> [Cx; 4] {
        let (e0, e1) = self.dft2(x[0], x[2]);
        let (o0, o1) = self.dft2(x[1], x[3]);
        let o1r = self.rot90(o1, dir);
        let (y0, y2) = self.dft2(e0, o0);
        let (y1, y3) = self.dft2(e1, o1r);
        [y0, y1, y2, y3]
    }

    /// 8-point DFT via two 4-point DFTs and ω₈ twiddles. `h` must hold
    /// √2/2 and stays live.
    pub fn dft8(&mut self, x: [Cx; 8], h: FReg, dir: FftDirection) -> [Cx; 8] {
        let e = self.dft4([x[0], x[2], x[4], x[6]], dir);
        let o = self.dft4([x[1], x[3], x[5], x[7]], dir);
        let t0 = o[0];
        let t1 = self.mul_w8_1(o[1], h, dir);
        let t2 = self.rot90(o[2], dir);
        let t3 = self.mul_w8_3(o[3], h, dir);
        let (y0, y4) = self.dft2(e[0], t0);
        let (y1, y5) = self.dft2(e[1], t1);
        let (y2, y6) = self.dft2(e[2], t2);
        let (y3, y7) = self.dft2(e[3], t3);
        [y0, y1, y2, y3, y4, y5, y6, y7]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parafft::dft::{dft, max_error};
    use parafft::Complex64;
    use xmt_isa::reg::ir;
    use xmt_isa::Interp;

    /// Build a program that loads `n` complex values from word 0,
    /// applies the radix-n codelet, and stores the result at word 100.
    fn codelet_program(n: usize, dir: FftDirection) -> xmt_isa::Program {
        let mut b = ProgramBuilder::new();
        b.li(ir(1), 0); // src base
        b.li(ir(2), 100); // dst base
        let mut em = CodeletEmitter::new(&mut b);
        let mut inputs = Vec::new();
        for j in 0..n {
            let c = em.alloc_cx();
            em.b.flw(c.0, ir(1), (2 * j) as u32);
            em.b.flw(c.1, ir(1), (2 * j + 1) as u32);
            inputs.push(c);
        }
        let outputs: Vec<Cx> = match n {
            2 => {
                let (a, c) = em.dft2(inputs[0], inputs[1]);
                vec![a, c]
            }
            4 => em
                .dft4([inputs[0], inputs[1], inputs[2], inputs[3]], dir)
                .to_vec(),
            8 => {
                let h = em.alloc();
                em.b.fli(h, std::f64::consts::FRAC_1_SQRT_2 as f32);
                let arr = [
                    inputs[0], inputs[1], inputs[2], inputs[3], inputs[4], inputs[5], inputs[6],
                    inputs[7],
                ];
                em.dft8(arr, h, dir).to_vec()
            }
            _ => panic!("unsupported codelet size"),
        };
        let peak = em.peak();
        assert!(
            peak <= 32,
            "codelet peak register use {peak} exceeds the file"
        );
        for (k, c) in outputs.iter().enumerate() {
            em.b.fsw(c.0, ir(2), (2 * k) as u32);
            em.b.fsw(c.1, ir(2), (2 * k + 1) as u32);
        }
        b.halt();
        b.build().unwrap()
    }

    fn run_codelet(n: usize, dir: FftDirection, input: &[Complex64]) -> Vec<Complex64> {
        let prog = codelet_program(n, dir);
        let mut m = Interp::new(256);
        let flat: Vec<f32> = input
            .iter()
            .flat_map(|c| [c.re as f32, c.im as f32])
            .collect();
        m.write_f32s(0, &flat);
        m.run(&prog).unwrap();
        let out = m.read_f32s(100, 2 * n);
        out.chunks(2)
            .map(|p| Complex64::new(p[0] as f64, p[1] as f64))
            .collect()
    }

    fn sample(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| Complex64::new((i as f64 * 0.9).sin(), (i as f64 * 0.4).cos()))
            .collect()
    }

    #[test]
    fn emitted_dft2_matches_reference() {
        let x = sample(2);
        let got = run_codelet(2, FftDirection::Forward, &x);
        let want = dft(&x, FftDirection::Forward);
        assert!(max_error(&got, &want) < 1e-6);
    }

    #[test]
    fn emitted_dft4_matches_reference_both_dirs() {
        let x = sample(4);
        for dir in [FftDirection::Forward, FftDirection::Inverse] {
            let got = run_codelet(4, dir, &x);
            let want = dft(&x, dir);
            assert!(max_error(&got, &want) < 1e-6, "{dir:?}");
        }
    }

    #[test]
    fn emitted_dft8_matches_reference_both_dirs() {
        let x = sample(8);
        for dir in [FftDirection::Forward, FftDirection::Inverse] {
            let got = run_codelet(8, dir, &x);
            let want = dft(&x, dir);
            assert!(max_error(&got, &want) < 1e-6, "{dir:?}");
        }
    }

    #[test]
    fn radix8_fits_the_register_file() {
        // The codelet including loads must fit 32 FP registers — the
        // paper's constraint that caps the radix at 8.
        let mut b = ProgramBuilder::new();
        let mut em = CodeletEmitter::new(&mut b);
        let inputs: Vec<Cx> = (0..8).map(|_| em.alloc_cx()).collect();
        let h = em.alloc();
        em.b.fli(h, core::f32::consts::FRAC_1_SQRT_2);
        let arr: [Cx; 8] = inputs.try_into().unwrap();
        let out = em.dft8(arr, h, FftDirection::Forward);
        let peak = em.peak();
        assert!(peak <= 32, "peak {peak}");
        // Outputs + h are the only live values afterwards.
        assert_eq!(em.live(), 17, "8 complex outputs + h");
        for c in out {
            em.release_cx(c);
        }
        em.release(h);
        assert_eq!(em.live(), 0);
    }

    #[test]
    fn emitter_reuses_registers() {
        let mut b = ProgramBuilder::new();
        let mut em = CodeletEmitter::new(&mut b);
        let a = em.alloc_cx();
        let c = em.alloc_cx();
        let (s, d) = em.dft2(a, c);
        assert_eq!(em.live(), 4);
        em.release_cx(s);
        em.release_cx(d);
        assert_eq!(em.live(), 0);
    }

    #[test]
    #[should_panic(expected = "register file exhausted")]
    fn allocator_overflow_panics() {
        let mut b = ProgramBuilder::new();
        let mut em = CodeletEmitter::new(&mut b);
        for _ in 0..33 {
            em.alloc();
        }
    }
}
