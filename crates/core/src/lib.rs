//! # xmt-fft — the paper's contribution: radix-8 DIF FFT on XMT
//!
//! This crate is the reproduction of the paper's core artifact: the
//! fine-grained, breadth-first, radix-8 decimation-in-frequency FFT
//! written for the XMT many-core, together with the experiment
//! apparatus that evaluates it.
//!
//! * [`codelet`] — register-allocated butterfly emitters (the
//!   radix-2/4/8 in-register DFTs; radix 8 is the largest that fits
//!   the 32 FP registers, Section IV-A).
//! * [`kernels`] — one Stockham DIF stage as one `spawn` section, with
//!   the replicated twiddle-table addressing and the fused rotation
//!   store for the last stage of each dimension.
//! * [`plan`] — whole-transform planning (1D/2D/3D), including the
//!   ablation knobs: forced radix and unfused rotation.
//! * [`run`] — execute a plan on the untimed interpreter or the cycle
//!   simulator, and validate against the `parafft` host reference.
//! * [`phases`] — the per-stage resource-demand model feeding the
//!   calibrated bottleneck projections (Tables IV/V/VI, Fig. 3).
//!
//! ## Example: simulate the paper's FFT on a scaled-down XMT
//!
//! ```
//! use xmt_fft::plan::XmtFftPlan;
//! use xmt_fft::run::{host_reference, rel_error, run_on_machine};
//! use xmt_sim::XmtConfig;
//! use parafft::Complex32;
//!
//! let plan = XmtFftPlan::new_2d(16, 64, 4);
//! let cfg = XmtConfig::xmt_4k().scaled_to(4);
//! let input: Vec<Complex32> =
//!     (0..16 * 64).map(|i| Complex32::new(i as f32, 0.0)).collect();
//! let run = run_on_machine(&plan, &cfg, &input).unwrap();
//! assert!(rel_error(&host_reference(&plan, &input), &run.output) < 1e-3);
//! assert_eq!(run.report.spawns.len(), plan.num_stages());
//! ```

#![warn(missing_docs)]
pub mod codelet;
pub mod golden;
pub mod kernels;
pub mod phases;
pub mod plan;
pub mod run;
pub mod traffic;

pub use kernels::{Rotation, StageKernel, TwiddleLayout};
pub use phases::{project, stage_demands, table4_projection, FftProjection, RooflinePoint};
pub use plan::{default_copies, radix_schedule, StageMeta, XmtFftPlan};
pub use run::{
    host_reference, plan_builder, read_result, rel_error, run_on_interp, run_on_machine, InterpRun,
    MachineRun,
};
