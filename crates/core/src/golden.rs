//! Canonical golden workloads for simulator regression testing.
//!
//! Every timing-visible refactor of `xmt-sim` must leave these runs
//! bit-identical: `tests/tests/golden_cycles.rs` asserts their exact
//! `RunSummary` statistics, and `crates/bench` reuses the same
//! workloads for throughput measurement, so the numbers being
//! benchmarked are the numbers being verified.
//!
//! The set covers the scheduling regimes the simulator distinguishes:
//! a radix-8 FFT kernel (deep FPU + memory pipelines, multi-spawn), a
//! spawn/join thread-storm (activation grants and barrier drain), a
//! prefix-sum ticket loop (serializing `ps` traffic), a
//! compute-saturated FPU chain (no idle cycles to skip), and a
//! dependent-load pointer chase (memory-latency-bound, almost every
//! cycle skippable).

use crate::plan::XmtFftPlan;
use parafft::Complex32;
use xmt_isa::reg::{fr, gr, ir};
use xmt_isa::{Program, ProgramBuilder};
use xmt_sim::{Machine, MachineBuilder, RunReport, SimConfig, XmtConfig};

/// Initial memory images: (word base, f32 words) pairs.
type MemImages = Vec<(usize, Vec<f32>)>;
/// Everything needed to build a machine: config, program, memory
/// size in words, and initial memory images.
type CaseSetup = (XmtConfig, Program, usize, MemImages);

/// A named, deterministic simulator workload.
pub struct GoldenCase {
    /// Stable identifier, used in test assertions and bench output.
    pub name: &'static str,
    build: fn() -> CaseSetup,
}

impl GoldenCase {
    /// A [`MachineBuilder`] for this case with program and memory image
    /// loaded — attach an engine or probe, then `build`.
    pub fn builder(&self) -> MachineBuilder {
        let (cfg, _, _, _) = (self.build)();
        self.builder_on(&cfg)
    }

    /// Like [`GoldenCase::builder`], but on a caller-modified
    /// configuration (what-if analysis: shrink the cache, change DRAM
    /// latency, …). The program and memory image are the case's own,
    /// so `memory_modules` must stay the value the program was
    /// generated for; timing under a modified config is *not* covered
    /// by the golden cycle counts.
    pub fn builder_on(&self, cfg: &XmtConfig) -> MachineBuilder {
        let (_, prog, mem_words, images) = (self.build)();
        let mut b = MachineBuilder::new(cfg, prog).mem_words(mem_words);
        for (base, flat) in &images {
            b = b.write_f32s(*base, flat);
        }
        b
    }

    /// The machine configuration this case runs on (for reporting,
    /// e.g. the TCU count axis of the scaling curve).
    pub fn config(&self) -> XmtConfig {
        let (cfg, _, _, _) = (self.build)();
        cfg
    }

    /// This case as a [`SimConfig`] request value: its architecture and
    /// memory size with every other knob at the default. Shape it
    /// (engine, tier, faults, probe) and hand it back to
    /// [`GoldenCase::builder_cfg`] — or submit it to the job server.
    pub fn sim_config(&self) -> SimConfig {
        let (cfg, _, mem_words, _) = (self.build)();
        SimConfig::new(&cfg).mem_words(mem_words)
    }

    /// A [`MachineBuilder`] for this case lowered from a request value:
    /// `sim` supplies every knob, the case supplies program and memory
    /// images. `sim.arch` must keep the geometry the case's program was
    /// generated for (start from [`GoldenCase::sim_config`]).
    pub fn builder_cfg(&self, sim: &SimConfig) -> MachineBuilder {
        let (_, prog, mem_words, images) = (self.build)();
        let mut b = sim.builder(prog).mem_words(mem_words);
        for (base, flat) in &images {
            b = b.write_f32s(*base, flat);
        }
        b
    }

    /// The program this case runs, for static analysis (`xmt-verify`/
    /// `xmt-lint`) or disassembly.
    pub fn program(&self) -> Program {
        let (_, prog, _, _) = (self.build)();
        prog
    }

    /// Construct the machine for this case, ready to run.
    pub fn machine(&self) -> Machine {
        self.builder().build()
    }

    /// Run the case to completion and return its report.
    pub fn run(&self) -> RunReport {
        self.machine().run().expect("golden case must complete")
    }
}

/// Deterministic pseudo-random complex input (no external RNG crate).
pub fn sample_input(n: usize, seed: u64) -> Vec<Complex32> {
    let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f32 / (1u64 << 53) as f32 - 0.5
    };
    (0..n).map(|_| Complex32::new(next(), next())).collect()
}

/// The scaled-down "4k" configuration all golden cases run on.
pub fn golden_config() -> XmtConfig {
    XmtConfig::xmt_4k().scaled_to(4)
}

fn fft_build(n: usize) -> CaseSetup {
    fft_build_on(golden_config(), n)
}

fn fft_build_on(cfg: XmtConfig, n: usize) -> CaseSetup {
    let plan = XmtFftPlan::new_1d(n, crate::plan::default_copies(n, cfg.memory_modules));
    let input = sample_input(n, 0xF0F7);
    let mut images = vec![(plan.a_base as usize, plan.input_image(&input))];
    for (_, layout, flat) in &plan.twiddles {
        images.push((layout.base as usize, flat.clone()));
    }
    (cfg, plan.program.clone(), plan.mem_words, images)
}

fn spawn_storm_build() -> CaseSetup {
    // Two back-to-back spawns reusing TCUs: tid-indexed stores, then
    // tid-indexed load/add/store, so the barrier must drain real
    // memory traffic both times.
    let mut b = ProgramBuilder::new();
    let par1 = b.label();
    let par2 = b.label();
    let mid = b.label();
    let after = b.label();
    b.li(ir(1), 200);
    b.spawn(ir(1), par1);
    b.jump(mid);
    b.bind(par1);
    b.tid(ir(2));
    b.slli(ir(3), ir(2), 1);
    b.sw(ir(3), ir(2), 0);
    b.join();
    b.bind(mid);
    b.li(ir(1), 200);
    b.spawn(ir(1), par2);
    b.jump(after);
    b.bind(par2);
    b.tid(ir(2));
    b.lw(ir(3), ir(2), 0);
    b.addi(ir(3), ir(3), 5);
    b.sw(ir(3), ir(2), 256);
    b.join();
    b.bind(after);
    b.halt();
    (golden_config(), b.build().unwrap(), 1024, Vec::new())
}

fn ps_tickets_build() -> CaseSetup {
    // Every thread draws a prefix-sum ticket and stores its tid at the
    // ticket slot; exercises the serializing global-register path.
    let mut b = ProgramBuilder::new();
    let par = b.label();
    let after = b.label();
    b.li(ir(1), 96);
    b.spawn(ir(1), par);
    b.jump(after);
    b.bind(par);
    b.li(ir(2), 1);
    b.ps(ir(3), ir(2), gr(1));
    b.tid(ir(4));
    b.sw(ir(4), ir(3), 0);
    b.join();
    b.bind(after);
    b.halt();
    (golden_config(), b.build().unwrap(), 256, Vec::new())
}

fn fpu_chain_build() -> CaseSetup {
    // Compute-saturated: every thread runs a dependent FPU chain with
    // no memory traffic after the initial load, so almost every cycle
    // issues work somewhere and fast-forwarding has nothing to skip.
    let mut b = ProgramBuilder::new();
    let par = b.label();
    let after = b.label();
    b.li(ir(1), 128);
    b.spawn(ir(1), par);
    b.jump(after);
    b.bind(par);
    b.tid(ir(2));
    b.flw(fr(1), ir(2), 0);
    for _ in 0..24 {
        b.fmul(fr(1), fr(1), fr(1));
        b.fadd(fr(1), fr(1), fr(1));
    }
    b.fsw(fr(1), ir(2), 256);
    b.join();
    b.bind(after);
    b.halt();
    let images = vec![(0usize, vec![1.0001f32; 128])];
    (golden_config(), b.build().unwrap(), 1024, images)
}

fn mem_chase_build() -> CaseSetup {
    // Memory-latency-bound: a single thread chases a pointer chain
    // laid out so every hop lands on a line nothing has touched before
    // — a cold miss paying the full DRAM access latency with an idle
    // channel (more threads would stagger and stream the channel at
    // burst rate, turning the run bandwidth-bound). While each fill is
    // in flight the whole machine is quiet: the regime where
    // fast-forwarding pays off most.
    const THREADS: usize = 1;
    const HOPS: usize = 64;
    const LINE_WORDS: usize = 8;
    let mem_words = THREADS * HOPS * LINE_WORDS;
    let mut image = vec![0.0f32; mem_words];
    for t in 0..THREADS {
        for k in 0..HOPS - 1 {
            let cur = (k * THREADS + t) * LINE_WORDS;
            let next = ((k + 1) * THREADS + t) * LINE_WORDS;
            image[cur] = f32::from_bits(next as u32);
        }
    }
    let mut b = ProgramBuilder::new();
    let par = b.label();
    let after = b.label();
    b.li(ir(1), THREADS as u32);
    b.spawn(ir(1), par);
    b.jump(after);
    b.bind(par);
    b.tid(ir(2));
    b.slli(ir(3), ir(2), 3); // thread t starts its chain at line t
    for _ in 0..HOPS {
        b.lw(ir(3), ir(3), 0);
    }
    b.sw(ir(3), ir(2), 0);
    b.join();
    b.bind(after);
    b.halt();
    (
        golden_config(),
        b.build().unwrap(),
        mem_words,
        vec![(0, image)],
    )
}

/// All golden cases, in a stable order.
pub fn cases() -> Vec<GoldenCase> {
    vec![
        GoldenCase {
            name: "fft_radix8_n512",
            build: || fft_build(512),
        },
        GoldenCase {
            name: "spawn_storm",
            build: spawn_storm_build,
        },
        GoldenCase {
            name: "ps_tickets",
            build: ps_tickets_build,
        },
        GoldenCase {
            name: "fpu_chain",
            build: fpu_chain_build,
        },
        GoldenCase {
            name: "mem_chase",
            build: mem_chase_build,
        },
    ]
}

/// Large-configuration scaling workloads: FFT plans on the paper's
/// full-scale 4096-, 8192- and 65536-TCU machines, in both a *dense*
/// regime (n large enough that every cluster runs threads all stage
/// long) and a *sparse* one (thread count well under the TCU count, so
/// most clusters sit idle — the regime where the threaded engine's
/// active-cluster work list pays off most). Not part of [`cases`] (the
/// per-commit golden suite stays cheap); `tests/tests/golden_scaling.rs`
/// pins their cycle counts and spawn digests across engines, and
/// `bench_sim --scaling` measures them into `BENCH_sim.json`.
pub fn scaling_cases() -> Vec<GoldenCase> {
    vec![
        GoldenCase {
            name: "fft_xmt4k_n32768",
            build: || fft_build_on(XmtConfig::xmt_4k(), 32768),
        },
        GoldenCase {
            name: "fft_xmt8k_n8192",
            build: || fft_build_on(XmtConfig::xmt_8k(), 8192),
        },
        GoldenCase {
            name: "fft_xmt8k_n65536",
            build: || fft_build_on(XmtConfig::xmt_8k(), 65536),
        },
        GoldenCase {
            name: "fft_xmt64k_n8192",
            build: || fft_build_on(XmtConfig::xmt_64k(), 8192),
        },
    ]
}

/// Render a report as the Rust constant block the golden test embeds.
pub fn render_const(name: &str, s: &RunReport) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let st = &s.stats;
    writeln!(
        out,
        "    (\"{name}\", Golden {{\n        cycles: {},\n        instructions: {},\n        \
         flops: {},\n        mem_reads: {},\n        mem_writes: {},\n        threads: {},\n        \
         spawns: {},\n        stall_scoreboard: {},\n        stall_fpu: {},\n        \
         stall_mdu: {},\n        stall_lsu: {},\n        spawn_digest: {:#018x},\n    }}),",
        st.cycles,
        st.instructions,
        st.flops,
        st.mem_reads,
        st.mem_writes,
        st.threads,
        st.spawns,
        st.stall_scoreboard,
        st.stall_fpu,
        st.stall_mdu,
        st.stall_lsu,
        spawn_digest(s),
    )
    .unwrap();
    out
}

/// Order-sensitive digest of the original `SpawnStats` fields, so
/// per-spawn timing is pinned as tightly as the totals. Observability
/// fields added later (`start_cycle`, per-cause stalls) are kept out
/// of the digest so the committed golden values stay stable.
pub fn spawn_digest(s: &RunReport) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for sp in &s.spawns {
        mix(sp.index as u64);
        mix(sp.threads);
        mix(sp.cycles);
        mix(sp.instructions);
        mix(sp.flops);
        mix(sp.mem_reads);
        mix(sp.mem_writes);
        mix(sp.dram_bytes);
    }
    h
}
