//! FFT workload model: per-stage resource demands for the analytic
//! projection of paper-scale runs (Table IV, Table V, Fig. 3).
//!
//! Demand accounting per radix-`r` stage over `N` total elements:
//!
//! * **FLOPs (actual)** — `N/r` codelets at `codelet_flops(r)` plus,
//!   on twiddled stages, `(r−1)` complex multiplies (6 real ops) per
//!   codelet. The 5N·log₂N convention is used only for reporting.
//! * **Interconnect words** — every element is loaded (2 words) and
//!   stored (2 words); twiddled stages additionally load `(r−1)`
//!   factors (2 words each) per codelet, spread across replicas.
//! * **DRAM bytes** — when the working set exceeds the on-chip cache,
//!   every stage streams: 8 B/element read, plus write-allocate fill
//!   and write-back on the store side (16 B/element) — 24 B/element
//!   total. When the data fits in cache, only the initial load pays.
//! * **Traffic class** — rotation stages present the structured burst
//!   pattern ([`TrafficClass::Rotation`]); others are hash-spread.

use crate::plan::radix_schedule;
use parafft::codelets::codelet_flops;
use parafft::flops::fft_flops_convention_nd;
use xmt_noc::TrafficClass;
use xmt_sim::perfmodel::{gflops, PhaseDemand, PhaseTime};
use xmt_sim::XmtConfig;

/// Pass geometry (mirrors `XmtFftPlan` without generating code).
fn passes(dims: &[usize]) -> Vec<usize> {
    match dims.len() {
        1 => vec![dims[0]],
        2 => vec![dims[1], dims[0]],
        3 => vec![dims[2], dims[0], dims[1]],
        _ => panic!("1-3 dimensions supported"),
    }
}

/// Build per-stage demands for a transform of `dims` on `cfg`.
pub fn stage_demands(dims: &[usize], cfg: &XmtConfig) -> Vec<PhaseDemand> {
    let total: usize = dims.iter().product();
    let n_elems = total as f64;
    let data_bytes = 8.0 * n_elems;
    let cache_bytes = (cfg.memory_modules * cfg.cache.lines * cfg.cache.line_words * 4) as f64;
    // Ping-pong arrays: both src and dst compete for cache.
    let streams = 2.0 * data_bytes > cache_bytes;

    let multi_dim = dims.len() > 1;
    let mut out = Vec::new();
    for (dim, &n) in passes(dims).iter().enumerate() {
        let sched = radix_schedule(n);
        let last_idx = sched.len() - 1;
        for (idx, &r) in sched.iter().enumerate() {
            let r = r as usize;
            let codelets = n_elems / r as f64;
            let is_last = idx == last_idx;
            let is_rotation = is_last && multi_dim;
            let twiddled = !is_last;

            let mut flops = codelets * codelet_flops(r) as f64;
            let mut icn_down = 2.0 * n_elems;
            let icn_up = 2.0 * n_elems;
            if twiddled {
                flops += codelets * (r as f64 - 1.0) * 6.0;
                icn_down += codelets * (r as f64 - 1.0) * 2.0;
            }
            let dram_bytes = if streams {
                24.0 * n_elems
            } else if dim == 0 && idx == 0 {
                8.0 * n_elems
            } else {
                0.0
            };
            out.push(PhaseDemand {
                name: if is_rotation {
                    format!("dim{dim} stage{idx} (rotation)")
                } else {
                    format!("dim{dim} stage{idx}")
                },
                flops,
                icn_words_up: icn_up,
                icn_words_down: icn_down,
                dram_bytes,
                traffic: if is_rotation {
                    TrafficClass::Rotation
                } else {
                    TrafficClass::Hashed
                },
                parallelism: codelets,
            });
        }
    }
    out
}

/// Aggregated projection of one configuration on one transform shape.
#[derive(Debug, Clone)]
pub struct FftProjection {
    /// The `config_name` value.
    pub config_name: &'static str,
    /// The `dims` value.
    pub dims: Vec<usize>,
    /// The `total_cycles` value.
    pub total_cycles: f64,
    /// GFLOPS under the paper's 5N·log₂N reporting convention.
    pub gflops_convention: f64,
    /// GFLOPS counting actual operations (the Roofline convention).
    pub gflops_actual: f64,
    /// The `phases` value.
    pub phases: Vec<PhaseTime>,
    /// The `demands` value.
    pub demands: Vec<PhaseDemand>,
}

/// One aggregated Roofline point (Fig. 3 marker).
#[derive(Debug, Clone, Copy)]
pub struct RooflinePoint {
    /// Operational intensity in actual FLOPs per DRAM byte.
    pub intensity: f64,
    /// Achieved GFLOPS (actual-FLOP convention).
    pub gflops: f64,
}

impl FftProjection {
    fn aggregate(&self, rotation: bool) -> RooflinePoint {
        let mut flops = 0.0;
        let mut bytes = 0.0;
        let mut cycles = 0.0;
        for (d, t) in self.demands.iter().zip(&self.phases) {
            if d.name.contains("rotation") == rotation {
                flops += d.flops;
                bytes += d.dram_bytes;
                cycles += t.cycles;
            }
        }
        RooflinePoint {
            intensity: if bytes > 0.0 {
                flops / bytes
            } else {
                f64::INFINITY
            },
            gflops: if cycles > 0.0 {
                flops * 3.3 / cycles
            } else {
                0.0
            },
        }
    }

    /// The Fig. 3 rotation-phase marker.
    pub fn rotation_point(&self) -> RooflinePoint {
        self.aggregate(true)
    }

    /// The Fig. 3 non-rotation marker.
    pub fn non_rotation_point(&self) -> RooflinePoint {
        self.aggregate(false)
    }

    /// The Fig. 3 overall marker.
    pub fn overall_point(&self) -> RooflinePoint {
        let flops: f64 = self.demands.iter().map(|d| d.flops).sum();
        let bytes: f64 = self.demands.iter().map(|d| d.dram_bytes).sum();
        RooflinePoint {
            intensity: if bytes > 0.0 {
                flops / bytes
            } else {
                f64::INFINITY
            },
            gflops: if self.total_cycles > 0.0 {
                flops * 3.3 / self.total_cycles
            } else {
                0.0
            },
        }
    }

    /// Fraction of total cycles spent in rotation phases.
    pub fn rotation_share(&self) -> f64 {
        let rot: f64 = self
            .demands
            .iter()
            .zip(&self.phases)
            .filter(|(d, _)| d.name.contains("rotation"))
            .map(|(_, t)| t.cycles)
            .sum();
        rot / self.total_cycles
    }
}

/// Project a transform of `dims` on `cfg`.
pub fn project(cfg: &XmtConfig, dims: &[usize]) -> FftProjection {
    let demands = stage_demands(dims, cfg);
    let (phases, total_cycles) = xmt_sim::run_phases(cfg, &demands);
    let conv = fft_flops_convention_nd(&dims.iter().map(|&d| d as u64).collect::<Vec<_>>());
    let actual: f64 = demands.iter().map(|d| d.flops).sum();
    FftProjection {
        config_name: cfg.name,
        dims: dims.to_vec(),
        gflops_convention: gflops(cfg, conv, total_cycles),
        gflops_actual: gflops(cfg, actual, total_cycles),
        total_cycles,
        phases,
        demands,
    }
}

/// The paper's Table IV experiment: single-precision complex 3D FFT of
/// 512×512×512 on each configuration.
pub fn table4_projection() -> Vec<FftProjection> {
    XmtConfig::paper_configs()
        .iter()
        .map(|cfg| project(cfg, &[512, 512, 512]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmt_sim::Bottleneck;

    /// Paper Table IV: GFLOPS per configuration.
    const PAPER_GFLOPS: [f64; 5] = [239.0, 500.0, 3667.0, 12570.0, 18972.0];

    #[test]
    fn stage_demand_counts() {
        let cfg = XmtConfig::xmt_4k();
        let d = stage_demands(&[512, 512, 512], &cfg);
        assert_eq!(d.len(), 9, "three radix-8 stages per dimension");
        let rotations = d.iter().filter(|x| x.name.contains("rotation")).count();
        assert_eq!(rotations, 3);
        // 512³ streams on every configuration (1 GiB working set).
        assert!(d.iter().all(|x| x.dram_bytes > 0.0));
        // Twiddled stages carry extra download words.
        assert!(d[0].icn_words_down > d[0].icn_words_up);
        // Rotation stages skip twiddles.
        let rot = d.iter().find(|x| x.name.contains("rotation")).unwrap();
        assert_eq!(rot.icn_words_down, rot.icn_words_up);
    }

    #[test]
    fn table4_shape_holds() {
        let proj = table4_projection();
        let g: Vec<f64> = proj.iter().map(|p| p.gflops_convention).collect();
        // Monotone increase across configurations.
        for w in g.windows(2) {
            assert!(w[1] > w[0], "GFLOPS must grow: {g:?}");
        }
        // 4k→8k doubles (both DRAM-bound, bandwidth doubles).
        let r1 = g[1] / g[0];
        assert!((1.8..=2.2).contains(&r1), "8k/4k = {r1}");
        // 8k→64k: large jump (paper 7.3×).
        let r2 = g[2] / g[1];
        assert!((6.0..=9.0).contains(&r2), "64k/8k = {r2}");
        // 64k→128k x2 (paper 3.4×).
        let r3 = g[3] / g[2];
        assert!((2.0..=4.0).contains(&r3), "x2/64k = {r3}");
        // x2→x4: diminishing return, well under 2× (paper 1.51×).
        let r4 = g[4] / g[3];
        assert!((1.15..=1.7).contains(&r4), "x4/x2 = {r4}");
    }

    #[test]
    fn table4_absolute_within_tolerance() {
        // Absolute values are not expected to match the paper exactly
        // (our substrate differs) but must land in the same regime.
        let proj = table4_projection();
        for (p, paper) in proj.iter().zip(PAPER_GFLOPS) {
            let ratio = p.gflops_convention / paper;
            assert!(
                (0.55..=1.6).contains(&ratio),
                "{}: model {:.0} vs paper {paper} (ratio {ratio:.2})",
                p.config_name,
                p.gflops_convention
            );
        }
    }

    #[test]
    fn observation_a_small_configs_bandwidth_bound() {
        // Fig. 3 observation (a): on 4k and 8k both phases sit on the
        // bandwidth slope — every stage is DRAM-bound.
        for cfg in [XmtConfig::xmt_4k(), XmtConfig::xmt_8k()] {
            let p = project(&cfg, &[512, 512, 512]);
            for t in &p.phases {
                assert_eq!(t.bound, Bottleneck::Dram, "{} {}", cfg.name, t.name);
            }
        }
    }

    #[test]
    fn observation_b_rotation_falls_below_slope() {
        // 64k: rotation begins to fall below the slope (ICN-bound,
        // marginally); 128k x2: more pronounced.
        let p64 = project(&XmtConfig::xmt_64k(), &[512, 512, 512]);
        let rot64: Vec<&xmt_sim::PhaseTime> = p64
            .phases
            .iter()
            .filter(|t| t.name.contains("rotation"))
            .collect();
        for t in &rot64 {
            assert_eq!(t.bound, Bottleneck::Icn, "64k rotation must be ICN-bound");
            let gap = t.icn_cycles / t.dram_cycles;
            assert!((1.0..1.5).contains(&gap), "64k gap should be mild: {gap}");
        }
        let px2 = project(&XmtConfig::xmt_128k_x2(), &[512, 512, 512]);
        let rot_x2 = px2
            .phases
            .iter()
            .find(|t| t.name.contains("rotation"))
            .unwrap();
        let gap_x2 = rot_x2.icn_cycles / rot_x2.dram_cycles;
        let gap_64 = rot64[0].icn_cycles / rot64[0].dram_cycles;
        assert!(
            gap_x2 > gap_64 * 1.5,
            "x2 gap {gap_x2} must exceed 64k gap {gap_64}"
        );
    }

    #[test]
    fn observation_c_x4_icn_bound() {
        // 128k x4: even non-rotation stages are ICN-bound; extra DRAM
        // bandwidth no longer helps much.
        let p = project(&XmtConfig::xmt_128k_x4(), &[512, 512, 512]);
        let non_rot = p
            .phases
            .iter()
            .find(|t| !t.name.contains("rotation"))
            .unwrap();
        assert_eq!(non_rot.bound, Bottleneck::Icn);
    }

    #[test]
    fn roofline_points_ordering() {
        // Rotation has lower operational intensity than non-rotation
        // (pure data movement), and overall sits between them.
        let p = project(&XmtConfig::xmt_8k(), &[512, 512, 512]);
        let r = p.rotation_point();
        let nr = p.non_rotation_point();
        let o = p.overall_point();
        assert!(r.intensity < nr.intensity);
        assert!(o.intensity > r.intensity && o.intensity < nr.intensity);
        assert!(o.gflops > r.gflops.min(nr.gflops) && o.gflops < r.gflops.max(nr.gflops));
    }

    #[test]
    fn small_transform_fits_in_cache() {
        let cfg = XmtConfig::xmt_64k();
        let d = stage_demands(&[64, 64], &cfg);
        // Only the very first stage pays DRAM traffic.
        assert!(d[0].dram_bytes > 0.0);
        assert!(d[1..].iter().all(|x| x.dram_bytes == 0.0));
    }
}
