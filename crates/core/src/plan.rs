//! Whole-transform planning: chain stage kernels into a complete XMT
//! program for a 1D, 2D or 3D single-precision complex FFT.
//!
//! The generated program is exactly the paper's structure: per
//! dimension, `log₈ N` breadth-first radix-8 stages (with a 4 or 2
//! stage when `N` is not a power of 8), each one `spawn`; the last
//! stage of each dimension fuses the axis rotation. The transform
//! ping-pongs between two arrays (self-sorting Stockham), so no
//! separate digit-reversal pass is needed.

use crate::kernels::{Rotation, StageKernel, TwiddleLayout};
use parafft::twiddle::{replication_for, ReplicatedTwiddles, TwiddleTable};
use parafft::{Complex32, FftDirection};
use xmt_isa::reg::ir;
use xmt_isa::{Program, ProgramBuilder};

/// Metadata for one generated stage (one spawn).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageMeta {
    /// Dimension pass (0-based).
    pub dim: usize,
    /// Stage index within its pass.
    pub idx: usize,
    /// Full kernel parameters.
    pub kernel: StageKernel,
    /// True if this stage performs (or is) a rotation.
    pub is_rotation: bool,
    /// True for a pure rotation-copy pass (the unfused ablation); the
    /// kernel field then only carries geometry, not butterfly params.
    pub is_copy: bool,
}

/// A complete planned transform.
#[derive(Debug, Clone)]
pub struct XmtFftPlan {
    /// The executable program (serial driver + one section per stage).
    pub program: Program,
    /// Per-stage metadata, in execution order (matches the machine's
    /// per-spawn statistics order).
    pub stages: Vec<StageMeta>,
    /// The transform shape (1–3 dimensions).
    pub dims: Vec<usize>,
    /// Total elements.
    pub total: usize,
    /// Word address of buffer A (input is loaded here).
    pub a_base: u32,
    /// Word address of buffer B.
    pub b_base: u32,
    /// Where the final result lives (A or B depending on stage parity).
    pub result_base: u32,
    /// Replicated twiddle tables: (row length, layout, flat f32 data).
    pub twiddles: Vec<(usize, TwiddleLayout, Vec<f32>)>,
    /// Words of shared memory the program needs.
    pub mem_words: usize,
}

/// Factor a power-of-two row length into kernel radices, preferring 8
/// (the paper's choice), with a 4 or 2 tail.
pub fn radix_schedule(n: usize) -> Vec<u32> {
    assert!(
        n.is_power_of_two() && n >= 2,
        "row length must be a power of two >= 2"
    );
    let mut bits = n.trailing_zeros();
    let mut out = Vec::new();
    while bits >= 3 {
        out.push(8);
        bits -= 3;
    }
    match bits {
        2 => out.push(4),
        1 => out.push(2),
        _ => {}
    }
    out
}

/// Replica count for a row length: the paper's policy (one cache line
/// per cache module), rounded up to a power of two for shift-only
/// indexing in the kernels.
pub fn default_copies(n: usize, cache_modules: usize) -> u32 {
    // 8-word lines hold 4 single-precision complex factors.
    let c = replication_for(n, cache_modules, 4);
    (c.next_power_of_two() as u32).max(1)
}

impl XmtFftPlan {
    /// Plan a 1D transform of `n` points (power of two ≥ 2).
    pub fn new_1d(n: usize, copies: u32) -> Self {
        Self::build(&[n], copies)
    }

    /// Plan a 2D transform over a `rows × cols` row-major array.
    pub fn new_2d(rows: usize, cols: usize, copies: u32) -> Self {
        Self::build(&[rows, cols], copies)
    }

    /// Plan a 3D transform over a `(d0, d1, d2)` row-major array.
    pub fn new_3d(shape: (usize, usize, usize), copies: u32) -> Self {
        Self::build(&[shape.0, shape.1, shape.2], copies)
    }

    /// Core builder with the paper's choices: greedy radix-8 schedule
    /// and rotation fused into each pass's last stage. `copies` is the
    /// twiddle replica count (power of two); use [`default_copies`]
    /// for the paper's policy.
    pub fn build(dims: &[usize], copies: u32) -> Self {
        Self::build_with(dims, copies, None, true)
    }

    /// Plan an inverse (unnormalized) transform of the same shapes.
    pub fn build_inverse(dims: &[usize], copies: u32) -> Self {
        Self::build_full(dims, copies, None, true, FftDirection::Inverse)
    }

    /// Builder exposing the Section IV-A design choices for ablation:
    /// `forced_radix` pins every stage to one radix (each dimension
    /// must be a power of it); `fuse_rotation = false` emits a separate
    /// rotation-copy pass after each dimension instead of fusing it
    /// into the last stage.
    pub fn build_with(
        dims: &[usize],
        copies: u32,
        forced_radix: Option<u32>,
        fuse_rotation: bool,
    ) -> Self {
        Self::build_full(
            dims,
            copies,
            forced_radix,
            fuse_rotation,
            FftDirection::Forward,
        )
    }

    /// Fully general builder: ablation knobs plus transform direction.
    pub fn build_full(
        dims: &[usize],
        copies: u32,
        forced_radix: Option<u32>,
        fuse_rotation: bool,
        direction: FftDirection,
    ) -> Self {
        assert!((1..=3).contains(&dims.len()), "1–3 dimensions supported");
        assert!(copies.is_power_of_two());
        for &d in dims {
            assert!(
                d.is_power_of_two() && d >= 2,
                "each dimension must be a power of two >= 2"
            );
        }
        let total: usize = dims.iter().product();
        let a_base = 0u32;
        let b_base = (2 * total) as u32;

        // One twiddle table per distinct row length.
        let mut row_lengths: Vec<usize> = match dims.len() {
            1 => vec![dims[0]],
            2 => vec![dims[1], dims[0]],
            _ => vec![dims[2], dims[0], dims[1]],
        };
        let mut distinct = row_lengths.clone();
        distinct.sort_unstable();
        distinct.dedup();
        let mut tw_cursor = (4 * total) as u32;
        let mut twiddles: Vec<(usize, TwiddleLayout, Vec<f32>)> = Vec::new();
        for &n in &distinct {
            let layout = TwiddleLayout {
                base: tw_cursor,
                copies,
                n: n as u32,
            };
            let table = TwiddleTable::<f32>::new(n, direction);
            let rep = ReplicatedTwiddles::new(&table, copies as usize);
            let flat: Vec<f32> = rep.flat().iter().flat_map(|c| [c.re, c.im]).collect();
            tw_cursor += layout.words();
            twiddles.push((n, layout, flat));
        }
        let tw_for = |n: usize| -> TwiddleLayout {
            twiddles
                .iter()
                .find(|(tn, _, _)| *tn == n)
                .expect("table exists")
                .1
        };

        // Per-pass geometry: (rows, row length, rotation descriptor).
        // Rotation uses the current logical shape, so the transform
        // returns to its original layout after all passes.
        let passes: Vec<(usize, usize, Option<Rotation>)> = match dims.len() {
            1 => vec![(1, dims[0], None)],
            2 => {
                let (r, c) = (dims[0], dims[1]);
                vec![
                    (
                        r,
                        c,
                        Some(Rotation {
                            d0: r as u32,
                            d1: 1,
                            d2: c as u32,
                        }),
                    ),
                    (
                        c,
                        r,
                        Some(Rotation {
                            d0: c as u32,
                            d1: 1,
                            d2: r as u32,
                        }),
                    ),
                ]
            }
            _ => {
                let (d0, d1, d2) = (dims[0], dims[1], dims[2]);
                vec![
                    (
                        d0 * d1,
                        d2,
                        Some(Rotation {
                            d0: d0 as u32,
                            d1: d1 as u32,
                            d2: d2 as u32,
                        }),
                    ),
                    (
                        d1 * d2,
                        d0,
                        Some(Rotation {
                            d0: d1 as u32,
                            d1: d2 as u32,
                            d2: d0 as u32,
                        }),
                    ),
                    (
                        d2 * d0,
                        d1,
                        Some(Rotation {
                            d0: d2 as u32,
                            d1: d0 as u32,
                            d2: d1 as u32,
                        }),
                    ),
                ]
            }
        };
        // The row_lengths vec above must match the pass order.
        debug_assert_eq!(row_lengths, passes.iter().map(|p| p.1).collect::<Vec<_>>());
        row_lengths.clear();

        // Build the stage list, ping-ponging between A and B.
        let mut stages: Vec<StageMeta> = Vec::new();
        let mut in_a = true;
        for (dim, &(rows, n, rot)) in passes.iter().enumerate() {
            let sched = match forced_radix {
                None => radix_schedule(n),
                Some(r) => {
                    let k = parafft::permute::exact_log(n, r as usize)
                        .expect("dimension must be a power of the forced radix");
                    vec![r; k as usize]
                }
            };
            let last_idx = sched.len() - 1;
            let mut s = 1u32;
            for (idx, &r) in sched.iter().enumerate() {
                let (src, dst) = if in_a {
                    (a_base, b_base)
                } else {
                    (b_base, a_base)
                };
                let rotation = if idx == last_idx && fuse_rotation {
                    rot
                } else {
                    None
                };
                let kernel = StageKernel {
                    n: n as u32,
                    rows: rows as u32,
                    radix: r,
                    s,
                    src,
                    dst,
                    tw: tw_for(n),
                    rotation,
                    direction,
                };
                stages.push(StageMeta {
                    dim,
                    idx,
                    kernel,
                    is_rotation: rotation.is_some(),
                    is_copy: false,
                });
                s *= r;
                in_a = !in_a;
            }
            // Unfused rotation: a separate copy pass (only meaningful
            // for multidimensional transforms).
            if !fuse_rotation {
                if let Some(rotation) = rot {
                    let (src, dst) = if in_a {
                        (a_base, b_base)
                    } else {
                        (b_base, a_base)
                    };
                    let kernel = StageKernel {
                        n: n as u32,
                        rows: rows as u32,
                        radix: 8,
                        s: (n / 8) as u32,
                        src,
                        dst,
                        tw: tw_for(n),
                        rotation: Some(rotation),
                        direction,
                    };
                    stages.push(StageMeta {
                        dim,
                        idx: sched.len(),
                        kernel,
                        is_rotation: true,
                        is_copy: true,
                    });
                    in_a = !in_a;
                }
            }
        }
        let result_base = if in_a { a_base } else { b_base };

        // Emit: serial driver first, then the sections.
        let mut b = ProgramBuilder::new();
        let labels: Vec<_> = stages.iter().map(|_| b.label()).collect();
        for (st, &lab) in stages.iter().zip(&labels) {
            b.li(ir(1), st.kernel.threads());
            b.spawn(ir(1), lab);
        }
        b.halt();
        for (st, &lab) in stages.iter().zip(&labels) {
            b.bind(lab);
            if st.is_copy {
                let k = &st.kernel;
                crate::kernels::emit_rotation_copy_body(
                    &mut b,
                    k.rows,
                    k.n,
                    k.src,
                    k.dst,
                    k.rotation.expect("copy pass carries a rotation"),
                );
            } else {
                crate::kernels::emit_stage_body(&mut b, &st.kernel);
            }
        }
        let program = b.build().expect("plan program must build");

        let mem_words = tw_cursor as usize + 64;
        Self {
            program,
            stages,
            dims: dims.to_vec(),
            total,
            a_base,
            b_base,
            result_base,
            twiddles,
            mem_words,
        }
    }

    /// Flatten complex input to the f32 image loaded at `a_base`.
    pub fn input_image(&self, input: &[Complex32]) -> Vec<f32> {
        assert_eq!(
            input.len(),
            self.total,
            "input length must match the plan shape"
        );
        input.iter().flat_map(|c| [c.re, c.im]).collect()
    }

    /// Total virtual threads across all stages.
    pub fn total_threads(&self) -> u64 {
        self.stages.iter().map(|s| s.kernel.threads() as u64).sum()
    }

    /// Number of stages (spawns).
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radix_schedule_prefers_8() {
        assert_eq!(radix_schedule(512), vec![8, 8, 8]);
        assert_eq!(radix_schedule(1024), vec![8, 8, 8, 2]);
        assert_eq!(radix_schedule(256), vec![8, 8, 4]);
        assert_eq!(radix_schedule(8), vec![8]);
        assert_eq!(radix_schedule(4), vec![4]);
        assert_eq!(radix_schedule(2), vec![2]);
    }

    #[test]
    fn paper_shape_has_nine_stages() {
        // 512³ = three passes of three radix-8 stages.
        let plan = XmtFftPlan::new_3d((64, 64, 64), 2);
        assert_eq!(plan.num_stages(), 6); // 64 = 8·8 → 2 stages × 3 dims
        let plan512 = radix_schedule(512).len() * 3;
        assert_eq!(plan512, 9);
    }

    #[test]
    fn stage_geometry_1d() {
        let plan = XmtFftPlan::new_1d(512, 4);
        assert_eq!(plan.num_stages(), 3);
        let s: Vec<u32> = plan.stages.iter().map(|m| m.kernel.s).collect();
        assert_eq!(s, vec![1, 8, 64]);
        // Ping-pong: A→B→A→B; result in B after 3 stages.
        assert_eq!(plan.stages[0].kernel.src, plan.a_base);
        assert_eq!(plan.stages[1].kernel.src, plan.b_base);
        assert_eq!(plan.result_base, plan.b_base);
        assert!(
            !plan.stages.iter().any(|m| m.is_rotation),
            "1D has no rotation"
        );
    }

    #[test]
    fn rotation_on_last_stage_of_each_pass() {
        let plan = XmtFftPlan::new_3d((8, 8, 8), 2);
        assert_eq!(plan.num_stages(), 3);
        assert!(
            plan.stages.iter().all(|m| m.is_rotation),
            "8 = one radix-8 stage per dim"
        );
        let plan2 = XmtFftPlan::new_3d((64, 64, 64), 2);
        let rots: Vec<bool> = plan2.stages.iter().map(|m| m.is_rotation).collect();
        assert_eq!(rots, vec![false, true, false, true, false, true]);
    }

    #[test]
    fn thread_counts_match_paper_formula() {
        // Paper: "for an input size of 256³, 2 million threads are
        // available" (per stage: N/8).
        let n: u64 = 256 * 256 * 256;
        let plan = XmtFftPlan::new_3d((256, 256, 256), 1);
        let per_stage = plan.stages[0].kernel.threads() as u64;
        assert_eq!(per_stage, n / 8);
        assert!(per_stage > 2_000_000);
    }

    #[test]
    fn twiddle_tables_shared_across_dimensions() {
        let plan = XmtFftPlan::new_3d((16, 16, 16), 2);
        assert_eq!(plan.twiddles.len(), 1, "cube shares one table");
        let plan2 = XmtFftPlan::new_2d(16, 64, 2);
        assert_eq!(plan2.twiddles.len(), 2);
    }

    #[test]
    fn default_copies_power_of_two() {
        for n in [64usize, 512, 4096] {
            for modules in [16usize, 128, 2048] {
                let c = default_copies(n, modules);
                assert!(c.is_power_of_two());
                assert!(c >= 1);
            }
        }
        // Small table, many modules: heavy replication.
        assert!(default_copies(64, 2048) >= 64);
        // Huge table: single copy suffices.
        assert_eq!(default_copies(1 << 20, 128), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_dims() {
        XmtFftPlan::new_1d(24, 1);
    }

    #[test]
    fn forced_radix_schedules() {
        let p2 = XmtFftPlan::build_with(&[64], 2, Some(2), true);
        assert_eq!(p2.num_stages(), 6);
        assert!(p2.stages.iter().all(|m| m.kernel.radix == 2));
        let p4 = XmtFftPlan::build_with(&[64], 2, Some(4), true);
        assert_eq!(p4.num_stages(), 3);
        let p8 = XmtFftPlan::build_with(&[64], 2, Some(8), true);
        assert_eq!(p8.num_stages(), 2);
    }

    #[test]
    #[should_panic(expected = "power of the forced radix")]
    fn forced_radix_must_divide() {
        XmtFftPlan::build_with(&[32], 2, Some(8), true);
    }

    #[test]
    fn unfused_rotation_adds_copy_passes() {
        let fused = XmtFftPlan::build_with(&[16, 64], 2, None, true);
        let unfused = XmtFftPlan::build_with(&[16, 64], 2, None, false);
        assert_eq!(unfused.num_stages(), fused.num_stages() + 2);
        let copies: Vec<bool> = unfused.stages.iter().map(|m| m.is_copy).collect();
        assert_eq!(copies.iter().filter(|&&c| c).count(), 2);
        // Copy passes come after each dimension's FFT stages.
        assert!(unfused
            .stages
            .iter()
            .filter(|m| m.is_copy)
            .all(|m| m.is_rotation));
        // FFT stages of the unfused plan carry no rotation.
        assert!(unfused
            .stages
            .iter()
            .filter(|m| !m.is_copy)
            .all(|m| m.kernel.rotation.is_none()));
    }
}
