//! Execute a planned transform on the untimed interpreter or the cycle
//! simulator, and validate against the host reference library.

use crate::plan::XmtFftPlan;
use parafft::Complex32;
use xmt_isa::{ExecError, Interp, RunStats};
use xmt_sim::{MachineBuilder, RunReport, SimConfig, SimError, XmtConfig};

/// Result of running a plan: the transformed data plus engine stats.
#[derive(Debug, Clone)]
pub struct InterpRun {
    /// The `output` value.
    pub output: Vec<Complex32>,
    /// Accumulated statistics.
    pub stats: RunStats,
}

/// Result of running a plan on the cycle simulator.
#[derive(Debug, Clone)]
pub struct MachineRun {
    /// The `output` value.
    pub output: Vec<Complex32>,
    /// Statistics, spawn log and utilization for the run.
    pub report: RunReport,
}

fn unpack(flat: &[f32]) -> Vec<Complex32> {
    flat.chunks(2).map(|p| Complex32::new(p[0], p[1])).collect()
}

/// Run on the untimed interpreter (functional check; fast).
pub fn run_on_interp(plan: &XmtFftPlan, input: &[Complex32]) -> Result<InterpRun, ExecError> {
    let mut m = Interp::new(plan.mem_words);
    m.write_f32s(plan.a_base as usize, &plan.input_image(input));
    for (_, layout, flat) in &plan.twiddles {
        m.write_f32s(layout.base as usize, flat);
    }
    let stats = m.run(&plan.program)?;
    let flat = m.read_f32s(plan.result_base as usize, 2 * plan.total);
    Ok(InterpRun {
        output: unpack(&flat),
        stats,
    })
}

/// A [`MachineBuilder`] loaded with the plan's program, twiddle tables
/// and packed input — attach an engine or probe, then build and run.
pub fn plan_builder(plan: &XmtFftPlan, cfg: &XmtConfig, input: &[Complex32]) -> MachineBuilder {
    let mut b = MachineBuilder::new(cfg, plan.program.clone())
        .mem_words(plan.mem_words)
        .write_f32s(plan.a_base as usize, &plan.input_image(input));
    for (_, layout, flat) in &plan.twiddles {
        b = b.write_f32s(layout.base as usize, flat);
    }
    b
}

/// [`plan_builder`] for a [`SimConfig`] request value: lowers the
/// config (engine, tier, faults, watchdog, limits) onto a builder and
/// loads the plan's program, twiddles and packed input on top. The
/// single seam through which request values become FFT machines.
pub fn plan_builder_cfg(plan: &XmtFftPlan, sim: &SimConfig, input: &[Complex32]) -> MachineBuilder {
    let mut b = sim
        .builder(plan.program.clone())
        .mem_words(plan.mem_words)
        .write_f32s(plan.a_base as usize, &plan.input_image(input));
    for (_, layout, flat) in &plan.twiddles {
        b = b.write_f32s(layout.base as usize, flat);
    }
    b
}

/// Unpack the transform result from a finished machine's memory.
pub fn read_result<P: xmt_sim::Probe>(
    plan: &XmtFftPlan,
    m: &xmt_sim::Machine<P>,
) -> Vec<Complex32> {
    let mut flat = vec![0.0f32; 2 * plan.total];
    m.read_f32s_into(plan.result_base as usize, &mut flat);
    unpack(&flat)
}

/// Run on the cycle simulator with the given machine configuration.
pub fn run_on_machine(
    plan: &XmtFftPlan,
    cfg: &XmtConfig,
    input: &[Complex32],
) -> Result<MachineRun, SimError> {
    let mut m = plan_builder(plan, cfg, input).build();
    let report = m.run().into_result()?;
    Ok(MachineRun {
        output: read_result(plan, &m),
        report,
    })
}

/// Host-reference forward transform of the same shape (single
/// precision, matching the XMT kernels).
pub fn host_reference(plan: &XmtFftPlan, input: &[Complex32]) -> Vec<Complex32> {
    let mut data = input.to_vec();
    match plan.dims.len() {
        1 => parafft::Fft::<f32>::new(plan.dims[0], parafft::FftDirection::Forward)
            .process(&mut data),
        2 => parafft::Fft2d::<f32>::new(plan.dims[0], plan.dims[1], parafft::FftDirection::Forward)
            .process(&mut data),
        _ => parafft::Fft3d::<f32>::new(
            (plan.dims[0], plan.dims[1], plan.dims[2]),
            parafft::FftDirection::Forward,
        )
        .process(&mut data),
    }
    data
}

/// Max elementwise error between two complex slices, normalized by the
/// RMS of `a` (single precision).
pub fn rel_error(a: &[Complex32], b: &[Complex32]) -> f64 {
    assert_eq!(a.len(), b.len());
    let err = a
        .iter()
        .zip(b)
        .map(|(x, y)| (*x - *y).abs() as f64)
        .fold(0.0f64, f64::max);
    let rms = (a.iter().map(|x| x.norm_sqr() as f64).sum::<f64>() / a.len().max(1) as f64).sqrt();
    if rms > 0.0 {
        err / rms
    } else {
        err
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::XmtFftPlan;

    fn sample(n: usize) -> Vec<Complex32> {
        (0..n)
            .map(|i| Complex32::new((i as f32 * 0.37).sin(), (i as f32 * 0.11).cos() * 0.5 - 0.1))
            .collect()
    }

    #[test]
    fn interp_1d_matches_host_small() {
        for n in [8usize, 16, 64, 512] {
            let plan = XmtFftPlan::new_1d(n, 2);
            let x = sample(n);
            let got = run_on_interp(&plan, &x).unwrap();
            let want = host_reference(&plan, &x);
            let e = rel_error(&want, &got.output);
            assert!(e < 1e-4, "n={n} err={e}");
        }
    }

    #[test]
    fn interp_1d_mixed_radix_tail() {
        for n in [32usize, 128, 1024] {
            let plan = XmtFftPlan::new_1d(n, 2);
            let x = sample(n);
            let got = run_on_interp(&plan, &x).unwrap();
            let want = host_reference(&plan, &x);
            let e = rel_error(&want, &got.output);
            assert!(e < 1e-4, "n={n} err={e}");
        }
    }

    #[test]
    fn interp_2d_matches_host() {
        for (r, c) in [(8usize, 8usize), (16, 64), (64, 16)] {
            let plan = XmtFftPlan::new_2d(r, c, 2);
            let x = sample(r * c);
            let got = run_on_interp(&plan, &x).unwrap();
            let want = host_reference(&plan, &x);
            let e = rel_error(&want, &got.output);
            assert!(e < 1e-4, "{r}x{c} err={e}");
        }
    }

    #[test]
    fn interp_3d_matches_host() {
        for shape in [(8usize, 8usize, 8usize), (8, 16, 32), (16, 16, 16)] {
            let plan = XmtFftPlan::new_3d(shape, 2);
            let x = sample(shape.0 * shape.1 * shape.2);
            let got = run_on_interp(&plan, &x).unwrap();
            let want = host_reference(&plan, &x);
            let e = rel_error(&want, &got.output);
            assert!(e < 1e-4, "{shape:?} err={e}");
        }
    }

    #[test]
    fn replication_count_does_not_change_results() {
        let n = 256;
        let x = sample(n);
        let mut outs = Vec::new();
        for copies in [1u32, 2, 8, 32] {
            let plan = XmtFftPlan::new_1d(n, copies);
            outs.push(run_on_interp(&plan, &x).unwrap().output);
        }
        for o in &outs[1..] {
            assert!(rel_error(&outs[0], o) < 1e-6);
        }
    }

    #[test]
    fn machine_1d_matches_host_and_interp() {
        let n = 512;
        let plan = XmtFftPlan::new_1d(n, 4);
        let x = sample(n);
        let cfg = xmt_sim::XmtConfig::xmt_4k().scaled_to(8);
        let mach = run_on_machine(&plan, &cfg, &x).unwrap();
        let want = host_reference(&plan, &x);
        let e = rel_error(&want, &mach.output);
        assert!(e < 1e-4, "err={e}");
        // Interpreter agrees bit-for-bit with the machine.
        let interp = run_on_interp(&plan, &x).unwrap();
        for (a, b) in interp.output.iter().zip(&mach.output) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
        // One spawn per stage was recorded.
        assert_eq!(mach.report.spawns.len(), plan.num_stages());
    }

    #[test]
    fn forced_radix_variants_all_match_host() {
        let n = 64;
        let x = sample(n);
        let want = host_reference(&XmtFftPlan::new_1d(n, 2), &x);
        for radix in [2u32, 4, 8] {
            let plan = XmtFftPlan::build_with(&[n], 2, Some(radix), true);
            let got = run_on_interp(&plan, &x).unwrap();
            let e = rel_error(&want, &got.output);
            assert!(e < 1e-4, "radix {radix}: err {e}");
        }
    }

    #[test]
    fn inverse_plan_roundtrips_through_xmt() {
        // forward then inverse on the XMT engines, scaled by 1/N,
        // recovers the input — the full inverse-transform path.
        for dims in [vec![64usize], vec![16, 16], vec![8, 8, 8]] {
            let total: usize = dims.iter().product();
            let x = sample(total);
            let fwd = XmtFftPlan::build(&dims, 2);
            let inv = XmtFftPlan::build_inverse(&dims, 2);
            let y = run_on_interp(&fwd, &x).unwrap().output;
            let z = run_on_interp(&inv, &y).unwrap().output;
            let scale = 1.0 / total as f32;
            let back: Vec<Complex32> = z.iter().map(|c| c.scale(scale)).collect();
            let e = rel_error(&x, &back);
            assert!(e < 1e-3, "{dims:?}: roundtrip err {e}");
        }
    }

    #[test]
    fn inverse_matches_host_inverse() {
        let n = 512;
        let x = sample(n);
        let plan = XmtFftPlan::build_inverse(&[n], 4);
        let got = run_on_interp(&plan, &x).unwrap().output;
        let mut want = x.clone();
        parafft::Fft::<f32>::new(n, parafft::FftDirection::Inverse).process(&mut want);
        let e = rel_error(&want, &got);
        assert!(e < 1e-4, "err {e}");
    }

    #[test]
    fn unfused_rotation_matches_fused() {
        for dims in [vec![16usize, 32], vec![8, 8, 8]] {
            let x = sample(dims.iter().product());
            let fused = XmtFftPlan::build_with(&dims, 2, None, true);
            let unfused = XmtFftPlan::build_with(&dims, 2, None, false);
            let a = run_on_interp(&fused, &x).unwrap().output;
            let b = run_on_interp(&unfused, &x).unwrap().output;
            assert!(rel_error(&a, &b) < 1e-6, "{dims:?}");
            // And the unfused plan did strictly more memory traffic.
            let fa = run_on_interp(&fused, &x).unwrap().stats;
            let fb = run_on_interp(&unfused, &x).unwrap().stats;
            assert!(fb.mem_reads > fa.mem_reads);
            assert!(fb.mem_writes > fa.mem_writes);
        }
    }

    #[test]
    fn machine_3d_matches_host() {
        let shape = (8usize, 8usize, 8usize);
        let plan = XmtFftPlan::new_3d(shape, 2);
        let x = sample(512);
        let cfg = xmt_sim::XmtConfig::xmt_4k().scaled_to(4);
        let mach = run_on_machine(&plan, &cfg, &x).unwrap();
        let want = host_reference(&plan, &x);
        let e = rel_error(&want, &mach.output);
        assert!(e < 1e-4, "err={e}");
        // Rotation stages are flagged in the metadata and have fewer
        // FLOPs relative to their memory traffic.
        let rot = &mach.report.spawns[plan.stages.iter().position(|s| s.is_rotation).unwrap()];
        assert!(rot.mem_reads > 0 && rot.mem_writes > 0);
    }
}
