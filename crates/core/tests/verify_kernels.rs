//! Static verification of every kernel this crate generates.
//!
//! The generator (the stand-in for the XMTC compiler) must only ever
//! emit programs that `xmt-verify` proves structurally sound, fully
//! initialized, and race-free — so verification runs at plan-build
//! time here, and any future kernel change that introduces a shared
//! word or an unwritten register fails these tests before a simulator
//! run ever observes nondeterminism. The negative cases pin that the
//! verifier actually has teeth (a seeded racy kernel and an
//! uninit-register kernel are rejected with actionable diagnostics).

use xmt_fft::golden;
use xmt_fft::plan::{default_copies, XmtFftPlan};
use xmt_isa::{ir, ProgramBuilder};
use xmt_verify::{verify, Kind};

#[test]
fn every_golden_case_verifies_clean() {
    for case in golden::cases() {
        let report = verify(&case.program());
        assert!(
            report.is_clean(),
            "golden case `{}` failed verification:\n{report}",
            case.name
        );
    }
}

#[test]
fn fft_plans_verify_clean_across_shapes() {
    let cfg = golden::golden_config();
    let shapes: Vec<XmtFftPlan> = vec![
        XmtFftPlan::new_1d(64, default_copies(64, cfg.memory_modules)),
        XmtFftPlan::new_1d(512, default_copies(512, cfg.memory_modules)),
        XmtFftPlan::new_2d(64, 64, default_copies(4096, cfg.memory_modules)),
    ];
    for plan in &shapes {
        let report = verify(&plan.program);
        assert!(
            report.is_clean(),
            "plan over {} stages failed verification:\n{report}",
            plan.num_stages()
        );
    }
}

#[test]
fn seeded_racy_kernel_is_rejected_with_a_witness() {
    // A "reduction" that accumulates into one shared word without ps:
    // exactly the bug class the paper's programming model forbids.
    let mut b = ProgramBuilder::new();
    let par = b.label();
    let done = b.label();
    b.li(ir(1), 64);
    b.spawn(ir(1), par);
    b.jump(done);
    b.bind(par);
    b.tid(ir(2));
    b.li(ir(3), 512);
    b.lw(ir(4), ir(3), 0);
    b.add(ir(4), ir(4), ir(2));
    b.sw(ir(4), ir(3), 0); // all 64 threads read-modify-write word 512
    b.join();
    b.bind(done);
    b.halt();
    let report = verify(&b.build().unwrap());
    let race = report
        .errors()
        .find(|d| d.kind == Kind::Race)
        .expect("the shared accumulator must be reported as a race");
    // The diagnostic carries a concrete witness: the word and a pair
    // of thread ids that collide on it.
    assert!(race.message.contains("word 512"), "{}", race.message);
    assert!(race.message.contains("threads"), "{}", race.message);
}

#[test]
fn seeded_uninit_kernel_is_rejected_naming_the_register() {
    // The stage body forgets to compute its base pointer (r7) before
    // storing through it.
    let mut b = ProgramBuilder::new();
    let par = b.label();
    let done = b.label();
    b.li(ir(1), 8);
    b.spawn(ir(1), par);
    b.jump(done);
    b.bind(par);
    b.tid(ir(2));
    b.sw(ir(2), ir(7), 0);
    b.join();
    b.bind(done);
    b.halt();
    let report = verify(&b.build().unwrap());
    let diag = report
        .errors()
        .find(|d| d.kind == Kind::UninitRead)
        .expect("the unwritten base register must be reported");
    assert!(diag.message.contains("r7"), "{}", diag.message);
}
