fn main() {
    for p in xmt_fft::table4_projection() {
        let r = p.rotation_point();
        let nr = p.non_rotation_point();
        println!(
            "{:>8}: {:>7.0} GFLOPS conv ({:>7.0} actual)  rot-share {:.2}  rot({:.2} fl/B, {:.0}) nonrot({:.2} fl/B, {:.0})",
            p.config_name, p.gflops_convention, p.gflops_actual, p.rotation_share(),
            r.intensity, r.gflops, nr.intensity, nr.gflops
        );
    }
}
