//! Simulator advance-engine throughput: per-cycle reference stepping
//! vs the fast-forwarding and two-phase threaded engines, on the same
//! golden workloads the cycle-count regression tests pin bit-for-bit.
//! Throughput is reported in simulated cycles per host-second, so the
//! engines are directly comparable per workload regime: the
//! memory-latency-bound chase is where fast-forwarding must win big,
//! the compute-saturated FPU chain is where it must at least not lose.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use xmt_fft::golden;
use xmt_sim::Engine;

fn bench_engines(c: &mut Criterion) {
    let engines: &[(&str, Engine)] = &[
        ("reference", Engine::Reference),
        ("fast_forward", Engine::FastForward),
        ("threaded", Engine::Threaded { threads: 0 }),
    ];
    for case in golden::cases() {
        let simulated = case.run().stats.cycles;
        let mut g = c.benchmark_group(format!("sim_throughput_{}", case.name));
        g.sample_size(10);
        g.throughput(Throughput::Elements(simulated));
        for &(name, engine) in engines {
            g.bench_with_input(BenchmarkId::from_parameter(name), &engine, |b, &e| {
                b.iter(|| {
                    let mut m = case.machine();
                    m.engine = e;
                    black_box(m.run().unwrap())
                })
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
