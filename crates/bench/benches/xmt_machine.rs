//! Cycle-simulator benchmarks: how fast the machine model executes the
//! generated FFT programs (simulated-cycles per host-second), and the
//! untimed interpreter for comparison. These bound the problem sizes
//! the calibration harness can afford.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parafft::Complex32;
use std::hint::black_box;
use xmt_fft::plan::XmtFftPlan;
use xmt_fft::run::{run_on_interp, run_on_machine};
use xmt_sim::XmtConfig;

fn input(n: usize) -> Vec<Complex32> {
    (0..n)
        .map(|i| Complex32::new((i as f32 * 0.05).sin(), (i as f32 * 0.08).cos()))
        .collect()
}

fn bench_interp(c: &mut Criterion) {
    let mut g = c.benchmark_group("xmt_interp_fft");
    g.sample_size(10);
    for n in [512usize, 4096] {
        let plan = XmtFftPlan::new_1d(n, 4);
        let x = input(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(run_on_interp(&plan, &x).unwrap()))
        });
    }
    g.finish();
}

fn bench_machine(c: &mut Criterion) {
    let mut g = c.benchmark_group("xmt_machine_fft");
    g.sample_size(10);
    for (clusters, n) in [(4usize, 512usize), (8, 2048)] {
        let cfg = XmtConfig::xmt_4k().scaled_to(clusters);
        let plan = XmtFftPlan::new_1d(n, 4);
        let x = input(n);
        g.bench_with_input(
            BenchmarkId::new("clusters_n", format!("{clusters}x{n}")),
            &n,
            |b, _| b.iter(|| black_box(run_on_machine(&plan, &cfg, &x).unwrap())),
        );
    }
    g.finish();
}

fn bench_machine_3d(c: &mut Criterion) {
    let mut g = c.benchmark_group("xmt_machine_fft3d");
    g.sample_size(10);
    let cfg = XmtConfig::xmt_4k().scaled_to(4);
    let plan = XmtFftPlan::new_3d((8, 8, 8), 2);
    let x = input(512);
    g.bench_function("cube8_4clusters", |b| {
        b.iter(|| black_box(run_on_machine(&plan, &cfg, &x).unwrap()))
    });
    g.finish();
}

fn bench_projection(c: &mut Criterion) {
    // The analytic model itself is nearly free — that is the point.
    let mut g = c.benchmark_group("xmt_projection");
    g.sample_size(30);
    g.bench_function("table4_all_configs", |b| {
        b.iter(|| black_box(xmt_fft::table4_projection()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_interp,
    bench_machine,
    bench_machine_3d,
    bench_projection
);
criterion_main!(benches);
