//! Host FFT library benchmarks: the FFTW-substitute baseline's own
//! performance across sizes, algorithms and serial/parallel drivers.
//! These are the rates behind Table V's "host-measured" rows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use parafft::{Complex64, Fft, FftDirection, FftPlanner, Normalization, RealFft, TwiddleTable};
use std::hint::black_box;

fn sample(n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|i| Complex64::new((i as f64 * 0.01).sin(), (i as f64 * 0.03).cos()))
        .collect()
}

/// 1D serial FFT across sizes (5N·log₂N-convention throughput).
fn bench_sizes(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft_1d_serial");
    g.sample_size(20);
    for logn in [10u32, 14, 18] {
        let n = 1usize << logn;
        let plan = Fft::new(n, FftDirection::Forward);
        let mut data = sample(n);
        let mut scratch = vec![Complex64::zero(); plan.scratch_len()];
        g.throughput(Throughput::Elements((5 * n as u64) * logn as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| plan.process_with_scratch(black_box(&mut data), &mut scratch));
        });
    }
    g.finish();
}

/// Serial vs rayon-parallel (the Table V 1-vs-32-thread contrast).
fn bench_parallel(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft_1d_parallel");
    g.sample_size(15);
    let n = 1usize << 18;
    let plan = Fft::new(n, FftDirection::Forward);
    let mut data = sample(n);
    let mut scratch = vec![Complex64::zero(); plan.scratch_len()];
    g.bench_function("serial", |b| {
        b.iter(|| plan.process_with_scratch(black_box(&mut data), &mut scratch))
    });
    g.bench_function("rayon", |b| {
        b.iter(|| plan.process_par(black_box(&mut data)))
    });
    g.finish();
}

/// Algorithm comparison at one size: Stockham vs in-place DIT/DIF vs
/// recursive (depth-first) vs Bluestein-on-power-of-two.
fn bench_algorithms(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft_1d_algorithms");
    g.sample_size(20);
    let n = 1usize << 14;
    let x = sample(n);
    let twf = TwiddleTable::new(n, FftDirection::Forward);
    let plan = Fft::new(n, FftDirection::Forward);
    let mut scratch = vec![Complex64::zero(); n];

    let mut data = x.clone();
    g.bench_function("stockham_mixed_radix", |b| {
        b.iter(|| plan.process_with_scratch(black_box(&mut data), &mut scratch))
    });
    let mut data = x.clone();
    g.bench_function("radix2_dit_inplace", |b| {
        b.iter(|| parafft::radix2::fft_dit2(black_box(&mut data), FftDirection::Forward, &twf))
    });
    let mut data = x.clone();
    g.bench_function("radix2_dif_inplace", |b| {
        b.iter(|| parafft::radix2::fft_dif2(black_box(&mut data), FftDirection::Forward, &twf))
    });
    let mut out = vec![Complex64::zero(); n];
    g.bench_function("recursive_depth_first", |b| {
        b.iter(|| {
            parafft::recursive::fft_recursive(black_box(&x), &mut out, FftDirection::Forward, &twf)
        })
    });
    // Bluestein on an awkward size of comparable magnitude.
    let n_awk = n - 1; // 16383 = 3·43·127
    let bl = Fft::new(n_awk, FftDirection::Forward);
    let mut data = sample(n_awk);
    g.bench_function("bluestein_awkward_size", |b| {
        b.iter(|| bl.process(black_box(&mut data)))
    });
    g.finish();
}

/// Real-input transform vs complex transform of the same length.
fn bench_realfft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft_real_vs_complex");
    g.sample_size(20);
    let n = 1usize << 16;
    let real: Vec<f64> = (0..n).map(|i| (i as f64 * 0.02).sin()).collect();
    let rplan = RealFft::new(n);
    let mut half = vec![Complex64::zero(); rplan.output_len()];
    g.bench_function("real_packed", |b| {
        b.iter(|| rplan.process(black_box(&real), &mut half))
    });
    let cplan = Fft::new(n, FftDirection::Forward);
    let mut data: Vec<Complex64> = real.iter().map(|&r| Complex64::new(r, 0.0)).collect();
    let mut scratch = vec![Complex64::zero(); cplan.scratch_len()];
    g.bench_function("complex_full", |b| {
        b.iter(|| cplan.process_with_scratch(black_box(&mut data), &mut scratch))
    });
    g.finish();
}

/// Plan construction and caching (amortization across rows).
fn bench_planning(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft_planning");
    g.sample_size(20);
    g.bench_function("plan_64k_points", |b| {
        b.iter(|| black_box(Fft::<f64>::new(1 << 16, FftDirection::Forward)))
    });
    g.bench_function("planner_cache_hit", |b| {
        let mut planner = FftPlanner::<f64>::new();
        planner.plan(1 << 16, FftDirection::Forward);
        b.iter(|| black_box(planner.plan(1 << 16, FftDirection::Forward)))
    });
    g.finish();
}

/// Normalization overhead.
fn bench_normalization(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft_normalization");
    g.sample_size(20);
    let n = 1usize << 14;
    for (name, norm) in [
        ("none", Normalization::None),
        ("unitary", Normalization::Unitary),
    ] {
        let plan = Fft::with_normalization(n, FftDirection::Forward, norm);
        let mut data = sample(n);
        let mut scratch = vec![Complex64::zero(); plan.scratch_len()];
        g.bench_function(name, |b| {
            b.iter(|| plan.process_with_scratch(black_box(&mut data), &mut scratch))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_sizes,
    bench_parallel,
    bench_algorithms,
    bench_realfft,
    bench_planning,
    bench_normalization
);
criterion_main!(benches);
