//! Interconnect-model benchmarks: saturation throughput of the
//! cycle-level MoT and butterfly under the traffic classes the FFT
//! generates, and the raw simulation speed of the switch models.
//!
//! The reported *throughput* numbers (flits/port/cycle) back the
//! constants in `xmt_noc::analytic`; the wall-time numbers tell you
//! what machine sizes the cycle simulator can sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xmt_noc::{measure_saturation, ButterflyNetwork, MotNetwork, Pattern, Topology};

fn bench_mot_speed(c: &mut Criterion) {
    let mut g = c.benchmark_group("noc_mot_sim_speed");
    g.sample_size(10);
    for ports in [64usize, 256] {
        g.bench_with_input(BenchmarkId::from_parameter(ports), &ports, |b, &p| {
            b.iter(|| {
                let mut net = MotNetwork::new(Topology::pure_mot(p, p));
                black_box(measure_saturation(&mut net, Pattern::Uniform, 50, 200))
            })
        });
    }
    g.finish();
}

fn bench_butterfly_speed(c: &mut Criterion) {
    let mut g = c.benchmark_group("noc_butterfly_sim_speed");
    g.sample_size(10);
    for (ports, stages) in [(64usize, 3u32), (256, 5)] {
        let topo = Topology::hybrid(ports, ports, 2 * ports.trailing_zeros() - stages, stages);
        g.bench_with_input(
            BenchmarkId::new("ports_stages", format!("{ports}x{stages}")),
            &topo,
            |b, &t| {
                b.iter(|| {
                    let mut net = ButterflyNetwork::new(t);
                    black_box(measure_saturation(&mut net, Pattern::Uniform, 50, 200))
                })
            },
        );
    }
    g.finish();
}

fn bench_patterns(c: &mut Criterion) {
    // Same network, different traffic classes: the wall time is similar
    // but each run *prints* nothing — the interesting output is the
    // saturation figure asserted here to stay in its calibrated band.
    let mut g = c.benchmark_group("noc_pattern_saturation");
    g.sample_size(10);
    let topo = Topology::hybrid(128, 128, 7, 7);
    for (name, pat, band) in [
        ("hashed", Pattern::Uniform, (0.55, 0.75)),
        ("transpose", Pattern::Transpose, (0.05, 0.2)),
        ("hotspot", Pattern::Hotspot(3), (0.0, 0.05)),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut net = ButterflyNetwork::new(topo);
                let s = measure_saturation(&mut net, pat, 100, 300);
                assert!(
                    s.throughput >= band.0 && s.throughput <= band.1,
                    "{name} saturation {} outside calibrated band {band:?}",
                    s.throughput
                );
                black_box(s)
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_mot_speed,
    bench_butterfly_speed,
    bench_patterns
);
criterion_main!(benches);
