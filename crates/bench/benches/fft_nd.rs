//! Multidimensional host FFT benchmarks, covering two Section IV-A
//! ablations on the host side:
//!
//! * granularity of parallelism (coarse rows-per-thread vs the
//!   fine-grained stage-synchronous mapping),
//! * depth-first vs breadth-first traversal (and the hybrid cutover
//!   the paper suggests for large inputs).

use criterion::{criterion_group, criterion_main, Criterion};
use parafft::{Complex64, Fft2d, Fft3d, FftDirection, Granularity, TwiddleTable};
use std::hint::black_box;

fn sample(n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|i| Complex64::new((i as f64 * 0.011).sin(), (i as f64 * 0.017).cos()))
        .collect()
}

fn bench_3d(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft_3d_cube64");
    g.sample_size(10);
    let n = 64usize;
    let plan = Fft3d::cube(n, FftDirection::Forward);
    let mut data = sample(n * n * n);
    g.bench_function("serial", |b| b.iter(|| plan.process(black_box(&mut data))));
    g.bench_function("parallel_coarse", |b| {
        b.iter(|| plan.process_par(black_box(&mut data), Granularity::Coarse))
    });
    g.bench_function("parallel_fine", |b| {
        b.iter(|| plan.process_par(black_box(&mut data), Granularity::Fine))
    });
    g.finish();
}

fn bench_2d_granularity(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft_2d_granularity");
    g.sample_size(10);
    // Few long rows: the regime where coarse-grained parallelism
    // starves the thread pool and fine-grained does not.
    let (r, cols) = (8usize, 1usize << 14);
    let plan = Fft2d::new(r, cols, FftDirection::Forward);
    let mut data = sample(r * cols);
    g.bench_function("coarse_few_rows", |b| {
        b.iter(|| plan.process_par(black_box(&mut data), Granularity::Coarse))
    });
    g.bench_function("fine_few_rows", |b| {
        b.iter(|| plan.process_par(black_box(&mut data), Granularity::Fine))
    });
    g.finish();
}

fn bench_traversal(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft_traversal");
    g.sample_size(10);
    let n = 1usize << 16;
    let x = sample(n);
    let twf = TwiddleTable::new(n, FftDirection::Forward);
    let mut out = vec![Complex64::zero(); n];

    g.bench_function("breadth_first_stockham", |b| {
        let plan = parafft::Fft::new(n, FftDirection::Forward);
        let mut data = x.clone();
        let mut scratch = vec![Complex64::zero(); n];
        b.iter(|| plan.process_with_scratch(black_box(&mut data), &mut scratch))
    });
    g.bench_function("depth_first_recursive", |b| {
        b.iter(|| {
            parafft::recursive::fft_recursive(black_box(&x), &mut out, FftDirection::Forward, &twf)
        })
    });
    for cutoff in [1usize << 8, 1 << 12] {
        g.bench_function(format!("hybrid_cutoff_{cutoff}"), |b| {
            b.iter(|| {
                parafft::recursive::fft_hybrid(
                    black_box(&x),
                    &mut out,
                    FftDirection::Forward,
                    &twf,
                    cutoff,
                )
            })
        });
    }
    g.finish();
}

fn bench_dit_vs_dif(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft_dit_vs_dif");
    g.sample_size(15);
    let n = 1usize << 14;
    let twf = TwiddleTable::new(n, FftDirection::Forward);
    let mut data = sample(n);
    g.bench_function("dit", |b| {
        b.iter(|| parafft::radix2::fft_dit2(black_box(&mut data), FftDirection::Forward, &twf))
    });
    g.bench_function("dif", |b| {
        b.iter(|| parafft::radix2::fft_dif2(black_box(&mut data), FftDirection::Forward, &twf))
    });
    g.bench_function("dif_scrambled_no_unshuffle", |b| {
        b.iter(|| {
            parafft::radix2::fft_dif2_scrambled(black_box(&mut data), FftDirection::Forward, &twf)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_3d,
    bench_2d_granularity,
    bench_traversal,
    bench_dit_vs_dif
);
criterion_main!(benches);
