//! # xmt-bench — experiment harness shared by the table/figure
//! regenerator binaries and the Criterion benches.
//!
//! One binary per table/figure of the paper:
//! `table1` … `table6`, `fig3` (see DESIGN.md §5 for the index), plus
//! ablation binaries for the design choices of Section IV-A.

pub mod calibrate;
pub mod fmt;
pub mod runner;

pub use calibrate::{calibrate, Calibration};
pub use fmt::render_table;
pub use runner::{run_plan_validated, run_validated, sample_wave, ColumnTable};
