//! Cycle-simulator vs analytic-model calibration.
//!
//! Runs the real XMT FFT program on the cycle simulator at a reduced
//! machine/problem scale and compares the measured cycle count with
//! the bottleneck model's prediction for the *same* scaled
//! configuration — the evidence that the 512³ projections rest on a
//! validated model (the methodology of DESIGN.md §7).

use xmt_fft::plan::XmtFftPlan;
use xmt_fft::run::run_on_machine;
use xmt_fft::{project, FftProjection};
use xmt_sim::{SpawnStats, XmtConfig};

/// One calibration point.
#[derive(Debug, Clone)]
pub struct Calibration {
    pub config_name: &'static str,
    pub clusters: usize,
    pub dims: Vec<usize>,
    /// Cycle-simulator measurement.
    pub measured_cycles: u64,
    /// Analytic model prediction for the same scaled machine.
    pub modeled_cycles: f64,
    /// measured / modeled.
    pub ratio: f64,
    /// Per-spawn stats from the simulator.
    pub spawns: Vec<SpawnStats>,
    /// Model projection detail.
    pub projection: FftProjection,
}

/// Run one calibration: `base` scaled to `clusters`, FFT of `dims`.
pub fn calibrate(base: &XmtConfig, clusters: usize, dims: &[usize]) -> Calibration {
    let cfg = base.scaled_to(clusters);
    let copies = xmt_fft::default_copies(*dims.last().expect("non-empty dims"), cfg.memory_modules);
    let plan = XmtFftPlan::build(dims, copies);
    let total: usize = dims.iter().product();
    let input: Vec<parafft::Complex32> = (0..total)
        .map(|i| parafft::Complex32::new((i as f32 * 0.17).sin(), (i as f32 * 0.31).cos()))
        .collect();
    let run = run_on_machine(&plan, &cfg, &input).expect("simulation succeeds");

    // Functional check: the simulated FFT must match the host library.
    let want = xmt_fft::host_reference(&plan, &input);
    let err = xmt_fft::rel_error(&want, &run.output);
    assert!(err < 1e-3, "simulated FFT numerically wrong: rel err {err}");

    let projection = project(&cfg, dims);
    let measured_cycles = run.report.stats.cycles;
    let modeled = projection.total_cycles;
    Calibration {
        config_name: base.name,
        clusters,
        dims: dims.to_vec(),
        measured_cycles,
        modeled_cycles: modeled,
        ratio: measured_cycles as f64 / modeled,
        spawns: run.report.spawns,
        projection,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_calibration_within_factor_three() {
        // A small 2D job on a scaled 4k machine: the analytic model
        // must land within a small constant factor of the simulator
        // (latency effects dominate at tiny scale, so the band is
        // loose here; the bench binaries run larger, tighter points).
        let c = calibrate(&XmtConfig::xmt_4k(), 4, &[32, 32]);
        assert!(c.measured_cycles > 0);
        assert!(
            c.ratio > 0.3 && c.ratio < 3.5,
            "measured {} vs modeled {:.0} (ratio {:.2})",
            c.measured_cycles,
            c.modeled_cycles,
            c.ratio
        );
    }

    #[test]
    fn calibration_reports_all_spawns() {
        let c = calibrate(&XmtConfig::xmt_4k(), 4, &[64]);
        assert_eq!(c.spawns.len(), 2); // 64 = 8·8 → two stages
        assert_eq!(c.projection.demands.len(), 2);
    }
}
