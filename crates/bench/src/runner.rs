//! Shared execution harness for the table/ablation regenerator
//! binaries.
//!
//! Every binary used to carry its own copy of the same three chores:
//! generate a deterministic input wave, run a plan on the simulator
//! and assert the output against the host reference, and assemble a
//! label-plus-columns table via `std::iter::once(..).chain(..)`
//! chains. They live here once, around the [`MachineBuilder`] API.

use parafft::Complex32;
use xmt_fft::plan::XmtFftPlan;
use xmt_fft::run::{host_reference, read_result, rel_error, MachineRun};
use xmt_sim::{MachineBuilder, XmtConfig};

/// Deterministic complex test wave: `(sin(i·fa), cos(i·fb))`.
pub fn sample_wave(n: usize, fa: f32, fb: f32) -> Vec<Complex32> {
    (0..n)
        .map(|i| Complex32::new((i as f32 * fa).sin(), (i as f32 * fb).cos()))
        .collect()
}

/// Build, run and functionally validate a prepared machine against
/// the host reference library. Panics with `what` context if the
/// simulation fails or the transform is numerically wrong — the
/// regenerator binaries must never print numbers from a wrong FFT.
pub fn run_validated(
    builder: MachineBuilder,
    plan: &XmtFftPlan,
    input: &[Complex32],
    what: &str,
) -> MachineRun {
    let mut m = builder.build();
    let report = m.run().expect(what);
    let output = read_result(plan, &m);
    let err = rel_error(&host_reference(plan, input), &output);
    assert!(err < 1e-3, "{what}: simulated FFT wrong: rel err {err}");
    MachineRun { output, report }
}

/// Plan-level wrapper over [`run_validated`]: loads program, twiddles
/// and input into a fresh [`MachineBuilder`] first.
pub fn run_plan_validated(
    plan: &XmtFftPlan,
    cfg: &XmtConfig,
    input: &[Complex32],
    what: &str,
) -> MachineRun {
    run_validated(
        xmt_fft::run::plan_builder(plan, cfg, input),
        plan,
        input,
        what,
    )
}

/// A table assembled row by row: a corner label, one header per
/// column, and labeled rows of cells. Replaces the per-binary
/// `once(label).chain(values)` boilerplate.
#[derive(Debug, Default)]
pub struct ColumnTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl ColumnTable {
    /// Start a table with the corner cell and the column headers.
    pub fn new<I>(corner: &str, columns: I) -> Self
    where
        I: IntoIterator,
        I::Item: ToString,
    {
        let headers = std::iter::once(corner.to_string())
            .chain(columns.into_iter().map(|c| c.to_string()))
            .collect();
        Self {
            headers,
            rows: Vec::new(),
        }
    }

    /// Append a labeled row; `cells` must yield one value per column.
    pub fn row<I>(&mut self, label: &str, cells: I) -> &mut Self
    where
        I: IntoIterator,
        I::Item: ToString,
    {
        let row: Vec<String> = std::iter::once(label.to_string())
            .chain(cells.into_iter().map(|c| c.to_string()))
            .collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Render with the shared aligned-column formatter.
    pub fn render(&self) -> String {
        let href: Vec<&str> = self.headers.iter().map(String::as_str).collect();
        crate::fmt::render_table(&href, &self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_table_shapes_and_renders() {
        let mut t = ColumnTable::new("", ["a", "b"]);
        t.row("x", [1, 2]).row("y", [3, 4]);
        let s = t.render();
        assert!(s.contains('a') && s.contains('4'));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn column_table_rejects_ragged_rows() {
        ColumnTable::new("", ["a", "b"]).row("x", [1]);
    }

    #[test]
    fn run_plan_validated_round_trips() {
        let plan = XmtFftPlan::new_1d(64, 2);
        let cfg = XmtConfig::xmt_4k().scaled_to(4);
        let x = sample_wave(64, 0.11, 0.07);
        let run = run_plan_validated(&plan, &cfg, &x, "runner self-test");
        assert_eq!(run.report.spawns.len(), plan.num_stages());
        assert!(run.report.stats.cycles > 0);
    }
}
