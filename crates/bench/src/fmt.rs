//! Plain-text table rendering for the regenerator binaries.

/// Render an aligned table: first row of `rows` after `headers`.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    for r in rows {
        assert_eq!(r.len(), cols, "row width mismatch");
    }
    let mut w = vec![0usize; cols];
    for (i, h) in headers.iter().enumerate() {
        w[i] = h.len();
    }
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            w[i] = w[i].max(c.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{c:>width$}", width = w[i]));
        }
        out.push('\n');
    };
    line(
        &mut out,
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    let total: usize = w.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for r in rows {
        line(&mut out, r);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "12345".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with('1'));
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_rows_rejected() {
        render_table(&["a", "b"], &[vec!["x".into()]]);
    }
}
