//! Two-pass static-analysis gate for every kernel in the workspace.
//!
//! **Pass 1 — translation validation.** Each target's lowering into
//! the block-compiled tier's micro-ops is proven equivalent to the
//! reference ISA semantics by the symbolic interpreter in
//! `xmt_verify::transval`; for the golden workloads the trace cache a
//! probed run *actually replayed* is audited too. **Pass 2 — static
//! traffic.** The affine footprint analyzer in `xmt_verify::traffic`
//! predicts per-phase instruction/flop/memory/NoC/DRAM traffic bounds
//! and a roofline verdict, cross-checked against `IntervalProbe`
//! measurements (every measured value must fall inside its predicted
//! interval), and the paper's claim is pinned: the paper-scale FFT
//! goldens must classify bandwidth-bound.
//!
//! The classic front half (structure, def-before-use, dead stores,
//! races) still runs first on every target.
//!
//! ```text
//! cargo run --release -p xmt-bench --bin xmt_lint [-- FLAGS]
//!
//!   --format text|json   report format on stdout (default: text)
//!   --traffic-full       also measure the scaling cases (expensive)
//!   --no-cache           ignore the verification cache and re-prove
//!   --artifact PATH      JSON artifact path (default: target/xmt-lint.json)
//! ```
//!
//! Exit codes: **0** everything proven clean, **1** findings or a
//! failed cross-check or verdict pin, **2** usage error. The JSON
//! artifact is written on every run (pass or fail) so CI can archive
//! it.
//!
//! Clean per-target results are cached under `target/xmt-lint-cache/`,
//! keyed by a digest of the program, the lowering latencies, the
//! traffic parameters and the pass roster/version — editing a kernel
//! generator or an analysis invalidates exactly the affected entries.
//!
//! XMTC-authored targets are a special case: their scatter addresses
//! come from `/` and `%` on broadcast globals, which the affine domain
//! widens to ⊤, so the race pass reports *unproven* (not disproven)
//! races. Those are surfaced as a separate count and do not gate;
//! generated kernels, which the domain does prove, gate strictly.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::exit;

use xmt_fft::golden::{self, GoldenCase};
use xmt_fft::plan::{default_copies, XmtFftPlan};
use xmt_fft::traffic::traffic_params;
use xmt_isa::Program;
use xmt_sim::simcfg::fnv1a;
use xmt_sim::{program_digest, IntervalProbe, UNIT_LAT};
use xmt_verify::traffic::{analyze, TrafficParams, TrafficReport, Verdict};
use xmt_verify::transval::{validate_cache, validate_program, TransvalStats};
use xmt_verify::{verify, Kind};

const CACHE_VERSION: &str = "xmt-lint-v1";
const PASSES: &str = "structure,dataflow,deadstore,races,transval,traffic";

struct Flags {
    json: bool,
    traffic_full: bool,
    no_cache: bool,
    artifact: PathBuf,
}

fn parse_flags() -> Result<Flags, String> {
    let mut flags = Flags {
        json: false,
        traffic_full: false,
        no_cache: false,
        artifact: target_dir().join("xmt-lint.json"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--format" => match args.next().as_deref() {
                Some("json") => flags.json = true,
                Some("text") => flags.json = false,
                other => return Err(format!("--format wants text|json, got {other:?}")),
            },
            "--traffic-full" => flags.traffic_full = true,
            "--no-cache" => flags.no_cache = true,
            "--artifact" => match args.next() {
                Some(p) => flags.artifact = PathBuf::from(p),
                None => return Err("--artifact wants a path".into()),
            },
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(flags)
}

fn target_dir() -> PathBuf {
    std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target"))
}

/// One program the lint proves things about.
struct Target {
    name: String,
    kind: &'static str,
    prog: Program,
    params: TrafficParams,
    /// XMTC targets: ⊤-address races are reported but do not gate.
    relax_races: bool,
    /// Pinned roofline verdict (the paper's claims), gated when set.
    expect: Option<Verdict>,
    /// When set, run a probed simulation: cross-check measured traffic
    /// against the static intervals and audit the replayed trace cache.
    measure: Option<GoldenCase>,
}

#[derive(Default)]
struct Outcome {
    name: String,
    kind: &'static str,
    digest: u64,
    cached: bool,
    errors: usize,
    warnings: usize,
    unproven: usize,
    transval: Option<TransvalStats>,
    cache_audit: Option<TransvalStats>,
    traffic: Option<TrafficReport>,
    verdict: Option<Verdict>,
    expect: Option<Verdict>,
    /// "ok" | "skipped" | "failed"
    crosscheck: &'static str,
    /// Gating findings, already formatted for display.
    findings: Vec<String>,
    /// Non-gating notes (unproven races, analyzer notes, …).
    notes: Vec<String>,
}

impl Outcome {
    fn gated(&self) -> bool {
        !self.findings.is_empty()
    }
}

fn in_range(v: u64, (lo, hi): (u64, u64)) -> bool {
    lo <= v && v <= hi
}

fn cache_key(t: &Target, measured: bool) -> u64 {
    let p = &t.params;
    let canon = format!(
        "{CACHE_VERSION}|passes={PASSES}|lat=fpu{},mdu{}|relax={}|meas={}|expect={:?}|\
         params={},{},{},{},{},{},{},{},{},{}|prog={:016x}",
        UNIT_LAT.fpu,
        UNIT_LAT.mdu,
        t.relax_races as u8,
        measured as u8,
        t.expect,
        p.line_words,
        p.cache_lines,
        p.clusters,
        p.tcus_per_cluster,
        p.fpus_per_cluster,
        p.lsus_per_cluster,
        p.icn_words_per_cluster,
        p.dram_bytes_per_cycle,
        p.startup_cycles,
        p.compute_efficiency,
        program_digest(&t.prog),
    );
    fnv1a(canon.as_bytes())
}

fn cache_path(key: u64) -> PathBuf {
    target_dir()
        .join("xmt-lint-cache")
        .join(format!("{key:016x}.ok"))
}

/// A clean result, round-tripped through the cache as `k v` lines.
fn cache_store(path: &Path, o: &Outcome) {
    let mut s = String::new();
    let _ = writeln!(s, "warnings {}", o.warnings);
    let _ = writeln!(s, "unproven {}", o.unproven);
    if let Some(tv) = o.transval {
        let _ = writeln!(s, "tv {} {} {}", tv.blocks, tv.uops, tv.cold_blocks);
    }
    if let Some(tv) = o.cache_audit {
        let _ = writeln!(s, "audit {} {} {}", tv.blocks, tv.uops, tv.cold_blocks);
    }
    if let Some(v) = o.verdict {
        let _ = writeln!(s, "verdict {v}");
    }
    let _ = writeln!(s, "crosscheck {}", o.crosscheck);
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let _ = std::fs::write(path, s);
}

fn cache_load(path: &Path, o: &mut Outcome) -> bool {
    let Ok(text) = std::fs::read_to_string(path) else {
        return false;
    };
    let stats = |ws: &[&str]| -> Option<TransvalStats> {
        Some(TransvalStats {
            blocks: ws.get(1)?.parse().ok()?,
            uops: ws.get(2)?.parse().ok()?,
            cold_blocks: ws.get(3)?.parse().ok()?,
        })
    };
    for line in text.lines() {
        let ws: Vec<&str> = line.split_whitespace().collect();
        match ws.first().copied() {
            Some("warnings") => o.warnings = ws.get(1).and_then(|v| v.parse().ok()).unwrap_or(0),
            Some("unproven") => o.unproven = ws.get(1).and_then(|v| v.parse().ok()).unwrap_or(0),
            Some("tv") => o.transval = stats(&ws),
            Some("audit") => o.cache_audit = stats(&ws),
            Some("verdict") => {
                o.verdict = match ws.get(1).copied() {
                    Some("bandwidth-bound") => Some(Verdict::BandwidthBound),
                    Some("compute-bound") => Some(Verdict::ComputeBound),
                    Some("latency-bound") => Some(Verdict::LatencyBound),
                    _ => Some(Verdict::Unknown),
                }
            }
            Some("crosscheck") => {
                o.crosscheck = match ws.get(1).copied() {
                    Some("ok") => "ok",
                    _ => "skipped",
                }
            }
            _ => {}
        }
    }
    o.cached = true;
    true
}

/// Run the probed simulation for a measured target: per-phase interval
/// containment of every counter plus the replayed-trace-cache audit.
fn crosscheck(case: &GoldenCase, prog: &Program, report: &TrafficReport, o: &mut Outcome) {
    let probe = IntervalProbe::new(1, 400_000);
    let mut m = case.builder().build_probed(probe);
    let outcome = m.run();
    if let Some(e) = outcome.error() {
        o.findings.push(format!("probed run failed: {e}"));
        o.crosscheck = "failed";
        return;
    }
    let rep = &outcome.report;

    // Audit the lowered records the run actually replayed.
    if let Some(tc) = m.trace_cache() {
        match validate_cache(prog.instrs(), tc.map(), tc.uops(), tc.unit_lat()) {
            Ok(stats) => o.cache_audit = Some(stats),
            Err(e) => o.findings.push(format!("trace-cache audit: {e}")),
        }
    }

    if !report.phase_order_exact || report.phases.len() != rep.spawns.len() {
        o.findings.push(format!(
            "cross-check needs exact phase order: predicted {} phase(s), measured {}",
            report.phases.len(),
            rep.spawns.len()
        ));
        o.crosscheck = "failed";
        return;
    }
    let rows = m.probe().rows();
    let mut bad = 0usize;
    for (p, s) in report.phases.iter().zip(&rep.spawns) {
        let noc: u64 = rows
            .iter()
            .filter(|r| r.spawn == Some(s.index as u64))
            .map(|r| r.noc_injected)
            .sum();
        let dram: u64 = rows
            .iter()
            .filter(|r| r.spawn == Some(s.index as u64))
            .map(|r| r.dram_bytes)
            .sum();
        let mut miss = |what: &str, got: u64, want: (u64, u64)| {
            o.findings.push(format!(
                "phase {}: measured {what} {got} outside predicted [{}, {}]",
                p.index, want.0, want.1
            ));
            bad += 1;
        };
        if let Some(t) = p.threads {
            if t != s.threads {
                miss("threads", s.threads, (t, t));
            }
        }
        if !in_range(s.instructions, p.instructions) {
            miss("instructions", s.instructions, p.instructions);
        }
        if !in_range(s.flops, p.flops) {
            miss("flops", s.flops, p.flops);
        }
        if !in_range(s.mem_reads, p.reads) {
            miss("reads", s.mem_reads, p.reads);
        }
        if !in_range(s.mem_writes, p.writes) {
            miss("writes", s.mem_writes, p.writes);
        }
        if !in_range(noc, p.noc_flits) {
            miss("noc flits", noc, p.noc_flits);
        }
        if !in_range(dram, p.dram_bytes) {
            miss("dram bytes", dram, p.dram_bytes);
        }
    }
    o.crosscheck = if bad == 0 { "ok" } else { "failed" };
}

fn run_target(t: &Target, flags: &Flags) -> Outcome {
    let mut o = Outcome {
        name: t.name.clone(),
        kind: t.kind,
        digest: program_digest(&t.prog),
        crosscheck: "skipped",
        expect: t.expect,
        ..Outcome::default()
    };
    let key = cache_key(t, t.measure.is_some());
    let path = cache_path(key);
    if !flags.no_cache && cache_load(&path, &mut o) {
        return o;
    }
    o.cached = false;

    // Front half + pass 1 on the canonical lowering.
    let report = verify(&t.prog);
    o.warnings = report.warnings().count();
    for d in report.errors() {
        if t.relax_races && d.kind == Kind::Race {
            o.unproven += 1;
        } else {
            o.findings.push(d.to_string());
        }
    }
    o.errors = o.findings.len();
    match validate_program(t.prog.instrs(), UNIT_LAT) {
        Ok(stats) => o.transval = Some(stats),
        Err(e) => o.findings.push(format!("error[transval] pc {}: {e}", e.pc)),
    }

    // Pass 2: static traffic + roofline, then the measured cross-check.
    match analyze(t.prog.instrs(), &t.params) {
        Ok(traffic) => {
            o.verdict = Some(traffic.verdict);
            o.notes.extend(traffic.notes.iter().cloned());
            if let Some(want) = t.expect {
                if traffic.verdict != want {
                    o.findings.push(format!(
                        "roofline verdict is {}, paper pins {want}",
                        traffic.verdict
                    ));
                }
            }
            if let Some(case) = &t.measure {
                crosscheck(case, &t.prog, &traffic, &mut o);
            }
            o.traffic = Some(traffic);
        }
        Err(e) => o.findings.push(format!("error[traffic]: {e}")),
    }
    o.errors = o.findings.len();

    if !o.gated() {
        cache_store(&path, &o);
    } else {
        // A previously-clean entry must not mask a now-failing target.
        let _ = std::fs::remove_file(&path);
    }
    o
}

fn build_targets(flags: &Flags) -> Vec<Target> {
    let mut targets = Vec::new();

    // Golden workloads: full pipeline + measured cross-check.
    for case in golden::cases() {
        let expect = match case.name {
            "spawn_storm" | "ps_tickets" => Some(Verdict::BandwidthBound),
            "fpu_chain" => Some(Verdict::ComputeBound),
            "mem_chase" => Some(Verdict::LatencyBound),
            // fft_radix8_n512 straddles the scaled-down golden ridge;
            // the paper-scale pin lives on the scaling cases below.
            _ => None,
        };
        targets.push(Target {
            name: case.name.to_string(),
            kind: "golden",
            prog: case.program(),
            params: traffic_params(&case.sim_config().arch),
            relax_races: false,
            expect,
            measure: Some(case),
        });
    }

    // Paper-scale scaling cases: the bandwidth-bound pin is static and
    // always gates; the probed cross-check is opt-in (expensive).
    for case in golden::scaling_cases() {
        targets.push(Target {
            name: case.name.to_string(),
            kind: "scaling",
            prog: case.program(),
            params: traffic_params(&case.sim_config().arch),
            relax_races: false,
            expect: Some(Verdict::BandwidthBound),
            measure: flags.traffic_full.then_some(case),
        });
    }

    // FFT plans the experiments sweep (static only).
    let cfg = golden::golden_config();
    let plans = [
        (
            "fft_1d_n64",
            XmtFftPlan::new_1d(64, default_copies(64, cfg.memory_modules)),
        ),
        (
            "fft_1d_n4096",
            XmtFftPlan::new_1d(4096, default_copies(4096, cfg.memory_modules)),
        ),
        (
            "fft_2d_64x64",
            XmtFftPlan::new_2d(64, 64, default_copies(4096, cfg.memory_modules)),
        ),
    ];
    let params = traffic_params(&cfg);
    for (name, plan) in plans {
        targets.push(Target {
            name: name.to_string(),
            kind: "plan",
            prog: plan.program,
            params,
            relax_races: false,
            expect: None,
            measure: None,
        });
    }

    // XMTC-authored samples: the FFT's ⊤ addresses relax the race
    // gate; the affine complex-square must prove clean end to end.
    for (name, src, relax) in [
        ("xmtc_fft_radix2", xmtc::samples::FFT_RADIX2, true),
        ("xmtc_complex_square", xmtc::samples::COMPLEX_SQUARE, false),
    ] {
        match xmtc::compile(src) {
            Ok(prog) => targets.push(Target {
                name: name.to_string(),
                kind: "xmtc",
                prog,
                params,
                relax_races: relax,
                expect: None,
                measure: None,
            }),
            Err(e) => {
                eprintln!("xmt-lint: {name} failed to compile: {e}");
                exit(1);
            }
        }
    }

    targets
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_str_list(items: &[String]) -> String {
    let quoted: Vec<String> = items
        .iter()
        .map(|s| format!("\"{}\"", json_escape(s)))
        .collect();
    format!("[{}]", quoted.join(","))
}

fn render_json(results: &[Outcome], failed: bool) -> String {
    let mut targets = Vec::new();
    for o in results {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"name\":\"{}\",\"kind\":\"{}\",\"digest\":\"{:016x}\",\"cached\":{},\
             \"errors\":{},\"warnings\":{},\"unproven_races\":{}",
            json_escape(&o.name),
            o.kind,
            o.digest,
            o.cached,
            o.findings.len().max(o.errors),
            o.warnings,
            o.unproven
        );
        if let Some(tv) = o.transval {
            let _ = write!(
                s,
                ",\"transval\":{{\"blocks\":{},\"uops\":{}}}",
                tv.blocks, tv.uops
            );
        }
        if let Some(tv) = o.cache_audit {
            let _ = write!(
                s,
                ",\"trace_cache_audit\":{{\"blocks\":{},\"uops\":{},\"cold_blocks\":{}}}",
                tv.blocks, tv.uops, tv.cold_blocks
            );
        }
        if let Some(v) = o.verdict {
            let _ = write!(s, ",\"verdict\":\"{v}\"");
        }
        if let Some(want) = o.expect {
            let _ = write!(s, ",\"pinned_verdict\":\"{want}\"");
        }
        if let Some(tr) = &o.traffic {
            let phases: Vec<String> = tr
                .phases
                .iter()
                .map(|p| {
                    let mut ps = String::new();
                    let _ = write!(
                        ps,
                        "{{\"index\":{},\"threads\":{},\"exact\":{},\
                         \"instructions\":[{},{}],\"flops\":[{},{}],\
                         \"reads\":[{},{}],\"writes\":[{},{}],\
                         \"noc_flits\":[{},{}],\"dram_bytes\":[{},{}],\
                         \"bottleneck\":\"{}\"",
                        p.index,
                        p.threads.map_or("null".into(), |t| t.to_string()),
                        p.exact,
                        p.instructions.0,
                        p.instructions.1,
                        p.flops.0,
                        p.flops.1,
                        p.reads.0,
                        p.reads.1,
                        p.writes.0,
                        p.writes.1,
                        p.noc_flits.0,
                        p.noc_flits.1,
                        p.dram_bytes.0,
                        p.dram_bytes.1,
                        p.bottleneck
                    );
                    if let Some((lo, hi)) = p.streaming_intensity {
                        let _ = write!(ps, ",\"streaming_intensity\":[{lo},{hi}]");
                    }
                    ps.push('}');
                    ps
                })
                .collect();
            let _ = write!(
                s,
                ",\"traffic\":{{\"ridge_intensity\":{},\"phase_order_exact\":{},\"phases\":[{}]}}",
                tr.ridge_intensity,
                tr.phase_order_exact,
                phases.join(",")
            );
        }
        let _ = write!(s, ",\"crosscheck\":\"{}\"", o.crosscheck);
        let _ = write!(s, ",\"findings\":{}", json_str_list(&o.findings));
        let _ = write!(s, ",\"notes\":{}", json_str_list(&o.notes));
        s.push('}');
        targets.push(s);
    }
    format!(
        "{{\"tool\":\"xmt-lint\",\"version\":1,\"passes\":\"{PASSES}\",\"status\":\"{}\",\
         \"targets\":[{}]}}",
        if failed { "fail" } else { "ok" },
        targets.join(",")
    )
}

fn render_text(results: &[Outcome]) {
    println!("xmt-lint: structure / def-use / races / transval / traffic\n");
    for o in results {
        let verdict = if o.gated() { "FAIL" } else { "ok" };
        let tv = o
            .transval
            .map_or("-".to_string(), |t| format!("{}b/{}u", t.blocks, t.uops));
        let roof = o.verdict.map_or("-".to_string(), |v| v.to_string());
        let cached = if o.cached { " (cached)" } else { "" };
        println!(
            "{verdict:>4}  {:<20} {:<8} transval {tv:>10}  roofline {roof:<16} xcheck {}{cached}",
            o.name, o.kind, o.crosscheck
        );
        if let Some(tv) = o.cache_audit {
            println!(
                "      replayed trace cache audited: {} block(s), {} uop(s), {} cold",
                tv.blocks, tv.uops, tv.cold_blocks
            );
        }
        if o.unproven > 0 {
            println!(
                "      {} race(s) unproven (⊤ addresses; reported, not gating for XMTC)",
                o.unproven
            );
        }
        for f in &o.findings {
            println!("      {f}");
        }
    }
    let pins: Vec<&Outcome> = results.iter().filter(|o| o.expect.is_some()).collect();
    if !pins.is_empty() {
        println!("\npinned roofline verdicts:");
        for o in pins {
            println!(
                "  {:<20} want {:<16} got {}",
                o.name,
                o.expect.unwrap().to_string(),
                o.verdict.map_or("-".to_string(), |v| v.to_string())
            );
        }
    }
}

fn main() {
    let flags = match parse_flags() {
        Ok(f) => f,
        Err(e) => {
            eprintln!("xmt-lint: {e}");
            eprintln!("usage: xmt_lint [--format text|json] [--traffic-full] [--no-cache] [--artifact PATH]");
            exit(2);
        }
    };

    let targets = build_targets(&flags);
    let mut results = Vec::new();
    let mut failed = false;
    for t in &targets {
        let o = run_target(t, &flags);
        failed |= o.gated();
        results.push(o);
    }

    let json = render_json(&results, failed);
    if let Some(dir) = flags.artifact.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&flags.artifact, &json) {
        eprintln!(
            "xmt-lint: could not write artifact {}: {e}",
            flags.artifact.display()
        );
    }

    if flags.json {
        println!("{json}");
    } else {
        render_text(&results);
        if failed {
            eprintln!("\nxmt-lint: at least one target failed verification");
        } else {
            println!(
                "\nall targets proven: lowerings equivalent, traffic within static bounds, \
                 paper-scale FFT bandwidth-bound"
            );
        }
    }
    exit(if failed { 1 } else { 0 });
}
