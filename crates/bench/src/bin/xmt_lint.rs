//! Static verification report for every kernel in the workspace.
//!
//! Runs `xmt-verify` (structure, def-before-use, data races) over all
//! golden workloads plus the FFT plans the experiments use, and prints
//! a per-kernel report. Exit status is nonzero if any kernel has an
//! error-severity finding, so CI can gate on it:
//!
//! ```text
//! cargo run --release -p xmt-bench --bin xmt_lint
//! ```

use xmt_fft::golden;
use xmt_fft::plan::{default_copies, XmtFftPlan};
use xmt_isa::Program;
use xmt_verify::verify;

fn lint(name: &str, prog: &Program, failed: &mut bool) {
    let report = verify(prog);
    let errs = report.errors().count();
    let warns = report.warnings().count();
    let spawns = prog
        .instrs()
        .iter()
        .filter(|i| matches!(i, xmt_isa::Instr::Spawn { .. }))
        .count();
    let verdict = if errs > 0 {
        *failed = true;
        "FAIL"
    } else {
        "ok"
    };
    println!(
        "{verdict:>4}  {name:<24} {:>5} instrs, {spawns:>2} spawn sites, {errs} error(s), {warns} warning(s)",
        prog.len()
    );
    for d in &report.diags {
        println!("      {d}");
    }
}

fn main() {
    let mut failed = false;
    println!("xmt-lint: structure / def-use / race verification\n");

    for case in golden::cases() {
        lint(case.name, &case.program(), &mut failed);
    }

    let cfg = golden::golden_config();
    let plans = [
        (
            "fft_1d_n64",
            XmtFftPlan::new_1d(64, default_copies(64, cfg.memory_modules)),
        ),
        (
            "fft_1d_n4096",
            XmtFftPlan::new_1d(4096, default_copies(4096, cfg.memory_modules)),
        ),
        (
            "fft_2d_64x64",
            XmtFftPlan::new_2d(64, 64, default_copies(4096, cfg.memory_modules)),
        ),
    ];
    for (name, plan) in &plans {
        lint(name, &plan.program, &mut failed);
    }

    if failed {
        eprintln!("\nxmt-lint: at least one kernel failed verification");
        std::process::exit(1);
    }
    println!(
        "\nall kernels verified: race-free (outside `ps`), fully initialized, structurally sound"
    );
}
