//! Observe a golden workload cycle-by-interval: run it with an
//! [`IntervalProbe`] attached, write a Chrome `trace_event` JSON
//! (open in `chrome://tracing` or <https://ui.perfetto.dev>) with
//! per-interval DRAM-channel busy fractions, NoC occupancy and
//! stall-cause counters, and print the per-phase stall-attribution
//! table with each spawn's roofline placement.
//!
//! ```text
//! cargo run --release -p xmt-bench --bin observe [workload] \
//!     [--interval N] [--out trace.json] [--stream]
//! ```
//!
//! Defaults: `fft_radix8_n512`, interval 64 cycles, output
//! `trace_<workload>.json`.
//!
//! `--stream` shrinks the per-module cache to a few lines and
//! throttles DRAM channel bandwidth before running, putting the
//! workload in the paper's operating regime: the 512³ problem the
//! paper measures dwarfs on-chip cache and shares modest aggregate
//! DRAM bandwidth across 64k TCUs, so every butterfly pass streams
//! from memory. In that regime the table reproduces the paper's
//! qualitative claim — every FFT phase sits on the bandwidth slope of
//! the roofline at ~100% of the attainable rate, and the stall
//! attribution is dominated by memory waits (outstanding-load
//! `scoreboard` stalls plus the `lsu/mem` path): DRAM-bound, not
//! compute-bound. Without the flag the scaled-down 512-point working
//! set fits in cache and the same kernel is compute/FPU-bound — the
//! contrast *is* the paper's Fig. 3 argument. (`--stream` timing is a
//! what-if analysis; the golden cycle counts only pin the unmodified
//! configuration.)

use xmt_fft::golden;
use xmt_sim::{chrome_trace, phase_table, IntervalProbe};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workload = "fft_radix8_n512".to_string();
    let mut interval: u64 = 64;
    let mut out = None;
    let mut stream = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--interval" => {
                interval = it
                    .next()
                    .expect("--interval needs a value")
                    .parse()
                    .expect("--interval takes a cycle count");
            }
            "--out" => out = Some(it.next().expect("--out needs a path").clone()),
            "--stream" => stream = true,
            _ => workload = a.clone(),
        }
    }

    let cases = golden::cases();
    let case = cases
        .iter()
        .find(|c| c.name == workload)
        .unwrap_or_else(|| {
            eprintln!(
                "unknown workload '{workload}'; available: {}",
                cases.iter().map(|c| c.name).collect::<Vec<_>>().join(", ")
            );
            std::process::exit(2);
        });
    let out_path = out.unwrap_or_else(|| format!("trace_{workload}.json"));

    let mut cfg = golden::golden_config();
    if stream {
        // Paper regime: working set >> cache, so butterfly passes
        // stream from DRAM, and per-TCU DRAM bandwidth is scarce (the
        // full 64k-TCU machine shares ~110 GB/s; the scaled-down
        // golden config is far more generous per TCU, which would
        // hide the bottleneck being demonstrated).
        cfg.cache.lines = 8;
        cfg.cache.ways = 1;
        cfg.dram.bytes_per_cycle = 1.0;
        eprintln!(
            "--stream: per-module cache shrunk to {} lines x {} B, DRAM channels \
             throttled to {} B/cycle (paper regime: problem >> cache, bandwidth-starved)",
            cfg.cache.lines,
            cfg.cache.line_words * 4,
            cfg.dram.bytes_per_cycle
        );
    }
    let mut m = case
        .builder_on(&cfg)
        .build_probed(IntervalProbe::new(interval, 1 << 16));
    let report = m.run().expect("workload must complete");
    let probe = m.probe();
    let rows = probe.rows();
    eprintln!(
        "{workload}: {} cycles, {} samples at interval {interval}{}",
        report.stats.cycles,
        probe.samples(),
        if probe.dropped() > 0 {
            format!(" ({} dropped to ring overwrite)", probe.dropped())
        } else {
            String::new()
        }
    );

    let json = chrome_trace(&rows, &report, &cfg);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    eprintln!("wrote {out_path} — load it in chrome://tracing or ui.perfetto.dev");

    println!("{}", phase_table(&report, &cfg));
}
