//! Regenerates Table V: XMT speedups relative to FFTW (serial and 32
//! threads on dual Xeon E5-2690).
//!
//! Two baselines are reported: the paper-pinned FFTW rates (derived
//! from Table IV/V arithmetic) and this host's measured `parafft`
//! rates — the first makes the table comparable to the paper, the
//! second makes it honest about the machine you are on.

use hpc_cluster::{measure_host, paper_pinned, speedups};
use xmt_bench::ColumnTable;
use xmt_fft::table4_projection;

const PAPER_VS_SERIAL: [f64; 5] = [31.0, 66.0, 482.0, 1652.0, 2494.0];
const PAPER_VS_32T: [f64; 5] = [2.8, 5.8, 43.0, 147.0, 222.0];

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let proj = table4_projection();
    let pinned = paper_pinned();

    println!("Table V — speedups relative to FFTW\n");
    println!(
        "Baseline (paper-pinned): serial {:.2} GFLOPS, {} threads {:.1} GFLOPS\n",
        pinned.serial_gflops, pinned.parallel_threads, pinned.parallel_gflops
    );
    let mut t = ColumnTable::new("", proj.iter().map(|p| p.config_name));
    t.row(
        "vs serial (model)",
        proj.iter()
            .map(|p| format!("{:.0}X", speedups(p.gflops_convention, &pinned).vs_serial)),
    )
    .row(
        "vs serial (paper)",
        PAPER_VS_SERIAL.iter().map(|v| format!("{v:.0}X")),
    )
    .row(
        "vs 32 threads (model)",
        proj.iter()
            .map(|p| format!("{:.1}X", speedups(p.gflops_convention, &pinned).vs_parallel)),
    )
    .row(
        "vs 32 threads (paper)",
        PAPER_VS_32T.iter().map(|v| format!("{v:.1}X")),
    );

    if !quick {
        let host = measure_host(1 << 20, 3);
        println!(
            "Baseline (host-measured, parafft): serial {:.2} GFLOPS, {} threads {:.2} GFLOPS",
            host.serial_gflops, host.parallel_threads, host.parallel_gflops
        );
        println!("(absolute host rates differ from a 2016 Xeon; ratios are what transfer)\n");
        t.row(
            "vs host serial (measured)",
            proj.iter()
                .map(|p| format!("{:.0}X", speedups(p.gflops_convention, &host).vs_serial)),
        )
        .row(
            "vs host parallel (measured)",
            proj.iter()
                .map(|p| format!("{:.1}X", speedups(p.gflops_convention, &host).vs_parallel)),
        );
    }
    println!("{}", t.render());
    println!(
        "Note: the paper's silicon argument also holds here — the 4k configuration\n\
         uses 227 mm^2 at 22 nm, i.e. 58% of the dual-E5-2690 baseline's silicon\n\
         (2 x 197 mm^2 at 22-nm-equivalent scaling), while beating its 32 threads."
    );
}
