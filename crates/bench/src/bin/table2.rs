//! Regenerates Table II: the five XMT architecture configurations.
//!
//! Rows come straight from `xmt_sim::XmtConfig::paper_configs()` — the
//! same presets the simulator and the projections run on.

use xmt_bench::ColumnTable;
use xmt_sim::XmtConfig;

fn main() {
    let cfgs = XmtConfig::paper_configs();
    let mut t = ColumnTable::new("", cfgs.iter().map(|c| c.name));
    t.row("TCUs", cfgs.iter().map(|c| c.tcus))
        .row("Clusters", cfgs.iter().map(|c| c.clusters))
        .row("Memory Modules", cfgs.iter().map(|c| c.memory_modules))
        .row("NoC MoT Levels", cfgs.iter().map(|c| c.mot_levels))
        .row(
            "NoC Butterfly Levels",
            cfgs.iter().map(|c| c.butterfly_levels),
        )
        .row(
            "MMs per DRAM Ctrl.",
            cfgs.iter().map(|c| c.mm_per_dram_ctrl),
        )
        .row("DRAM Channels", cfgs.iter().map(|c| c.dram_channels()))
        .row("FPUs per Cluster", cfgs.iter().map(|c| c.fpus_per_cluster))
        .row("TCUs per Cluster", cfgs.iter().map(|c| c.tcus_per_cluster))
        .row("ALUs per Cluster", cfgs.iter().map(|c| c.alus_per_cluster))
        .row("MDUs per Cluster", cfgs.iter().map(|c| c.mdus_per_cluster))
        .row("LSUs per Cluster", cfgs.iter().map(|c| c.lsus_per_cluster))
        .row(
            "Peak GFLOPS",
            cfgs.iter().map(|c| format!("{:.0}", c.peak_gflops())),
        )
        .row(
            "Peak DRAM GB/s",
            cfgs.iter().map(|c| format!("{:.0}", c.peak_dram_gbs())),
        );
    println!("Table II — XMT architecture configurations\n");
    println!("{}", t.render());
    println!(
        "(The paper's rows are reproduced exactly; \"DRAM Channels\", \"Peak GFLOPS\" and\n\
         \"Peak DRAM GB/s\" are derived rows used by the Roofline analysis.)"
    );
}
