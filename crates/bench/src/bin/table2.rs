//! Regenerates Table II: the five XMT architecture configurations.
//!
//! Rows come straight from `xmt_sim::XmtConfig::paper_configs()` — the
//! same presets the simulator and the projections run on.

use xmt_bench::render_table;
use xmt_sim::XmtConfig;

fn main() {
    let cfgs = XmtConfig::paper_configs();
    let headers: Vec<&str> = std::iter::once("")
        .chain(cfgs.iter().map(|c| c.name))
        .collect();
    let row = |name: &str, f: &dyn Fn(&XmtConfig) -> String| -> Vec<String> {
        std::iter::once(name.to_string())
            .chain(cfgs.iter().map(f))
            .collect()
    };
    let rows = vec![
        row("TCUs", &|c| c.tcus.to_string()),
        row("Clusters", &|c| c.clusters.to_string()),
        row("Memory Modules", &|c| c.memory_modules.to_string()),
        row("NoC MoT Levels", &|c| c.mot_levels.to_string()),
        row("NoC Butterfly Levels", &|c| c.butterfly_levels.to_string()),
        row("MMs per DRAM Ctrl.", &|c| c.mm_per_dram_ctrl.to_string()),
        row("DRAM Channels", &|c| c.dram_channels().to_string()),
        row("FPUs per Cluster", &|c| c.fpus_per_cluster.to_string()),
        row("TCUs per Cluster", &|c| c.tcus_per_cluster.to_string()),
        row("ALUs per Cluster", &|c| c.alus_per_cluster.to_string()),
        row("MDUs per Cluster", &|c| c.mdus_per_cluster.to_string()),
        row("LSUs per Cluster", &|c| c.lsus_per_cluster.to_string()),
        row("Peak GFLOPS", &|c| format!("{:.0}", c.peak_gflops())),
        row("Peak DRAM GB/s", &|c| format!("{:.0}", c.peak_dram_gbs())),
    ];
    println!("Table II — XMT architecture configurations\n");
    println!("{}", render_table(&headers, &rows));
    println!(
        "(The paper's rows are reproduced exactly; \"DRAM Channels\", \"Peak GFLOPS\" and\n\
         \"Peak DRAM GB/s\" are derived rows used by the Roofline analysis.)"
    );
}
