//! Measure simulator engine throughput and emit `BENCH_sim.json`.
//!
//! Runs the golden workloads (the same ones the cycle-count regression
//! tests pin bit-for-bit) under each advance engine and reports
//! simulated-cycles per host-second plus the speedup of the optimized
//! engines over per-cycle reference stepping.
//!
//! Timing discipline: each (case, engine) pair gets one untimed warm-up
//! run (page faults, allocator growth, branch-predictor training), then
//! repeated timed runs until ~250 ms of aggregate measurement or the
//! rep cap, whichever first. Workloads whose single run is shorter than
//! ~2 ms (spawn_storm, ps_tickets) are timed in *batches* sized to
//! ≥ 10 ms and the per-run time is the batch mean — a lone 100 µs run
//! is mostly timer quantization and scheduler noise, which used to make
//! `speedup_vs_reference` on the tiny workloads meaningless. The
//! *minimum* per-run time across reps/batches is reported — on a
//! shared/throttling host the minimum tracks the machine's actual
//! capability, where a mean or median absorbs scheduler noise.
//!
//! ```text
//! cargo run --release -p xmt-bench --bin bench_sim [out.json] \
//!     [--check baseline.json] [--engine <name>] [--scaling] [--probe] \
//!     [--faults] [--tier]
//! ```
//!
//! With `--check`, after measuring, the run fails (exit 1) if any
//! workload's fresh fast-forward speedup falls below 1.0× or if a
//! workload's simulated cycle count differs from the committed
//! baseline — CI wires this to `BENCH_sim.json` so an engine change
//! cannot silently regress the default engine or the golden cycle
//! counts. The unprobed fast-forward throughput must also stay within
//! a (generous) factor of the baseline's, so probe hooks cannot creep
//! into the `NoProbe` hot path unnoticed.
//!
//! With `--engine <name>` (reference | fast_forward | threaded), only
//! that engine is measured. No JSON is written and no cross-engine
//! checks run — the mode exists so CI and local runs can benchmark one
//! engine without paying for all three.
//!
//! With `--scaling`, the paper-scale workloads (`golden::scaling_cases`:
//! FFT plans on the 4096-, 8192- and 65536-TCU configurations) are
//! additionally measured — under reference, fast-forward, and the
//! threaded engine at both auto and 2 host threads — and a `"scaling"`
//! section (cycles/s vs TCU count vs host threads) is appended to the
//! JSON. The mode always asserts that every engine produces identical
//! simulated cycles and spawn digests on every scaling case, and fails
//! if the threaded engine's throughput drops below
//! [`SCALING_GATE_FLOOR`] × reference on any of them (the "Threaded
//! must win at paper scale" gate, with slack for CI jitter).
//!
//! With `--probe`, every workload additionally runs with an
//! [`IntervalProbe`] attached, asserting the probed cycle counts are
//! bit-identical to the unprobed (and baseline) ones and that the
//! probe's cumulative totals equal the run's final statistics — the
//! zero-interference contract of the observability layer. No JSON is
//! written in this mode.
//!
//! With `--faults`, every workload runs once with a *benign*
//! [`FaultPlan`] (seeded but all rates zero, no dead components) and
//! the cycle count, full statistics and spawn digest must be
//! bit-identical to a plain build — the fault layer's own
//! zero-interference contract. Each workload then runs with a
//! fixed-seed soft-fault plan (DRAM bit flips + NoC corruption) under
//! all three engines, which must agree bit-for-bit on the faulted
//! statistics: deterministic replay. No JSON is written in this mode.
//!
//! With `--tier`, the block-compiled execution tier's contracts are
//! checked on every golden workload: tier-on runs (the default
//! [`TranslationTier::Block`]) must be bit-identical in statistics and
//! spawn digest to tier-off ([`TranslationTier::Interpreter`]) runs
//! under all three engines, trace-cache statistics must be byte-equal
//! across repeated runs (deterministic exercise), a fixed-seed
//! soft-fault replay must not be perturbed by the tier, and tier-on
//! fast-forward throughput must reach [`TIER_GATE_FLOOR`] × tier-off
//! on the paper-scale FFT workloads. No JSON is written in this mode.

use std::fmt::Write as _;
use std::time::Instant;
use xmt_fft::golden;
use xmt_sim::{Engine, FaultPlan, TranslationTier};

/// Keep sampling until this much measured time has accumulated.
const TARGET_SECS: f64 = 0.25;
/// Never fewer timed reps (batches) than this (variance floor)...
const MIN_REPS: usize = 3;
/// ...and never more than this (fast cases would spin forever).
const MAX_REPS: usize = 1000;
/// Single runs shorter than this are timer-noise-dominated: batch them.
const BATCH_FLOOR_SECS: f64 = 0.002;
/// Size batches of tiny runs to at least this much wall clock.
const BATCH_TARGET_SECS: f64 = 0.010;
/// Upper bound on runs per timed batch.
const MAX_BATCH: usize = 512;

/// Min per-run wall-clock seconds for one engine on one case, after one
/// untimed warm-up run. Tiny runs are timed in batches (see module
/// docs). Returns `(simulated_cycles, spawn_digest, best_seconds)`.
fn measure(case: &golden::GoldenCase, engine: Engine) -> (u64, u64, f64) {
    let sim = case.sim_config().engine(engine);
    let run_once = || {
        let mut m = case.builder_cfg(&sim).build();
        let t0 = Instant::now();
        let s = m.run().expect("golden case must complete");
        let secs = t0.elapsed().as_secs_f64();
        (s.stats.cycles, golden::spawn_digest(&s), secs)
    };
    // Warm-up (untimed result-wise, but its duration sizes the batch).
    let (cycles, digest, warm_secs) = run_once();
    let batch = if warm_secs < BATCH_FLOOR_SECS {
        ((BATCH_TARGET_SECS / warm_secs.max(1e-7)).ceil() as usize).clamp(1, MAX_BATCH)
    } else {
        1
    };
    let mut best = f64::INFINITY;
    let mut total = 0.0;
    let mut reps = 0;
    while reps < MIN_REPS || (total < TARGET_SECS && reps < MAX_REPS) {
        let t0 = Instant::now();
        for _ in 0..batch {
            let (c, d, _) = run_once();
            assert_eq!(c, cycles, "nondeterministic cycle count on {}", case.name);
            assert_eq!(d, digest, "nondeterministic spawn log on {}", case.name);
        }
        let secs = t0.elapsed().as_secs_f64() / batch as f64;
        best = best.min(secs);
        total += secs * batch as f64;
        reps += 1;
    }
    (cycles, digest, best)
}

/// Extract `"field": <digits>` following `"name": "<workload>"` from a
/// baseline JSON, with no JSON dependency (the file is written by this
/// binary, so the shape is known).
fn baseline_u64(baseline: &str, workload: &str, field: &str) -> Option<u64> {
    let start = baseline.find(&format!("\"name\": \"{workload}\""))?;
    let tail = &baseline[start..];
    let f = tail.find(&format!("\"{field}\":"))?;
    let digits: String = tail[f..]
        .chars()
        .skip_while(|c| !c.is_ascii_digit())
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// The baseline's fast-forward `cycles_per_second` for a workload.
fn baseline_ff_rate(baseline: &str, workload: &str) -> Option<u64> {
    let start = baseline.find(&format!("\"name\": \"{workload}\""))?;
    let tail = &baseline[start..];
    let ff = tail.find("\"fast_forward\":")?;
    let tail = &tail[ff..];
    let f = tail.find("\"cycles_per_second\":")?;
    let digits: String = tail[f..]
        .chars()
        .skip_while(|c| !c.is_ascii_digit())
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Unprobed throughput may not fall below this fraction of the
/// committed baseline's (generous: it must absorb host noise and CI
/// contention, while still catching probe hooks leaking into the
/// `NoProbe` hot path, which costs integer factors, not percents).
const NOPROBE_RATE_FLOOR: f64 = 0.25;

/// `--scaling` gate: the threaded engine's throughput must stay at or
/// above this fraction of reference on every paper-scale workload —
/// nominally ≥ 1.0× ("Threaded must win"), with slack for CI jitter.
const SCALING_GATE_FLOOR: f64 = 0.9;

/// `--tier` gate: tier-on fast-forward must beat tier-off by at least
/// this factor on the issue-bound paper-scale FFT workloads (best case
/// across the set — the dense-regime cases are memory-system-bound,
/// where the tier is throughput-neutral by design). The tier lands
/// ≥ 3× on a quiet host; 1.5× leaves room for CI contention while
/// still catching the tier being silently disabled or de-optimized.
const TIER_GATE_FLOOR: f64 = 1.5;

/// `--tier` gate: no paper-scale FFT workload may run slower with the
/// tier on than off beyond host jitter — even the memory-bound ones
/// where the replay path is not expected to win.
const TIER_REGRESS_FLOOR: f64 = 0.9;

/// `--probe`: rerun every golden workload with an [`IntervalProbe`]
/// attached and assert the observability layer changes nothing: cycle
/// counts stay bit-identical to the unprobed run (and the committed
/// baseline), and the probe's cumulative totals equal the run's final
/// statistics. Returns failure messages.
fn probe_check(baseline: Option<&str>) -> Vec<String> {
    let mut failures = Vec::new();
    let engines: &[(&str, Engine)] = &[
        ("reference", Engine::Reference),
        ("fast_forward", Engine::FastForward),
        ("threaded", Engine::Threaded { threads: 0 }),
    ];
    for case in golden::cases() {
        let mut plain = case.builder_cfg(&case.sim_config()).build();
        let unprobed = plain.run().expect("golden case must complete");
        for &(name, engine) in engines {
            let sim = case.sim_config().engine(engine).probed(64);
            let probe = sim.interval_probe().expect("probed request value");
            let mut m = case.builder_cfg(&sim).build_probed(probe);
            let rep = m.run().expect("probed golden case must complete");
            let probe = m.probe();
            if rep.stats.cycles != unprobed.stats.cycles {
                failures.push(format!(
                    "{}/{name}: probed cycles {} != unprobed {}",
                    case.name, rep.stats.cycles, unprobed.stats.cycles
                ));
            }
            if probe.totals() != rep.stats {
                failures.push(format!(
                    "{}/{name}: probe totals {:?} != run stats {:?}",
                    case.name,
                    probe.totals(),
                    rep.stats
                ));
            }
            if probe.samples() == 0 {
                failures.push(format!("{}/{name}: probe recorded no samples", case.name));
            }
            if let Some(base) = baseline {
                match baseline_u64(base, case.name, "simulated_cycles") {
                    Some(want) if want != rep.stats.cycles => failures.push(format!(
                        "{}/{name}: probed simulated_cycles {} != baseline {want}",
                        case.name, rep.stats.cycles
                    )),
                    None => failures.push(format!("{}: missing from baseline", case.name)),
                    _ => {}
                }
            }
            eprintln!(
                "{:16} {:13} {:>9} cycles  {:>6} samples  probe OK",
                case.name,
                name,
                rep.stats.cycles,
                probe.samples()
            );
        }
    }
    failures
}

/// `--faults`: check the fault layer's two contracts on every golden
/// workload. (1) Zero interference: a benign seeded [`FaultPlan`]
/// changes nothing — stats and spawn digest bit-identical to a plain
/// build (and the committed baseline's cycle count). (2) Deterministic
/// replay: a fixed-seed soft-fault plan produces bit-identical faulted
/// statistics under reference, fast-forward and threaded advance.
/// Returns failure messages.
fn fault_check(baseline: Option<&str>) -> Vec<String> {
    let mut failures = Vec::new();
    let engines: &[(&str, Engine)] = &[
        ("reference", Engine::Reference),
        ("fast_forward", Engine::FastForward),
        ("threaded", Engine::Threaded { threads: 0 }),
    ];
    for case in golden::cases() {
        let mut plain = case.builder_cfg(&case.sim_config()).build();
        let healthy = plain.run().expect("golden case must complete");

        // (1) Benign plan: the fault layer must not perturb anything.
        let benign_sim = case.sim_config().faults(FaultPlan::new(0xB1A5));
        let mut m = case.builder_cfg(&benign_sim).build();
        let benign = m.run().expect("benign-fault golden case must complete");
        if benign.stats != healthy.stats {
            failures.push(format!(
                "{}: benign fault plan perturbed stats ({:?} != {:?})",
                case.name, benign.stats, healthy.stats
            ));
        }
        if golden::spawn_digest(&benign) != golden::spawn_digest(&healthy) {
            failures.push(format!(
                "{}: benign fault plan perturbed the spawn log",
                case.name
            ));
        }
        if let Some(base) = baseline {
            match baseline_u64(base, case.name, "simulated_cycles") {
                Some(want) if want != benign.stats.cycles => failures.push(format!(
                    "{}: benign-fault simulated_cycles {} != baseline {want}",
                    case.name, benign.stats.cycles
                )),
                None => failures.push(format!("{}: missing from baseline", case.name)),
                _ => {}
            }
        }

        // (2) Fixed-seed soft faults: every engine replays identically.
        let plan = || {
            FaultPlan::new(0xFEED_5EED)
                .dram_flips(0.02, 0.002)
                .noc_corrupt(0.01)
        };
        let mut faulted = Vec::new();
        for &(name, engine) in engines {
            let sim = case.sim_config().engine(engine).faults(plan());
            let mut m = case.builder_cfg(&sim).build();
            let rep = m.run().expect("soft-faulted golden case must complete");
            eprintln!(
                "{:16} {:13} healthy {:>8} cycles  faulted {:>8} cycles",
                case.name, name, healthy.stats.cycles, rep.stats.cycles
            );
            faulted.push((name, rep));
        }
        let (ref_name, ref_rep) = &faulted[0];
        for (name, rep) in &faulted[1..] {
            if rep.stats != ref_rep.stats {
                failures.push(format!(
                    "{}: faulted stats diverge between {ref_name} and {name}",
                    case.name
                ));
            }
            if golden::spawn_digest(rep) != golden::spawn_digest(ref_rep) {
                failures.push(format!(
                    "{}: faulted spawn log diverges between {ref_name} and {name}",
                    case.name
                ));
            }
        }
    }
    failures
}

/// Best-of-3 wall-clock seconds for one run of `case` under `engine`
/// with the translation tier pinned. Lighter than [`measure`] (no
/// time-accumulation target): the `--tier` gate only compares the two
/// tiers on the long paper-scale runs, where a single run is far above
/// timer noise.
fn measure_tier(case: &golden::GoldenCase, engine: Engine, tier: TranslationTier) -> f64 {
    let sim = case.sim_config().engine(engine).tier(tier);
    let run_once = || {
        let mut m = case.builder_cfg(&sim).build();
        let t0 = Instant::now();
        m.run().expect("golden case must complete");
        t0.elapsed().as_secs_f64()
    };
    let _ = run_once(); // warm-up
    (0..3).map(|_| run_once()).fold(f64::INFINITY, f64::min)
}

/// `--tier`: check the block-compiled tier's contracts. (1) Zero
/// interference: tier-on statistics and spawn digests are bit-identical
/// to tier-off under reference, fast-forward and threaded advance, on
/// every golden workload (and match the committed baseline's cycle
/// counts). (2) Determinism: the trace cache's exercise counters are
/// byte-equal across repeated tier-on runs. (3) Fault transparency: a
/// fixed-seed soft-fault replay is unchanged by the tier. (4) Speed:
/// tier-on fast-forward reaches [`TIER_GATE_FLOOR`] × tier-off on the
/// paper-scale FFT workloads. Returns failure messages.
fn tier_check(baseline: Option<&str>) -> Vec<String> {
    let mut failures = Vec::new();
    let engines: &[(&str, Engine)] = &[
        ("reference", Engine::Reference),
        ("fast_forward", Engine::FastForward),
        ("threaded", Engine::Threaded { threads: 0 }),
    ];
    for case in golden::cases() {
        let off_sim = case.sim_config().tier(TranslationTier::Interpreter);
        let mut off = case.builder_cfg(&off_sim).build();
        let off_rep = off.run().expect("tier-off golden case must complete");
        for &(name, engine) in engines {
            let run_on = || {
                let sim = case
                    .sim_config()
                    .engine(engine)
                    .tier(TranslationTier::Block);
                let mut m = case.builder_cfg(&sim).build();
                let rep = m.run().expect("tier-on golden case must complete");
                let ts = m.trace_stats().expect("Block tier must expose trace stats");
                (rep, ts)
            };
            let (on_rep, ts) = run_on();
            if on_rep.stats != off_rep.stats {
                failures.push(format!(
                    "{}/{name}: tier-on stats {:?} != tier-off {:?}",
                    case.name, on_rep.stats, off_rep.stats
                ));
            }
            if golden::spawn_digest(&on_rep) != golden::spawn_digest(&off_rep) {
                failures.push(format!(
                    "{}/{name}: tier-on spawn log differs from tier-off",
                    case.name
                ));
            }
            let mut m = case.builder_cfg(&off_sim.clone().engine(engine)).build();
            let rep = m.run().expect("tier-off golden case must complete");
            if rep.stats != off_rep.stats {
                failures.push(format!(
                    "{}/{name}: tier-off stats diverge across engines",
                    case.name
                ));
            }
            // Determinism: the cache's exercise counters are a pure
            // function of (program, config, engine).
            let (_, ts2) = run_on();
            if ts != ts2 {
                failures.push(format!(
                    "{}/{name}: trace stats nondeterministic ({ts:?} != {ts2:?})",
                    case.name
                ));
            }
            if let Some(base) = baseline {
                match baseline_u64(base, case.name, "simulated_cycles") {
                    Some(want) if want != on_rep.stats.cycles => failures.push(format!(
                        "{}/{name}: tier-on simulated_cycles {} != baseline {want}",
                        case.name, on_rep.stats.cycles
                    )),
                    None => failures.push(format!("{}: missing from baseline", case.name)),
                    _ => {}
                }
            }
            let entries = ts.entries + on_rep.stats.threads;
            eprintln!(
                "{:16} {:13} {:>9} cycles  {:>4} blocks {:>4} lowered {:>8} entries  tier OK",
                case.name, name, on_rep.stats.cycles, ts.blocks, ts.lowered, entries
            );
        }
        // Fault transparency: the tier must be invisible to a seeded
        // soft-fault replay, bit for bit.
        let plan = || {
            FaultPlan::new(0xFEED_5EED)
                .dram_flips(0.02, 0.002)
                .noc_corrupt(0.01)
        };
        let fault_off = case
            .sim_config()
            .faults(plan())
            .tier(TranslationTier::Interpreter);
        let mut a = case.builder_cfg(&fault_off).build();
        let fa = a.run().expect("faulted tier-off run must complete");
        let fault_on = case
            .sim_config()
            .faults(plan())
            .tier(TranslationTier::Block);
        let mut b = case.builder_cfg(&fault_on).build();
        let fb = b.run().expect("faulted tier-on run must complete");
        if fa.stats != fb.stats || golden::spawn_digest(&fa) != golden::spawn_digest(&fb) {
            failures.push(format!(
                "{}: soft-fault replay perturbed by the tier",
                case.name
            ));
        }
    }
    // Throughput gate on the paper-scale FFTs, fast-forward engine:
    // no case may regress past TIER_REGRESS_FLOOR, and the best case
    // must clear TIER_GATE_FLOOR (the dense-regime workloads spend
    // their host time in the NoC/DRAM model, which the tier leaves
    // untouched; the issue-bound ones are where replay must pay).
    let mut best = 0.0_f64;
    for case in golden::scaling_cases() {
        let off = measure_tier(&case, Engine::FastForward, TranslationTier::Interpreter);
        let on = measure_tier(&case, Engine::FastForward, TranslationTier::Block);
        let ratio = off / on;
        eprintln!(
            "{:18} fast_forward  tier-off {:>7.3}s  tier-on {:>7.3}s  {ratio:.2}x",
            case.name, off, on
        );
        if ratio < TIER_REGRESS_FLOOR {
            failures.push(format!(
                "{}: tier-on fast-forward {ratio:.2}x tier-off < {TIER_REGRESS_FLOOR}x \
                 — the tier must never cost throughput",
                case.name
            ));
        }
        best = best.max(ratio);
    }
    if best < TIER_GATE_FLOOR {
        failures.push(format!(
            "best tier-on speedup {best:.2}x < {TIER_GATE_FLOOR}x floor \
             — the block-compiled tier is not paying for itself"
        ));
    }
    failures
}

/// One measured row: engine label, cycles, digest, best secs, rate.
type Row = (&'static str, u64, u64, f64, f64);

/// Measure `case` under `engines`, logging each rate to stderr.
fn measure_case(case: &golden::GoldenCase, engines: &[(&'static str, Engine)]) -> Vec<Row> {
    let mut rows = Vec::new();
    for &(name, engine) in engines {
        let (cycles, digest, secs) = measure(case, engine);
        let rate = cycles as f64 / secs;
        eprintln!(
            "{:18} {:13} {:>9} cycles  {:>10.0} cycles/s",
            case.name, name, cycles, rate
        );
        rows.push((name, cycles, digest, secs, rate));
    }
    rows
}

/// Render one workload's `"trace"` JSON object from a single tier-on
/// fast-forward run: superblock count, lowerings, micro-ops, total
/// trace entries (branch resolutions plus thread activations) and the
/// hit rate — the fraction of entries that found an already-lowered
/// block (each lazy lowering is the miss that warmed it).
fn render_trace(json: &mut String, case: &golden::GoldenCase) {
    let sim = case.sim_config().engine(Engine::FastForward);
    let mut m = case.builder_cfg(&sim).build();
    let rep = m.run().expect("golden case must complete");
    let ts = m.trace_stats().expect("default tier must be Block");
    let entries = ts.entries + rep.stats.threads;
    let hits = entries.saturating_sub(ts.lowered);
    let hit_rate = if entries > 0 {
        hits as f64 / entries as f64
    } else {
        1.0
    };
    writeln!(
        json,
        "      \"trace\": {{ \"blocks\": {}, \"lowered\": {}, \"uops\": {}, \
         \"entries\": {entries}, \"hit_rate\": {hit_rate:.4} }},",
        ts.blocks, ts.lowered, ts.uops
    )
    .unwrap();
}

/// Render one workload's `"engines"` JSON object. `ref_rate` is the
/// reference engine's rate when it was measured (speedup denominator).
fn render_engines(json: &mut String, rows: &[Row], ref_rate: Option<f64>) {
    writeln!(json, "      \"engines\": {{").unwrap();
    for (ei, (name, _, _, secs, rate)) in rows.iter().enumerate() {
        let comma = if ei + 1 < rows.len() { "," } else { "" };
        let speedup = ref_rate.map_or_else(String::new, |r| {
            format!(", \"speedup_vs_reference\": {:.2}", rate / r)
        });
        writeln!(
            json,
            "        \"{name}\": {{ \"host_seconds\": {secs:.6}, \
             \"cycles_per_second\": {rate:.0}{speedup} }}{comma}",
        )
        .unwrap();
    }
    writeln!(json, "      }}").unwrap();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check_path = args
        .iter()
        .position(|a| a == "--check")
        .map(|i| args.get(i + 1).expect("--check needs a baseline path"));
    let engine_filter = args
        .iter()
        .position(|a| a == "--engine")
        .map(|i| args.get(i + 1).expect("--engine needs a name").as_str());
    let probe_mode = args.iter().any(|a| a == "--probe");
    let fault_mode = args.iter().any(|a| a == "--faults");
    let tier_mode = args.iter().any(|a| a == "--tier");
    let scaling_mode = args.iter().any(|a| a == "--scaling");
    let out_path = args
        .iter()
        .find(|a| {
            !a.starts_with("--") && check_path != Some(a) && engine_filter != Some(a.as_str())
        })
        .cloned()
        .unwrap_or_else(|| "BENCH_sim.json".to_string());
    // Read the baseline *before* measuring: out_path and the baseline
    // are usually the same committed file.
    let baseline = check_path
        .map(|p| std::fs::read_to_string(p).unwrap_or_else(|e| panic!("read baseline {p}: {e}")));

    if probe_mode {
        let failures = probe_check(baseline.as_deref());
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("PROBE CHECK FAILED: {f}");
            }
            std::process::exit(1);
        }
        eprintln!("probe checks passed: probed runs bit-identical to unprobed");
        return;
    }
    if fault_mode {
        let failures = fault_check(baseline.as_deref());
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("FAULT CHECK FAILED: {f}");
            }
            std::process::exit(1);
        }
        eprintln!(
            "fault checks passed: benign plans are zero-interference, \
             faulted runs replay bit-identically across engines"
        );
        return;
    }
    if tier_mode {
        let failures = tier_check(baseline.as_deref());
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("TIER CHECK FAILED: {f}");
            }
            std::process::exit(1);
        }
        eprintln!(
            "tier checks passed: block-compiled runs bit-identical to \
             interpreted, trace stats deterministic, throughput gate met"
        );
        return;
    }
    let all_engines: &[(&'static str, Engine)] = &[
        ("reference", Engine::Reference),
        ("fast_forward", Engine::FastForward),
        ("threaded", Engine::Threaded { threads: 0 }),
    ];
    let engines: Vec<(&'static str, Engine)> = match engine_filter {
        Some(want) => {
            let picked: Vec<_> = all_engines
                .iter()
                .copied()
                .filter(|(n, _)| *n == want)
                .collect();
            assert!(
                !picked.is_empty(),
                "--engine {want}: unknown engine (expected one of reference, \
                 fast_forward, threaded)"
            );
            picked
        }
        None => all_engines.to_vec(),
    };

    let mut failures = Vec::new();
    let host_threads = std::thread::available_parallelism().map_or(1, usize::from);
    let mut json = String::from("{\n  \"benchmark\": \"sim_throughput\",\n");
    writeln!(json, "  \"machine\": {{").unwrap();
    writeln!(json, "    \"host_threads\": {host_threads},").unwrap();
    writeln!(json, "    \"os\": \"{}\",", std::env::consts::OS).unwrap();
    writeln!(json, "    \"arch\": \"{}\"", std::env::consts::ARCH).unwrap();
    writeln!(json, "  }},").unwrap();
    json.push_str("  \"workloads\": [\n");
    let cases = golden::cases();
    for (ci, case) in cases.iter().enumerate() {
        let rows = measure_case(case, &engines);
        let ref_rate = rows
            .iter()
            .find(|r| r.0 == "reference")
            .map(|r| r.4)
            .filter(|_| engine_filter.is_none());
        if let (Some(base), None) = (&baseline, engine_filter) {
            let ff_speedup = rows[1].4 / rows[0].4;
            if ff_speedup < 1.0 {
                failures.push(format!(
                    "{}: fast_forward speedup {ff_speedup:.2}x < 1.0x vs reference",
                    case.name
                ));
            }
            match baseline_u64(base, case.name, "simulated_cycles") {
                Some(want) if want != rows[0].1 => failures.push(format!(
                    "{}: simulated_cycles {} != baseline {want}",
                    case.name, rows[0].1
                )),
                None => failures.push(format!("{}: missing from baseline", case.name)),
                _ => {}
            }
            if let Some(rate) = baseline_ff_rate(base, case.name) {
                let floor = NOPROBE_RATE_FLOOR * rate as f64;
                if rows[1].4 < floor {
                    failures.push(format!(
                        "{}: fast_forward {:.0} cycles/s below {:.0} \
                         ({}% of baseline {rate}) — NoProbe hot path regressed",
                        case.name,
                        rows[1].4,
                        floor,
                        (NOPROBE_RATE_FLOOR * 100.0) as u32
                    ));
                }
            }
        }
        writeln!(json, "    {{").unwrap();
        writeln!(json, "      \"name\": \"{}\",", case.name).unwrap();
        writeln!(json, "      \"simulated_cycles\": {},", rows[0].1).unwrap();
        if engine_filter.is_none() {
            render_trace(&mut json, case);
        }
        render_engines(&mut json, &rows, ref_rate);
        let comma = if ci + 1 < cases.len() { "," } else { "" };
        writeln!(json, "    }}{comma}").unwrap();
    }
    if scaling_mode {
        json.push_str("  ],\n  \"scaling\": [\n");
        // The host-thread axis of the curve: the threaded engine at
        // auto (all cores) and at a pinned 2 workers, alongside the
        // serial engines.
        let scaling_engines: Vec<(&'static str, Engine)> = {
            let base: &[(&'static str, Engine)] = &[
                ("reference", Engine::Reference),
                ("fast_forward", Engine::FastForward),
                ("threaded", Engine::Threaded { threads: 0 }),
                ("threaded_2", Engine::Threaded { threads: 2 }),
            ];
            match engine_filter {
                Some(want) => base
                    .iter()
                    .copied()
                    .filter(|(n, _)| n.starts_with(want))
                    .collect(),
                None => base.to_vec(),
            }
        };
        let scases = golden::scaling_cases();
        for (ci, case) in scases.iter().enumerate() {
            let cfg = case.config();
            let rows = measure_case(case, &scaling_engines);
            // Bit-identity across every engine, unconditionally.
            for r in &rows[1..] {
                if r.1 != rows[0].1 {
                    failures.push(format!(
                        "{}: {} cycles {} != {} cycles {}",
                        case.name, r.0, r.1, rows[0].0, rows[0].1
                    ));
                }
                if r.2 != rows[0].2 {
                    failures.push(format!(
                        "{}: {} spawn digest {:#018x} != {} {:#018x}",
                        case.name, r.0, r.2, rows[0].0, rows[0].2
                    ));
                }
            }
            let ref_rate = rows.iter().find(|r| r.0 == "reference").map(|r| r.4);
            if let (Some(rr), Some(thr)) = (ref_rate, rows.iter().find(|r| r.0 == "threaded")) {
                let ratio = thr.4 / rr;
                if ratio < SCALING_GATE_FLOOR {
                    failures.push(format!(
                        "{}: threaded {:.2}x reference < {SCALING_GATE_FLOOR}x floor \
                         — the sharded engine must win at paper scale",
                        case.name, ratio
                    ));
                }
            }
            if let (Some(base), None) = (&baseline, engine_filter) {
                match baseline_u64(base, case.name, "simulated_cycles") {
                    Some(want) if want != rows[0].1 => failures.push(format!(
                        "{}: simulated_cycles {} != baseline {want}",
                        case.name, rows[0].1
                    )),
                    None => failures.push(format!("{}: missing from baseline", case.name)),
                    _ => {}
                }
            }
            writeln!(json, "    {{").unwrap();
            writeln!(json, "      \"name\": \"{}\",", case.name).unwrap();
            writeln!(json, "      \"tcus\": {},", cfg.tcus).unwrap();
            writeln!(json, "      \"simulated_cycles\": {},", rows[0].1).unwrap();
            writeln!(json, "      \"spawn_digest\": \"{:#018x}\",", rows[0].2).unwrap();
            if engine_filter.is_none() {
                render_trace(&mut json, case);
            }
            render_engines(&mut json, &rows, ref_rate);
            let comma = if ci + 1 < scases.len() { "," } else { "" };
            writeln!(json, "    }}{comma}").unwrap();
        }
    }
    json.push_str("  ]\n}\n");
    if engine_filter.is_some() {
        eprintln!("--engine filter active: measurements printed, no JSON written");
    } else {
        std::fs::write(&out_path, &json).expect("write BENCH_sim.json");
        eprintln!("wrote {out_path}");
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("BENCH CHECK FAILED: {f}");
        }
        std::process::exit(1);
    }
}
