//! Measure simulator engine throughput and emit `BENCH_sim.json`.
//!
//! Runs the golden workloads (the same ones the cycle-count regression
//! tests pin bit-for-bit) under each advance engine and reports
//! simulated-cycles per host-second plus the speedup of the optimized
//! engines over per-cycle reference stepping. The acceptance bar for
//! the fast-path engine rework: ≥3× on the memory-latency-bound chase,
//! no regression on the compute-saturated FPU chain.
//!
//! ```text
//! cargo run --release -p xmt-bench --bin bench_sim [out.json]
//! ```

use std::fmt::Write as _;
use std::time::Instant;
use xmt_fft::golden;
use xmt_sim::Engine;

/// Median-of-N wall-clock seconds for one engine on one case.
fn measure(case: &golden::GoldenCase, engine: Engine, reps: usize) -> (u64, f64) {
    let mut times = Vec::with_capacity(reps);
    let mut cycles = 0;
    for _ in 0..reps {
        let mut m = case.machine();
        m.engine = engine;
        let t0 = Instant::now();
        let s = m.run().expect("golden case must complete");
        times.push(t0.elapsed().as_secs_f64());
        cycles = s.stats.cycles;
    }
    times.sort_by(|a, b| a.total_cmp(b));
    (cycles, times[reps / 2])
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_sim.json".to_string());
    let engines: &[(&str, Engine)] = &[
        ("reference", Engine::Reference),
        ("fast_forward", Engine::FastForward),
        ("threaded", Engine::Threaded { threads: 0 }),
    ];
    let reps = 5;

    let mut json = String::from("{\n  \"benchmark\": \"sim_throughput\",\n  \"workloads\": [\n");
    let cases = golden::cases();
    for (ci, case) in cases.iter().enumerate() {
        let mut rows = Vec::new();
        for &(name, engine) in engines {
            let (cycles, secs) = measure(case, engine, reps);
            let rate = cycles as f64 / secs;
            eprintln!(
                "{:16} {:13} {:>9} cycles  {:>10.0} cycles/s",
                case.name, name, cycles, rate
            );
            rows.push((name, cycles, secs, rate));
        }
        let ref_rate = rows[0].3;
        writeln!(json, "    {{").unwrap();
        writeln!(json, "      \"name\": \"{}\",", case.name).unwrap();
        writeln!(json, "      \"simulated_cycles\": {},", rows[0].1).unwrap();
        writeln!(json, "      \"engines\": {{").unwrap();
        for (ei, (name, _, secs, rate)) in rows.iter().enumerate() {
            let comma = if ei + 1 < rows.len() { "," } else { "" };
            writeln!(
                json,
                "        \"{name}\": {{ \"host_seconds\": {secs:.6}, \
                 \"cycles_per_second\": {rate:.0}, \"speedup_vs_reference\": {:.2} }}{comma}",
                rate / ref_rate
            )
            .unwrap();
        }
        writeln!(json, "      }}").unwrap();
        let comma = if ci + 1 < cases.len() { "," } else { "" };
        writeln!(json, "    }}{comma}").unwrap();
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_sim.json");
    eprintln!("wrote {out_path}");
}
