//! Scaling studies (extension, contextualizing Section I-A):
//!
//! * problem-size scaling of the XMT configurations (does the 512³
//!   operating point generalize?),
//! * weak scaling of the cluster model, mirroring the published MPI
//!   series the paper quotes (159 GFLOPS at 512³ up to ~17.6 TFLOPS at
//!   4096×4096×2048 on Cray systems \[16\]),
//! * strong scaling of the Edison FFT with node count.

use hpc_cluster::{model, Cluster, Fft3dJob};
use xmt_bench::{render_table, ColumnTable};
use xmt_fft::project;
use xmt_sim::XmtConfig;

fn main() {
    println!("XMT problem-size scaling (GFLOPS, 5N.log2N convention)\n");
    let sizes: [usize; 4] = [128, 256, 512, 1024];
    let mut t = ColumnTable::new("config", sizes.iter().map(|s| format!("{s}^3")));
    for cfg in XmtConfig::paper_configs() {
        t.row(
            cfg.name,
            sizes
                .iter()
                .map(|&s| format!("{:.0}", project(&cfg, &[s, s, s]).gflops_convention)),
        );
    }
    println!("{}", t.render());
    println!("(small cubes fit in cache and leave the DRAM roofline; large ones stream)\n");

    println!("Cluster weak scaling (Edison model, 16 B complex, 24 cores/node)\n");
    let series: [(usize, usize, usize, usize); 4] = [
        (512, 512, 512, 128),
        (1024, 1024, 1024, 1365),
        (2048, 2048, 2048, 2730),
        (4096, 4096, 2048, 5192),
    ];
    let edison = Cluster::edison();
    let mut rows = Vec::new();
    for (d0, d1, d2, nodes) in series {
        let elems = (d0 as f64) * (d1 as f64) * (d2 as f64);
        let flops = 5.0 * elems * elems.log2();
        let job = Fft3dJob {
            side: 0, // unused below; construct manually
            elem_bytes: 16,
            nodes_used: nodes,
        };
        // The model API takes a cube side; for non-cubes feed the total
        // through an equivalent cube side.
        let side_eq = elems.powf(1.0 / 3.0).round() as usize;
        let t = model(
            &edison,
            &Fft3dJob {
                side: side_eq,
                ..job
            },
        );
        rows.push(vec![
            format!("{d0}x{d1}x{d2}"),
            nodes.to_string(),
            format!("{:.0}", t.gflops),
            format!("{:.0}%", 100.0 * t.comm_fraction),
            format!("{:.2}%", 100.0 * t.gflops / 1000.0 / edison.peak_tflops()),
        ]);
        let _ = flops;
    }
    println!(
        "{}",
        render_table(
            &["shape", "nodes", "GFLOPS", "comm share", "% machine peak"],
            &rows
        )
    );
    println!(
        "(published series [16]: 159 GFLOPS at 512^3 up to 17,611 GFLOPS at 4096x4096x2048)\n"
    );

    println!("Edison strong scaling at 1024^3\n");
    let mut rows = Vec::new();
    for nodes in [170usize, 341, 683, 1365, 2730, 5192] {
        let t = model(
            &edison,
            &Fft3dJob {
                side: 1024,
                elem_bytes: 16,
                nodes_used: nodes,
            },
        );
        rows.push(vec![
            nodes.to_string(),
            (nodes * 24).to_string(),
            format!("{:.0}", t.gflops),
            format!("{:.1}", t.total_s * 1e3),
        ]);
    }
    println!(
        "{}",
        render_table(&["nodes", "cores", "GFLOPS", "time (ms)"], &rows)
    );
    println!(
        "Communication dominates throughout — the premise of the paper's Table VI\n\
         utilization gap (cluster <1% of peak vs XMT tens of percent)."
    );
}
