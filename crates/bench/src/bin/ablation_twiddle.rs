//! Ablation: twiddle-table replication (Section IV-A "Twiddle
//! Factors").
//!
//! All rows of a multidimensional FFT read the *same* twiddle factors;
//! with a single table copy those reads queue on the same cache
//! modules ("accesses to the same memory location on XMT are queued"),
//! so the paper replicates the table until each cache module holds one
//! line of it. This binary measures simulated cycles as the replica
//! count grows.

use parafft::Complex32;
use xmt_bench::render_table;
use xmt_fft::plan::XmtFftPlan;
use xmt_fft::run::{host_reference, rel_error, run_on_machine};
use xmt_sim::XmtConfig;

fn main() {
    // Many rows sharing a tiny table maximizes same-line pressure: a
    // 16-entry table is 4 cache lines, so with one copy only 4 of the
    // 32 cache modules serve every twiddle read.
    let (rows_n, cols) = (512usize, 16usize);
    let cfg = XmtConfig::xmt_4k().scaled_to(32);
    let x: Vec<Complex32> = (0..rows_n * cols)
        .map(|i| Complex32::new((i as f32 * 0.013).sin(), (i as f32 * 0.029).cos()))
        .collect();

    println!(
        "Ablation — twiddle replication ({rows_n}x{cols} 2D FFT, {} cache modules)\n",
        cfg.memory_modules
    );
    let mut table = Vec::new();
    let mut first_cycles = 0u64;
    for copies in [1u32, 2, 4, 8, 16] {
        let plan = XmtFftPlan::build_with(&[rows_n, cols], copies, None, true);
        let run = run_on_machine(&plan, &cfg, &x).expect("simulation");
        let err = rel_error(&host_reference(&plan, &x), &run.output);
        assert!(err < 1e-3, "copies={copies} wrong: {err}");
        let cycles = run.summary.stats.cycles;
        if copies == 1 {
            first_cycles = cycles;
        }
        table.push(vec![
            copies.to_string(),
            cycles.to_string(),
            format!("{:.2}x", first_cycles as f64 / cycles as f64),
        ]);
    }
    println!(
        "{}",
        render_table(&["replicas", "cycles", "speedup vs 1 copy"], &table)
    );
    let policy = xmt_fft::default_copies(cols, cfg.memory_modules);
    println!(
        "\npaper policy for this shape: {policy} replicas (one cache line per module);\n\
         diminishing returns beyond that, exactly as Section IV-A argues."
    );
}
