//! Ablation: twiddle-table replication (Section IV-A "Twiddle
//! Factors").
//!
//! All rows of a multidimensional FFT read the *same* twiddle factors;
//! with a single table copy those reads queue on the same cache
//! modules ("accesses to the same memory location on XMT are queued"),
//! so the paper replicates the table until each cache module holds one
//! line of it. This binary measures simulated cycles as the replica
//! count grows.

use xmt_bench::{render_table, run_plan_validated, sample_wave};
use xmt_fft::plan::XmtFftPlan;
use xmt_sim::XmtConfig;

fn main() {
    // Many rows sharing a tiny table maximizes same-line pressure: a
    // 16-entry table is 4 cache lines, so with one copy only 4 of the
    // 32 cache modules serve every twiddle read.
    let (rows_n, cols) = (512usize, 16usize);
    let cfg = XmtConfig::xmt_4k().scaled_to(32);
    let x = sample_wave(rows_n * cols, 0.013, 0.029);

    println!(
        "Ablation — twiddle replication ({rows_n}x{cols} 2D FFT, {} cache modules)\n",
        cfg.memory_modules
    );
    let mut table = Vec::new();
    let mut first_cycles = 0u64;
    for copies in [1u32, 2, 4, 8, 16] {
        let plan = XmtFftPlan::build_with(&[rows_n, cols], copies, None, true);
        let run = run_plan_validated(&plan, &cfg, &x, &format!("copies={copies}"));
        let cycles = run.report.stats.cycles;
        if copies == 1 {
            first_cycles = cycles;
        }
        table.push(vec![
            copies.to_string(),
            cycles.to_string(),
            format!("{:.2}x", first_cycles as f64 / cycles as f64),
        ]);
    }
    println!(
        "{}",
        render_table(&["replicas", "cycles", "speedup vs 1 copy"], &table)
    );
    let policy = xmt_fft::default_copies(cols, cfg.memory_modules);
    println!(
        "\npaper policy for this shape: {policy} replicas (one cache line per module);\n\
         diminishing returns beyond that, exactly as Section IV-A argues."
    );
}
