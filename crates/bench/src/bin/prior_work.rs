//! Regenerates the paper's §I-A prior-work comparison: published FFT
//! results on GPUs, MPI clusters and prior XMT work, with this
//! workspace's model outputs beside each published anchor — the
//! context in which the paper's Table IV numbers should be read.

use hpc_cluster::{
    device_fft_gflops, hybrid_fft_gflops, model, Cluster, Fft3dJob, GpuFftJob, GpuSpec,
};
use xmt_bench::render_table;
use xmt_fft::project;
use xmt_sim::XmtConfig;

fn main() {
    println!("Prior work on the FFT (paper Section I-A) — published vs this workspace's models\n");

    let gtx = GpuSpec::gtx_280();
    let c2075 = GpuSpec::tesla_c2075();
    let n22 = 1usize << 22;
    let fused_1d = GpuFftJob {
        passes: (n22 as f64).log2() / 9.0,
        ..GpuFftJob::d1(n22)
    };
    let edison = Cluster::edison();
    let e1024 = model(&edison, &Fft3dJob::edison_reference());

    let rows: Vec<Vec<String>> = vec![
        vec![
            "GPGPU: GTX 280, 1D batched [14]".into(),
            "~300 GFLOPS".into(),
            format!("{:.0} GFLOPS", device_fft_gflops(&gtx, &fused_1d)),
        ],
        vec![
            "GPGPU: GTX 280, 2D 1024x1024 [14]".into(),
            "~120 GFLOPS".into(),
            format!(
                "{:.0} GFLOPS",
                device_fft_gflops(&gtx, &GpuFftJob::d2(1024))
            ),
        ],
        vec![
            "Hybrid GPU-CPU: C2075, 2D [15]".into(),
            "43 GFLOPS".into(),
            format!(
                "{:.0} GFLOPS",
                hybrid_fft_gflops(&c2075, &GpuFftJob::d2(8192))
            ),
        ],
        vec![
            "Hybrid GPU-CPU: C2075, 3D [15]".into(),
            "27 GFLOPS".into(),
            format!(
                "{:.0} GFLOPS",
                hybrid_fft_gflops(&c2075, &GpuFftJob::d3(512))
            ),
        ],
        vec![
            "MPI: Edison-class, 3D 1024^3, 32k cores [16]".into(),
            "13,603 GFLOPS".into(),
            format!("{:.0} GFLOPS", e1024.gflops),
        ],
        vec![
            "This paper: XMT 128k x4, 3D 512^3".into(),
            "18,972 GFLOPS".into(),
            format!(
                "{:.0} GFLOPS",
                project(&XmtConfig::xmt_128k_x4(), &[512, 512, 512]).gflops_convention
            ),
        ],
        vec![
            "This paper: XMT 4k (1 chip layer), 3D 512^3".into(),
            "239 GFLOPS".into(),
            format!(
                "{:.0} GFLOPS",
                project(&XmtConfig::xmt_4k(), &[512, 512, 512]).gflops_convention
            ),
        ],
    ];
    println!("{}", render_table(&["system", "published", "model"], &rows));
    println!(
        "\nReading: single GPUs are device-bandwidth-bound in the low hundreds of\n\
         GFLOPS (and PCIe-bound in the tens when data lives on the host); clusters\n\
         reach terascale only with tens of thousands of cores at <1% utilization.\n\
         The paper's smallest XMT configuration matches a GPU with a third of the\n\
         silicon; the largest matches the cluster on one chip."
    );
}
