//! Regenerates Fig. 3: the Roofline of each XMT configuration with the
//! empirical 3D-FFT points — rotation phase (left), non-rotation phase
//! (right) and overall (middle) — in the actual-FLOP convention the
//! paper uses for its Roofline section.
//!
//! Prints the numeric series (for external plotting) and an ASCII
//! rendering per configuration, then checks the paper's three
//! observations (a)/(b)/(c).

use roofline::{render_ascii, Platform, Point, RooflineSeries};
use xmt_bench::render_table;
use xmt_fft::{project, FftProjection};
use xmt_sim::{Bottleneck, XmtConfig};

fn series_for(p: &FftProjection, cfg: &XmtConfig) -> RooflineSeries {
    let platform = Platform::new(cfg.name, cfg.peak_gflops(), cfg.peak_dram_gbs());
    let mut s = RooflineSeries::new(platform);
    let r = p.rotation_point();
    let nr = p.non_rotation_point();
    let o = p.overall_point();
    s.push(Point::new("rotation", r.intensity, r.gflops));
    s.push(Point::new("overall", o.intensity, o.gflops));
    s.push(Point::new("non-rotation", nr.intensity, nr.gflops));
    s
}

fn main() {
    let cfgs = XmtConfig::paper_configs();
    let projections: Vec<FftProjection> =
        cfgs.iter().map(|c| project(c, &[512, 512, 512])).collect();

    println!("Fig. 3 — Roofline model of each XMT configuration with empirical 3D-FFT points");
    println!("(actual-FLOP convention, as in the paper's Section VI-B)\n");

    let mut rows = Vec::new();
    for (cfg, p) in cfgs.iter().zip(&projections) {
        let plat = Platform::new(cfg.name, cfg.peak_gflops(), cfg.peak_dram_gbs());
        for (label, pt) in [
            ("rotation", p.rotation_point()),
            ("overall", p.overall_point()),
            ("non-rotation", p.non_rotation_point()),
        ] {
            let attain = plat.attainable(pt.intensity);
            rows.push(vec![
                cfg.name.to_string(),
                label.to_string(),
                format!("{:.3}", pt.intensity),
                format!("{:.0}", pt.gflops),
                format!("{:.0}", attain),
                format!("{:.0}%", 100.0 * pt.gflops / attain),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "config",
                "phase",
                "FLOPs/byte",
                "GFLOPS",
                "roofline",
                "% of roof"
            ],
            &rows
        )
    );

    for (cfg, p) in cfgs.iter().zip(&projections) {
        println!("--- {} ---", cfg.name);
        println!("{}", render_ascii(&[series_for(p, cfg)], 72, 18));
    }

    // Publication-style SVG of all five rooflines with their points.
    let all: Vec<roofline::RooflineSeries> = cfgs
        .iter()
        .zip(&projections)
        .map(|(c, p)| series_for(p, c))
        .collect();
    let svg = roofline::render_svg(&all, 900, 600);
    let svg_path = "fig3.svg";
    match std::fs::write(svg_path, &svg) {
        Ok(()) => println!("wrote {svg_path} ({} bytes)\n", svg.len()),
        Err(e) => println!("could not write {svg_path}: {e}\n"),
    }

    // The paper's observations, checked mechanically.
    println!("Observations:");
    for (cfg, p) in cfgs.iter().zip(&projections).take(2) {
        let all_dram = p.phases.iter().all(|t| t.bound == Bottleneck::Dram);
        println!(
            " (a) {}: every phase DRAM-bound (on the slope): {}",
            cfg.name,
            if all_dram { "yes" } else { "NO" }
        );
    }
    for (cfg, p) in cfgs.iter().zip(&projections).skip(2) {
        let rot = p
            .phases
            .iter()
            .find(|t| t.name.contains("rotation"))
            .expect("rotation phase exists");
        println!(
            " (b) {}: rotation {} (ICN demand {:.2}x its DRAM demand)",
            cfg.name,
            match rot.bound {
                Bottleneck::Icn => "falls below the slope — ICN-bound",
                _ => "on the slope",
            },
            rot.icn_cycles / rot.dram_cycles
        );
    }
    let x2 = &projections[3];
    let x4 = &projections[4];
    println!(
        " (c) 128k x4 improves over 128k x2 by only {:.0}% (paper: 51%) — the ICN binds,\n\
         so quadrupling DRAM bandwidth beyond x2 helps little.",
        100.0 * (x4.gflops_convention / x2.gflops_convention - 1.0)
    );
}
