//! Regenerate the golden cycle-count constants asserted by
//! `tests/tests/golden_cycles.rs`.
//!
//! Runs the golden programs (radix-8 FFT kernel and the spawn/join +
//! prefix-sum microbenchmarks) on the cycle simulator and prints the
//! resulting `RunReport` statistics as Rust constants. If a future
//! change *intentionally* alters simulator timing, rerun this tool
//! and paste its output into the test; any unintentional drift shows
//! up as a golden-test failure instead.
//!
//! ```text
//! cargo run --release -p xmt-bench --bin golden_capture
//! ```

use xmt_fft::golden;

fn main() {
    let scaling = std::env::args().any(|a| a == "--scaling");
    let mut out = String::new();
    let cases = if scaling {
        golden::scaling_cases()
    } else {
        golden::cases()
    };
    for case in cases {
        let t0 = std::time::Instant::now();
        let summary = case.run();
        let host = t0.elapsed();
        out.push_str(&golden::render_const(case.name, &summary));
        eprintln!(
            "{}: {} cycles simulated in {:?}",
            case.name, summary.stats.cycles, host
        );
    }
    println!("{out}");
}
