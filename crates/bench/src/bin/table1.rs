//! Regenerates Table I: published XMT speedups on irregular workloads.
//!
//! This table is a literature survey in the paper (citations \[8\], \[26\],
//! \[27\], \[28\]); it contains no runnable experiment, so the regenerator
//! prints the pinned citation data for completeness and context.

use xmt_bench::render_table;

fn main() {
    let rows = vec![
        vec![
            "Graph Biconnectivity [8]",
            "33X",
            "4X (random graphs only)",
            ">>8",
        ],
        vec!["Graph Triconnectivity [26]", "129X", "serial only", "129"],
        vec!["Max Flow [27]", "108X", "2.5X", "43"],
        vec!["BWT Compression [28]", "25X", "X/2.5 on GPU", "70"],
        vec!["BWT Decompression [28]", "13X", "1.1X", "11"],
    ]
    .into_iter()
    .map(|r| r.into_iter().map(String::from).collect())
    .collect::<Vec<Vec<String>>>();
    println!("Table I — XMT speedups (pinned citation data; no experiment)\n");
    println!(
        "{}",
        render_table(&["Algorithm", "XMT", "GPU/CPU", "Factor"], &rows)
    );
    println!(
        "Note: these results are published measurements from prior work, quoted by the\n\
         paper for motivation; they are reproduced here verbatim, not re-measured."
    );
}
