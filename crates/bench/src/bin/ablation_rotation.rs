//! Ablation: fused vs separate rotation (Section VI-B: "the rotation
//! is combined with the last iteration of the computation to reduce
//! the number of synchronization points and round trips to memory").
//!
//! The unfused variant runs the same FFT stages plus an explicit
//! rotation-copy pass per dimension — one extra read+write of the
//! whole array and one extra spawn barrier each.

use xmt_bench::{render_table, run_plan_validated, sample_wave};
use xmt_fft::plan::XmtFftPlan;
use xmt_sim::XmtConfig;

fn main() {
    let cfg = XmtConfig::xmt_4k().scaled_to(8);
    println!("Ablation — fused vs separate rotation pass (4k scaled to 8 clusters)\n");
    let mut rows = Vec::new();
    for dims in [vec![64usize, 64], vec![16, 16, 16]] {
        let total: usize = dims.iter().product();
        let x = sample_wave(total, 0.017, 0.041);
        let mut cycles = [0u64; 2];
        for (slot, fused) in [(0usize, true), (1, false)] {
            let plan = XmtFftPlan::build_with(&dims, 4, None, fused);
            let run = run_plan_validated(&plan, &cfg, &x, &format!("{dims:?} fused={fused}"));
            cycles[slot] = run.report.stats.cycles;
            rows.push(vec![
                format!("{dims:?}"),
                if fused { "fused" } else { "separate" }.into(),
                plan.num_stages().to_string(),
                run.report.stats.cycles.to_string(),
                run.report.stats.mem_reads.to_string(),
                run.report.stats.mem_writes.to_string(),
            ]);
        }
        println!(
            "shape {:?}: fusing the rotation saves {:.1}% of cycles",
            dims,
            100.0 * (1.0 - cycles[0] as f64 / cycles[1] as f64)
        );
    }
    println!();
    println!(
        "{}",
        render_table(
            &["shape", "rotation", "spawns", "cycles", "reads", "writes"],
            &rows
        )
    );
}
