//! Regenerates Table III: physical configurations (technology node,
//! 3D layers, silicon area), from the calibrated area model in
//! `xmt_sim::physical`, with the paper's published values beside the
//! model output.

use xmt_bench::ColumnTable;
use xmt_sim::{summarize, XmtConfig};

const PAPER_TOTALS: [f64; 5] = [227.0, 551.0, 3046.0, 3284.0, 3540.0];
const PAPER_PER_LAYER: [f64; 5] = [227.0, 276.0, 380.0, 365.0, 393.0];

fn main() {
    let cfgs = XmtConfig::paper_configs();
    let sums: Vec<_> = cfgs.iter().map(summarize).collect();
    let mut t = ColumnTable::new("", cfgs.iter().map(|c| c.name));
    t.row("Technology Node (nm)", sums.iter().map(|s| s.tech_nm))
        .row("Silicon (Si) Layers", sums.iter().map(|s| s.si_layers))
        .row(
            "Si Area per Layer (mm2), model",
            sums.iter().map(|s| format!("{:.0}", s.area_per_layer_mm2)),
        )
        .row(
            "Si Area per Layer (mm2), paper",
            PAPER_PER_LAYER.iter().map(|v| format!("{v:.0}")),
        )
        .row(
            "Total Si Area (mm2), model",
            sums.iter().map(|s| format!("{:.0}", s.total_area_mm2)),
        )
        .row(
            "Total Si Area (mm2), paper",
            PAPER_TOTALS.iter().map(|v| format!("{v:.0}")),
        )
        .row(
            "Peak power (W), model",
            sums.iter().map(|s| format!("{:.0}", s.peak_power_w)),
        )
        .row(
            "Off-chip BW (Tb/s)",
            sums.iter().map(|s| format!("{:.2}", s.offchip_tbps)),
        )
        .row("Serial pins for DRAM", sums.iter().map(|s| s.serial_pins));
    println!("Table III — XMT physical configurations (area model vs paper)\n");
    println!("{}", t.render());
    let worst = sums
        .iter()
        .zip(PAPER_TOTALS)
        .map(|(s, p)| ((s.total_area_mm2 - p) / p).abs())
        .fold(0.0f64, f64::max);
    println!(
        "Largest total-area deviation from the paper: {:.1} %",
        worst * 100.0
    );
}
