//! Regenerates Table III: physical configurations (technology node,
//! 3D layers, silicon area), from the calibrated area model in
//! `xmt_sim::physical`, with the paper's published values beside the
//! model output.

use xmt_bench::render_table;
use xmt_sim::{summarize, XmtConfig};

const PAPER_TOTALS: [f64; 5] = [227.0, 551.0, 3046.0, 3284.0, 3540.0];
const PAPER_PER_LAYER: [f64; 5] = [227.0, 276.0, 380.0, 365.0, 393.0];

fn main() {
    let cfgs = XmtConfig::paper_configs();
    let sums: Vec<_> = cfgs.iter().map(summarize).collect();
    let headers: Vec<&str> = std::iter::once("")
        .chain(cfgs.iter().map(|c| c.name))
        .collect();
    let rows = vec![
        std::iter::once("Technology Node (nm)".to_string())
            .chain(sums.iter().map(|s| s.tech_nm.to_string()))
            .collect::<Vec<_>>(),
        std::iter::once("Silicon (Si) Layers".to_string())
            .chain(sums.iter().map(|s| s.si_layers.to_string()))
            .collect(),
        std::iter::once("Si Area per Layer (mm2), model".to_string())
            .chain(sums.iter().map(|s| format!("{:.0}", s.area_per_layer_mm2)))
            .collect(),
        std::iter::once("Si Area per Layer (mm2), paper".to_string())
            .chain(PAPER_PER_LAYER.iter().map(|v| format!("{v:.0}")))
            .collect(),
        std::iter::once("Total Si Area (mm2), model".to_string())
            .chain(sums.iter().map(|s| format!("{:.0}", s.total_area_mm2)))
            .collect(),
        std::iter::once("Total Si Area (mm2), paper".to_string())
            .chain(PAPER_TOTALS.iter().map(|v| format!("{v:.0}")))
            .collect(),
        std::iter::once("Peak power (W), model".to_string())
            .chain(sums.iter().map(|s| format!("{:.0}", s.peak_power_w)))
            .collect(),
        std::iter::once("Off-chip BW (Tb/s)".to_string())
            .chain(sums.iter().map(|s| format!("{:.2}", s.offchip_tbps)))
            .collect(),
        std::iter::once("Serial pins for DRAM".to_string())
            .chain(sums.iter().map(|s| s.serial_pins.to_string()))
            .collect(),
    ];
    println!("Table III — XMT physical configurations (area model vs paper)\n");
    println!("{}", render_table(&headers, &rows));
    let worst = sums
        .iter()
        .zip(PAPER_TOTALS)
        .map(|(s, p)| ((s.total_area_mm2 - p) / p).abs())
        .fold(0.0f64, f64::max);
    println!(
        "Largest total-area deviation from the paper: {:.1} %",
        worst * 100.0
    );
}
