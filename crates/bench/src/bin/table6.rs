//! Regenerates Table VI: Edison (Cray XC30) versus XMT (128k x4).
//!
//! Machine rows come from the cluster model (`hpc_cluster::Cluster`)
//! and the XMT physical model; the FFT rows come from the distributed
//! pencil-FFT model (Edison, 1024³ double complex on 32,768 cores) and
//! the XMT projection (512³ single complex).

use hpc_cluster::{model, Cluster, Fft3dJob};
use xmt_bench::ColumnTable;
use xmt_fft::project;
use xmt_sim::{summarize, XmtConfig};

fn main() {
    let edison = Cluster::edison();
    let ejob = Fft3dJob::edison_reference();
    let efft = model(&edison, &ejob);

    let xmt = XmtConfig::xmt_128k_x4();
    let phys = summarize(&xmt);
    let xfft = project(&xmt, &[512, 512, 512]);
    let xmt_tf = xfft.gflops_convention / 1000.0;
    let xmt_pct = xfft.gflops_convention / (xmt.peak_gflops()) * 100.0;

    println!("Table VI — comparison of Edison (Cray XC30) to XMT (128k x4)\n");
    let mut t = ColumnTable::new("", ["Edison", "XMT (128k x4)"]);
    t.row(
        "# processing elements",
        [
            format!("{} cores", edison.cores()),
            format!("{} TCUs", xmt.tcus),
        ],
    )
    .row(
        "# processor groups",
        [
            format!("{} nodes", edison.nodes),
            format!("{} clusters", xmt.clusters),
        ],
    )
    .row(
        "Total cache memory",
        [
            format!("{:.0} MB", edison.total_cache_mb()),
            format!("{:.0} MB", xmt.total_cache_mib()),
        ],
    )
    .row(
        "# chips",
        [
            format!(
                "{} CPU + {} router",
                edison.cpu_chips(),
                edison.router_chips()
            ),
            "1".into(),
        ],
    )
    .row(
        "Total silicon area",
        [
            format!(
                "{:.0} cm2 (22nm) + {:.0} cm2 (40nm)",
                edison.cpu_silicon_cm2(),
                edison.router_silicon_cm2()
            ),
            format!("{:.1} cm2 (14nm)", phys.total_area_mm2 / 100.0),
        ],
    )
    .row(
        "Normalized Si area (22 nm)",
        [
            format!("{:.0} cm2", edison.silicon_cm2_at_22nm()),
            format!("{:.0} cm2", phys.area_22nm_mm2 / 100.0),
        ],
    )
    .row(
        "Peak power",
        [
            format!("{:.0} kW", edison.peak_power_kw),
            format!("{:.1} kW", phys.peak_power_w / 1000.0),
        ],
    )
    .row(
        "Peak teraFLOPS",
        [
            format!("{:.0}", edison.peak_tflops()),
            format!("{:.0}", xmt.peak_gflops() / 1000.0),
        ],
    )
    .row(
        "TeraFLOPS for FFT (size), model",
        [
            format!("{:.1} (1024^3)", efft.gflops / 1000.0),
            format!("{:.1} (512^3)", xmt_tf),
        ],
    )
    .row(
        "TeraFLOPS for FFT, paper",
        ["13.6 (1024^3)", "19.0 (512^3)"],
    )
    .row(
        "% of peak FLOPS, model",
        [
            format!("{:.2}%", efft.pct_of_machine_peak),
            format!("{:.0}%", xmt_pct),
        ],
    )
    .row("% of peak FLOPS, paper", ["0.57%", "35%"]);
    println!("{}", t.render());

    let factor = xmt_tf * 1000.0 / efft.gflops;
    let si = edison.silicon_cm2_at_22nm() / (phys.area_22nm_mm2 / 100.0);
    let pw = edison.peak_power_kw / (phys.peak_power_w / 1000.0);
    println!(
        "\nHeadline (model): the single-chip XMT delivers {factor:.2}x the Edison FFT rate\n\
         while Edison uses {si:.0}x the (normalized) silicon and {pw:.0}x the power.\n\
         (Paper headline: 1.4x the speed at 870x silicon / 375x power; Edison comm\n\
         fraction in our model: {:.0}% of runtime.)",
        efft.comm_fraction * 100.0
    );
}
