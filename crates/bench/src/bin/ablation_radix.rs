//! Ablation: radix 2 vs 4 vs 8 (Section IV-A "Choice of Radix").
//!
//! Higher radix means fewer passes over memory (`log_r N` stages at
//! `N·2` words each way per stage) at the cost of per-thread register
//! pressure and less parallelism per stage. The paper picks 8 — the
//! largest radix whose working set fits the 32 FP registers.
//!
//! Runs the real kernels on the cycle simulator (output checked
//! against the host library every time).

use xmt_bench::{render_table, run_plan_validated, sample_wave};
use xmt_fft::plan::XmtFftPlan;
use xmt_sim::XmtConfig;

fn main() {
    let n = 4096usize; // 2^12 = 8^4 = 4^6 = 2^12: all three radices apply
    let cfg = XmtConfig::xmt_4k().scaled_to(8);
    let x = sample_wave(n, 0.11, 0.07);

    println!("Ablation — radix choice (1D {n}-point FFT, 4k config scaled to 8 clusters)\n");
    let mut rows = Vec::new();
    let mut r8_cycles = 0u64;
    for radix in [2u32, 4, 8] {
        let plan = XmtFftPlan::build_with(&[n], 4, Some(radix), true);
        let run = run_plan_validated(&plan, &cfg, &x, &format!("radix {radix}"));
        let s = run.report.stats;
        if radix == 8 {
            r8_cycles = s.cycles;
        }
        rows.push(vec![
            radix.to_string(),
            plan.num_stages().to_string(),
            s.cycles.to_string(),
            s.mem_reads.to_string(),
            s.mem_writes.to_string(),
            s.flops.to_string(),
            format!("{:.1}", s.flops as f64 * cfg.clock_ghz / s.cycles as f64),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["radix", "stages", "cycles", "reads", "writes", "flops", "GFLOPS"],
            &rows
        )
    );
    let r2_cycles: u64 = rows[0][2].parse().unwrap();
    println!(
        "radix-8 is {:.2}x faster than radix-2 on the simulated machine\n\
         (fewer memory passes: 4 stages instead of 12).",
        r2_cycles as f64 / r8_cycles as f64
    );
}
