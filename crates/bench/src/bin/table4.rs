//! Regenerates Table IV: FFT performance on XMT (GFLOPS, 5N·log₂N
//! convention, 512³ single-precision complex, 3.3 GHz).
//!
//! Methodology (DESIGN.md §7): the cycle simulator executes the real
//! radix-8 DIF kernels at reduced machine/problem scale to validate
//! the analytic bottleneck model, which then projects the five paper
//! configurations at 512³ (directly cycle-simulating 2^27 points on
//! 131,072 TCUs is computationally infeasible — as it was for the
//! authors, who ran XMTSim on reduced configurations as well).
//!
//! Run with `--quick` to skip the slower calibration runs.

use xmt_bench::{calibrate, render_table, ColumnTable};
use xmt_fft::table4_projection;
use xmt_sim::XmtConfig;

const PAPER_GFLOPS: [f64; 5] = [239.0, 500.0, 3667.0, 12570.0, 18972.0];

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");

    println!("Table IV — FFT performance on XMT (3D FFT, 512^3, single precision)\n");
    let proj = table4_projection();
    let mut t = ColumnTable::new("", proj.iter().map(|p| p.config_name));
    t.row(
        "GFLOPS (model)",
        proj.iter().map(|p| format!("{:.0}", p.gflops_convention)),
    )
    .row(
        "GFLOPS (paper)",
        PAPER_GFLOPS.iter().map(|v| format!("{v:.0}")),
    )
    .row(
        "model / paper",
        proj.iter()
            .zip(PAPER_GFLOPS)
            .map(|(p, v)| format!("{:.2}", p.gflops_convention / v)),
    )
    .row(
        "growth vs previous",
        std::iter::once("-".to_string()).chain(
            proj.windows(2)
                .map(|w| format!("{:.2}x", w[1].gflops_convention / w[0].gflops_convention)),
        ),
    )
    .row(
        "rotation share of time",
        proj.iter()
            .map(|p| format!("{:.0}%", 100.0 * p.rotation_share())),
    );
    println!("{}", t.render());

    if quick {
        println!("(--quick: skipping cycle-simulator calibration runs)");
        return;
    }

    println!("\nCalibration: cycle simulator vs analytic model at reduced scale");
    println!("(real radix-8 DIF kernels executed instruction-by-instruction; output");
    println!(" verified against the parafft host reference on every run)\n");
    let points = [
        (XmtConfig::xmt_4k(), 8usize, vec![4096usize]),
        (XmtConfig::xmt_4k(), 8, vec![64, 64]),
        (XmtConfig::xmt_4k(), 16, vec![32, 32, 32]),
        (XmtConfig::xmt_64k(), 16, vec![64, 64]),
        (XmtConfig::xmt_64k(), 32, vec![32, 32, 32]),
    ];
    let mut rows = Vec::new();
    for (base, clusters, dims) in points {
        let c = calibrate(&base, clusters, &dims);
        rows.push(vec![
            format!("{} @{} clusters", c.config_name, c.clusters),
            format!("{:?}", c.dims),
            c.measured_cycles.to_string(),
            format!("{:.0}", c.modeled_cycles),
            format!("{:.2}", c.ratio),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "scaled config",
                "shape",
                "sim cycles",
                "model cycles",
                "sim/model"
            ],
            &rows
        )
    );
}
