//! Regenerates Table IV: FFT performance on XMT (GFLOPS, 5N·log₂N
//! convention, 512³ single-precision complex, 3.3 GHz).
//!
//! Methodology (DESIGN.md §7): the cycle simulator executes the real
//! radix-8 DIF kernels at reduced machine/problem scale to validate
//! the analytic bottleneck model, which then projects the five paper
//! configurations at 512³ (directly cycle-simulating 2^27 points on
//! 131,072 TCUs is computationally infeasible — as it was for the
//! authors, who ran XMTSim on reduced configurations as well).
//!
//! Run with `--quick` to skip the slower calibration runs.

use xmt_bench::{calibrate, render_table};
use xmt_fft::table4_projection;
use xmt_sim::XmtConfig;

const PAPER_GFLOPS: [f64; 5] = [239.0, 500.0, 3667.0, 12570.0, 18972.0];

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");

    println!("Table IV — FFT performance on XMT (3D FFT, 512^3, single precision)\n");
    let proj = table4_projection();
    let headers: Vec<&str> = std::iter::once("")
        .chain(proj.iter().map(|p| p.config_name))
        .collect();
    let rows = vec![
        std::iter::once("GFLOPS (model)".to_string())
            .chain(proj.iter().map(|p| format!("{:.0}", p.gflops_convention)))
            .collect::<Vec<_>>(),
        std::iter::once("GFLOPS (paper)".to_string())
            .chain(PAPER_GFLOPS.iter().map(|v| format!("{v:.0}")))
            .collect(),
        std::iter::once("model / paper".to_string())
            .chain(
                proj.iter()
                    .zip(PAPER_GFLOPS)
                    .map(|(p, v)| format!("{:.2}", p.gflops_convention / v)),
            )
            .collect(),
        std::iter::once("growth vs previous".to_string())
            .chain(std::iter::once("-".to_string()))
            .chain(
                proj.windows(2)
                    .map(|w| format!("{:.2}x", w[1].gflops_convention / w[0].gflops_convention)),
            )
            .collect(),
        std::iter::once("rotation share of time".to_string())
            .chain(
                proj.iter()
                    .map(|p| format!("{:.0}%", 100.0 * p.rotation_share())),
            )
            .collect(),
    ];
    println!("{}", render_table(&headers, &rows));

    if quick {
        println!("(--quick: skipping cycle-simulator calibration runs)");
        return;
    }

    println!("\nCalibration: cycle simulator vs analytic model at reduced scale");
    println!("(real radix-8 DIF kernels executed instruction-by-instruction; output");
    println!(" verified against the parafft host reference on every run)\n");
    let points = [
        (XmtConfig::xmt_4k(), 8usize, vec![4096usize]),
        (XmtConfig::xmt_4k(), 8, vec![64, 64]),
        (XmtConfig::xmt_4k(), 16, vec![32, 32, 32]),
        (XmtConfig::xmt_64k(), 16, vec![64, 64]),
        (XmtConfig::xmt_64k(), 32, vec![32, 32, 32]),
    ];
    let mut rows = Vec::new();
    for (base, clusters, dims) in points {
        let c = calibrate(&base, clusters, &dims);
        rows.push(vec![
            format!("{} @{} clusters", c.config_name, c.clusters),
            format!("{:?}", c.dims),
            c.measured_cycles.to_string(),
            format!("{:.0}", c.modeled_cycles),
            format!("{:.2}", c.ratio),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "scaled config",
                "shape",
                "sim cycles",
                "model cycles",
                "sim/model"
            ],
            &rows
        )
    );
}
