//! Energy analysis (extension): joules per 512³ FFT and GFLOPS/W for
//! every XMT configuration, plus the Edison comparison — quantifying
//! the paper's core premise that the enabling technologies attack the
//! *energy cost of data movement*.

use hpc_cluster::{model, Cluster, Fft3dJob};
use xmt_bench::render_table;
use xmt_fft::{stage_demands, table4_projection};
use xmt_sim::{gflops_per_watt, phase_energy, XmtConfig};

fn main() {
    println!("Energy per 512^3 single-precision 3D FFT (activity-based model)\n");
    let mut rows = Vec::new();
    for (cfg, proj) in XmtConfig::paper_configs().iter().zip(table4_projection()) {
        let demands = stage_demands(&[512, 512, 512], cfg);
        let e = phase_energy(cfg, &demands);
        let flops: f64 = demands.iter().map(|d| d.flops).sum();
        let seconds = proj.total_cycles / (cfg.clock_ghz * 1e9);
        rows.push(vec![
            cfg.name.to_string(),
            format!("{:.2}", e.total_j()),
            format!("{:.0}%", 100.0 * e.data_movement_fraction()),
            format!("{:.1}", e.total_j() / seconds),
            format!("{:.1}", gflops_per_watt(cfg, flops, &e, proj.total_cycles)),
            format!("{:.1}", seconds * 1e3),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "config",
                "energy (J)",
                "data-movement",
                "avg power (W)",
                "GFLOPS/W",
                "time (ms)"
            ],
            &rows
        )
    );

    // Edison reference: energy = machine power × runtime (the paper's
    // Table VI power row), normalized to the same transform size for a
    // fair per-FLOP comparison.
    let edison = Cluster::edison();
    let efft = model(&edison, &Fft3dJob::edison_reference());
    let e_joules = edison.peak_power_kw * 1000.0 * efft.total_s;
    let e_gfw = efft.gflops / (edison.peak_power_kw * 1000.0);
    println!(
        "\nEdison (1024^3, whole-machine power): {:.0} J per transform, {:.3} GFLOPS/W",
        e_joules, e_gfw
    );
    let xmt = XmtConfig::xmt_128k_x4();
    let demands = stage_demands(&[512, 512, 512], &xmt);
    let ex = phase_energy(&xmt, &demands);
    let flops: f64 = demands.iter().map(|d| d.flops).sum();
    let proj = xmt_fft::project(&xmt, &[512, 512, 512]);
    let x_gfw = gflops_per_watt(&xmt, flops, &ex, proj.total_cycles);
    println!(
        "XMT 128k x4: {x_gfw:.1} GFLOPS/W — {:.0}x the cluster's FFT energy efficiency.",
        x_gfw / e_gfw
    );
}
