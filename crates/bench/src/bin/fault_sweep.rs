//! Sweep deterministic fault injection over the golden FFT workload
//! and print a resilience table.
//!
//! Three sections:
//!
//! 1. **Soft-fault sweep** — escalating DRAM bit-flip and NoC
//!    corruption rates on the golden radix-8 FFT. Every row validates
//!    the transform against the host reference: SECDED correction and
//!    bounded link retry must hide every injected fault, at the cost of
//!    extra cycles. The fault counters come from the probe stream (the
//!    same columns `chrome_trace` renders as the "faults" track).
//! 2. **Degraded topologies** — dead clusters and dead DRAM channels.
//!    The builder remaps threads and hashed memory around the offline
//!    components; the transform must stay bit-correct at reduced
//!    throughput.
//! 3. **Watchdog** — a stuck-at TCU that holds the spawn barrier open
//!    forever. The run must fail *promptly* with `SimError::Stalled`
//!    rather than burning the whole cycle budget.
//!
//! Everything is seeded: rerunning with the same `--seed` reproduces
//! every row bit-for-bit (there is no wall-clock or OS randomness
//! anywhere in the fault path).
//!
//! ```text
//! cargo run --release -p xmt-bench --bin fault_sweep [--seed N]
//! ```

use parafft::Complex32;
use xmt_fft::golden;
use xmt_fft::plan::XmtFftPlan;
use xmt_fft::run::{host_reference, plan_builder_cfg, read_result, rel_error};
use xmt_sim::{FaultPlan, SimConfig, SimError, XmtConfig};

/// Transform shape for the sweep: the golden 512-point radix-8 FFT.
fn fft_plan() -> XmtFftPlan {
    XmtFftPlan::new_1d(512, 4)
}

/// Sum of one fault counter over the probe's retained interval rows.
fn total(rows: &[xmt_sim::IntervalRow], f: impl Fn(&xmt_sim::IntervalRow) -> u64) -> u64 {
    rows.iter().map(f).sum()
}

/// Run the golden FFT described by the [`SimConfig`] request value,
/// returning `(cycles, rows, rel_err)` or the error. Each sweep row is
/// a config — the same values the job server hashes and caches.
fn run_fft(
    sim: &SimConfig,
    input: &[Complex32],
) -> Result<(u64, Vec<xmt_sim::IntervalRow>, f64), SimError> {
    let plan = fft_plan();
    let probe = sim.interval_probe().expect("sweep configs are probed");
    let mut m = plan_builder_cfg(&plan, sim, input).build_probed(probe);
    let rep = m.run().into_result()?;
    let err = rel_error(&host_reference(&plan, input), &read_result(&plan, &m));
    Ok((rep.stats.cycles, m.probe().rows(), err))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed: u64 = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse().expect("--seed needs an integer"))
        .unwrap_or(0x0FA5_7FF7);

    let cfg = golden::golden_config();
    let input = golden::sample_input(512, 2024);

    println!(
        "fault sweep: 512-point radix-8 FFT on {} (seed {seed:#x})",
        cfg.name
    );
    println!();
    println!("soft faults (SECDED ECC + bounded NoC retry):");
    println!(
        "{:>10} {:>9} {:>9} {:>8} {:>8} {:>9} {:>8} {:>9}  result",
        "rate", "cycles", "overhead", "ecc_corr", "ecc_det", "noc_corr", "noc_rtr", "rel_err"
    );
    let mut healthy_cycles = 0u64;
    for &rate in &[0.0f64, 1e-4, 1e-3, 1e-2, 5e-2] {
        let plan = FaultPlan::new(seed)
            .dram_flips(rate, rate / 10.0)
            .noc_corrupt(rate);
        let sim = SimConfig::new(&cfg).faults(plan).probed(64);
        match run_fft(&sim, &input) {
            Ok((cycles, rows, err)) => {
                if rate == 0.0 {
                    healthy_cycles = cycles;
                }
                let overhead = 100.0 * (cycles as f64 / healthy_cycles as f64 - 1.0);
                let ok = if err < 1e-3 { "correct" } else { "WRONG" };
                println!(
                    "{:>10.0e} {:>9} {:>7.1}% {:>8} {:>8} {:>9} {:>8} {:>9.1e}  {ok}",
                    rate,
                    cycles,
                    overhead,
                    total(&rows, |r| r.ecc_corrected),
                    total(&rows, |r| r.ecc_detected),
                    total(&rows, |r| r.noc_corrupted),
                    total(&rows, |r| r.noc_retried),
                    err,
                );
                assert!(err < 1e-3, "faulted FFT diverged at rate {rate}");
            }
            Err(e) => println!("{rate:>10.0e}  failed: {e:?}"),
        }
    }

    // Degradation needs a topology with something to lose: ≥ 2 DRAM
    // channels and enough clusters that killing some leaves capacity.
    let big = XmtConfig::xmt_4k().scaled_to(16);
    let big_input = golden::sample_input(512, 2024);
    println!();
    println!(
        "degraded topologies ({}: {} clusters, {} DRAM channels):",
        big.name,
        big.clusters,
        big.dram_channels()
    );
    println!(
        "{:>24} {:>9} {:>9} {:>9}  result",
        "offline", "cycles", "slowdown", "rel_err"
    );
    let mut base = 0u64;
    let shapes: &[(&str, &[usize], &[usize])] = &[
        ("none", &[], &[]),
        ("cluster 3", &[3], &[]),
        ("clusters 3,7,11", &[3, 7, 11], &[]),
        ("channel 1", &[], &[1]),
        ("cluster 3 + channel 1", &[3], &[1]),
    ];
    for &(label, clusters, channels) in shapes {
        let sim = SimConfig::new(&big).degraded(clusters, channels).probed(64);
        match run_fft(&sim, &big_input) {
            Ok((cycles, _, err)) => {
                if base == 0 {
                    base = cycles;
                }
                let ok = if err < 1e-3 { "correct" } else { "WRONG" };
                println!(
                    "{:>24} {:>9} {:>8.2}x {:>9.1e}  {ok}",
                    label,
                    cycles,
                    cycles as f64 / base as f64,
                    err
                );
                assert!(err < 1e-3, "degraded FFT diverged ({label})");
            }
            Err(e) => println!("{label:>24}  failed: {e:?}"),
        }
    }

    println!();
    println!("watchdog (stuck-at TCU holds the spawn barrier open):");
    let stuck = FaultPlan::new(seed).stuck_tcu(1, 3);
    let sim = SimConfig::new(&cfg)
        .faults(stuck)
        .watchdog(20_000)
        .probed(64);
    match run_fft(&sim, &input) {
        Ok((cycles, _, _)) => println!("  unexpectedly completed in {cycles} cycles"),
        Err(SimError::Stalled {
            at_cycle,
            last_retired,
        }) => println!(
            "  stalled at cycle {at_cycle} ({last_retired} instructions retired) — \
             watchdog fired after 20000 cycles without progress"
        ),
        Err(e) => println!("  failed with unexpected error: {e:?}"),
    }
}
