//! Twiddle-factor tables.
//!
//! The FFT's twiddle factors `ω_N^{-k} = e^{-i2πk/N}` depend only on the
//! transform size, so they are precomputed once ([`TwiddleTable`]) and
//! shared by every row of a multidimensional transform — exactly the
//! lookup-table strategy of Section IV-A of the paper.
//!
//! The paper additionally *replicates* the table across cache modules so
//! that concurrent reads of the same factor by many threads do not queue
//! on a single memory location. [`ReplicatedTwiddles`] models that layout
//! in a machine-independent way: `copies` interleaved replicas, with the
//! reader choosing a replica from its thread index. On the host this is
//! performance-neutral; in the XMT simulator the same layout removes the
//! same-address queuing bottleneck (see the `ablation_twiddle` bench).

use crate::complex::{Complex, Float};
use crate::FftDirection;

/// Precomputed `ω_N^{±k}` for `0 ≤ k < N`.
#[derive(Clone, Debug)]
pub struct TwiddleTable<T> {
    n: usize,
    direction: FftDirection,
    factors: Vec<Complex<T>>,
}

impl<T: Float> TwiddleTable<T> {
    /// Build the table for an `n`-point transform in the given direction.
    ///
    /// Forward uses `e^{-i2πk/n}`, inverse `e^{+i2πk/n}`.
    pub fn new(n: usize, direction: FftDirection) -> Self {
        assert!(n > 0, "twiddle table size must be positive");
        let sign = match direction {
            FftDirection::Forward => -T::ONE,
            FftDirection::Inverse => T::ONE,
        };
        let step = T::TAU / T::from_usize(n);
        let factors = (0..n)
            .map(|k| Complex::cis(sign * step * T::from_usize(k)))
            .collect();
        Self {
            n,
            direction,
            factors,
        }
    }

    /// Transform size this table was built for.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    #[inline]
    /// True if there are no items.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    #[inline]
    /// Transform direction.
    pub fn direction(&self) -> FftDirection {
        self.direction
    }

    /// `ω_n^{±k}` with `k` reduced modulo `n`.
    #[inline(always)]
    pub fn get(&self, k: usize) -> Complex<T> {
        self.factors[k % self.n]
    }

    /// `ω_m^{±k}` for a divisor `m` of `n`, served from this table.
    ///
    /// Since `ω_m = ω_n^{n/m}`, the `m`-th roots are the stride-`n/m`
    /// subset of this table; this is what lets one table serve every
    /// stage of a decimation-in-frequency FFT (Section IV-A).
    #[inline(always)]
    pub fn get_sub(&self, m: usize, k: usize) -> Complex<T> {
        debug_assert!(self.n.is_multiple_of(m), "{} does not divide {}", m, self.n);
        self.factors[(k % m) * (self.n / m)]
    }

    /// Raw factor slice.
    #[inline]
    pub fn factors(&self) -> &[Complex<T>] {
        &self.factors
    }
}

/// A twiddle table stored as `copies` interleaved replicas.
///
/// Replica `c` of factor `k` lives at flat index `k * copies + c`, so a
/// full set of factors occupies a contiguous region per *replica stripe*
/// and concurrent readers with different `reader` hints touch different
/// addresses. This mirrors the paper's one-cache-line-per-cache-module
/// replication policy.
#[derive(Clone, Debug)]
pub struct ReplicatedTwiddles<T> {
    n: usize,
    copies: usize,
    flat: Vec<Complex<T>>,
}

impl<T: Float> ReplicatedTwiddles<T> {
    /// Replicate `table` into `copies` interleaved replicas.
    pub fn new(table: &TwiddleTable<T>, copies: usize) -> Self {
        assert!(copies > 0, "at least one replica required");
        let n = table.len();
        let mut flat = vec![Complex::zero(); n * copies];
        for k in 0..n {
            let w = table.get(k);
            for c in 0..copies {
                flat[k * copies + c] = w;
            }
        }
        Self { n, copies, flat }
    }

    /// Number of distinct factors.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    #[inline]
    /// True if there are no items.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of replicas of each factor.
    #[inline]
    pub fn copies(&self) -> usize {
        self.copies
    }

    /// Read factor `k`, spreading readers across replicas by `reader`.
    #[inline(always)]
    pub fn get(&self, k: usize, reader: usize) -> Complex<T> {
        self.flat[(k % self.n) * self.copies + reader % self.copies]
    }

    /// Flat replicated storage (used to initialize XMT shared memory).
    #[inline]
    pub fn flat(&self) -> &[Complex<T>] {
        &self.flat
    }

    /// Flat index of replica `reader % copies` of factor `k`; matches the
    /// addressing used by [`Self::get`] and by the XMT kernels.
    #[inline(always)]
    pub fn flat_index(&self, k: usize, reader: usize) -> usize {
        (k % self.n) * self.copies + reader % self.copies
    }
}

/// Choose the replica count the paper prescribes: just enough copies that
/// each of the `cache_modules` holds one cache line's worth of table.
///
/// `line_elems` is how many complex elements fit in one cache line.
/// Using more copies would not help (same-module requests queue anyway);
/// fewer would leave cache modules idle.
pub fn replication_for(n: usize, cache_modules: usize, line_elems: usize) -> usize {
    if n == 0 || cache_modules == 0 {
        return 1;
    }
    let lines_needed = n.div_ceil(line_elems);
    // Enough replicas that replicas × lines_needed covers every module.
    cache_modules.div_ceil(lines_needed).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Complex64;

    #[test]
    fn forward_table_matches_definition() {
        let t = TwiddleTable::<f64>::new(16, FftDirection::Forward);
        for k in 0..16 {
            let expect = Complex64::cis(-std::f64::consts::TAU * k as f64 / 16.0);
            assert!(t.get(k).dist(expect) < 1e-12);
        }
    }

    #[test]
    fn inverse_is_conjugate_of_forward() {
        let f = TwiddleTable::<f64>::new(32, FftDirection::Forward);
        let i = TwiddleTable::<f64>::new(32, FftDirection::Inverse);
        for k in 0..32 {
            assert!(f.get(k).conj().dist(i.get(k)) < 1e-12);
        }
    }

    #[test]
    fn get_wraps_modulo_n() {
        let t = TwiddleTable::<f64>::new(8, FftDirection::Forward);
        assert!(t.get(3).dist(t.get(11)) < 1e-15);
    }

    #[test]
    fn sub_table_matches_smaller_table() {
        let big = TwiddleTable::<f64>::new(64, FftDirection::Forward);
        let small = TwiddleTable::<f64>::new(16, FftDirection::Forward);
        for k in 0..16 {
            assert!(big.get_sub(16, k).dist(small.get(k)) < 1e-12);
        }
    }

    #[test]
    fn replicas_agree_with_base_table() {
        let t = TwiddleTable::<f64>::new(16, FftDirection::Forward);
        let r = ReplicatedTwiddles::new(&t, 4);
        for k in 0..16 {
            for reader in 0..9 {
                assert_eq!(r.get(k, reader), t.get(k));
            }
        }
    }

    #[test]
    fn distinct_readers_hit_distinct_addresses() {
        let t = TwiddleTable::<f64>::new(8, FftDirection::Forward);
        let r = ReplicatedTwiddles::new(&t, 4);
        let idx: Vec<usize> = (0..4).map(|reader| r.flat_index(3, reader)).collect();
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            4,
            "replicas must be distinct addresses: {idx:?}"
        );
    }

    #[test]
    fn replication_policy_covers_modules() {
        // 16-entry table, 8 elements per line => 2 lines; 8 modules => 4 copies.
        assert_eq!(replication_for(16, 8, 8), 4);
        // Table bigger than module count: a single copy already spans all.
        assert_eq!(replication_for(1 << 20, 128, 8), 1);
        // Degenerate inputs.
        assert_eq!(replication_for(0, 128, 8), 1);
        assert_eq!(replication_for(16, 0, 8), 1);
    }
}
