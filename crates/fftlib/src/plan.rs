//! Planner API: build a reusable [`Fft`] plan for a size/direction, then
//! apply it to as many buffers as you like (the FFTW usage model the
//! paper benchmarks against).

use crate::bluestein::Bluestein;
use crate::complex::{Complex, Float};
use crate::stockham::{fft_stockham, fft_stockham_par, plan_stages};
use crate::twiddle::TwiddleTable;
use crate::FftDirection;
use std::collections::HashMap;
use std::sync::Arc;

/// Which algorithm a plan selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Mixed-radix self-sorting Stockham (smooth sizes).
    Stockham,
    /// Bluestein chirp-z (sizes with a large prime factor).
    Bluestein,
}

/// How (and whether) to normalize transform output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Normalization {
    /// No scaling in either direction (FFTW convention).
    #[default]
    None,
    /// Scale the inverse by 1/N so forward∘inverse is the identity.
    Inverse,
    /// Scale both directions by 1/√N (unitary transform).
    Unitary,
}

/// A reusable FFT plan for a fixed size and direction.
pub struct Fft<T> {
    n: usize,
    direction: FftDirection,
    normalization: Normalization,
    algorithm: Algorithm,
    stages: Vec<usize>,
    tw: Option<TwiddleTable<T>>,
    bluestein: Option<Bluestein<T>>,
}

impl<T: Float> Fft<T> {
    /// Plan an `n`-point transform with no normalization.
    pub fn new(n: usize, direction: FftDirection) -> Self {
        Self::with_normalization(n, direction, Normalization::None)
    }

    /// Plan with an explicit normalization convention.
    pub fn with_normalization(
        n: usize,
        direction: FftDirection,
        normalization: Normalization,
    ) -> Self {
        assert!(n > 0, "FFT size must be positive");
        if let Some(stages) = plan_stages(n) {
            Self {
                n,
                direction,
                normalization,
                algorithm: Algorithm::Stockham,
                tw: Some(TwiddleTable::new(n, direction)),
                stages,
                bluestein: None,
            }
        } else {
            Self {
                n,
                direction,
                normalization,
                algorithm: Algorithm::Bluestein,
                tw: None,
                stages: Vec::new(),
                bluestein: Some(Bluestein::new(n, direction)),
            }
        }
    }

    /// Length/count of contained items.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if there are no items.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Transform direction.
    pub fn direction(&self) -> FftDirection {
        self.direction
    }

    /// The algorithm this plan selected.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The normalization convention.
    pub fn normalization(&self) -> Normalization {
        self.normalization
    }

    /// Stage radices (empty for Bluestein plans).
    pub fn stages(&self) -> &[usize] {
        &self.stages
    }

    /// Scratch elements required by [`Self::process_with_scratch`].
    pub fn scratch_len(&self) -> usize {
        match self.algorithm {
            Algorithm::Stockham => self.n,
            Algorithm::Bluestein => 0, // Bluestein manages its own buffers.
        }
    }

    fn normalize(&self, data: &mut [Complex<T>]) {
        let s = match (self.normalization, self.direction) {
            (Normalization::None, _) => return,
            (Normalization::Inverse, FftDirection::Forward) => return,
            (Normalization::Inverse, FftDirection::Inverse) => T::ONE / T::from_usize(self.n),
            (Normalization::Unitary, _) => T::ONE / T::from_usize(self.n).sqrt(),
        };
        for v in data {
            *v = v.scale(s);
        }
    }

    /// Transform in place, allocating scratch internally.
    pub fn process(&self, data: &mut [Complex<T>]) {
        let mut scratch = vec![Complex::zero(); self.scratch_len()];
        self.process_with_scratch(data, &mut scratch);
    }

    /// Transform in place using caller-provided scratch of at least
    /// [`Self::scratch_len`] elements (zero allocation on the hot path).
    pub fn process_with_scratch(&self, data: &mut [Complex<T>], scratch: &mut [Complex<T>]) {
        assert_eq!(data.len(), self.n, "buffer length must match plan size");
        match self.algorithm {
            Algorithm::Stockham => {
                let tw = self.tw.as_ref().expect("stockham plan has twiddles");
                fft_stockham(
                    data,
                    &mut scratch[..self.n],
                    &self.stages,
                    self.direction,
                    tw,
                );
            }
            Algorithm::Bluestein => {
                self.bluestein
                    .as_ref()
                    .expect("bluestein plan")
                    .process(data);
            }
        }
        self.normalize(data);
    }

    /// Multithreaded transform (rayon); falls back to serial for
    /// Bluestein plans and tiny sizes where threading cannot pay off.
    pub fn process_par(&self, data: &mut [Complex<T>]) {
        assert_eq!(data.len(), self.n, "buffer length must match plan size");
        match self.algorithm {
            Algorithm::Stockham if self.n >= 1 << 10 => {
                let tw = self.tw.as_ref().expect("stockham plan has twiddles");
                let mut scratch = vec![Complex::zero(); self.n];
                fft_stockham_par(data, &mut scratch, &self.stages, self.direction, tw);
                self.normalize(data);
            }
            _ => self.process(data),
        }
    }
}

/// Caching planner: repeated requests for the same (size, direction)
/// return the same shared plan, amortizing twiddle construction across
/// the rows of multidimensional transforms.
pub struct FftPlanner<T> {
    cache: HashMap<(usize, FftDirection), Arc<Fft<T>>>,
}

impl<T: Float> FftPlanner<T> {
    /// Construct a new instance.
    pub fn new() -> Self {
        Self {
            cache: HashMap::new(),
        }
    }

    /// Get or create a plan.
    pub fn plan(&mut self, n: usize, direction: FftDirection) -> Arc<Fft<T>> {
        self.cache
            .entry((n, direction))
            .or_insert_with(|| Arc::new(Fft::new(n, direction)))
            .clone()
    }

    /// Number of distinct plans currently cached.
    pub fn cached_plans(&self) -> usize {
        self.cache.len()
    }
}

impl<T: Float> Default for FftPlanner<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Convenience one-shot forward FFT (plans internally).
pub fn fft<T: Float>(data: &mut [Complex<T>]) {
    Fft::new(data.len(), FftDirection::Forward).process(data);
}

/// Convenience one-shot inverse FFT including the 1/N normalization.
pub fn ifft<T: Float>(data: &mut [Complex<T>]) {
    Fft::with_normalization(data.len(), FftDirection::Inverse, Normalization::Inverse)
        .process(data);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::{dft, max_error};
    use crate::Complex64;

    fn sample(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| Complex64::new((i as f64 * 0.11).cos(), (i as f64 * 0.77).sin()))
            .collect()
    }

    #[test]
    fn plan_selects_algorithm_by_smoothness() {
        assert_eq!(
            Fft::<f64>::new(512, FftDirection::Forward).algorithm(),
            Algorithm::Stockham
        );
        assert_eq!(
            Fft::<f64>::new(360, FftDirection::Forward).algorithm(),
            Algorithm::Stockham
        );
        assert_eq!(
            Fft::<f64>::new(17, FftDirection::Forward).algorithm(),
            Algorithm::Bluestein
        );
        assert_eq!(
            Fft::<f64>::new(34, FftDirection::Forward).algorithm(),
            Algorithm::Bluestein
        );
    }

    #[test]
    fn process_matches_naive_across_algorithms() {
        for n in [16usize, 60, 17, 97] {
            let x = sample(n);
            let mut got = x.clone();
            Fft::new(n, FftDirection::Forward).process(&mut got);
            let want = dft(&x, FftDirection::Forward);
            assert!(max_error(&got, &want) < 1e-8 * n as f64, "n={n}");
        }
    }

    #[test]
    fn fft_ifft_roundtrip() {
        for n in [64usize, 30, 19] {
            let x = sample(n);
            let mut v = x.clone();
            fft(&mut v);
            ifft(&mut v);
            assert!(max_error(&x, &v) < 1e-9, "n={n}");
        }
    }

    #[test]
    fn unitary_preserves_energy() {
        let n = 256;
        let x = sample(n);
        let mut v = x.clone();
        Fft::with_normalization(n, FftDirection::Forward, Normalization::Unitary).process(&mut v);
        let e_in: f64 = x.iter().map(|c| c.norm_sqr()).sum();
        let e_out: f64 = v.iter().map(|c| c.norm_sqr()).sum();
        assert!((e_in - e_out).abs() / e_in < 1e-10, "Parseval violated");
    }

    #[test]
    fn parallel_matches_serial() {
        let n = 1 << 12;
        let x = sample(n);
        let plan = Fft::new(n, FftDirection::Forward);
        let mut a = x.clone();
        let mut b = x.clone();
        plan.process(&mut a);
        plan.process_par(&mut b);
        assert!(max_error(&a, &b) < 1e-12);
    }

    #[test]
    fn planner_caches() {
        let mut p = FftPlanner::<f64>::new();
        let a = p.plan(64, FftDirection::Forward);
        let b = p.plan(64, FftDirection::Forward);
        assert!(Arc::ptr_eq(&a, &b));
        let _ = p.plan(64, FftDirection::Inverse);
        let _ = p.plan(128, FftDirection::Forward);
        assert_eq!(p.cached_plans(), 3);
    }

    #[test]
    fn scratch_reuse_is_equivalent() {
        let n = 128;
        let x = sample(n);
        let plan = Fft::new(n, FftDirection::Forward);
        let mut scratch = vec![Complex64::zero(); plan.scratch_len()];
        let mut a = x.clone();
        let mut b = x.clone();
        plan.process(&mut a);
        plan.process_with_scratch(&mut b, &mut scratch);
        assert!(max_error(&a, &b) < 1e-15);
    }

    #[test]
    #[should_panic(expected = "must match plan")]
    fn wrong_length_panics() {
        let plan = Fft::<f64>::new(8, FftDirection::Forward);
        let mut v = vec![Complex64::zero(); 4];
        plan.process(&mut v);
    }
}
