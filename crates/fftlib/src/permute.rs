//! Data-reordering primitives: bit/digit reversal, 2D transpose, and the
//! 3D axis rotation that forms the communication-intensive phase of the
//! paper's multidimensional FFT (Section VI-B).

#[cfg(test)]
use crate::complex::Complex;

/// Reverse the low `bits` bits of `x`.
#[inline]
pub fn bit_reverse(x: usize, bits: u32) -> usize {
    if bits == 0 {
        return 0;
    }
    x.reverse_bits() >> (usize::BITS - bits)
}

/// Reverse the base-`r` digits of `x`, where `x < r^digits`.
///
/// For `r = 2` this is [`bit_reverse`]. Used to unscramble the output of
/// in-place decimation-in-frequency radix-`r` FFTs.
#[inline]
pub fn digit_reverse(mut x: usize, r: usize, digits: u32) -> usize {
    debug_assert!(r >= 2);
    let mut out = 0usize;
    for _ in 0..digits {
        out = out * r + x % r;
        x /= r;
    }
    out
}

/// In-place bit-reversal permutation of a power-of-two-length slice.
pub fn bit_reverse_permute<T>(data: &mut [T]) {
    let n = data.len();
    if n <= 2 {
        return;
    }
    assert!(
        n.is_power_of_two(),
        "bit reversal needs power-of-two length"
    );
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = bit_reverse(i, bits);
        if j > i {
            data.swap(i, j);
        }
    }
}

/// In-place base-`r` digit-reversal permutation.
///
/// Requires `len == r^k` for some `k`. Digit reversal is an involution,
/// so the permutation can be applied by swapping `i` with `rev(i)`.
pub fn digit_reverse_permute<T>(data: &mut [T], r: usize) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    let digits = exact_log(n, r).expect("length must be a power of the radix");
    for i in 0..n {
        let j = digit_reverse(i, r, digits);
        if j > i {
            data.swap(i, j);
        }
    }
}

/// `log_r(n)` if `n` is an exact power of `r`, else `None`.
pub fn exact_log(n: usize, r: usize) -> Option<u32> {
    if n == 0 || r < 2 {
        return None;
    }
    let mut v = n;
    let mut k = 0;
    while v > 1 {
        if !v.is_multiple_of(r) {
            return None;
        }
        v /= r;
        k += 1;
    }
    Some(k)
}

/// Out-of-place transpose of a `rows × cols` row-major matrix into
/// `dst` (which becomes `cols × rows`).
pub fn transpose_into<T: Copy>(src: &[T], rows: usize, cols: usize, dst: &mut [T]) {
    assert_eq!(src.len(), rows * cols, "src shape mismatch");
    assert_eq!(dst.len(), rows * cols, "dst shape mismatch");
    // Blocked to keep both src row and dst row lines live in cache.
    const B: usize = 32;
    for ib in (0..rows).step_by(B) {
        for jb in (0..cols).step_by(B) {
            for i in ib..(ib + B).min(rows) {
                for j in jb..(jb + B).min(cols) {
                    dst[j * rows + i] = src[i * cols + j];
                }
            }
        }
    }
}

/// In-place transpose of a square `n × n` row-major matrix.
pub fn transpose_square<T>(data: &mut [T], n: usize) {
    assert_eq!(data.len(), n * n, "shape mismatch");
    for i in 0..n {
        for j in (i + 1)..n {
            data.swap(i * n + j, j * n + i);
        }
    }
}

/// Rotate the axes of a row-major 3D array so the old axis order
/// `(d0, d1, d2)` (d2 contiguous) becomes `(d1, d2, d0)`.
///
/// Element `src[i0][i1][i2]` moves to `dst[i1][i2][i0]`. Applying this
/// three times returns to the original layout, which is how the paper's
/// 3D FFT applies the same contiguous row-FFT kernel to each dimension
/// in turn (footnote 2: for 2D this degenerates to a transpose).
pub fn rotate3d_into<T: Copy>(src: &[T], (d0, d1, d2): (usize, usize, usize), dst: &mut [T]) {
    assert_eq!(src.len(), d0 * d1 * d2, "src shape mismatch");
    assert_eq!(dst.len(), d0 * d1 * d2, "dst shape mismatch");
    for i0 in 0..d0 {
        for i1 in 0..d1 {
            let srow = &src[(i0 * d1 + i1) * d2..][..d2];
            for (i2, &v) in srow.iter().enumerate() {
                dst[(i1 * d2 + i2) * d0 + i0] = v;
            }
        }
    }
}

/// Bytes moved by one rotation of a `(d0,d1,d2)` array of `elem_bytes`
/// elements: one read + one write per element. Used by the performance
/// model to account for the rotation phase's traffic.
pub fn rotation_traffic_bytes(shape: (usize, usize, usize), elem_bytes: usize) -> u64 {
    let n = (shape.0 * shape.1 * shape.2) as u64;
    2 * n * elem_bytes as u64
}

/// Generic permutation application: `dst[perm[i]] = src[i]`.
///
/// Panics if `perm` is not a permutation of `0..len` (checked in debug
/// builds via the write pattern; callers should validate with
/// [`is_permutation`] when the permutation comes from untrusted input).
pub fn apply_permutation<T: Copy>(src: &[T], perm: &[usize], dst: &mut [T]) {
    assert_eq!(src.len(), perm.len());
    assert_eq!(src.len(), dst.len());
    for (i, &p) in perm.iter().enumerate() {
        dst[p] = src[i];
    }
}

/// Check that `perm` maps `0..len` one-to-one onto `0..len`.
pub fn is_permutation(perm: &[usize]) -> bool {
    let n = perm.len();
    let mut seen = vec![false; n];
    for &p in perm {
        if p >= n || seen[p] {
            return false;
        }
        seen[p] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_reverse_small() {
        assert_eq!(bit_reverse(0b001, 3), 0b100);
        assert_eq!(bit_reverse(0b110, 3), 0b011);
        assert_eq!(bit_reverse(5, 0), 0);
    }

    #[test]
    fn digit_reverse_matches_bit_reverse_for_r2() {
        for i in 0..64 {
            assert_eq!(digit_reverse(i, 2, 6), bit_reverse(i, 6));
        }
    }

    #[test]
    fn digit_reverse_radix8() {
        // 0o123 reversed in base 8 is 0o321.
        assert_eq!(digit_reverse(0o123, 8, 3), 0o321);
    }

    #[test]
    fn digit_reverse_is_involution() {
        for r in [2usize, 4, 8] {
            let digits = 3;
            let n = r.pow(digits);
            for i in 0..n {
                assert_eq!(digit_reverse(digit_reverse(i, r, digits), r, digits), i);
            }
        }
    }

    #[test]
    fn permute_roundtrip() {
        let mut v: Vec<usize> = (0..64).collect();
        bit_reverse_permute(&mut v);
        bit_reverse_permute(&mut v);
        assert_eq!(v, (0..64).collect::<Vec<_>>());

        let mut w: Vec<usize> = (0..512).collect();
        digit_reverse_permute(&mut w, 8);
        digit_reverse_permute(&mut w, 8);
        assert_eq!(w, (0..512).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "power of the radix")]
    fn digit_reverse_rejects_bad_len() {
        let mut v = vec![0u8; 24];
        digit_reverse_permute(&mut v, 8);
    }

    #[test]
    fn exact_log_works() {
        assert_eq!(exact_log(512, 8), Some(3));
        assert_eq!(exact_log(64, 4), Some(3));
        assert_eq!(exact_log(1, 8), Some(0));
        assert_eq!(exact_log(24, 2), None);
        assert_eq!(exact_log(0, 2), None);
        assert_eq!(exact_log(8, 1), None);
    }

    #[test]
    fn transpose_rectangular() {
        // 2x3 -> 3x2
        let src = [1, 2, 3, 4, 5, 6];
        let mut dst = [0; 6];
        transpose_into(&src, 2, 3, &mut dst);
        assert_eq!(dst, [1, 4, 2, 5, 3, 6]);
    }

    #[test]
    fn transpose_square_involution() {
        let n = 17;
        let orig: Vec<usize> = (0..n * n).collect();
        let mut v = orig.clone();
        transpose_square(&mut v, n);
        assert_ne!(v, orig);
        transpose_square(&mut v, n);
        assert_eq!(v, orig);
    }

    #[test]
    fn rotate3d_three_times_is_identity() {
        let (d0, d1, d2) = (3usize, 4usize, 5usize);
        let src: Vec<usize> = (0..d0 * d1 * d2).collect();
        let mut a = vec![0; src.len()];
        let mut b = vec![0; src.len()];
        let mut c = vec![0; src.len()];
        rotate3d_into(&src, (d0, d1, d2), &mut a);
        rotate3d_into(&a, (d1, d2, d0), &mut b);
        rotate3d_into(&b, (d2, d0, d1), &mut c);
        assert_eq!(c, src);
    }

    #[test]
    fn rotate3d_element_mapping() {
        let (d0, d1, d2) = (2usize, 3usize, 4usize);
        let src: Vec<usize> = (0..d0 * d1 * d2).collect();
        let mut dst = vec![0; src.len()];
        rotate3d_into(&src, (d0, d1, d2), &mut dst);
        for i0 in 0..d0 {
            for i1 in 0..d1 {
                for i2 in 0..d2 {
                    assert_eq!(dst[(i1 * d2 + i2) * d0 + i0], src[(i0 * d1 + i1) * d2 + i2]);
                }
            }
        }
    }

    #[test]
    fn rotate2d_is_transpose() {
        // With d0 = rows, d1 = cols, d2 = 1, rotation == transpose.
        let (r, c) = (3usize, 5usize);
        let src: Vec<usize> = (0..r * c).collect();
        let mut rot = vec![0; src.len()];
        let mut tr = vec![0; src.len()];
        rotate3d_into(&src, (r, c, 1), &mut rot);
        transpose_into(&src, r, c, &mut tr);
        assert_eq!(rot, tr);
    }

    #[test]
    fn permutation_check() {
        assert!(is_permutation(&[2, 0, 1]));
        assert!(!is_permutation(&[0, 0, 1]));
        assert!(!is_permutation(&[0, 3, 1]));
        assert!(is_permutation(&[]));
    }

    #[test]
    fn apply_permutation_places_elements() {
        let src = ['a', 'b', 'c'];
        let mut dst = ['x'; 3];
        apply_permutation(&src, &[2, 0, 1], &mut dst);
        assert_eq!(dst, ['b', 'c', 'a']);
    }

    #[test]
    fn rotation_traffic_counts_read_plus_write() {
        assert_eq!(rotation_traffic_bytes((4, 4, 4), 8), 2 * 64 * 8);
    }

    #[test]
    fn type_is_never_used_but_compiles() {
        // Complex-typed instantiation of the generic helpers.
        let v: Vec<Complex<f32>> = (0..8).map(|i| Complex::new(i as f32, 0.0)).collect();
        let mut d = v.clone();
        bit_reverse_permute(&mut d);
        assert_eq!(d[1], v[4]);
    }
}
