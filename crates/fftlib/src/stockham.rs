//! Self-sorting mixed-radix Stockham FFT driver.
//!
//! This is the breadth-first, iterative formulation the paper selects for
//! XMT (Section IV-A): at every stage *all* `N/r` radix-`r` sub-problems
//! are independent — each conceptual thread reads its `r` inputs, solves
//! the size-`r` DFT in registers, applies twiddles and writes `r`
//! outputs. The Stockham (ping-pong) data flow keeps both input and
//! output in natural order, avoiding a separate digit-reversal pass.
//!
//! The same stage structure, expressed as XMT ISA kernels, is what the
//! `xmt-fft` crate runs through the cycle simulator.

use crate::codelets::{dft2, dft4, dft8, dft_generic};
use crate::complex::{Complex, Float};
use crate::twiddle::TwiddleTable;
use crate::FftDirection;
use rayon::prelude::*;

/// Factor `n` into a stage list, preferring the largest radix first.
///
/// Powers of two are covered greedily by 8s with a 4 or 2 tail (the
/// paper's radix-8 choice, Section IV-A); remaining small primes
/// (3, 5, 7, 11, 13) are appended. Returns `None` if `n` has a prime
/// factor larger than 13 (callers fall back to Bluestein).
pub fn plan_stages(n: usize) -> Option<Vec<usize>> {
    if n == 0 {
        return None;
    }
    let mut stages = Vec::new();
    let mut m = n;
    let two = m.trailing_zeros();
    m >>= two;
    let mut rem2 = two;
    while rem2 >= 3 {
        stages.push(8);
        rem2 -= 3;
    }
    match rem2 {
        2 => stages.push(4),
        1 => stages.push(2),
        _ => {}
    }
    for p in [3usize, 5, 7, 11, 13] {
        while m.is_multiple_of(p) {
            stages.push(p);
            m /= p;
        }
    }
    if m == 1 {
        Some(stages)
    } else {
        None
    }
}

/// Work and memory-traffic profile of a stage plan, used by the cost
/// model and the benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StagePlanProfile {
    /// Number of passes over the array (= number of stages).
    pub passes: usize,
    /// Total element loads across all stages (`passes × n`).
    pub loads: u64,
    /// Total element stores (same as loads for Stockham).
    pub stores: u64,
}

/// Profile a stage plan for an `n`-point transform.
pub fn profile_stages(n: usize, stages: &[usize]) -> StagePlanProfile {
    StagePlanProfile {
        passes: stages.len(),
        loads: (stages.len() as u64) * n as u64,
        stores: (stages.len() as u64) * n as u64,
    }
}

const MAX_RADIX: usize = 16;

/// One Stockham stage: consume `src`, produce `dst`.
///
/// * `sub` — current sub-transform length (divides `src.len()`),
/// * `s` — stride = number of already-completed output points,
/// * invariant `s * sub == n`.
#[allow(clippy::too_many_arguments)]
fn stage<T: Float>(
    src: &[Complex<T>],
    dst: &mut [Complex<T>],
    r: usize,
    sub: usize,
    s: usize,
    dir: FftDirection,
    tw: &TwiddleTable<T>,
    roots: &[Complex<T>],
) {
    let m = sub / r;
    debug_assert_eq!(s * sub, src.len());
    let mut xs = [Complex::<T>::zero(); MAX_RADIX];
    let mut bs = [Complex::<T>::zero(); MAX_RADIX];
    for p in 0..m {
        for q in 0..s {
            for j in 0..r {
                xs[j] = src[q + s * (p + m * j)];
            }
            match r {
                2 => {
                    let o = dft2(xs[0], xs[1]);
                    bs[..2].copy_from_slice(&o);
                }
                4 => {
                    let o = dft4([xs[0], xs[1], xs[2], xs[3]], dir);
                    bs[..4].copy_from_slice(&o);
                }
                8 => {
                    let o = dft8(
                        [xs[0], xs[1], xs[2], xs[3], xs[4], xs[5], xs[6], xs[7]],
                        dir,
                    );
                    bs[..8].copy_from_slice(&o);
                }
                _ => dft_generic(&xs[..r], roots, &mut bs[..r]),
            }
            // ω_sub^{∓pk} = ω_n^{∓ s·p·k}; table already carries the sign.
            for k in 0..r {
                let v = if p == 0 || k == 0 {
                    bs[k]
                } else {
                    bs[k] * tw.get(s * p * k % tw.len())
                };
                dst[q + s * (r * p + k)] = v;
            }
        }
    }
}

/// Parallel variant of [`stage`]: sub-problems `p` are independent and
/// each owns the contiguous output block `dst[s·r·p .. s·r·(p+1)]`.
#[allow(clippy::too_many_arguments)]
fn stage_par<T: Float>(
    src: &[Complex<T>],
    dst: &mut [Complex<T>],
    r: usize,
    sub: usize,
    s: usize,
    dir: FftDirection,
    tw: &TwiddleTable<T>,
    roots: &[Complex<T>],
) {
    let m = sub / r;
    dst.par_chunks_mut(s * r).enumerate().for_each(|(p, out)| {
        let mut xs = [Complex::<T>::zero(); MAX_RADIX];
        let mut bs = [Complex::<T>::zero(); MAX_RADIX];
        for q in 0..s {
            for j in 0..r {
                xs[j] = src[q + s * (p + m * j)];
            }
            match r {
                2 => {
                    let o = dft2(xs[0], xs[1]);
                    bs[..2].copy_from_slice(&o);
                }
                4 => {
                    let o = dft4([xs[0], xs[1], xs[2], xs[3]], dir);
                    bs[..4].copy_from_slice(&o);
                }
                8 => {
                    let o = dft8(
                        [xs[0], xs[1], xs[2], xs[3], xs[4], xs[5], xs[6], xs[7]],
                        dir,
                    );
                    bs[..8].copy_from_slice(&o);
                }
                _ => dft_generic(&xs[..r], roots, &mut bs[..r]),
            }
            for k in 0..r {
                let v = if p == 0 || k == 0 {
                    bs[k]
                } else {
                    bs[k] * tw.get(s * p * k % tw.len())
                };
                out[q + s * k] = v;
            }
        }
    });
}

fn roots_for<T: Float>(r: usize, dir: FftDirection) -> Vec<Complex<T>> {
    let sign = match dir {
        FftDirection::Forward => -T::ONE,
        FftDirection::Inverse => T::ONE,
    };
    let step = T::TAU / T::from_usize(r);
    (0..r)
        .map(|j| Complex::cis(sign * step * T::from_usize(j)))
        .collect()
}

/// Run a full Stockham FFT over `data` using `scratch` as the ping-pong
/// buffer. `stages` must multiply to `data.len()`; `tw` must be a table
/// of the same length and direction.
///
/// The transform is unnormalized in both directions (like FFTW); divide
/// by `n` after an inverse transform, or use [`crate::plan::Fft`].
pub fn fft_stockham<T: Float>(
    data: &mut [Complex<T>],
    scratch: &mut [Complex<T>],
    stages: &[usize],
    dir: FftDirection,
    tw: &TwiddleTable<T>,
) {
    run(data, scratch, stages, dir, tw, false);
}

/// Parallel (rayon) version of [`fft_stockham`]. Worth using from about
/// 2¹⁴ points; below that thread coordination dominates.
pub fn fft_stockham_par<T: Float>(
    data: &mut [Complex<T>],
    scratch: &mut [Complex<T>],
    stages: &[usize],
    dir: FftDirection,
    tw: &TwiddleTable<T>,
) {
    run(data, scratch, stages, dir, tw, true);
}

fn run<T: Float>(
    data: &mut [Complex<T>],
    scratch: &mut [Complex<T>],
    stages: &[usize],
    dir: FftDirection,
    tw: &TwiddleTable<T>,
    parallel: bool,
) {
    let n = data.len();
    assert_eq!(scratch.len(), n, "scratch must match data length");
    assert_eq!(tw.len(), n, "twiddle table must match data length");
    assert_eq!(tw.direction(), dir, "twiddle table direction mismatch");
    let prod: usize = stages.iter().product();
    assert_eq!(prod, n.max(1), "stage radices must multiply to n");
    if n <= 1 {
        return;
    }
    debug_assert!(stages.iter().all(|&r| (2..=MAX_RADIX).contains(&r)));

    let mut sub = n;
    let mut s = 1usize;
    // Ping-pong between data and scratch; track where the live copy is.
    let mut in_data = true;
    for &r in stages {
        let roots = if matches!(r, 2 | 4 | 8) {
            Vec::new()
        } else {
            roots_for(r, dir)
        };
        let (src, dst): (&[Complex<T>], &mut [Complex<T>]) = if in_data {
            (&*data, &mut *scratch)
        } else {
            (&*scratch, &mut *data)
        };
        if parallel {
            stage_par(src, dst, r, sub, s, dir, tw, &roots);
        } else {
            stage(src, dst, r, sub, s, dir, tw, &roots);
        }
        in_data = !in_data;
        sub /= r;
        s *= r;
    }
    if !in_data {
        data.copy_from_slice(scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::{dft, max_error};
    use crate::Complex64;

    fn sample(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.91).cos() * 0.5))
            .collect()
    }

    fn run_stockham(x: &[Complex64], dir: FftDirection) -> Vec<Complex64> {
        let n = x.len();
        let stages = plan_stages(n).expect("smooth size");
        let tw = TwiddleTable::new(n, dir);
        let mut data = x.to_vec();
        let mut scratch = vec![Complex64::zero(); n];
        fft_stockham(&mut data, &mut scratch, &stages, dir, &tw);
        data
    }

    #[test]
    fn plan_prefers_radix8() {
        assert_eq!(plan_stages(512).unwrap(), vec![8, 8, 8]);
        assert_eq!(plan_stages(1024).unwrap(), vec![8, 8, 8, 2]);
        assert_eq!(plan_stages(256).unwrap(), vec![8, 8, 4]);
        assert_eq!(plan_stages(1).unwrap(), Vec::<usize>::new());
    }

    #[test]
    fn plan_handles_smooth_composites() {
        assert_eq!(plan_stages(120).unwrap(), vec![8, 3, 5]);
        assert_eq!(plan_stages(7).unwrap(), vec![7]);
        assert_eq!(plan_stages(0), None);
        assert_eq!(plan_stages(17), None); // prime > 13
        assert_eq!(plan_stages(2 * 17), None);
    }

    #[test]
    fn matches_naive_dft_power_of_two_sizes() {
        for n in [2usize, 4, 8, 16, 32, 64, 128, 256, 512] {
            let x = sample(n);
            let got = run_stockham(&x, FftDirection::Forward);
            let want = dft(&x, FftDirection::Forward);
            assert!(max_error(&got, &want) < 1e-9 * n as f64, "n={n}");
        }
    }

    #[test]
    fn matches_naive_dft_mixed_sizes() {
        for n in [3usize, 5, 6, 12, 15, 24, 60, 120, 360] {
            let x = sample(n);
            let got = run_stockham(&x, FftDirection::Forward);
            let want = dft(&x, FftDirection::Forward);
            assert!(max_error(&got, &want) < 1e-9 * n as f64, "n={n}");
        }
    }

    #[test]
    fn inverse_direction_matches_naive() {
        for n in [8usize, 64, 48] {
            let x = sample(n);
            let got = run_stockham(&x, FftDirection::Inverse);
            let want = dft(&x, FftDirection::Inverse);
            assert!(max_error(&got, &want) < 1e-9 * n as f64, "n={n}");
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let n = 1 << 12;
        let x = sample(n);
        let stages = plan_stages(n).unwrap();
        let tw = TwiddleTable::new(n, FftDirection::Forward);
        let mut a = x.clone();
        let mut b = x.clone();
        let mut sa = vec![Complex64::zero(); n];
        let mut sb = vec![Complex64::zero(); n];
        fft_stockham(&mut a, &mut sa, &stages, FftDirection::Forward, &tw);
        fft_stockham_par(&mut b, &mut sb, &stages, FftDirection::Forward, &tw);
        assert!(max_error(&a, &b) < 1e-12);
    }

    #[test]
    fn roundtrip_through_inverse() {
        let n = 512;
        let x = sample(n);
        let fwd = run_stockham(&x, FftDirection::Forward);
        let mut back = run_stockham(&fwd, FftDirection::Inverse);
        for v in &mut back {
            *v = v.scale(1.0 / n as f64);
        }
        assert!(max_error(&x, &back) < 1e-10);
    }

    #[test]
    fn profile_counts_passes() {
        let p = profile_stages(512, &plan_stages(512).unwrap());
        assert_eq!(p.passes, 3);
        assert_eq!(p.loads, 3 * 512);
        assert_eq!(p.stores, 3 * 512);
    }

    #[test]
    #[should_panic(expected = "stage radices")]
    fn wrong_stage_product_panics() {
        let n = 16;
        let tw = TwiddleTable::<f64>::new(n, FftDirection::Forward);
        let mut d = vec![Complex64::zero(); n];
        let mut s = vec![Complex64::zero(); n];
        fft_stockham(&mut d, &mut s, &[8], FftDirection::Forward, &tw);
    }
}
