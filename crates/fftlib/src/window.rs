//! Window functions for spectral analysis.
//!
//! Applying a window before the FFT trades main-lobe width for
//! side-lobe suppression; these are the standard choices, in the
//! periodic (DFT-even) form appropriate for spectral analysis.

use crate::complex::{Complex, Float};

/// Window shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Window {
    /// No weighting (all ones).
    Rectangular,
    /// Hann: `0.5 − 0.5·cos(2πi/N)`.
    Hann,
    /// Hamming: `0.54 − 0.46·cos(2πi/N)`.
    Hamming,
    /// Blackman (three-term, a₀=0.42, a₁=0.5, a₂=0.08).
    Blackman,
    /// Bartlett (triangular).
    Bartlett,
}

impl Window {
    /// Coefficient `i` of an `n`-point window.
    pub fn coefficient<T: Float>(&self, i: usize, n: usize) -> T {
        assert!(n > 0 && i < n);
        let x = T::TAU * T::from_usize(i) / T::from_usize(n);
        match self {
            Window::Rectangular => T::ONE,
            Window::Hann => T::from_f64(0.5) - T::from_f64(0.5) * x.cos(),
            Window::Hamming => T::from_f64(0.54) - T::from_f64(0.46) * x.cos(),
            Window::Blackman => {
                T::from_f64(0.42) - T::from_f64(0.5) * x.cos() + T::from_f64(0.08) * (x + x).cos()
            }
            Window::Bartlett => {
                let half = T::from_usize(n) / T::from_f64(2.0);
                T::ONE - ((T::from_usize(i) - half).abs() / half)
            }
        }
    }

    /// Materialize the window.
    pub fn coefficients<T: Float>(&self, n: usize) -> Vec<T> {
        (0..n).map(|i| self.coefficient(i, n)).collect()
    }

    /// Apply in place to complex data.
    pub fn apply<T: Float>(&self, data: &mut [Complex<T>]) {
        let n = data.len();
        for (i, v) in data.iter_mut().enumerate() {
            *v = v.scale(self.coefficient(i, n));
        }
    }

    /// Coherent gain: mean of the coefficients (amplitude correction
    /// factor for windowed spectra).
    pub fn coherent_gain<T: Float>(&self, n: usize) -> T {
        let mut s = T::ZERO;
        for i in 0..n {
            s += self.coefficient::<T>(i, n);
        }
        s / T::from_usize(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Complex64;

    #[test]
    fn rectangular_is_identity() {
        let mut v = vec![Complex64::new(2.0, -1.0); 16];
        Window::Rectangular.apply(&mut v);
        assert!(v.iter().all(|c| *c == Complex64::new(2.0, -1.0)));
        assert_eq!(Window::Rectangular.coherent_gain::<f64>(16), 1.0);
    }

    #[test]
    fn hann_endpoints_and_peak() {
        let w: Vec<f64> = Window::Hann.coefficients(8);
        assert!(w[0].abs() < 1e-12, "periodic Hann starts at 0");
        assert!((w[4] - 1.0).abs() < 1e-12, "peak at n/2");
    }

    #[test]
    fn all_windows_bounded_zero_one() {
        for w in [
            Window::Hann,
            Window::Hamming,
            Window::Blackman,
            Window::Bartlett,
        ] {
            for n in [7usize, 16, 33] {
                for (i, c) in w.coefficients::<f64>(n).iter().enumerate() {
                    assert!((-1e-12..=1.0 + 1e-12).contains(c), "{w:?} n={n} i={i}: {c}");
                }
            }
        }
    }

    #[test]
    fn coherent_gains_match_theory() {
        // Large-N limits: Hann 0.5, Hamming 0.54, Blackman 0.42.
        let n = 1 << 14;
        assert!((Window::Hann.coherent_gain::<f64>(n) - 0.5).abs() < 1e-3);
        assert!((Window::Hamming.coherent_gain::<f64>(n) - 0.54).abs() < 1e-3);
        assert!((Window::Blackman.coherent_gain::<f64>(n) - 0.42).abs() < 1e-3);
    }

    #[test]
    fn hann_suppresses_leakage() {
        // An off-bin tone leaks across the whole rectangular spectrum;
        // with Hann the far side-lobes drop by orders of magnitude.
        let n = 256;
        let tone = 10.37; // deliberately between bins
        let make = || -> Vec<Complex64> {
            (0..n)
                .map(|i| {
                    Complex64::new(
                        (std::f64::consts::TAU * tone * i as f64 / n as f64).cos(),
                        0.0,
                    )
                })
                .collect()
        };
        let far_bin = n / 2;
        let mut rect = make();
        crate::plan::fft(&mut rect);
        let mut hann = make();
        Window::Hann.apply(&mut hann);
        crate::plan::fft(&mut hann);
        assert!(
            hann[far_bin].abs() < rect[far_bin].abs() / 50.0,
            "hann {} vs rect {}",
            hann[far_bin].abs(),
            rect[far_bin].abs()
        );
    }

    #[test]
    #[should_panic]
    fn out_of_range_coefficient_panics() {
        Window::Hann.coefficient::<f64>(8, 8);
    }
}
