//! Real-input FFT via the packed half-length complex transform.
//!
//! N real samples are packed into N/2 complex values, transformed with a
//! single N/2-point complex FFT, and unpacked with the standard
//! split/recombination identities into the N/2+1 non-redundant
//! (Hermitian) spectrum bins.

use crate::complex::{Complex, Float};
use crate::plan::Fft;
use crate::FftDirection;

/// Plan for a forward real-to-complex FFT of even length `n`.
pub struct RealFft<T> {
    n: usize,
    half_plan: Fft<T>,
    /// ω_n^{-k} for the recombination, `0 ≤ k ≤ n/2`.
    twiddles: Vec<Complex<T>>,
}

impl<T: Float> RealFft<T> {
    /// Construct a new instance.
    pub fn new(n: usize) -> Self {
        assert!(
            n >= 2 && n.is_multiple_of(2),
            "real FFT requires even length >= 2"
        );
        let step = T::TAU / T::from_usize(n);
        let twiddles = (0..=n / 2)
            .map(|k| Complex::cis(-step * T::from_usize(k)))
            .collect();
        Self {
            n,
            half_plan: Fft::new(n / 2, FftDirection::Forward),
            twiddles,
        }
    }

    /// Input length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if there are no items.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of output bins: `n/2 + 1`.
    pub fn output_len(&self) -> usize {
        self.n / 2 + 1
    }

    /// Transform `input` (length n) into `output` (length n/2+1), the
    /// non-negative-frequency half of the spectrum. The remaining bins
    /// are the conjugate mirror `X[n-k] = conj(X[k])`.
    pub fn process(&self, input: &[T], output: &mut [Complex<T>]) {
        assert_eq!(input.len(), self.n, "input length must match plan");
        assert_eq!(
            output.len(),
            self.output_len(),
            "output must hold n/2+1 bins"
        );
        let h = self.n / 2;
        // Pack x[2j] + i·x[2j+1].
        let mut z: Vec<Complex<T>> = (0..h)
            .map(|j| Complex::new(input[2 * j], input[2 * j + 1]))
            .collect();
        self.half_plan.process(&mut z);

        let half = T::from_f64(0.5);
        for k in 0..=h {
            let zk = if k == h { z[0] } else { z[k] };
            let zmk = z[(h - k) % h].conj();
            // Even (real-part) and odd (imag-part) sub-spectra.
            let xe = (zk + zmk).scale(half);
            let xo = (zk - zmk).scale(half).mul_neg_i();
            output[k] = xe + self.twiddles[k] * xo;
        }
    }

    /// Convenience wrapper allocating the output.
    pub fn transform(&self, input: &[T]) -> Vec<Complex<T>> {
        let mut out = vec![Complex::zero(); self.output_len()];
        self.process(input, &mut out);
        out
    }
}

/// Expand a half-spectrum (n/2+1 bins) to the full n-bin spectrum using
/// Hermitian symmetry. Useful for comparing against complex transforms.
pub fn expand_hermitian<T: Float>(half: &[Complex<T>], n: usize) -> Vec<Complex<T>> {
    assert_eq!(half.len(), n / 2 + 1);
    let mut full = Vec::with_capacity(n);
    full.extend_from_slice(half);
    for k in (1..n - n / 2).rev() {
        full.push(half[k].conj());
    }
    full
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::{dft_forward, max_error};
    use crate::Complex64;

    fn real_sample(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.41).sin() + 0.3 * (i as f64 * 1.9).cos())
            .collect()
    }

    #[test]
    fn matches_complex_dft_of_real_signal() {
        for n in [2usize, 4, 8, 16, 64, 128, 24, 60] {
            let x = real_sample(n);
            let plan = RealFft::new(n);
            let half = plan.transform(&x);
            let full = expand_hermitian(&half, n);
            let xc: Vec<Complex64> = x.iter().map(|&r| Complex64::new(r, 0.0)).collect();
            let want = dft_forward(&xc);
            assert!(max_error(&full, &want) < 1e-8 * n as f64, "n={n}");
        }
    }

    #[test]
    fn dc_bin_is_sum() {
        let x = real_sample(32);
        let plan = RealFft::new(32);
        let half = plan.transform(&x);
        let sum: f64 = x.iter().sum();
        assert!((half[0].re - sum).abs() < 1e-9);
        assert!(half[0].im.abs() < 1e-9);
    }

    #[test]
    fn nyquist_bin_is_real() {
        let x = real_sample(64);
        let plan = RealFft::new(64);
        let half = plan.transform(&x);
        assert!(half[32].im.abs() < 1e-9, "Nyquist bin must be real");
    }

    #[test]
    #[should_panic(expected = "even length")]
    fn rejects_odd_length() {
        RealFft::<f64>::new(9);
    }

    #[test]
    fn output_len_is_half_plus_one() {
        assert_eq!(RealFft::<f64>::new(16).output_len(), 9);
    }
}
