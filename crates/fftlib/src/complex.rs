//! Minimal complex-number arithmetic for FFT kernels.
//!
//! The library deliberately avoids external numeric crates: the FFT only
//! needs add/sub/mul/conj/scale on complex values plus a handful of real
//! scalar operations, all captured by the [`Float`] trait implemented for
//! `f32` and `f64`.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// Floating-point scalar usable as the element type of a transform.
///
/// Implemented for `f32` (the paper's single-precision experiments) and
/// `f64` (used by tests for tighter tolerances).
pub trait Float:
    Copy
    + Clone
    + PartialEq
    + PartialOrd
    + fmt::Debug
    + fmt::Display
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + Send
    + Sync
    + 'static
{
    /// The `const` value.
    const ZERO: Self;
    /// The `const` value.
    const ONE: Self;
    /// 2π in this precision.
    const TAU: Self;

    /// The `fn` value.
    fn from_f64(v: f64) -> Self;
    /// The `fn` value.
    fn to_f64(self) -> f64;
    /// The `fn` value.
    fn from_usize(v: usize) -> Self;
    /// The `fn` value.
    fn sin(self) -> Self;
    /// The `fn` value.
    fn cos(self) -> Self;
    /// The `fn` value.
    fn sqrt(self) -> Self;
    /// The `fn` value.
    fn abs(self) -> Self;
    /// Fused or plain multiply-add `self * a + b`; precision detail only.
    fn mul_add(self, a: Self, b: Self) -> Self;
}

macro_rules! impl_float {
    ($t:ty) => {
        impl Float for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const TAU: Self = std::f64::consts::TAU as $t;

            #[inline(always)]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn from_usize(v: usize) -> Self {
                v as $t
            }
            #[inline(always)]
            fn sin(self) -> Self {
                <$t>::sin(self)
            }
            #[inline(always)]
            fn cos(self) -> Self {
                <$t>::cos(self)
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline(always)]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline(always)]
            fn mul_add(self, a: Self, b: Self) -> Self {
                self * a + b
            }
        }
    };
}

impl_float!(f32);
impl_float!(f64);

/// A complex number `re + i·im`.
///
/// Layout is `repr(C)` so a `&[Complex<T>]` can be reinterpreted as an
/// interleaved real buffer (used by the XMT kernel loader).
#[derive(Copy, Clone, PartialEq, Default)]
#[repr(C)]
pub struct Complex<T> {
    /// The `re` value.
    pub re: T,
    /// The `im` value.
    pub im: T,
}

/// Single-precision complex, the paper's element type.
pub type Complex32 = Complex<f32>;
/// Double-precision complex.
pub type Complex64 = Complex<f64>;

impl<T: Float> Complex<T> {
    #[inline(always)]
    /// The `const` value.
    pub const fn new(re: T, im: T) -> Self {
        Self { re, im }
    }

    /// The additive identity.
    #[inline(always)]
    pub fn zero() -> Self {
        Self::new(T::ZERO, T::ZERO)
    }

    /// The multiplicative identity.
    #[inline(always)]
    pub fn one() -> Self {
        Self::new(T::ONE, T::ZERO)
    }

    /// `e^{iθ} = cos θ + i sin θ`.
    #[inline]
    pub fn cis(theta: T) -> Self {
        Self::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    #[inline(always)]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Squared magnitude `re² + im²`.
    #[inline(always)]
    pub fn norm_sqr(self) -> T {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    #[inline(always)]
    pub fn abs(self) -> T {
        self.norm_sqr().sqrt()
    }

    /// Scale by a real factor.
    #[inline(always)]
    pub fn scale(self, s: T) -> Self {
        Self::new(self.re * s, self.im * s)
    }

    /// Multiply by `i` (90° rotation) without a full complex multiply.
    #[inline(always)]
    pub fn mul_i(self) -> Self {
        Self::new(-self.im, self.re)
    }

    /// Multiply by `-i` (-90° rotation).
    #[inline(always)]
    pub fn mul_neg_i(self) -> Self {
        Self::new(self.im, -self.re)
    }

    /// Euclidean distance to another complex value.
    #[inline]
    pub fn dist(self, other: Self) -> T {
        (self - other).abs()
    }
}

impl<T: Float> Add for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl<T: Float> Sub for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl<T: Float> Mul for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl<T: Float> Neg for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl<T: Float> AddAssign for Complex<T> {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl<T: Float> SubAssign for Complex<T> {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl<T: Float> MulAssign for Complex<T> {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl<T: Float> Sum for Complex<T> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::zero(), |a, b| a + b)
    }
}

impl<T: fmt::Debug> fmt::Debug for Complex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:?}+{:?}i)", self.re, self.im)
    }
}

impl<T: fmt::Display> fmt::Display for Complex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}+{}i)", self.re, self.im)
    }
}

impl<T: Float> From<T> for Complex<T> {
    #[inline]
    fn from(re: T) -> Self {
        Self::new(re, T::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_roundtrip() {
        let a = Complex64::new(1.5, -2.0);
        let b = Complex64::new(-0.5, 4.0);
        assert_eq!((a + b) - b, a);
    }

    #[test]
    fn mul_matches_expansion() {
        let a = Complex64::new(2.0, 3.0);
        let b = Complex64::new(-1.0, 5.0);
        let p = a * b;
        assert_eq!(p, Complex64::new(-2.0 - 3.0 * 5.0, 2.0 * 5.0 - 3.0));
    }

    #[test]
    fn conj_negates_imag() {
        let a = Complex32::new(1.0, 2.0);
        assert_eq!(a.conj(), Complex32::new(1.0, -2.0));
    }

    #[test]
    fn cis_unit_magnitude() {
        for k in 0..64 {
            let theta = k as f64 * 0.1;
            let c = Complex64::cis(theta);
            assert!((c.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn mul_i_is_rotation() {
        let a = Complex64::new(3.0, 4.0);
        assert_eq!(a.mul_i(), a * Complex64::new(0.0, 1.0));
        assert_eq!(a.mul_neg_i(), a * Complex64::new(0.0, -1.0));
    }

    #[test]
    fn norm_sqr_matches_abs() {
        let a = Complex64::new(3.0, 4.0);
        assert_eq!(a.norm_sqr(), 25.0);
        assert!((a.abs() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn sum_accumulates() {
        let v = vec![Complex64::new(1.0, 1.0); 10];
        let s: Complex64 = v.into_iter().sum();
        assert_eq!(s, Complex64::new(10.0, 10.0));
    }

    #[test]
    fn mul_i_twice_negates() {
        let a = Complex64::new(1.0, 2.0);
        assert_eq!(a.mul_i().mul_i(), -a);
    }
}
