//! Floating-point operation accounting conventions.
//!
//! The paper reports FLOPS "based on the standard rule of 5N·log₂N
//! floating-point operations for an FFT of N elements" (Section VI),
//! *except* in the Roofline analysis, which uses actual operation
//! counts. Both conventions live here so every crate agrees on them.

/// The 5N·log₂N convention for an N-point complex FFT.
///
/// This is the community-standard normalization (used by FFTW's
/// benchmarks and the MPI work the paper compares against); it slightly
/// overstates the *actual* work of higher-radix algorithms.
pub fn fft_flops_convention(n: u64) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    5.0 * n as f64 * (n as f64).log2()
}

/// The 5N·log₂N convention for a multidimensional FFT of total size
/// `n_total = Π dims`: each axis pass of length `d` over `n_total/d`
/// rows costs `(n_total/d)·5d·log₂d`, which sums to `5·n_total·log₂(n_total)`.
pub fn fft_flops_convention_nd(dims: &[u64]) -> f64 {
    let n_total: u64 = dims.iter().product();
    fft_flops_convention(n_total)
}

/// Actual real-operation count of one radix-`r` Stockham pass over `n`
/// elements: `n/r` codelets plus twiddle multiplies on non-trivial
/// outputs (6 real ops per complex multiply).
pub fn stage_actual_flops(n: u64, r: u64) -> u64 {
    let codelets = n / r;
    let codelet_ops = crate::codelets::codelet_flops(r as usize);
    // Each codelet applies r−1 twiddle multiplies (k=0 is free); the
    // p=0 sub-problem skips them but is a vanishing fraction at scale.
    codelets * (codelet_ops + 6 * (r - 1))
}

/// Actual operation count of a full 1D mixed-radix FFT with the given
/// stage list.
pub fn fft_actual_flops(n: u64, stages: &[usize]) -> u64 {
    stages
        .iter()
        .map(|&r| stage_actual_flops(n, r as u64))
        .sum()
}

/// GFLOPS given a flop count and elapsed seconds.
pub fn gflops(flops: f64, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        return 0.0;
    }
    flops / seconds / 1e9
}

/// GFLOPS given a flop count, cycle count and clock in GHz (the form the
/// simulator reports: the paper assumes a 3.3 GHz clock).
pub fn gflops_from_cycles(flops: f64, cycles: u64, clock_ghz: f64) -> f64 {
    if cycles == 0 {
        return 0.0;
    }
    flops * clock_ghz / cycles as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convention_matches_formula() {
        assert_eq!(fft_flops_convention(1024), 5.0 * 1024.0 * 10.0);
        assert_eq!(fft_flops_convention(1), 0.0);
        assert_eq!(fft_flops_convention(0), 0.0);
    }

    #[test]
    fn nd_convention_composes() {
        // 512^3 cube: 5·N·log2(N) with N = 2^27.
        let dims = [512u64, 512, 512];
        let n = 512u64 * 512 * 512;
        assert!((fft_flops_convention_nd(&dims) - 5.0 * n as f64 * 27.0).abs() < 1.0);
    }

    #[test]
    fn paper_headline_flop_count() {
        // The paper's 512³ FFT: 5·2^27·27 ≈ 18.1 GFLOP.
        let f = fft_flops_convention_nd(&[512, 512, 512]);
        assert!((f / 1e9 - 18.12) < 0.1);
    }

    #[test]
    fn actual_is_below_convention_for_radix8() {
        // Radix-8 does fewer actual ops than the 5N·log₂N convention.
        let n = 512u64;
        let actual = fft_actual_flops(n, &[8, 8, 8]) as f64;
        assert!(actual < fft_flops_convention(n));
        assert!(actual > 0.5 * fft_flops_convention(n));
    }

    #[test]
    fn gflops_helpers() {
        assert_eq!(gflops(2e9, 1.0), 2.0);
        assert_eq!(gflops(1.0, 0.0), 0.0);
        // 100 flops in 50 cycles at 1 GHz = 2 GFLOPS.
        assert!((gflops_from_cycles(100.0, 50, 1.0) - 2.0).abs() < 1e-12);
        assert_eq!(gflops_from_cycles(100.0, 0, 1.0), 0.0);
    }
}
