//! Classic in-place radix-2 drivers: decimation-in-time (DIT) and
//! decimation-in-frequency (DIF).
//!
//! These exist for the paper's design-choice ablations (Section IV-A
//! "Decimation-in-time versus -frequency"): the DIT variant consumes
//! twiddles fine-to-coarse (2nd roots first), DIF coarse-to-fine (N-th
//! roots first) — the property that makes DIF mesh with the paper's
//! twiddle-replication scheme. The production path is the self-sorting
//! driver in [`crate::stockham`].

use crate::complex::{Complex, Float};
use crate::permute::bit_reverse_permute;
use crate::twiddle::TwiddleTable;
use crate::FftDirection;

fn check<T: Float>(data: &[Complex<T>], tw: &TwiddleTable<T>, dir: FftDirection) {
    assert!(
        data.len().is_power_of_two(),
        "radix-2 driver needs power-of-two length"
    );
    assert_eq!(tw.len(), data.len(), "twiddle table must match data length");
    assert_eq!(tw.direction(), dir, "twiddle table direction mismatch");
}

/// In-place radix-2 decimation-in-time FFT (Cooley–Tukey).
///
/// Bit-reverses the input, then runs log₂N butterfly stages from the
/// smallest sub-problems up; twiddles go 2nd roots → 4th roots → … → Nth.
pub fn fft_dit2<T: Float>(data: &mut [Complex<T>], dir: FftDirection, tw: &TwiddleTable<T>) {
    check(data, tw, dir);
    let n = data.len();
    if n <= 1 {
        return;
    }
    bit_reverse_permute(data);
    let mut len = 2;
    while len <= n {
        let half = len / 2;
        let step = n / len; // ω_len = ω_n^step
        for start in (0..n).step_by(len) {
            for k in 0..half {
                let w = tw.get(step * k);
                let a = data[start + k];
                let b = data[start + k + half] * w;
                data[start + k] = a + b;
                data[start + k + half] = a - b;
            }
        }
        len *= 2;
    }
}

/// In-place radix-2 decimation-in-frequency FFT.
///
/// Runs butterfly stages from the full problem down (Nth roots first —
/// the ordering the paper exploits for twiddle replication), leaving the
/// output bit-reversed, then unscrambles.
pub fn fft_dif2<T: Float>(data: &mut [Complex<T>], dir: FftDirection, tw: &TwiddleTable<T>) {
    fft_dif2_scrambled(data, dir, tw);
    bit_reverse_permute(data);
}

/// The DIF butterfly passes only, leaving the result in bit-reversed
/// order (useful when a subsequent pass can absorb the permutation, as
/// the paper's fused rotation does).
pub fn fft_dif2_scrambled<T: Float>(
    data: &mut [Complex<T>],
    dir: FftDirection,
    tw: &TwiddleTable<T>,
) {
    check(data, tw, dir);
    let n = data.len();
    if n <= 1 {
        return;
    }
    let mut len = n;
    while len >= 2 {
        let half = len / 2;
        let step = n / len;
        for start in (0..n).step_by(len) {
            for k in 0..half {
                let w = tw.get(step * k);
                let a = data[start + k];
                let b = data[start + k + half];
                data[start + k] = a + b;
                data[start + k + half] = (a - b) * w;
            }
        }
        len /= 2;
    }
}

/// Per-stage twiddle root orders touched by DIT vs DIF, smallest
/// sub-problem first. Demonstrates the paper's observation that DIT goes
/// fine→coarse (2, 4, 8, …, N) while DIF goes coarse→fine (N, …, 4, 2).
pub fn twiddle_order(n: usize, dif: bool) -> Vec<usize> {
    assert!(n.is_power_of_two() && n >= 2);
    let mut orders: Vec<usize> =
        std::iter::successors(Some(2usize), |&l| if l < n { Some(l * 2) } else { None }).collect();
    if dif {
        orders.reverse();
    }
    orders
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::{dft, max_error};
    use crate::Complex64;

    fn sample(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| Complex64::new((i as f64).cos(), (3.0 * i as f64).sin()))
            .collect()
    }

    #[test]
    fn dit_matches_naive() {
        for n in [2usize, 4, 16, 128, 1024] {
            let x = sample(n);
            let mut got = x.clone();
            let tw = TwiddleTable::new(n, FftDirection::Forward);
            fft_dit2(&mut got, FftDirection::Forward, &tw);
            let want = dft(&x, FftDirection::Forward);
            assert!(max_error(&got, &want) < 1e-8 * n as f64, "n={n}");
        }
    }

    #[test]
    fn dif_matches_dit() {
        for n in [8usize, 64, 512] {
            let x = sample(n);
            let tw = TwiddleTable::new(n, FftDirection::Forward);
            let mut a = x.clone();
            let mut b = x.clone();
            fft_dit2(&mut a, FftDirection::Forward, &tw);
            fft_dif2(&mut b, FftDirection::Forward, &tw);
            assert!(max_error(&a, &b) < 1e-10 * n as f64, "n={n}");
        }
    }

    #[test]
    fn dif_scrambled_is_bitreversed_dif() {
        let n = 64;
        let x = sample(n);
        let tw = TwiddleTable::new(n, FftDirection::Forward);
        let mut full = x.clone();
        let mut scram = x.clone();
        fft_dif2(&mut full, FftDirection::Forward, &tw);
        fft_dif2_scrambled(&mut scram, FftDirection::Forward, &tw);
        bit_reverse_permute(&mut scram);
        assert!(max_error(&full, &scram) < 1e-14);
    }

    #[test]
    fn inverse_roundtrip() {
        let n = 256;
        let x = sample(n);
        let mut v = x.clone();
        let twf = TwiddleTable::new(n, FftDirection::Forward);
        let twi = TwiddleTable::new(n, FftDirection::Inverse);
        fft_dit2(&mut v, FftDirection::Forward, &twf);
        fft_dit2(&mut v, FftDirection::Inverse, &twi);
        for e in &mut v {
            *e = e.scale(1.0 / n as f64);
        }
        assert!(max_error(&x, &v) < 1e-10);
    }

    #[test]
    fn twiddle_order_directions() {
        assert_eq!(twiddle_order(16, false), vec![2, 4, 8, 16]);
        assert_eq!(twiddle_order(16, true), vec![16, 8, 4, 2]);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rejects_non_power_of_two() {
        let mut v = vec![Complex64::zero(); 12];
        let tw = TwiddleTable::new(12, FftDirection::Forward);
        fft_dit2(&mut v, FftDirection::Forward, &tw);
    }
}
