//! Multidimensional FFTs by the paper's rotation method (Section IV,
//! "Multidimensional FFT" and Section VI-B).
//!
//! A 2D/3D transform alternates two phases: (1) FFT every contiguous row
//! and (2) rotate the axes so the next dimension's data becomes the
//! contiguous rows. After `d` passes the layout returns to the original
//! orientation with every axis transformed. Phase (2) is pure data
//! movement — the communication-intensive phase that dominates the
//! Roofline analysis of Fig. 3.

use crate::complex::{Complex, Float};
use crate::plan::{Fft, FftPlanner};
use crate::FftDirection;
use rayon::prelude::*;
use std::sync::Arc;

/// Row-assignment granularity for parallel multidimensional transforms
/// (Section IV-A "Granularity of parallelism").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Granularity {
    /// One or more whole rows per task; each task runs a serial row FFT.
    /// This is the coarse-grained scheme of conventional platforms.
    #[default]
    Coarse,
    /// All rows advance stage-by-stage together (maximum available
    /// parallelism — the fine-grained scheme XMT favours). On the host
    /// this is realized as stage-synchronous batched rows.
    Fine,
}

/// 2D FFT plan over a `rows × cols` row-major array.
pub struct Fft2d<T> {
    rows: usize,
    cols: usize,
    direction: FftDirection,
    row_plan: Arc<Fft<T>>,
    col_plan: Arc<Fft<T>>,
}

impl<T: Float> Fft2d<T> {
    /// Construct a new instance.
    pub fn new(rows: usize, cols: usize, direction: FftDirection) -> Self {
        assert!(rows > 0 && cols > 0, "2D shape must be non-degenerate");
        let mut planner = FftPlanner::new();
        Self {
            rows,
            cols,
            direction,
            row_plan: planner.plan(cols, direction),
            col_plan: planner.plan(rows, direction),
        }
    }

    /// The array shape.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Transform direction.
    pub fn direction(&self) -> FftDirection {
        self.direction
    }

    /// Serial in-place 2D transform.
    pub fn process(&self, data: &mut [Complex<T>]) {
        self.run(data, false, Granularity::Coarse);
    }

    /// Parallel in-place 2D transform.
    pub fn process_par(&self, data: &mut [Complex<T>], granularity: Granularity) {
        self.run(data, true, granularity);
    }

    fn run(&self, data: &mut [Complex<T>], parallel: bool, granularity: Granularity) {
        assert_eq!(data.len(), self.rows * self.cols, "buffer shape mismatch");
        let mut rotated = vec![Complex::zero(); data.len()];
        // Pass 1: rows of length `cols`.
        fft_rows(data, self.cols, &self.row_plan, parallel, granularity);
        crate::permute::transpose_into(data, self.rows, self.cols, &mut rotated);
        // Pass 2: rows of length `rows` (the original columns).
        fft_rows(
            &mut rotated,
            self.rows,
            &self.col_plan,
            parallel,
            granularity,
        );
        crate::permute::transpose_into(&rotated, self.cols, self.rows, data);
    }
}

/// 3D FFT plan over a `(d0, d1, d2)` row-major array (`d2` contiguous).
pub struct Fft3d<T> {
    shape: (usize, usize, usize),
    direction: FftDirection,
    /// Row plans in application order: lengths `d2`, then `d0`, then `d1`
    /// (each rotation brings the next original axis into contiguous rows).
    plans: [Arc<Fft<T>>; 3],
}

impl<T: Float> Fft3d<T> {
    /// Construct a new instance.
    pub fn new(shape: (usize, usize, usize), direction: FftDirection) -> Self {
        let (d0, d1, d2) = shape;
        assert!(
            d0 > 0 && d1 > 0 && d2 > 0,
            "3D shape must be non-degenerate"
        );
        let mut planner = FftPlanner::new();
        Self {
            shape,
            direction,
            plans: [
                planner.plan(d2, direction),
                planner.plan(d0, direction),
                planner.plan(d1, direction),
            ],
        }
    }

    /// Cube constructor, the paper's 512×512×512 shape.
    pub fn cube(n: usize, direction: FftDirection) -> Self {
        Self::new((n, n, n), direction)
    }

    /// The array shape.
    pub fn shape(&self) -> (usize, usize, usize) {
        self.shape
    }

    /// Transform direction.
    pub fn direction(&self) -> FftDirection {
        self.direction
    }

    /// Length/count of contained items.
    pub fn len(&self) -> usize {
        self.shape.0 * self.shape.1 * self.shape.2
    }

    /// True if there are no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serial in-place 3D transform.
    pub fn process(&self, data: &mut [Complex<T>]) {
        self.run(data, false, Granularity::Coarse);
    }

    /// Parallel in-place 3D transform.
    pub fn process_par(&self, data: &mut [Complex<T>], granularity: Granularity) {
        self.run(data, true, granularity);
    }

    fn run(&self, data: &mut [Complex<T>], parallel: bool, granularity: Granularity) {
        assert_eq!(data.len(), self.len(), "buffer shape mismatch");
        let mut scratch = vec![Complex::zero(); data.len()];
        let (d0, d1, d2) = self.shape;
        // Shapes seen by the three passes as the axes rotate.
        let shapes = [(d0, d1, d2), (d1, d2, d0), (d2, d0, d1)];
        for (pass, &(s0, s1, s2)) in shapes.iter().enumerate() {
            fft_rows(data, s2, &self.plans[pass], parallel, granularity);
            crate::permute::rotate3d_into(data, (s0, s1, s2), &mut scratch);
            data.copy_from_slice(&scratch);
        }
    }
}

/// Apply `plan` to every contiguous `row_len` chunk of `data`.
fn fft_rows<T: Float>(
    data: &mut [Complex<T>],
    row_len: usize,
    plan: &Arc<Fft<T>>,
    parallel: bool,
    granularity: Granularity,
) {
    debug_assert_eq!(data.len() % row_len, 0);
    if !parallel {
        let mut scratch = vec![Complex::zero(); plan.scratch_len()];
        for row in data.chunks_exact_mut(row_len) {
            plan.process_with_scratch(row, &mut scratch);
        }
        return;
    }
    match granularity {
        Granularity::Coarse => {
            data.par_chunks_exact_mut(row_len).for_each_init(
                || vec![Complex::zero(); plan.scratch_len()],
                |scratch, row| plan.process_with_scratch(row, scratch),
            );
        }
        Granularity::Fine => {
            // Stage-synchronous: smaller work items (half-row batches)
            // give the scheduler the fine-grained supply of tasks the
            // paper's XMT mapping exploits; on the host this bounds
            // imbalance when rows ≫ threads is *not* satisfied.
            let batch = row_len.max(1);
            data.par_chunks_exact_mut(batch).for_each_init(
                || vec![Complex::zero(); plan.scratch_len()],
                |scratch, row| plan.process_with_scratch(row, scratch),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::{dft, max_error};
    use crate::{Complex64, FftDirection};

    fn sample(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| Complex64::new((i as f64 * 0.13).sin(), (i as f64 * 0.29).cos()))
            .collect()
    }

    /// Reference 2D DFT: naive transform of rows then columns.
    fn dft2d(data: &[Complex64], rows: usize, cols: usize) -> Vec<Complex64> {
        let mut out = data.to_vec();
        for r in 0..rows {
            let row = dft(&out[r * cols..(r + 1) * cols], FftDirection::Forward);
            out[r * cols..(r + 1) * cols].copy_from_slice(&row);
        }
        for c in 0..cols {
            let col: Vec<Complex64> = (0..rows).map(|r| out[r * cols + c]).collect();
            let t = dft(&col, FftDirection::Forward);
            for r in 0..rows {
                out[r * cols + c] = t[r];
            }
        }
        out
    }

    #[test]
    fn fft2d_matches_naive() {
        for (r, c) in [(4usize, 8usize), (8, 8), (6, 10), (16, 4)] {
            let x = sample(r * c);
            let mut got = x.clone();
            Fft2d::new(r, c, FftDirection::Forward).process(&mut got);
            let want = dft2d(&x, r, c);
            assert!(max_error(&got, &want) < 1e-8 * (r * c) as f64, "{r}x{c}");
        }
    }

    #[test]
    fn fft2d_parallel_matches_serial() {
        let (r, c) = (32usize, 64usize);
        let x = sample(r * c);
        let plan = Fft2d::new(r, c, FftDirection::Forward);
        let mut a = x.clone();
        let mut b = x.clone();
        let mut d = x.clone();
        plan.process(&mut a);
        plan.process_par(&mut b, Granularity::Coarse);
        plan.process_par(&mut d, Granularity::Fine);
        assert!(max_error(&a, &b) < 1e-12);
        assert!(max_error(&a, &d) < 1e-12);
    }

    /// Reference 3D DFT by transforming each axis naively.
    fn dft3d(data: &[Complex64], (d0, d1, d2): (usize, usize, usize)) -> Vec<Complex64> {
        let mut out = data.to_vec();
        // axis 2
        for i0 in 0..d0 {
            for i1 in 0..d1 {
                let base = (i0 * d1 + i1) * d2;
                let row = dft(&out[base..base + d2], FftDirection::Forward);
                out[base..base + d2].copy_from_slice(&row);
            }
        }
        // axis 1
        for i0 in 0..d0 {
            for i2 in 0..d2 {
                let col: Vec<Complex64> = (0..d1).map(|i1| out[(i0 * d1 + i1) * d2 + i2]).collect();
                let t = dft(&col, FftDirection::Forward);
                for i1 in 0..d1 {
                    out[(i0 * d1 + i1) * d2 + i2] = t[i1];
                }
            }
        }
        // axis 0
        for i1 in 0..d1 {
            for i2 in 0..d2 {
                let col: Vec<Complex64> = (0..d0).map(|i0| out[(i0 * d1 + i1) * d2 + i2]).collect();
                let t = dft(&col, FftDirection::Forward);
                for i0 in 0..d0 {
                    out[(i0 * d1 + i1) * d2 + i2] = t[i0];
                }
            }
        }
        out
    }

    #[test]
    fn fft3d_matches_naive_cube() {
        let n = 8;
        let x = sample(n * n * n);
        let mut got = x.clone();
        Fft3d::cube(n, FftDirection::Forward).process(&mut got);
        let want = dft3d(&x, (n, n, n));
        assert!(max_error(&got, &want) < 1e-8 * (n * n * n) as f64);
    }

    #[test]
    fn fft3d_matches_naive_rectangular() {
        let shape = (4usize, 6usize, 8usize);
        let x = sample(shape.0 * shape.1 * shape.2);
        let mut got = x.clone();
        Fft3d::new(shape, FftDirection::Forward).process(&mut got);
        let want = dft3d(&x, shape);
        assert!(max_error(&got, &want) < 1e-8 * x.len() as f64);
    }

    #[test]
    fn fft3d_parallel_matches_serial() {
        let shape = (8usize, 16usize, 32usize);
        let x = sample(shape.0 * shape.1 * shape.2);
        let plan = Fft3d::new(shape, FftDirection::Forward);
        let mut a = x.clone();
        let mut b = x.clone();
        plan.process(&mut a);
        plan.process_par(&mut b, Granularity::Fine);
        assert!(max_error(&a, &b) < 1e-12);
    }

    #[test]
    fn fft3d_roundtrip() {
        let n = 8;
        let x = sample(n * n * n);
        let mut v = x.clone();
        Fft3d::cube(n, FftDirection::Forward).process(&mut v);
        Fft3d::cube(n, FftDirection::Inverse).process(&mut v);
        let scale = 1.0 / (n * n * n) as f64;
        for e in &mut v {
            *e = e.scale(scale);
        }
        assert!(max_error(&x, &v) < 1e-9);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn wrong_buffer_shape_panics() {
        let plan = Fft2d::<f64>::new(4, 4, FftDirection::Forward);
        let mut v = vec![Complex64::zero(); 8];
        plan.process(&mut v);
    }
}
