//! Discrete cosine transforms (types II and III) via the FFT.
//!
//! DCT-II is computed with the classic even-permutation + half-sample
//! phase-shift identity: reorder the input as
//! `v[j] = x[2j], v[n-1-j] = x[2j+1]`, take an n-point complex FFT,
//! and read off `X_k = Re(e^{-iπk/2n}·V_k)`. DCT-III (the inverse of
//! DCT-II up to scaling) reverses the construction.

use crate::complex::{Complex, Float};
use crate::plan::Fft;
use crate::FftDirection;

/// Plan for an `n`-point DCT-II and its DCT-III inverse.
pub struct Dct<T> {
    n: usize,
    fft_fwd: Fft<T>,
    fft_inv: Fft<T>,
    /// `e^{-iπk/(2n)}` for `0 ≤ k < n`.
    phase: Vec<Complex<T>>,
}

impl<T: Float> Dct<T> {
    /// Plan an `n`-point transform (`n ≥ 1`).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "DCT size must be positive");
        let step = T::TAU / T::from_usize(4 * n);
        Self {
            n,
            fft_fwd: Fft::new(n, FftDirection::Forward),
            fft_inv: Fft::new(n, FftDirection::Inverse),
            phase: (0..n)
                .map(|k| Complex::cis(-step * T::from_usize(k)))
                .collect(),
        }
    }

    /// Transform size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the plan is empty (never: n ≥ 1).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// DCT-II: `X_k = Σ_j x_j · cos(π(j + ½)k / n)` (unnormalized).
    pub fn dct2(&self, input: &[T]) -> Vec<T> {
        assert_eq!(input.len(), self.n, "input length must match plan");
        let n = self.n;
        // Even/odd fold.
        let mut v = vec![Complex::zero(); n];
        for j in 0..n.div_ceil(2) {
            v[j] = Complex::from(input[2 * j]);
        }
        for j in 0..n / 2 {
            v[n - 1 - j] = Complex::from(input[2 * j + 1]);
        }
        self.fft_fwd.process(&mut v);
        (0..n).map(|k| (v[k] * self.phase[k]).re).collect()
    }

    /// The exact inverse of [`Self::dct2`]: `idct2(dct2(x)) == x`.
    pub fn idct2(&self, input: &[T]) -> Vec<T> {
        assert_eq!(input.len(), self.n, "input length must match plan");
        let n = self.n;
        // Build V_k = (X_k − i·X_{n−k})·conj(phase) with X_n = 0.
        let mut v = vec![Complex::zero(); n];
        for k in 0..n {
            let re = input[k];
            let im = if k == 0 { T::ZERO } else { -input[n - k] };
            let c = Complex::new(re, im);
            v[k] = c * self.phase[k].conj();
        }
        self.fft_inv.process(&mut v);
        // Un-fold the even/odd permutation; inverse FFT is unnormalized,
        // matching dct2's unnormalized forward.
        let scale = T::ONE / T::from_usize(n);
        let mut out = vec![T::ZERO; n];
        for j in 0..n.div_ceil(2) {
            out[2 * j] = v[j].re * scale;
        }
        for j in 0..n / 2 {
            out[2 * j + 1] = v[n - 1 - j].re * scale;
        }
        out
    }

    /// Standard (unnormalized) DCT-III:
    /// `Y_j = x_0/2 + Σ_{k≥1} x_k · cos(πk(j + ½)/n)`.
    ///
    /// Related to the exact inverse by `dct3(x) = (n/2)·idct2(x)`.
    pub fn dct3(&self, input: &[T]) -> Vec<T> {
        let half_n = T::from_usize(self.n) / T::from_f64(2.0);
        self.idct2(input).into_iter().map(|v| v * half_n).collect()
    }
}

/// Direct O(n²) DCT-II, the correctness oracle.
pub fn dct2_naive<T: Float>(input: &[T]) -> Vec<T> {
    let n = input.len();
    let pi_over_n = T::TAU / T::from_usize(2 * n);
    (0..n)
        .map(|k| {
            let mut acc = T::ZERO;
            for (j, &x) in input.iter().enumerate() {
                let angle = pi_over_n * (T::from_usize(j) + T::from_f64(0.5)) * T::from_usize(k);
                acc += x * angle.cos();
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.37).sin() + 0.25 * (i as f64 * 1.1).cos())
            .collect()
    }

    #[test]
    fn dct2_matches_naive() {
        for n in [1usize, 2, 4, 8, 16, 64, 12, 60] {
            let x = sample(n);
            let got = Dct::new(n).dct2(&x);
            let want = dct2_naive(&x);
            for (k, (g, w)) in got.iter().zip(&want).enumerate() {
                assert!((g - w).abs() < 1e-8 * n as f64, "n={n} k={k}: {g} vs {w}");
            }
        }
    }

    #[test]
    fn roundtrip_dct2_idct2_exact() {
        for n in [1usize, 4, 16, 32, 48] {
            let plan = Dct::new(n);
            let x = sample(n);
            let y = plan.idct2(&plan.dct2(&x));
            for (j, (a, b)) in x.iter().zip(&y).enumerate() {
                assert!((b - a).abs() < 1e-9 * n as f64, "n={n} j={j}: {a} vs {b}");
            }
        }
    }

    /// Direct O(n²) DCT-III oracle.
    fn dct3_naive(x: &[f64]) -> Vec<f64> {
        let n = x.len();
        (0..n)
            .map(|j| {
                let mut acc = x[0] / 2.0;
                for (k, &v) in x.iter().enumerate().skip(1) {
                    acc +=
                        v * (std::f64::consts::PI * k as f64 * (j as f64 + 0.5) / n as f64).cos();
                }
                acc
            })
            .collect()
    }

    #[test]
    fn dct3_matches_naive() {
        for n in [2usize, 8, 24, 64] {
            let x = sample(n);
            let got = Dct::new(n).dct3(&x);
            let want = dct3_naive(&x);
            for (k, (g, w)) in got.iter().zip(&want).enumerate() {
                assert!((g - w).abs() < 1e-8 * n as f64, "n={n} k={k}: {g} vs {w}");
            }
        }
    }

    #[test]
    fn dc_coefficient_is_sum() {
        let x = sample(32);
        let c = Dct::new(32).dct2(&x);
        let sum: f64 = x.iter().sum();
        assert!((c[0] - sum).abs() < 1e-9);
    }

    #[test]
    fn cosine_input_concentrates() {
        // x_j = cos(π(j+½)·5/n) has all DCT-II energy in bin 5.
        let n = 64;
        let x: Vec<f64> = (0..n)
            .map(|j| (std::f64::consts::PI * (j as f64 + 0.5) * 5.0 / n as f64).cos())
            .collect();
        let c = Dct::new(n).dct2(&x);
        for (k, v) in c.iter().enumerate() {
            if k == 5 {
                assert!((v - n as f64 / 2.0).abs() < 1e-8);
            } else {
                assert!(v.abs() < 1e-8, "bin {k} leaked {v}");
            }
        }
    }
}
