//! Depth-first (recursive, cache-oblivious) radix-2 FFT.
//!
//! The paper (Section IV-A "Depth-first versus breadth-first") contrasts
//! this traversal — working set shrinks as `N/2^i` with recursion depth,
//! so deep levels fit in cache, but available parallelism shrinks with
//! it — against the breadth-first iterative driver that XMT prefers.
//! Both are provided so the `ablation_traversal` bench can measure the
//! locality/parallelism trade-off, and [`fft_hybrid`] implements the
//! paper's suggested "start depth-first, switch to breadth-first when
//! the subproblem is small enough" strategy for large inputs.

use crate::complex::{Complex, Float};
use crate::stockham::{fft_stockham, plan_stages};
use crate::twiddle::TwiddleTable;
use crate::FftDirection;

/// Out-of-place depth-first radix-2 DIT FFT.
///
/// `n` must be a power of two. The recursion reads `input` with a stride
/// and writes contiguous halves of `output`, the classic cache-oblivious
/// formulation (Frigo et al. \[29\]).
pub fn fft_recursive<T: Float>(
    input: &[Complex<T>],
    output: &mut [Complex<T>],
    dir: FftDirection,
    tw: &TwiddleTable<T>,
) {
    let n = input.len();
    assert!(
        n.is_power_of_two() || n == 1,
        "recursive driver needs power-of-two length"
    );
    assert_eq!(output.len(), n);
    assert_eq!(tw.len(), n, "twiddle table must match data length");
    assert_eq!(tw.direction(), dir);
    rec(input, 1, output, tw, n);
}

fn rec<T: Float>(
    input: &[Complex<T>],
    stride: usize,
    output: &mut [Complex<T>],
    tw: &TwiddleTable<T>,
    n: usize,
) {
    if n == 1 {
        output[0] = input[0];
        return;
    }
    let half = n / 2;
    {
        let (even_out, odd_out) = output.split_at_mut(half);
        rec(input, stride * 2, even_out, tw, half);
        rec(&input[stride..], stride * 2, odd_out, tw, half);
    }
    // ω_n^k = ω_N^{k·N/n}; table length is the full N.
    let step = tw.len() / n;
    for k in 0..half {
        let t = output[half + k] * tw.get(step * k);
        let e = output[k];
        output[k] = e + t;
        output[half + k] = e - t;
    }
}

/// Hybrid traversal: recurse depth-first until the sub-problem is at
/// most `cutoff` points, then solve it breadth-first (Stockham).
///
/// With `cutoff >= n` this is pure breadth-first; with `cutoff <= 1` it
/// degenerates to [`fft_recursive`].
pub fn fft_hybrid<T: Float>(
    input: &[Complex<T>],
    output: &mut [Complex<T>],
    dir: FftDirection,
    tw: &TwiddleTable<T>,
    cutoff: usize,
) {
    let n = input.len();
    assert!(n.is_power_of_two() || n == 1);
    assert_eq!(output.len(), n);
    assert_eq!(tw.len(), n);
    assert_eq!(tw.direction(), dir);
    let mut scratch = vec![Complex::zero(); n.min(cutoff.next_power_of_two())];
    hybrid_rec(input, 1, output, dir, tw, n, cutoff.max(1), &mut scratch);
}

#[allow(clippy::too_many_arguments)]
fn hybrid_rec<T: Float>(
    input: &[Complex<T>],
    stride: usize,
    output: &mut [Complex<T>],
    dir: FftDirection,
    tw: &TwiddleTable<T>,
    n: usize,
    cutoff: usize,
    scratch: &mut [Complex<T>],
) {
    if n <= cutoff || n == 1 {
        // Gather the strided sub-sequence and solve breadth-first.
        for (i, o) in output.iter_mut().enumerate().take(n) {
            *o = input[i * stride];
        }
        if n > 1 {
            let stages = plan_stages(n).expect("power of two is smooth");
            let sub_tw = TwiddleTable::new(n, dir);
            fft_stockham(&mut output[..n], &mut scratch[..n], &stages, dir, &sub_tw);
        }
        return;
    }
    let half = n / 2;
    {
        let (even_out, odd_out) = output.split_at_mut(half);
        hybrid_rec(input, stride * 2, even_out, dir, tw, half, cutoff, scratch);
        hybrid_rec(
            &input[stride..],
            stride * 2,
            odd_out,
            dir,
            tw,
            half,
            cutoff,
            scratch,
        );
    }
    let step = tw.len() / n;
    for k in 0..half {
        let t = output[half + k] * tw.get(step * k);
        let e = output[k];
        output[k] = e + t;
        output[half + k] = e - t;
    }
}

/// Peak working set (in elements) touched by a depth-first traversal at
/// recursion depth `i` of an `n`-point transform: `n / 2^i`. Matches the
/// paper's locality argument; used in the traversal ablation's report.
pub fn depth_first_working_set(n: usize, depth: u32) -> usize {
    n >> depth.min(n.trailing_zeros())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::{dft, max_error};
    use crate::Complex64;

    fn sample(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| Complex64::new((2.0 * i as f64).sin(), (0.5 * i as f64).cos()))
            .collect()
    }

    #[test]
    fn recursive_matches_naive() {
        for n in [1usize, 2, 8, 64, 256] {
            let x = sample(n);
            let mut out = vec![Complex64::zero(); n];
            let tw = TwiddleTable::new(n, FftDirection::Forward);
            fft_recursive(&x, &mut out, FftDirection::Forward, &tw);
            let want = dft(&x, FftDirection::Forward);
            assert!(max_error(&out, &want) < 1e-9 * n.max(1) as f64, "n={n}");
        }
    }

    #[test]
    fn recursive_inverse_matches_naive() {
        let n = 128;
        let x = sample(n);
        let mut out = vec![Complex64::zero(); n];
        let tw = TwiddleTable::new(n, FftDirection::Inverse);
        fft_recursive(&x, &mut out, FftDirection::Inverse, &tw);
        let want = dft(&x, FftDirection::Inverse);
        assert!(max_error(&out, &want) < 1e-9 * n as f64);
    }

    #[test]
    fn hybrid_matches_recursive_for_all_cutoffs() {
        let n = 256;
        let x = sample(n);
        let tw = TwiddleTable::new(n, FftDirection::Forward);
        let mut reference = vec![Complex64::zero(); n];
        fft_recursive(&x, &mut reference, FftDirection::Forward, &tw);
        for cutoff in [1usize, 2, 16, 64, 256, 1024] {
            let mut out = vec![Complex64::zero(); n];
            fft_hybrid(&x, &mut out, FftDirection::Forward, &tw, cutoff);
            assert!(max_error(&out, &reference) < 1e-10, "cutoff={cutoff}");
        }
    }

    #[test]
    fn working_set_halves_per_level() {
        assert_eq!(depth_first_working_set(1024, 0), 1024);
        assert_eq!(depth_first_working_set(1024, 3), 128);
        assert_eq!(depth_first_working_set(1024, 99), 1);
    }
}
