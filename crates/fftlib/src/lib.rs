//! # parafft — serial and parallel FFTs in pure Rust
//!
//! This crate is the host-side FFT substrate of the *FFT on XMT*
//! reproduction. It plays two roles:
//!
//! 1. **Reference & baseline.** A complete, optimized FFT library —
//!    the stand-in for FFTW 3.3.4 in the paper's Table V baselines —
//!    with serial and rayon-parallel paths.
//! 2. **Algorithm source of truth.** The breadth-first, mixed-radix,
//!    decimation-in-frequency Stockham formulation in [`stockham`] is
//!    the exact stage structure the XMT kernels (crate `xmt-fft`)
//!    execute on the cycle simulator; the simulator's numeric output is
//!    validated against this crate.
//!
//! ## Quick start
//!
//! ```
//! use parafft::{Complex64, Fft, FftDirection};
//!
//! let n = 1024;
//! let mut signal: Vec<Complex64> = (0..n)
//!     .map(|i| Complex64::new((i as f64 * 0.1).sin(), 0.0))
//!     .collect();
//! let plan = Fft::new(n, FftDirection::Forward);
//! plan.process(&mut signal);
//! ```
//!
//! ## Layout
//!
//! * [`complex`] — `Complex<T>` and the `Float` scalar trait.
//! * [`twiddle`] — twiddle tables and the paper's replication scheme.
//! * [`codelets`] — fixed-size DFT butterflies (radix 2/4/8 + generic).
//! * [`stockham`] — the breadth-first mixed-radix engine (serial/parallel).
//! * [`radix2`] — classic in-place DIT/DIF drivers (ablations).
//! * [`recursive`] — depth-first cache-oblivious driver and the
//!   depth-first→breadth-first hybrid the paper suggests for large N.
//! * [`bluestein`] — arbitrary-size transforms.
//! * [`plan`] — the planner front end ([`Fft`], [`FftPlanner`]).
//! * [`nd`] — 2D/3D transforms by the rotation method.
//! * [`realfft`] — real-input transforms.
//! * [`convolve`] — FFT convolution utilities.
//! * [`flops`] — the 5N·log₂N and actual-FLOP accounting conventions.
//! * [`window`], [`spectrum`] — analysis conveniences (windows,
//!   fftshift, magnitude/power/dB spectra).

#![warn(missing_docs)]
#![allow(clippy::len_without_is_empty)]

pub mod bluestein;
pub mod codelets;
pub mod complex;
pub mod convolve;
pub mod dct;
pub mod dft;
pub mod flops;
pub mod nd;
pub mod permute;
pub mod plan;
pub mod radix2;
pub mod realfft;
pub mod recursive;
pub mod spectrum;
pub mod stockham;
pub mod stream;
pub mod twiddle;
pub mod window;

pub use complex::{Complex, Complex32, Complex64, Float};
pub use dct::Dct;
pub use nd::{Fft2d, Fft3d, Granularity};
pub use plan::{fft, ifft, Algorithm, Fft, FftPlanner, Normalization};
pub use realfft::RealFft;
pub use stream::OverlapSave;
pub use twiddle::{ReplicatedTwiddles, TwiddleTable};
pub use window::Window;

/// Transform direction. Forward uses the `e^{-i2πkn/N}` kernel of
/// Eq. (1) of the paper; inverse conjugates it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FftDirection {
    /// Time → frequency.
    Forward,
    /// Frequency → time (unnormalized unless a plan normalization says
    /// otherwise).
    Inverse,
}

impl FftDirection {
    /// The opposite direction.
    pub fn reversed(self) -> Self {
        match self {
            FftDirection::Forward => FftDirection::Inverse,
            FftDirection::Inverse => FftDirection::Forward,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_reversal() {
        assert_eq!(FftDirection::Forward.reversed(), FftDirection::Inverse);
        assert_eq!(FftDirection::Inverse.reversed(), FftDirection::Forward);
    }
}
