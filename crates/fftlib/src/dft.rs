//! Naive O(N²) discrete Fourier transform, the correctness oracle.
//!
//! Every FFT code path in this workspace — host codelets, iterative and
//! recursive drivers, and the XMT-simulated kernels — is ultimately
//! validated against this direct evaluation of Eq. (1) of the paper.

use crate::complex::{Complex, Float};
use crate::FftDirection;

/// Directly evaluate `X_k = Σ_n x_n · e^{∓i2πkn/N}`.
///
/// O(N²); intended for tests and tiny sizes only.
pub fn dft<T: Float>(input: &[Complex<T>], direction: FftDirection) -> Vec<Complex<T>> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    let sign = match direction {
        FftDirection::Forward => -T::ONE,
        FftDirection::Inverse => T::ONE,
    };
    let step = T::TAU / T::from_usize(n);
    (0..n)
        .map(|k| {
            let mut acc = Complex::zero();
            for (j, &x) in input.iter().enumerate() {
                // Reduce k·j mod n before converting to angle to keep the
                // argument small (important for f32 inputs at large N).
                let kj = (k * j) % n;
                acc += x * Complex::cis(sign * step * T::from_usize(kj));
            }
            acc
        })
        .collect()
}

/// Forward naive DFT.
pub fn dft_forward<T: Float>(input: &[Complex<T>]) -> Vec<Complex<T>> {
    dft(input, FftDirection::Forward)
}

/// Inverse naive DFT *including* the 1/N normalization, so that
/// `idft(dft(x)) == x`.
pub fn idft_normalized<T: Float>(input: &[Complex<T>]) -> Vec<Complex<T>> {
    let n = input.len();
    let mut out = dft(input, FftDirection::Inverse);
    if n > 0 {
        let s = T::ONE / T::from_usize(n);
        for v in &mut out {
            *v = v.scale(s);
        }
    }
    out
}

/// Maximum element-wise distance between two complex slices.
///
/// Panics if lengths differ; returns 0 for empty slices.
pub fn max_error<T: Float>(a: &[Complex<T>], b: &[Complex<T>]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch in max_error");
    a.iter()
        .zip(b)
        .map(|(x, y)| x.dist(*y).to_f64())
        .fold(0.0, f64::max)
}

/// Relative max error scaled by the RMS magnitude of `a`, robust to
/// signal amplitude. Returns absolute error when `a` is all-zero.
pub fn rel_error<T: Float>(a: &[Complex<T>], b: &[Complex<T>]) -> f64 {
    let err = max_error(a, b);
    let rms = (a.iter().map(|x| x.norm_sqr().to_f64()).sum::<f64>() / a.len().max(1) as f64).sqrt();
    if rms > 0.0 {
        err / rms
    } else {
        err
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Complex64;

    fn impulse(n: usize, at: usize) -> Vec<Complex64> {
        let mut v = vec![Complex64::zero(); n];
        v[at] = Complex64::one();
        v
    }

    #[test]
    fn dft_of_impulse_is_flat() {
        let x = impulse(8, 0);
        let y = dft_forward(&x);
        for v in y {
            assert!(v.dist(Complex64::one()) < 1e-12);
        }
    }

    #[test]
    fn dft_of_shifted_impulse_is_twiddles() {
        let n = 16;
        let x = impulse(n, 1);
        let y = dft_forward(&x);
        for (k, v) in y.iter().enumerate() {
            let expect = Complex64::cis(-std::f64::consts::TAU * k as f64 / n as f64);
            assert!(v.dist(expect) < 1e-12);
        }
    }

    #[test]
    fn dft_of_constant_is_impulse() {
        let n = 12;
        let x = vec![Complex64::one(); n];
        let y = dft_forward(&x);
        assert!(y[0].dist(Complex64::new(n as f64, 0.0)) < 1e-10);
        for v in &y[1..] {
            assert!(v.abs() < 1e-10);
        }
    }

    #[test]
    fn roundtrip_identity() {
        let x: Vec<Complex64> = (0..10)
            .map(|i| Complex64::new(i as f64 * 0.3 - 1.0, (i * i) as f64 * 0.01))
            .collect();
        let back = idft_normalized(&dft_forward(&x));
        assert!(max_error(&x, &back) < 1e-10);
    }

    #[test]
    fn dft_linear() {
        let x: Vec<Complex64> = (0..9)
            .map(|i| Complex64::new(i as f64, -(i as f64)))
            .collect();
        let y: Vec<Complex64> = (0..9)
            .map(|i| Complex64::new(1.0 / (i + 1) as f64, 0.5))
            .collect();
        let sum: Vec<Complex64> = x.iter().zip(&y).map(|(a, b)| *a + *b).collect();
        let lhs = dft_forward(&sum);
        let rhs: Vec<Complex64> = dft_forward(&x)
            .iter()
            .zip(dft_forward(&y))
            .map(|(a, b)| *a + b)
            .collect();
        assert!(max_error(&lhs, &rhs) < 1e-10);
    }

    #[test]
    fn empty_input_ok() {
        assert!(dft_forward::<f64>(&[]).is_empty());
        assert!(idft_normalized::<f64>(&[]).is_empty());
    }

    #[test]
    fn rel_error_scales() {
        let a = vec![Complex64::new(100.0, 0.0); 4];
        let mut b = a.clone();
        b[0].re += 1.0;
        assert!((rel_error(&a, &b) - 0.01).abs() < 1e-12);
    }
}
