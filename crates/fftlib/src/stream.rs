//! Streaming convolution by overlap-save: filter an arbitrarily long
//! signal with a fixed FIR kernel using fixed-size FFTs — the
//! continuous-signal counterpart of [`crate::convolve`], and a classic
//! production requirement (real-time filtering cannot buffer the whole
//! signal).

use crate::complex::{Complex, Float};
use crate::convolve::next_fast_len;
use crate::plan::{Fft, Normalization};
use crate::FftDirection;

/// Overlap-save convolver for a fixed kernel.
///
/// Feed arbitrary-sized chunks with [`OverlapSave::process`]; output
/// totals `input_len + kernel_len − 1` samples once [`OverlapSave::finish`]
/// flushes the tail (identical to direct linear convolution).
pub struct OverlapSave<T> {
    kernel_len: usize,
    /// FFT block size (≥ 2·kernel_len, smooth).
    block: usize,
    /// Samples of new input consumed per block.
    hop: usize,
    fwd: Fft<T>,
    inv: Fft<T>,
    /// Frequency-domain kernel.
    kernel_hat: Vec<Complex<T>>,
    /// Sliding input history of `block` samples.
    history: Vec<Complex<T>>,
    /// Valid (unprocessed) samples currently in the history tail.
    pending: usize,
    /// Input samples consumed so far.
    consumed: usize,
    /// Output samples emitted so far.
    emitted: usize,
    finished: bool,
}

impl<T: Float> OverlapSave<T> {
    /// Build a convolver for `kernel`; `block_hint` (if any) is rounded
    /// up to a fast size of at least twice the kernel length.
    pub fn new(kernel: &[Complex<T>], block_hint: Option<usize>) -> Self {
        assert!(!kernel.is_empty(), "kernel must be non-empty");
        let min_block = 2 * kernel.len();
        let block = next_fast_len(block_hint.unwrap_or(4 * kernel.len()).max(min_block));
        let hop = block - kernel.len() + 1;
        let fwd = Fft::new(block, FftDirection::Forward);
        let inv = Fft::with_normalization(block, FftDirection::Inverse, Normalization::Inverse);
        let mut kernel_hat = vec![Complex::zero(); block];
        kernel_hat[..kernel.len()].copy_from_slice(kernel);
        fwd.process(&mut kernel_hat);
        Self {
            kernel_len: kernel.len(),
            block,
            hop,
            fwd,
            inv,
            kernel_hat,
            history: vec![Complex::zero(); block],
            pending: 0,
            consumed: 0,
            emitted: 0,
            finished: false,
        }
    }

    /// FFT block size chosen.
    pub fn block_len(&self) -> usize {
        self.block
    }

    fn run_block(&mut self, out: &mut Vec<Complex<T>>) {
        // history holds the last (kernel_len-1) old samples followed by
        // hop new ones; circular convolution then yields hop valid
        // output samples at positions kernel_len-1 .. block.
        let mut buf = self.history.clone();
        self.fwd.process(&mut buf);
        for (b, k) in buf.iter_mut().zip(&self.kernel_hat) {
            *b *= *k;
        }
        self.inv.process(&mut buf);
        out.extend_from_slice(&buf[self.kernel_len - 1..]);
        // Slide: keep the last kernel_len-1 samples.
        self.history.copy_within(self.hop.., 0);
        for v in &mut self.history[self.block - self.hop..] {
            *v = Complex::zero();
        }
        self.pending = 0;
    }

    /// Feed input samples; returns the output produced so far by any
    /// completed blocks.
    pub fn process(&mut self, input: &[Complex<T>]) -> Vec<Complex<T>> {
        assert!(!self.finished, "process after finish");
        let mut out = Vec::new();
        for &s in input {
            let at = self.kernel_len - 1 + self.pending;
            self.history[at] = s;
            self.pending += 1;
            self.consumed += 1;
            if self.pending == self.hop {
                self.run_block(&mut out);
            }
        }
        self.emitted += out.len();
        out
    }

    /// Flush the tail; the total output across all calls is exactly
    /// `consumed + kernel_len − 1` samples.
    pub fn finish(mut self) -> Vec<Complex<T>> {
        assert!(!self.finished);
        self.finished = true;
        let total_needed = self.consumed + self.kernel_len - 1;
        let mut out = Vec::new();
        while self.emitted + out.len() < total_needed {
            self.run_block(&mut out);
        }
        out.truncate(total_needed - self.emitted);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convolve::direct_convolve;
    use crate::dft::max_error;
    use crate::Complex64;

    fn sig(n: usize, seed: f64) -> Vec<Complex64> {
        (0..n)
            .map(|i| Complex64::new((i as f64 * 0.37 + seed).sin(), (i as f64 * 0.19).cos()))
            .collect()
    }

    fn run_streaming(
        signal: &[Complex64],
        kernel: &[Complex64],
        chunk: usize,
        block_hint: Option<usize>,
    ) -> Vec<Complex64> {
        let mut os = OverlapSave::new(kernel, block_hint);
        let mut out = Vec::new();
        for c in signal.chunks(chunk.max(1)) {
            out.extend(os.process(c));
        }
        out.extend(os.finish());
        out
    }

    #[test]
    fn matches_direct_convolution() {
        let signal = sig(500, 0.0);
        let kernel = sig(17, 3.0);
        let want = direct_convolve(&signal, &kernel);
        for chunk in [1usize, 7, 64, 500] {
            let got = run_streaming(&signal, &kernel, chunk, None);
            assert_eq!(got.len(), want.len(), "chunk {chunk}");
            assert!(max_error(&got, &want) < 1e-9, "chunk {chunk}");
        }
    }

    #[test]
    fn block_hint_respected_and_smooth() {
        let kernel = sig(33, 1.0);
        let os = OverlapSave::new(&kernel, Some(100));
        assert!(os.block_len() >= 100);
        assert!(parafft_smooth(os.block_len()));
        // Tiny hint still yields a legal block.
        let os2 = OverlapSave::new(&kernel, Some(2));
        assert!(os2.block_len() >= 66);
    }

    fn parafft_smooth(n: usize) -> bool {
        crate::stockham::plan_stages(n).is_some()
    }

    #[test]
    fn empty_input_yields_kernel_tail_only() {
        let kernel = sig(9, 2.0);
        let got = run_streaming(&[], &kernel, 4, None);
        // 0 input samples: output length kernel_len - 1, all zeros.
        assert_eq!(got.len(), 8);
        assert!(got.iter().all(|c| c.abs() < 1e-12));
    }

    #[test]
    fn single_sample_kernel_is_identity_scale() {
        let signal = sig(100, 0.5);
        let kernel = [Complex64::new(2.0, 0.0)];
        let got = run_streaming(&signal, &kernel, 13, None);
        assert_eq!(got.len(), 100);
        for (g, s) in got.iter().zip(&signal) {
            assert!(g.dist(s.scale(2.0)) < 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_kernel_rejected() {
        OverlapSave::<f64>::new(&[], None);
    }
}
