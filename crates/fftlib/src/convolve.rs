//! FFT-based convolution helpers: the classic application that makes FFT
//! "a classic computation engine for numerous applications" (paper
//! abstract). Used by the spectral-filter and Poisson examples.

use crate::complex::{Complex, Float};
use crate::plan::{Fft, Normalization};
use crate::FftDirection;

/// Circular convolution of two equal-length complex signals via FFT:
/// `out[k] = Σ_j a[j]·b[(k−j) mod n]`.
pub fn circular_convolve<T: Float>(a: &[Complex<T>], b: &[Complex<T>]) -> Vec<Complex<T>> {
    assert_eq!(a.len(), b.len(), "circular convolution needs equal lengths");
    let n = a.len();
    if n == 0 {
        return Vec::new();
    }
    let fwd = Fft::new(n, FftDirection::Forward);
    let inv = Fft::with_normalization(n, FftDirection::Inverse, Normalization::Inverse);
    let mut fa = a.to_vec();
    let mut fb = b.to_vec();
    fwd.process(&mut fa);
    fwd.process(&mut fb);
    for (x, y) in fa.iter_mut().zip(&fb) {
        *x *= *y;
    }
    inv.process(&mut fa);
    fa
}

/// Linear convolution of two complex signals (output length
/// `a.len() + b.len() − 1`) by zero-padding to a fast size.
pub fn linear_convolve<T: Float>(a: &[Complex<T>], b: &[Complex<T>]) -> Vec<Complex<T>> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let out_len = a.len() + b.len() - 1;
    let n = next_fast_len(out_len);
    let mut pa = vec![Complex::zero(); n];
    let mut pb = vec![Complex::zero(); n];
    pa[..a.len()].copy_from_slice(a);
    pb[..b.len()].copy_from_slice(b);
    let mut full = circular_convolve(&pa, &pb);
    full.truncate(out_len);
    full
}

/// Smallest size ≥ `n` that the mixed-radix engine handles without
/// falling back to Bluestein (i.e. 13-smooth). In practice returns the
/// next power of two unless a closer smooth size exists.
pub fn next_fast_len(n: usize) -> usize {
    let mut m = n.max(1);
    loop {
        if crate::stockham::plan_stages(m).is_some() {
            return m;
        }
        m += 1;
    }
}

/// Direct O(n·m) linear convolution, the correctness oracle for tests.
pub fn direct_convolve<T: Float>(a: &[Complex<T>], b: &[Complex<T>]) -> Vec<Complex<T>> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![Complex::zero(); a.len() + b.len() - 1];
    for (i, &x) in a.iter().enumerate() {
        for (j, &y) in b.iter().enumerate() {
            out[i + j] += x * y;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::max_error;
    use crate::Complex64;

    fn sample(n: usize, phase: f64) -> Vec<Complex64> {
        (0..n)
            .map(|i| Complex64::new((i as f64 * 0.31 + phase).sin(), (i as f64 * 0.17).cos()))
            .collect()
    }

    #[test]
    fn linear_matches_direct() {
        for (la, lb) in [(5usize, 7usize), (16, 16), (1, 9), (33, 12)] {
            let a = sample(la, 0.0);
            let b = sample(lb, 1.0);
            let got = linear_convolve(&a, &b);
            let want = direct_convolve(&a, &b);
            assert!(
                max_error(&got, &want) < 1e-8 * (la + lb) as f64,
                "{la}x{lb}"
            );
        }
    }

    #[test]
    fn circular_delta_is_identity() {
        let n = 16;
        let a = sample(n, 0.5);
        let mut delta = vec![Complex64::zero(); n];
        delta[0] = Complex64::one();
        let got = circular_convolve(&a, &delta);
        assert!(max_error(&got, &a) < 1e-10);
    }

    #[test]
    fn circular_shift_by_one() {
        let n = 8;
        let a = sample(n, 0.0);
        let mut shift = vec![Complex64::zero(); n];
        shift[1] = Complex64::one();
        let got = circular_convolve(&a, &shift);
        for k in 0..n {
            assert!(got[k].dist(a[(k + n - 1) % n]) < 1e-10);
        }
    }

    #[test]
    fn next_fast_len_is_smooth_and_minimal() {
        assert_eq!(next_fast_len(1), 1);
        assert_eq!(next_fast_len(17), 18); // 2·3²
        assert_eq!(next_fast_len(128), 128);
        assert_eq!(next_fast_len(0), 1);
    }

    #[test]
    fn empty_inputs() {
        assert!(linear_convolve::<f64>(&[], &sample(4, 0.0)).is_empty());
        assert!(direct_convolve::<f64>(&sample(4, 0.0), &[]).is_empty());
    }
}
