//! Spectrum utilities: `fftshift`, magnitude/power spectra, decibels,
//! and bin↔frequency conversion — the small conveniences every FFT
//! consumer re-implements.

use crate::complex::{Complex, Float};

/// Rotate a spectrum so the zero-frequency bin sits at the center
/// (`n/2`): the conventional display order.
pub fn fftshift<T: Clone>(data: &mut [T]) {
    let n = data.len();
    data.rotate_right(n / 2);
}

/// Inverse of [`fftshift`] (distinct for odd lengths).
pub fn ifftshift<T: Clone>(data: &mut [T]) {
    let n = data.len();
    data.rotate_left(n / 2);
}

/// Magnitude spectrum `|X_k|`.
pub fn magnitude<T: Float>(spec: &[Complex<T>]) -> Vec<T> {
    spec.iter().map(|c| c.abs()).collect()
}

/// Power spectrum `|X_k|²`.
pub fn power<T: Float>(spec: &[Complex<T>]) -> Vec<T> {
    spec.iter().map(|c| c.norm_sqr()).collect()
}

/// Power spectrum in dB relative to the strongest bin, floored at
/// `floor_db` (e.g. −120.0).
pub fn power_db<T: Float>(spec: &[Complex<T>], floor_db: f64) -> Vec<f64> {
    let p: Vec<f64> = spec.iter().map(|c| c.norm_sqr().to_f64()).collect();
    let peak = p.iter().cloned().fold(0.0f64, f64::max);
    p.iter()
        .map(|&v| {
            if peak <= 0.0 || v <= 0.0 {
                floor_db
            } else {
                (10.0 * (v / peak).log10()).max(floor_db)
            }
        })
        .collect()
}

/// Frequency (in the sample-rate's units) of bin `k` of an `n`-point
/// transform at `sample_rate`; bins above `n/2` are negative
/// frequencies.
pub fn bin_frequency(k: usize, n: usize, sample_rate: f64) -> f64 {
    assert!(k < n);
    let k = k as f64;
    let n = n as f64;
    let signed = if k <= n / 2.0 { k } else { k - n };
    signed * sample_rate / n
}

/// The bin index nearest to `freq` for an `n`-point transform at
/// `sample_rate`.
pub fn frequency_bin(freq: f64, n: usize, sample_rate: f64) -> usize {
    let k = (freq * n as f64 / sample_rate).round() as i64;
    k.rem_euclid(n as i64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Complex64;

    #[test]
    fn shift_roundtrip_even_and_odd() {
        for n in [8usize, 9] {
            let orig: Vec<usize> = (0..n).collect();
            let mut v = orig.clone();
            fftshift(&mut v);
            assert_eq!(v[n / 2], 0, "DC lands at the center");
            ifftshift(&mut v);
            assert_eq!(v, orig);
        }
    }

    #[test]
    fn magnitude_and_power_consistent() {
        let spec = vec![Complex64::new(3.0, 4.0), Complex64::new(0.0, -2.0)];
        assert_eq!(magnitude(&spec), vec![5.0, 2.0]);
        assert_eq!(power(&spec), vec![25.0, 4.0]);
    }

    #[test]
    fn db_scale_relative_to_peak() {
        let spec = vec![
            Complex64::new(10.0, 0.0),
            Complex64::new(1.0, 0.0),
            Complex64::zero(),
        ];
        let db = power_db(&spec, -120.0);
        assert_eq!(db[0], 0.0);
        assert!((db[1] + 20.0).abs() < 1e-9);
        assert_eq!(db[2], -120.0);
    }

    #[test]
    fn bin_frequency_mapping() {
        let (n, sr) = (1024, 48_000.0);
        assert_eq!(bin_frequency(0, n, sr), 0.0);
        assert!((bin_frequency(512, n, sr) - 24_000.0).abs() < 1e-9);
        assert!(
            bin_frequency(1023, n, sr) < 0.0,
            "top bins are negative freq"
        );
        for f in [100.0, 440.0, 12_345.0] {
            let k = frequency_bin(f, n, sr);
            assert!((bin_frequency(k, n, sr) - f).abs() <= sr / n as f64 / 2.0 + 1e-9);
        }
        assert_eq!(
            frequency_bin(-100.0, n, sr),
            frequency_bin(sr - 100.0, n, sr)
        );
    }

    #[test]
    fn fft_peak_at_expected_bin() {
        let n = 512;
        let f_tone = 31.0;
        let mut x: Vec<Complex64> = (0..n)
            .map(|i| {
                Complex64::new(
                    (std::f64::consts::TAU * f_tone * i as f64 / n as f64).sin(),
                    0.0,
                )
            })
            .collect();
        crate::plan::fft(&mut x);
        let mags = magnitude(&x);
        let peak = mags
            .iter()
            .enumerate()
            .take(n / 2)
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(peak, frequency_bin(f_tone, n, n as f64));
    }
}
