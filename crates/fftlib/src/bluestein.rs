//! Bluestein's chirp-z algorithm: an N-point DFT for *arbitrary* N,
//! expressed as a circular convolution of length M ≥ 2N−1 carried out by
//! power-of-two FFTs. Completes the library's coverage beyond the smooth
//! sizes handled by the mixed-radix Stockham driver.

use crate::complex::{Complex, Float};
use crate::stockham::{fft_stockham, plan_stages};
use crate::twiddle::TwiddleTable;
use crate::FftDirection;

/// Precomputed state for an N-point Bluestein transform.
#[derive(Clone, Debug)]
pub struct Bluestein<T> {
    n: usize,
    direction: FftDirection,
    m: usize,
    stages: Vec<usize>,
    tw_fwd: TwiddleTable<T>,
    tw_inv: TwiddleTable<T>,
    /// Chirp `c_j = e^{∓iπ j²/N}` for `0 ≤ j < n`.
    chirp: Vec<Complex<T>>,
    /// FFT of the conjugate-chirp kernel, length `m`.
    kernel_hat: Vec<Complex<T>>,
}

impl<T: Float> Bluestein<T> {
    /// Plan an `n`-point transform in `direction`.
    pub fn new(n: usize, direction: FftDirection) -> Self {
        assert!(n > 0, "Bluestein size must be positive");
        let m = (2 * n - 1).next_power_of_two();
        let stages = plan_stages(m).expect("power of two is always smooth");
        let tw_fwd = TwiddleTable::new(m, FftDirection::Forward);
        let tw_inv = TwiddleTable::new(m, FftDirection::Inverse);

        let sign = match direction {
            FftDirection::Forward => -T::ONE,
            FftDirection::Inverse => T::ONE,
        };
        // Angle of c_j is ∓π j²/N = ∓2π (j² mod 2N) / (2N); reducing the
        // square modulo 2N first keeps the argument small for f32.
        let two_n = 2 * n;
        let step = T::TAU / T::from_usize(two_n);
        let chirp: Vec<Complex<T>> = (0..n)
            .map(|j| {
                let sq = (j * j) % two_n;
                Complex::cis(sign * step * T::from_usize(sq))
            })
            .collect();

        // Convolution kernel b_j = conj(c_|j|), wrapped circularly in M.
        let mut kernel = vec![Complex::zero(); m];
        for j in 0..n {
            let b = chirp[j].conj();
            kernel[j] = b;
            if j != 0 {
                kernel[m - j] = b;
            }
        }
        let mut scratch = vec![Complex::zero(); m];
        fft_stockham(
            &mut kernel,
            &mut scratch,
            &stages,
            FftDirection::Forward,
            &tw_fwd,
        );

        Self {
            n,
            direction,
            m,
            stages,
            tw_fwd,
            tw_inv,
            chirp,
            kernel_hat: kernel,
        }
    }

    /// Transform size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if there are no items.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Transform direction.
    pub fn direction(&self) -> FftDirection {
        self.direction
    }

    /// Internal convolution length (a power of two ≥ 2N−1).
    pub fn conv_len(&self) -> usize {
        self.m
    }

    /// Transform `data` in place (unnormalized, like the other drivers).
    pub fn process(&self, data: &mut [Complex<T>]) {
        assert_eq!(data.len(), self.n, "input length must match plan");
        let m = self.m;
        let mut a = vec![Complex::zero(); m];
        let mut scratch = vec![Complex::zero(); m];
        for j in 0..self.n {
            a[j] = data[j] * self.chirp[j];
        }
        fft_stockham(
            &mut a,
            &mut scratch,
            &self.stages,
            FftDirection::Forward,
            &self.tw_fwd,
        );
        for (av, kv) in a.iter_mut().zip(&self.kernel_hat) {
            *av *= *kv;
        }
        fft_stockham(
            &mut a,
            &mut scratch,
            &self.stages,
            FftDirection::Inverse,
            &self.tw_inv,
        );
        let inv_m = T::ONE / T::from_usize(m);
        for k in 0..self.n {
            data[k] = a[k].scale(inv_m) * self.chirp[k];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::{dft, max_error};
    use crate::Complex64;

    fn sample(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| Complex64::new((i as f64 * 1.7).sin(), (i as f64 * 0.3).cos() - 0.2))
            .collect()
    }

    #[test]
    fn matches_naive_for_awkward_sizes() {
        for n in [1usize, 2, 7, 13, 17, 31, 97, 100, 257] {
            let plan = Bluestein::new(n, FftDirection::Forward);
            let x = sample(n);
            let mut got = x.clone();
            plan.process(&mut got);
            let want = dft(&x, FftDirection::Forward);
            assert!(max_error(&got, &want) < 1e-8 * n as f64, "n={n}");
        }
    }

    #[test]
    fn inverse_matches_naive() {
        let n = 23;
        let plan = Bluestein::new(n, FftDirection::Inverse);
        let x = sample(n);
        let mut got = x.clone();
        plan.process(&mut got);
        let want = dft(&x, FftDirection::Inverse);
        assert!(max_error(&got, &want) < 1e-9 * n as f64);
    }

    #[test]
    fn roundtrip_prime_size() {
        let n = 101;
        let fwd = Bluestein::new(n, FftDirection::Forward);
        let inv = Bluestein::new(n, FftDirection::Inverse);
        let x = sample(n);
        let mut v = x.clone();
        fwd.process(&mut v);
        inv.process(&mut v);
        for e in &mut v {
            *e = e.scale(1.0 / n as f64);
        }
        assert!(max_error(&x, &v) < 1e-9);
    }

    #[test]
    fn conv_len_is_sufficient_power_of_two() {
        let plan = Bluestein::<f64>::new(100, FftDirection::Forward);
        assert!(plan.conv_len().is_power_of_two());
        assert!(plan.conv_len() >= 199);
    }
}
